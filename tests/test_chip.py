"""Tests for the full-chip model: Table 3 / Table 5 / Figure 12-13 reproduction."""

import math

import pytest

from repro.core import CpuBaseline, WorkloadModel, ZkSpeedChip, ZkSpeedConfig

CONFIG = ZkSpeedConfig.paper_default()

#: Paper Table 3: workload problem size -> (CPU ms, zkSpeed ms).
PAPER_TABLE3 = {
    17: (1429.0, 1.984),
    20: (8619.0, 11.405),
    21: (18637.0, 22.082),
    22: (37469.0, 43.451),
    23: (74052.0, 86.181),
}


@pytest.fixture(scope="module")
def chip():
    return ZkSpeedChip(CONFIG)


@pytest.fixture(scope="module")
def report_2_20(chip):
    return chip.simulate(WorkloadModel(num_vars=20))


class TestRuntime:
    @pytest.mark.parametrize("num_vars", sorted(PAPER_TABLE3))
    def test_runtime_within_30_percent_of_paper(self, chip, num_vars):
        _, paper_ms = PAPER_TABLE3[num_vars]
        ours = chip.runtime_ms(WorkloadModel(num_vars=num_vars))
        assert ours == pytest.approx(paper_ms, rel=0.30)

    def test_geomean_speedup_in_paper_band(self, chip):
        """The paper reports a 801x geomean speedup for the fixed design."""
        cpu = CpuBaseline()
        speedups = []
        for num_vars, (cpu_ms, _) in PAPER_TABLE3.items():
            ours = chip.runtime_ms(WorkloadModel(num_vars=num_vars))
            speedups.append(cpu_ms / ours)
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        assert 600 <= geomean <= 1000

    def test_speedup_per_workload_in_band(self, chip):
        """Per-workload speedups are in the 700-900x band (Table 3)."""
        for num_vars, (cpu_ms, zk_ms) in PAPER_TABLE3.items():
            paper_speedup = cpu_ms / zk_ms
            ours = cpu_ms / chip.runtime_ms(WorkloadModel(num_vars=num_vars))
            assert ours == pytest.approx(paper_speedup, rel=0.35)

    def test_report_total_matches_step_sum(self, report_2_20):
        assert report_2_20.total_cycles == pytest.approx(
            sum(s.total_cycles for s in report_2_20.steps)
        )
        fractions = report_2_20.step_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_wire_identity_is_largest_fraction(self, report_2_20):
        """Figure 12b: Wire Identity ~48.5% of zkSpeed runtime at 2^20."""
        fractions = report_2_20.step_fractions()
        assert max(fractions, key=fractions.get) == "wire_identity"
        assert 0.30 <= fractions["wire_identity"] <= 0.60


class TestAreaAndPower:
    def test_total_area_matches_table5(self, chip):
        """366.46 mm^2 for the highlighted design (sized for the largest workload)."""
        assert chip.total_area_mm2(num_vars=23) == pytest.approx(366.46, rel=0.10)

    def test_compute_area_matches_table5(self, chip):
        # Table 5 total compute area: 163.53 mm^2.
        assert chip.compute_area_mm2() == pytest.approx(163.53, rel=0.10)

    def test_msm_unit_dominates_compute_area(self, chip):
        """Figure 13: the MSM unit is ~65% of the compute area."""
        breakdown = chip.unit_area_breakdown_mm2()
        total = sum(breakdown.values())
        assert breakdown["MSM Unit"] / total == pytest.approx(0.646, abs=0.08)

    def test_area_breakdown_units_match_table5(self, chip):
        breakdown = chip.area_breakdown_mm2(num_vars=23)
        paper = {
            "MSM Unit": 105.64,
            "SumCheck": 24.96,
            "Construct N&D": 1.35,
            "FracMLE": 1.92,
            "MLE Combine": 9.56,
            "MLE Update": 5.84,
            "Multifunction Tree": 12.28,
            "SRAM": 143.73,
            "HBM PHY": 59.20,
        }
        for name, paper_value in paper.items():
            assert breakdown[name] == pytest.approx(paper_value, rel=0.15), name

    def test_total_power_matches_table5(self, chip):
        power = sum(chip.power_breakdown_w(num_vars=23).values())
        assert power == pytest.approx(170.88, rel=0.15)

    def test_power_density_within_cpu_envelope(self, chip):
        """Section 7.4: power density 0.46 W/mm^2, within the CPU's."""
        area = chip.total_area_mm2(num_vars=23)
        power = sum(chip.power_breakdown_w(num_vars=23).values())
        assert 0.3 <= power / area <= 0.7

    def test_activity_scaled_power_is_lower(self, chip, report_2_20):
        scaled = chip.power_breakdown_w(20, report_2_20.utilization)
        unscaled = chip.power_breakdown_w(20)
        assert sum(scaled.values()) < sum(unscaled.values())


class TestUtilization:
    def test_msm_is_most_utilized_unit(self, report_2_20):
        """Figure 13: the MSM unit has the highest utilization (~70%)."""
        utilization = report_2_20.utilization
        compute_units = {k: v for k, v in utilization.items() if k != "sha3"}
        assert max(compute_units, key=compute_units.get) == "msm"
        assert utilization["msm"] > 0.4

    def test_sha3_rarely_used(self, report_2_20):
        assert report_2_20.utilization["sha3"] < 0.05

    def test_all_utilizations_are_fractions(self, report_2_20):
        assert all(0.0 <= u <= 1.0 for u in report_2_20.utilization.values())

    def test_memory_plan_attached(self, report_2_20):
        assert report_2_20.memory_plan.total_sram_mb > 0
        assert report_2_20.memory_plan.phy_kind == "hbm3"
