"""Cross-layer integration tests.

These tests tie the functional protocol layer to the architectural model:
the prover's recorded operation statistics must be consistent with the
analytical models the simulator uses, and the full flow (build a circuit ->
prove -> verify -> derive a workload model -> simulate the accelerator) must
run end to end.
"""

import pytest

from repro.circuits import mock_circuit
from repro.core import (
    CpuBaseline,
    WorkloadModel,
    ZkSpeedChip,
    ZkSpeedConfig,
    protocol_operation_counts,
)
from repro.core.units.msm_unit import MsmUnitModel
from repro.pcs.srs import setup
from repro.protocol.keys import preprocess
from repro.protocol.prover import prove
from repro.protocol.verifier import verify


class TestTraceModelConsistency:
    def test_witness_msm_stats_match_sparsity(self, small_keys, small_proof):
        """The functional Sparse-MSM statistics reflect the witness sparsity."""
        pk, _ = small_keys
        _, trace = small_proof
        witness_stats = trace.step_named("witness_commits").msm_stats
        circuit = pk.circuit
        for name, stats in zip(("w1", "w2", "w3"), witness_stats):
            profile = circuit.witnesses[name].sparsity_profile()
            assert stats.skipped_zero_scalars == profile["zeros"]
            assert stats.one_scalars == profile["ones"]
            assert stats.dense_scalars == profile["dense"]

    def test_functional_bucket_padds_bounded_by_model(self, small_proof):
        """The analytic MSM model's bucket-PADD count upper-bounds the measured one."""
        _, trace = small_proof
        config = ZkSpeedConfig(msm_window_bits=9)
        model = MsmUnitModel(config)
        for stats in trace.step_named("wire_identity").msm_stats:
            if stats.num_points == 0:
                continue
            model_padds = model.expected_bucket_padds(stats.num_points)
            # window sizes differ (functional default vs model), so compare
            # per-window rates.
            measured_rate = stats.bucket_padds / stats.num_windows
            model_rate = model_padds / model.num_windows
            assert measured_rate <= model_rate * 1.01

    def test_fracmle_inversion_count_matches_model(self, small_keys, small_proof):
        pk, _ = small_keys
        _, trace = small_proof
        assert trace.step_named("wire_identity").modular_inversions == pk.circuit.num_gates

    def test_sha3_invocation_count_positive_and_small(self, small_proof):
        _, trace = small_proof
        sha3 = trace.step_named("sha3").sha3_invocations
        # Hundreds of invocations, not millions -- SHA3 is not the bottleneck.
        assert 50 < sha3 < 20_000


class TestEndToEndFlow:
    def test_prove_verify_then_simulate(self, srs4):
        """The full user journey: functional proof plus architectural estimate."""
        circuit = mock_circuit(4, seed=11)
        pk, vk = preprocess(circuit, srs4)
        proof = prove(pk)
        assert verify(vk, proof)

        workload = WorkloadModel.from_circuit(circuit)
        chip = ZkSpeedChip(ZkSpeedConfig.paper_default())
        report = chip.simulate(workload)
        assert report.total_runtime_ms > 0
        assert report.total_area_mm2 > 0

        # The accelerator estimate must beat the calibrated CPU baseline.
        cpu = CpuBaseline()
        assert report.total_runtime_ms < cpu.runtime_ms(workload.num_vars)

    def test_opcounts_available_for_functional_workload(self, small_keys):
        pk, _ = small_keys
        workload = WorkloadModel.from_circuit(pk.circuit)
        profiles = protocol_operation_counts(workload)
        assert len(profiles) == 12
        assert all(p.modmuls > 0 for p in profiles)

    def test_speedup_grows_with_problem_size_up_to_saturation(self):
        chip = ZkSpeedChip(ZkSpeedConfig.paper_default())
        cpu = CpuBaseline()
        speedups = {
            num_vars: cpu.runtime_ms(num_vars)
            / chip.runtime_ms(WorkloadModel(num_vars=num_vars))
            for num_vars in (18, 20, 22)
        }
        assert all(s > 300 for s in speedups.values())
