"""Tests for univariate evaluation-form helpers (barycentric interpolation)."""

import random

import pytest

from repro.fields import Fr
from repro.sumcheck.interpolation import (
    evaluate_from_evaluations,
    extrapolate_evaluations,
    lagrange_coefficients_at,
)


def poly_eval(coefficients, x: Fr) -> Fr:
    acc = Fr(0)
    for coeff in reversed(coefficients):
        acc = acc * x + coeff
    return acc


@pytest.fixture()
def rng():
    return random.Random(31)


class TestEvaluateFromEvaluations:
    def test_node_points_returned_directly(self):
        evals = Fr.elements([10, 20, 30])
        for i, value in enumerate(evals):
            assert evaluate_from_evaluations(evals, Fr(i)) == value

    def test_matches_coefficient_evaluation(self, rng):
        for degree in range(1, 6):
            coefficients = [Fr.random(rng) for _ in range(degree + 1)]
            evals = [poly_eval(coefficients, Fr(i)) for i in range(degree + 1)]
            for _ in range(3):
                x = Fr.random(rng)
                assert evaluate_from_evaluations(evals, x) == poly_eval(coefficients, x)

    def test_constant_polynomial(self, rng):
        x = Fr.random(rng)
        assert evaluate_from_evaluations([Fr(42)], x) == Fr(42)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_from_evaluations([], Fr(1))


class TestExtrapolation:
    def test_extends_degree_correctly(self, rng):
        coefficients = [Fr.random(rng) for _ in range(3)]  # degree 2
        evals = [poly_eval(coefficients, Fr(i)) for i in range(3)]
        extended = extrapolate_evaluations(evals, 6)
        assert len(extended) == 6
        for i, value in enumerate(extended):
            assert value == poly_eval(coefficients, Fr(i))

    def test_target_smaller_than_input_rejected(self):
        with pytest.raises(ValueError):
            extrapolate_evaluations(Fr.elements([1, 2, 3]), 2)

    def test_no_op_extension(self):
        evals = Fr.elements([4, 5])
        assert extrapolate_evaluations(evals, 2) == evals


class TestLagrangeCoefficients:
    def test_sum_to_one(self, rng):
        point = Fr.random(rng)
        coefficients = lagrange_coefficients_at(5, point)
        total = Fr(0)
        for c in coefficients:
            total = total + c
        assert total == Fr(1)

    def test_reproduce_barycentric_evaluation(self, rng):
        evals = [Fr.random(rng) for _ in range(4)]
        point = Fr.random(rng)
        coefficients = lagrange_coefficients_at(4, point)
        combined = Fr(0)
        for c, v in zip(coefficients, evals):
            combined = combined + c * v
        assert combined == evaluate_from_evaluations(evals, point)

    def test_kronecker_delta_at_nodes(self):
        coefficients = lagrange_coefficients_at(4, Fr(2))
        assert coefficients == [Fr(0), Fr(0), Fr(1), Fr(0)]
