"""Tests for the MSM kernels (Pippenger, sparse, statistics)."""

import random

import pytest

from repro.curves import g1_generator
from repro.curves.msm import (
    MSMStatistics,
    default_window_bits,
    msm,
    naive_msm,
    pippenger_msm,
    sparse_msm,
    split_sparse_scalars,
)
from repro.fields import Fr


@pytest.fixture(scope="module")
def msm_inputs():
    rng = random.Random(99)
    g = g1_generator()
    points = [(g * rng.randrange(1, 10_000)).to_affine() for _ in range(24)]
    scalars = [Fr.random(rng) for _ in range(24)]
    return scalars, points


class TestPippenger:
    def test_matches_naive(self, msm_inputs):
        scalars, points = msm_inputs
        assert pippenger_msm(scalars, points) == naive_msm(scalars, points)

    def test_serial_aggregation_matches(self, msm_inputs):
        scalars, points = msm_inputs
        assert pippenger_msm(scalars, points, aggregation="serial") == naive_msm(
            scalars, points
        )

    @pytest.mark.parametrize("window_bits", [4, 7, 9])
    def test_window_sizes(self, msm_inputs, window_bits):
        scalars, points = msm_inputs
        assert pippenger_msm(scalars, points, window_bits=window_bits) == naive_msm(
            scalars, points
        )

    @pytest.mark.parametrize("group_size", [2, 8, 16, 64])
    def test_aggregation_group_sizes(self, msm_inputs, group_size):
        scalars, points = msm_inputs
        result = pippenger_msm(
            scalars, points, window_bits=6, aggregation_group_size=group_size
        )
        assert result == naive_msm(scalars, points)

    def test_empty_input(self):
        assert pippenger_msm([], []).is_identity()

    def test_zero_scalars_and_identity_points(self, msm_inputs):
        scalars, points = msm_inputs
        from repro.curves import AffinePoint

        mixed_scalars = [Fr(0)] * 4 + scalars[4:]
        mixed_points = points[:20] + [AffinePoint.identity()] * 4
        assert pippenger_msm(mixed_scalars, mixed_points) == naive_msm(
            mixed_scalars, mixed_points
        )

    def test_length_mismatch(self, msm_inputs):
        scalars, points = msm_inputs
        with pytest.raises(ValueError):
            pippenger_msm(scalars[:-1], points)

    def test_invalid_parameters(self, msm_inputs):
        scalars, points = msm_inputs
        with pytest.raises(ValueError):
            pippenger_msm(scalars, points, aggregation="bogus")
        with pytest.raises(ValueError):
            pippenger_msm(scalars, points, window_bits=0)
        with pytest.raises(ValueError):
            pippenger_msm(
                scalars, points, aggregation="grouped", aggregation_group_size=0
            )

    def test_statistics_collection(self, msm_inputs):
        scalars, points = msm_inputs
        stats = MSMStatistics()
        pippenger_msm(scalars, points, window_bits=8, stats=stats)
        assert stats.num_points == 24
        assert stats.window_bits == 8
        assert stats.num_windows == -(-255 // 8)
        # Every nonzero digit causes one bucket PADD; at most points*windows.
        assert 0 < stats.bucket_padds <= 24 * stats.num_windows
        assert stats.window_combine_doublings == stats.num_windows * 8
        assert stats.total_padds > 0
        # The default batched aggregation runs exactly one Horner doubling
        # per window bit; pin that independent relationship rather than
        # restating the total_point_ops definition.
        assert stats.aggregation_doublings == stats.num_windows * stats.window_bits
        assert stats.total_point_ops == (
            stats.bucket_padds
            + stats.aggregation_padds
            + stats.window_combine_padds
            + stats.sparse_tree_padds
            + stats.num_windows * stats.window_bits  # aggregation doublings
            + stats.window_combine_doublings
        )

    def test_default_window_heuristic(self):
        assert default_window_bits(0) == 7
        assert 7 <= default_window_bits(1 << 10) <= 8
        assert default_window_bits(1 << 16) >= 9
        assert default_window_bits(1 << 24) == 10
        # The heuristic stays inside the paper's swept range (Table 2).
        for log_size in range(1, 25):
            assert 7 <= default_window_bits(1 << log_size) <= 10


class TestSparseMsm:
    def test_split_sparse_scalars(self):
        scalars = [Fr(0), Fr(1), Fr(5), Fr(1), Fr(0), Fr(7)]
        zeros, ones, dense = split_sparse_scalars(scalars)
        assert zeros == [0, 4]
        assert ones == [1, 3]
        assert dense == [2, 5]

    def test_sparse_matches_naive(self):
        rng = random.Random(5)
        g = g1_generator()
        points = [(g * rng.randrange(1, 500)).to_affine() for _ in range(32)]
        # Paper-like sparsity: ~45% zeros, ~45% ones, ~10% dense.
        scalars = []
        for i in range(32):
            roll = rng.random()
            if roll < 0.45:
                scalars.append(Fr(0))
            elif roll < 0.90:
                scalars.append(Fr(1))
            else:
                scalars.append(Fr.random(rng))
        stats = MSMStatistics()
        assert sparse_msm(scalars, points, stats=stats) == naive_msm(scalars, points)
        assert stats.skipped_zero_scalars == sum(1 for s in scalars if s.is_zero())
        assert stats.one_scalars == sum(1 for s in scalars if s.is_one())
        assert stats.dense_scalars == 32 - stats.skipped_zero_scalars - stats.one_scalars

    def test_all_ones(self):
        g = g1_generator()
        points = [(g * (i + 1)).to_affine() for i in range(8)]
        scalars = [Fr(1)] * 8
        assert sparse_msm(scalars, points) == naive_msm(scalars, points)

    def test_all_zeros(self):
        g = g1_generator()
        points = [(g * (i + 1)).to_affine() for i in range(4)]
        assert sparse_msm([Fr(0)] * 4, points).is_identity()

    def test_msm_dispatcher(self, msm_inputs):
        scalars, points = msm_inputs
        assert msm(scalars, points, sparse=True) == msm(scalars, points, sparse=False)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            sparse_msm([Fr(1)], [])
