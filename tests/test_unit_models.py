"""Tests for the per-unit cycle/area models (MSM, SumCheck, MTU, FracMLE, ...)."""

import pytest

from repro.core import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY
from repro.core.units import (
    ConstructNdUnitModel,
    FracMleUnitModel,
    MleCombineUnitModel,
    MleUpdateUnitModel,
    MsmUnitModel,
    MultifunctionTreeModel,
    Sha3UnitModel,
    SumcheckUnitModel,
    batch_inversion_tradeoff,
    bucket_aggregation_cycles,
)
from repro.core.units.sumcheck_unit import (
    OPENCHECK_SHAPE,
    PERMCHECK_SHAPE,
    ZEROCHECK_SHAPE,
)

CONFIG = ZkSpeedConfig.paper_default()


class TestMsmUnit:
    def test_grouped_aggregation_is_much_faster_than_serial(self):
        """Figure 5: ~92% average latency reduction across window sizes 7-10."""
        reductions = []
        for window in (7, 8, 9, 10):
            serial = bucket_aggregation_cycles(window, scheme="serial")
            grouped = bucket_aggregation_cycles(window, scheme="grouped", group_size=16)
            assert grouped < serial
            reductions.append(1.0 - grouped / serial)
        average_reduction = sum(reductions) / len(reductions)
        assert 0.80 <= average_reduction <= 0.99

    def test_serial_aggregation_grows_exponentially_with_window(self):
        assert bucket_aggregation_cycles(10, "serial") > 7 * bucket_aggregation_cycles(7, "serial")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            bucket_aggregation_cycles(8, scheme="bogus")

    def test_dense_msm_scales_inversely_with_pes(self):
        one_pe = MsmUnitModel(ZkSpeedConfig(msm_pes_per_core=1))
        sixteen_pe = MsmUnitModel(ZkSpeedConfig(msm_pes_per_core=16))
        n = 1 << 20
        slow = one_pe.dense_msm(n).bucket_cycles
        fast = sixteen_pe.dense_msm(n).bucket_cycles
        assert slow / fast == pytest.approx(16.0, rel=0.01)

    def test_dense_msm_window_tradeoff(self):
        """Bigger windows mean fewer bucket PADDs but larger aggregation cost."""
        small_window = MsmUnitModel(ZkSpeedConfig(msm_window_bits=7))
        large_window = MsmUnitModel(ZkSpeedConfig(msm_window_bits=10))
        n = 1 << 20
        assert (
            large_window.dense_msm(n).bucket_cycles
            < small_window.dense_msm(n).bucket_cycles
        )
        assert (
            large_window.dense_msm(n).aggregation_cycles
            > small_window.dense_msm(n).aggregation_cycles
        )

    def test_sparse_msm_cheaper_than_dense(self):
        unit = MsmUnitModel(CONFIG)
        n = 1 << 20
        sparse = unit.sparse_msm(n, dense_fraction=0.1, one_fraction=0.45)
        dense = unit.dense_msm(n)
        assert sparse.total_cycles < dense.total_cycles
        assert sparse.bytes_read < dense.bytes_read

    def test_empty_msm(self):
        unit = MsmUnitModel(CONFIG)
        assert unit.dense_msm(0).total_cycles == 0.0

    def test_polynomial_opening_dominated_by_fixed_latency_at_small_sizes(self):
        unit = MsmUnitModel(CONFIG)
        execution = unit.polynomial_opening_msms(10)
        # For a 2^10 problem the halving MSMs are tiny; aggregation and
        # pipeline latency dominate the bucket work.
        assert execution.aggregation_cycles + execution.fixed_latency_cycles > execution.bucket_cycles

    def test_polynomial_opening_reads_about_n_points(self):
        unit = MsmUnitModel(CONFIG)
        num_vars = 20
        execution = unit.polynomial_opening_msms(num_vars)
        expected_points = sum(1 << (num_vars - k) for k in range(1, num_vars + 1))
        assert execution.bytes_read == pytest.approx(
            expected_points * (DEFAULT_TECHNOLOGY.point_bytes_affine + DEFAULT_TECHNOLOGY.field_bytes),
            rel=0.01,
        )

    def test_area_scales_with_pes(self):
        small = MsmUnitModel(ZkSpeedConfig(msm_pes_per_core=1)).area_mm2()
        large = MsmUnitModel(ZkSpeedConfig(msm_pes_per_core=16)).area_mm2()
        assert large > 10 * small

    def test_area_close_to_table5(self):
        # Table 5: 16-PE MSM unit occupies 105.64 mm^2.
        area = MsmUnitModel(CONFIG).area_mm2()
        assert area == pytest.approx(105.64, rel=0.10)

    def test_local_sram_capacity(self):
        unit = MsmUnitModel(CONFIG)
        expected_mb = 16 * 2048 * 3 * 48 / 1e6
        assert unit.local_sram_mb() == pytest.approx(expected_mb)

    def test_expected_bucket_padds(self):
        unit = MsmUnitModel(CONFIG)
        assert unit.expected_bucket_padds(1000) == 1000 * unit.num_windows


class TestSumcheckUnit:
    def test_area_matches_table5_for_two_pes(self):
        area = SumcheckUnitModel(CONFIG).area_mm2()
        assert area == pytest.approx(24.96, rel=0.02)

    def test_resource_sharing_saves_about_half(self):
        shared = SumcheckUnitModel(ZkSpeedConfig(share_sumcheck_multipliers=True)).area_mm2()
        unshared = SumcheckUnitModel(ZkSpeedConfig(share_sumcheck_multipliers=False)).area_mm2()
        saving = 1.0 - shared / unshared
        assert saving == pytest.approx(0.489, abs=0.02)

    def test_compute_scales_with_pes_until_saturation(self):
        one = SumcheckUnitModel(ZkSpeedConfig(sumcheck_pes=1)).run(20, ZEROCHECK_SHAPE)
        four = SumcheckUnitModel(ZkSpeedConfig(sumcheck_pes=4)).run(20, ZEROCHECK_SHAPE)
        assert one.compute_cycles > 3.5 * four.compute_cycles

    def test_streaming_traffic_volume(self):
        execution = SumcheckUnitModel(CONFIG).run(20, ZEROCHECK_SHAPE, first_round_on_chip=True)
        # Rounds >= 2 stream ~9 tables of total size ~n entries each way.
        n = 1 << 20
        assert execution.bytes_read == pytest.approx(9 * n * 32, rel=0.1)
        # The halved tables written each round are re-read the next round, so
        # write traffic is at most the read traffic.
        assert execution.bytes_written <= execution.bytes_read

    def test_first_round_on_chip_saves_half_the_reads(self):
        unit = SumcheckUnitModel(CONFIG)
        on_chip = unit.run(16, ZEROCHECK_SHAPE, first_round_on_chip=True)
        off_chip = unit.run(16, ZEROCHECK_SHAPE, first_round_on_chip=False)
        assert off_chip.bytes_read == pytest.approx(2 * on_chip.bytes_read, rel=0.05)

    def test_update_counts(self):
        execution = SumcheckUnitModel(CONFIG).run(10, PERMCHECK_SHAPE)
        # Each of the 13 MLEs is halved every round: ~13 * 2^10 updates total.
        assert execution.update_modmuls == pytest.approx(13 * (1 << 10), rel=0.01)

    def test_shape_constants_match_equations(self):
        assert ZEROCHECK_SHAPE.max_degree == 4
        assert PERMCHECK_SHAPE.max_degree == 5
        assert OPENCHECK_SHAPE.max_degree == 2
        assert ZEROCHECK_SHAPE.interpolation_modmuls == 23
        assert PERMCHECK_SHAPE.interpolation_modmuls == 46

    def test_unified_pe_covers_all_flavours(self):
        unit = SumcheckUnitModel(CONFIG)
        for shape in (ZEROCHECK_SHAPE, PERMCHECK_SHAPE, OPENCHECK_SHAPE):
            assert unit.modmuls_per_instance(shape) <= DEFAULT_TECHNOLOGY.sumcheck_pe_modmuls


class TestMleUpdateUnit:
    def test_throughput_and_area(self):
        unit = MleUpdateUnitModel(CONFIG)
        assert unit.throughput_updates_per_cycle == 44
        assert unit.area_mm2() == pytest.approx(44 * 0.133, rel=0.01)

    def test_cycles_for_updates(self):
        unit = MleUpdateUnitModel(CONFIG)
        assert unit.cycles_for_updates(0) == 0.0
        assert unit.cycles_for_updates(44_000) == pytest.approx(1000, rel=0.05)


class TestMultifunctionTree:
    def test_area_matches_table5(self):
        assert MultifunctionTreeModel(CONFIG).area_mm2() == pytest.approx(12.28, rel=0.01)

    def test_sharing_saves_area(self):
        shared = MultifunctionTreeModel(ZkSpeedConfig(share_multifunction_tree=True)).area_mm2()
        dedicated = MultifunctionTreeModel(
            ZkSpeedConfig(share_multifunction_tree=False)
        ).area_mm2()
        assert 1.0 - shared / dedicated == pytest.approx(0.416, abs=0.01)

    def test_build_mle_modmul_count(self):
        unit = MultifunctionTreeModel(CONFIG)
        # 2^(mu+1) - 4 multiplications (Section 4.3.1).
        assert unit.build_mle_modmuls(10) == 2 * 1024 - 4
        assert unit.build_mle_modmuls(0) == 0

    def test_tree_cycles_scale_with_input(self):
        unit = MultifunctionTreeModel(CONFIG)
        assert unit.build_mle_cycles(16) > 7 * unit.build_mle_cycles(13)
        assert unit.product_mle_cycles(16) > 7 * unit.product_mle_cycles(13)

    def test_evaluate_passes_share_table_streams(self):
        unit = MultifunctionTreeModel(CONFIG)
        by_eval = unit.mle_evaluate_cycles(16, num_evaluations=22)
        by_table = unit.mle_evaluate_cycles(16, num_evaluations=22, num_tables=13)
        assert by_table < by_eval

    def test_hybrid_traversal_storage_advantage(self):
        """The hybrid DFS/BFS schedule avoids buffering half a tree level."""
        unit = MultifunctionTreeModel(CONFIG)
        bfs = unit.bfs_intermediate_storage_bytes(23)
        hybrid = unit.hybrid_intermediate_storage_bytes(23)
        assert bfs / hybrid > 10_000


class TestFracMle:
    def test_batch_size_64_minimizes_latency_imbalance(self):
        """Figure 8: both the latency imbalance and the area are optimal at b=64."""
        imbalances = {
            b: batch_inversion_tradeoff(b).latency_imbalance for b in (2, 4, 8, 16, 32, 64, 128, 256)
        }
        best = min(imbalances, key=imbalances.get)
        assert best == 64

    def test_area_curve_shape(self):
        areas = {b: batch_inversion_tradeoff(b).area_mm2 for b in (2, 64, 256)}
        assert areas[2] > 10 * areas[64]
        assert areas[256] > areas[64]

    def test_unit_count_drops_with_batch_size(self):
        assert batch_inversion_tradeoff(2).num_inverse_units > 200
        assert batch_inversion_tradeoff(64).num_inverse_units < 20

    def test_small_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_inversion_tradeoff(1)

    def test_fraction_mle_cycles_about_one_per_element(self):
        unit = FracMleUnitModel(CONFIG)
        cycles = unit.fraction_mle_cycles(20)
        assert cycles == pytest.approx(1 << 20, rel=0.01)

    def test_inversions_and_bytes(self):
        unit = FracMleUnitModel(CONFIG)
        assert unit.inversions(10) == (1 << 10) // 64
        assert unit.bytes_written(10) == (1 << 10) * 32

    def test_area_matches_table5(self):
        assert FracMleUnitModel(CONFIG).area_mm2() == pytest.approx(1.92, rel=0.01)


class TestSmallUnits:
    def test_construct_nd(self):
        unit = ConstructNdUnitModel(CONFIG)
        assert unit.area_mm2() == pytest.approx(1.35)
        assert unit.cycles(20) == pytest.approx(1 << 20, rel=0.01)
        assert unit.bytes_written(20) == 8 * (1 << 20) * 32
        assert unit.bytes_read(20, mle_compression=True) < unit.bytes_read(
            20, mle_compression=False
        )
        assert unit.modmuls(20) == 10 * (1 << 20)

    def test_mle_combine_sharing(self):
        shared = MleCombineUnitModel(ZkSpeedConfig(share_mle_combine_multipliers=True))
        unshared = MleCombineUnitModel(ZkSpeedConfig(share_mle_combine_multipliers=False))
        assert shared.num_modmuls == 72
        assert unshared.num_modmuls == 122
        assert 1.0 - shared.area_mm2() / unshared.area_mm2() == pytest.approx(0.41, abs=0.01)
        assert shared.area_mm2() == pytest.approx(9.56, rel=0.02)

    def test_mle_combine_cycles(self):
        unit = MleCombineUnitModel(CONFIG)
        assert unit.combine_cycles(20, num_input_mles=21) == pytest.approx(
            21 * (1 << 20) / 72, rel=0.01
        )

    def test_sha3_unit(self):
        unit = Sha3UnitModel(CONFIG)
        assert unit.area_mm2() == pytest.approx(0.0059)
        assert unit.invocation_cycles() == 24
        assert unit.transcript_cycles(20) > unit.transcript_cycles(10)

    def test_unit_reports(self):
        unit = Sha3UnitModel(CONFIG)
        report = unit.report(busy_cycles=100)
        assert report.name == "sha3"
        assert report.utilization(1000) == pytest.approx(0.1)
        assert report.utilization(0) == 0.0
