"""Tests for virtual polynomials (sums of products of MLEs)."""

import random

import pytest

from repro.fields import Fr
from repro.mle import MultilinearPolynomial, VirtualPolynomial


@pytest.fixture()
def rng():
    return random.Random(17)


class TestConstruction:
    def test_add_mle_deduplicates_by_identity(self, rng):
        a = MultilinearPolynomial.random(3, rng)
        vp = VirtualPolynomial(3)
        first = vp.add_mle(a)
        second = vp.add_mle(a)
        assert first == second
        assert vp.num_mles == 1

    def test_add_mle_size_check(self, rng):
        vp = VirtualPolynomial(3)
        with pytest.raises(ValueError):
            vp.add_mle(MultilinearPolynomial.random(2, rng))

    def test_add_product_requires_mles(self):
        vp = VirtualPolynomial(2)
        with pytest.raises(ValueError):
            vp.add_product([])

    def test_degrees(self, rng):
        a = MultilinearPolynomial.random(2, rng)
        b = MultilinearPolynomial.random(2, rng)
        vp = VirtualPolynomial(2)
        vp.add_product([a])
        vp.add_product([a, b])
        vp.add_product([a, b, a])
        assert vp.max_degree == 3
        assert vp.term_degrees() == [1, 2, 3]

    def test_repr(self, rng):
        vp = VirtualPolynomial(2)
        vp.add_product([MultilinearPolynomial.random(2, rng)])
        text = repr(vp)
        assert "num_vars=2" in text and "terms=1" in text


class TestEvaluation:
    def test_evaluate_matches_manual_expansion(self, rng):
        a = MultilinearPolynomial.random(3, rng)
        b = MultilinearPolynomial.random(3, rng)
        c = MultilinearPolynomial.random(3, rng)
        vp = VirtualPolynomial(3)
        vp.add_product([a, b], Fr(2))
        vp.add_product([c], Fr(5))
        point = [Fr.random(rng) for _ in range(3)]
        expected = Fr(2) * a.evaluate(point) * b.evaluate(point) + Fr(5) * c.evaluate(point)
        assert vp.evaluate(point) == expected

    def test_hypercube_index_evaluation(self, rng):
        a = MultilinearPolynomial.random(2, rng)
        b = MultilinearPolynomial.random(2, rng)
        vp = VirtualPolynomial(2)
        vp.add_product([a, b])
        for i in range(4):
            assert vp.evaluate_on_hypercube_index(i) == a[i] * b[i]

    def test_sum_over_hypercube(self, rng):
        a = MultilinearPolynomial.random(3, rng)
        b = MultilinearPolynomial.random(3, rng)
        vp = VirtualPolynomial(3)
        vp.add_product([a, b], Fr(3))
        expected = Fr(0)
        for x, y in zip(a, b):
            expected = expected + Fr(3) * x * y
        assert vp.sum_over_hypercube() == expected

    def test_is_zero_on_hypercube(self, rng):
        a = MultilinearPolynomial.random(3, rng)
        b = MultilinearPolynomial.random(3, rng)
        ab = a.hadamard(b)
        vp = VirtualPolynomial(3)
        vp.add_product([a, b])
        vp.add_product([ab], Fr(-1))
        assert vp.is_zero_on_hypercube()
        vp2 = VirtualPolynomial(3)
        vp2.add_product([a, b])
        assert not vp2.is_zero_on_hypercube()

    def test_integer_coefficient_coercion(self, rng):
        a = MultilinearPolynomial.random(2, rng)
        vp = VirtualPolynomial(2)
        vp.add_product([a], 4)
        point = [Fr.random(rng), Fr.random(rng)]
        assert vp.evaluate(point) == Fr(4) * a.evaluate(point)


class TestTransformation:
    def test_fix_first_variable_preserves_evaluation(self, rng):
        a = MultilinearPolynomial.random(4, rng)
        b = MultilinearPolynomial.random(4, rng)
        vp = VirtualPolynomial(4)
        vp.add_product([a, b], Fr(7))
        vp.add_product([a])
        r = Fr.random(rng)
        rest = [Fr.random(rng) for _ in range(3)]
        fixed = vp.fix_first_variable(r)
        assert fixed.num_vars == 3
        assert fixed.evaluate(rest) == vp.evaluate([r] + rest)

    def test_fix_variable_at_zero_vars_raises(self):
        vp = VirtualPolynomial(0)
        with pytest.raises(ValueError):
            vp.fix_first_variable(Fr(1))

    def test_modmul_count_helper(self, rng):
        a = MultilinearPolynomial.random(2, rng)
        b = MultilinearPolynomial.random(2, rng)
        vp = VirtualPolynomial(2)
        vp.add_product([a, b])          # 1 mul, coefficient one
        vp.add_product([a, b, a], Fr(3))  # 2 muls + 1 coefficient mul
        assert vp.total_modmuls_per_hypercube_point() == 4
