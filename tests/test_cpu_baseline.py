"""Tests for the calibrated CPU baseline model."""

import pytest

from repro.core import CpuBaseline
from repro.core.cpu_baseline import (
    CPU_KERNEL_TO_FIG14,
    CPU_KERNEL_TO_STEP,
    PAPER_CPU_KERNEL_FRACTIONS,
    PAPER_CPU_RUNTIME_MS,
)


class TestRuntimeModel:
    def test_anchor_points_are_exact(self):
        cpu = CpuBaseline()
        for num_vars, runtime in PAPER_CPU_RUNTIME_MS.items():
            assert cpu.runtime_ms(num_vars) == pytest.approx(runtime)

    def test_interpolation_between_anchors(self):
        cpu = CpuBaseline()
        t18 = cpu.runtime_ms(18)
        t19 = cpu.runtime_ms(19)
        assert PAPER_CPU_RUNTIME_MS[17] < t18 < t19 < PAPER_CPU_RUNTIME_MS[20]

    def test_extrapolation_is_linear_in_gates(self):
        cpu = CpuBaseline()
        t25 = cpu.runtime_ms(25)
        t26 = cpu.runtime_ms(26)
        assert t26 == pytest.approx(2 * t25, rel=0.01)
        assert t25 == pytest.approx(2 * PAPER_CPU_RUNTIME_MS[24], rel=0.05)

    def test_small_sizes_scale_down(self):
        cpu = CpuBaseline()
        assert cpu.runtime_ms(15) < PAPER_CPU_RUNTIME_MS[17]

    def test_die_area_matches_epyc_7502(self):
        assert CpuBaseline().die_area_mm2 == pytest.approx(296.0)


class TestKernelBreakdown:
    def test_fractions_sum_to_about_one(self):
        assert sum(PAPER_CPU_KERNEL_FRACTIONS.values()) == pytest.approx(1.0, abs=0.01)

    def test_breakdown_sums_to_total(self):
        cpu = CpuBaseline()
        breakdown = cpu.kernel_breakdown_ms(20)
        assert sum(breakdown.values()) == pytest.approx(cpu.runtime_ms(20), rel=0.01)

    def test_permcheck_msms_dominate(self):
        """Figure 12a: PermCheck dense MSMs are 43.6% of CPU runtime."""
        cpu = CpuBaseline()
        breakdown = cpu.kernel_breakdown_ms(20)
        assert max(breakdown, key=breakdown.get) == "PermCheck Dense MSMs"

    def test_step_breakdown_covers_all_steps(self):
        cpu = CpuBaseline()
        steps = cpu.step_breakdown_ms(20)
        assert set(steps) == {
            "witness_commits",
            "gate_identity",
            "wire_identity",
            "batch_evaluations",
            "poly_open",
        }
        assert sum(steps.values()) == pytest.approx(cpu.runtime_ms(20), rel=0.01)
        # Wire identity (PermCheck + its MSMs) is the biggest step on CPU too.
        assert max(steps, key=steps.get) == "wire_identity"

    def test_figure14_breakdown(self):
        cpu = CpuBaseline()
        fig14 = cpu.figure14_breakdown_ms(20)
        assert set(fig14) == set(CPU_KERNEL_TO_FIG14.values())
        assert fig14["Wiring MSMs"] > fig14["Witness MSMs"]

    def test_kernel_mappings_consistent(self):
        assert set(CPU_KERNEL_TO_STEP) == set(PAPER_CPU_KERNEL_FRACTIONS)
        assert set(CPU_KERNEL_TO_FIG14) <= set(PAPER_CPU_KERNEL_FRACTIONS)
