"""Tests for the synthetic workload circuit generators."""

import pytest

from repro.circuits import (
    WORKLOADS,
    auction_circuit,
    mock_circuit,
    recursive_circuit,
    rescue_hash_circuit,
    rollup_circuit,
    zcash_transfer_circuit,
)
from repro.core.workload_model import WorkloadModel

GENERATORS = {
    "mock": mock_circuit,
    "zcash": zcash_transfer_circuit,
    "auction": auction_circuit,
    "rescue": rescue_hash_circuit,
    "recursive": recursive_circuit,
    "rollup": rollup_circuit,
}


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_circuits_are_satisfiable(self, name):
        circuit = GENERATORS[name](6, seed=3)
        assert circuit.num_vars == 6
        assert circuit.num_gates == 64
        assert circuit.is_satisfied(), f"{name} circuit is not satisfied"

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_circuits_scale_to_requested_size(self, name):
        circuit = GENERATORS[name](7, seed=1)
        assert circuit.num_gates == 128
        # Generators should actually fill a substantial part of the padded size.
        assert circuit.num_real_gates > 40

    def test_mock_circuit_deterministic_per_seed(self):
        a = mock_circuit(5, seed=42)
        b = mock_circuit(5, seed=42)
        assert a.witnesses["w1"].evaluations == b.witnesses["w1"].evaluations
        c = mock_circuit(5, seed=43)
        assert a.witnesses["w1"].evaluations != c.witnesses["w1"].evaluations

    def test_mock_circuit_dense_fraction_controls_sparsity(self):
        sparse = mock_circuit(6, seed=1, dense_fraction=0.02)
        dense = mock_circuit(6, seed=1, dense_fraction=0.5)
        assert (
            sparse.witness_sparsity()["dense_fraction"]
            < dense.witness_sparsity()["dense_fraction"]
        )

    def test_rollup_transaction_count(self):
        circuit = rollup_circuit(6, seed=2, num_transactions=3)
        assert circuit.is_satisfied()


class TestWorkloadRegistry:
    def test_registry_matches_paper_table3(self):
        assert set(WORKLOADS) == {"zcash", "auction", "rescue", "recursive", "rollup"}
        paper_sizes = {
            "zcash": 17,
            "auction": 20,
            "rescue": 21,
            "recursive": 22,
            "rollup": 23,
        }
        for key, spec in WORKLOADS.items():
            assert spec.paper_log_size == paper_sizes[key]

    def test_registry_build(self):
        circuit = WORKLOADS["zcash"].build(5, seed=1)
        assert circuit.is_satisfied()

    def test_workload_model_from_circuit(self):
        circuit = mock_circuit(5, seed=8)
        model = WorkloadModel.from_circuit(circuit)
        assert model.num_vars == 5
        assert abs(
            model.dense_fraction + model.one_fraction + model.zero_fraction - 1.0
        ) < 1e-9

    def test_paper_table3_workload_models(self):
        models = WorkloadModel.paper_table3()
        assert [m.num_vars for m in models] == [17, 20, 21, 22, 23]
        assert all(abs(m.dense_fraction - 0.10) < 1e-9 for m in models)
