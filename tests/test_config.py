"""Tests for the zkSpeed design configuration and design space."""

import pytest

from repro.core import DESIGN_SPACE, ZkSpeedConfig, enumerate_design_space


class TestConfig:
    def test_paper_default_matches_section_7_4(self):
        config = ZkSpeedConfig.paper_default()
        assert config.msm_cores == 1
        assert config.msm_pes_per_core == 16
        assert config.msm_window_bits == 9
        assert config.msm_points_per_pe == 2048
        assert config.fracmle_pes == 1
        assert config.sumcheck_pes == 2
        assert config.mle_update_pes == 11
        assert config.mle_update_modmuls_per_pe == 4
        assert config.bandwidth_gbs == 2048.0

    def test_total_msm_pes(self):
        config = ZkSpeedConfig(msm_cores=2, msm_pes_per_core=8)
        assert config.total_msm_pes == 16

    def test_bandwidth_bytes_per_cycle(self):
        config = ZkSpeedConfig(bandwidth_gbs=512.0)
        assert config.bandwidth_bytes_per_cycle == 512.0

    def test_with_bandwidth_returns_new_config(self):
        base = ZkSpeedConfig.paper_default()
        other = base.with_bandwidth(4096.0)
        assert other.bandwidth_gbs == 4096.0
        assert base.bandwidth_gbs == 2048.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZkSpeedConfig(msm_cores=0)
        with pytest.raises(ValueError):
            ZkSpeedConfig(msm_window_bits=0)
        with pytest.raises(ValueError):
            ZkSpeedConfig(sumcheck_pes=0)
        with pytest.raises(ValueError):
            ZkSpeedConfig(bandwidth_gbs=0)
        with pytest.raises(ValueError):
            ZkSpeedConfig(bucket_aggregation="other")

    def test_describe_mentions_key_knobs(self):
        text = ZkSpeedConfig.paper_default().describe()
        assert "16PE" in text and "2048" in text


class TestDesignSpace:
    def test_table2_knob_values(self):
        assert DESIGN_SPACE["msm_cores"] == (1, 2)
        assert DESIGN_SPACE["msm_pes_per_core"] == (1, 2, 4, 8, 16)
        assert DESIGN_SPACE["msm_window_bits"] == (7, 8, 9, 10)
        assert len(DESIGN_SPACE["msm_points_per_pe"]) == 5
        assert DESIGN_SPACE["fracmle_pes"] == (1, 2, 4)
        assert DESIGN_SPACE["sumcheck_pes"] == (1, 2, 4, 8, 16)
        assert DESIGN_SPACE["mle_update_pes"] == tuple(range(1, 12))
        assert DESIGN_SPACE["mle_update_modmuls_per_pe"] == (1, 2, 4, 8, 16)
        assert len(DESIGN_SPACE["bandwidth_gbs"]) == 7

    def test_full_space_size(self):
        sizes = [len(v) for v in DESIGN_SPACE.values()]
        total = 1
        for s in sizes:
            total *= s
        assert total == 2 * 5 * 4 * 5 * 3 * 5 * 11 * 5 * 7

    def test_enumeration_respects_overrides(self):
        configs = list(
            enumerate_design_space(
                overrides={
                    "msm_cores": [1],
                    "msm_pes_per_core": [4],
                    "msm_window_bits": [8],
                    "msm_points_per_pe": [2048],
                    "fracmle_pes": [1],
                    "sumcheck_pes": [1, 2],
                    "mle_update_pes": [4],
                    "mle_update_modmuls_per_pe": [4],
                    "bandwidth_gbs": [512.0, 2048.0],
                }
            )
        )
        assert len(configs) == 4
        assert {c.sumcheck_pes for c in configs} == {1, 2}

    def test_enumeration_decimation(self):
        configs = list(enumerate_design_space(max_points=100))
        assert 0 < len(configs) <= 100

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError):
            list(enumerate_design_space(overrides={"bogus": [1]}))
