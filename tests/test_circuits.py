"""Tests for the Plonk circuit builder, gates and permutation construction."""

import random

import pytest

from repro.circuits import CircuitBuilder, Gate, GateType
from repro.circuits.builder import SELECTOR_NAMES, WITNESS_NAMES
from repro.circuits.permutation import (
    build_permutation,
    identity_permutation,
    identity_permutation_eval,
    position_value,
)
from repro.fields import Fr
from repro.mle.operations import (
    construct_numerator_denominator,
    elementwise_product,
    fraction_mle,
)


class TestGates:
    def test_addition_gate(self):
        gate = Gate.addition(0, 1, 2)
        assert gate.gate_type is GateType.ADDITION
        assert gate.is_satisfied(Fr(2), Fr(3), Fr(5))
        assert not gate.is_satisfied(Fr(2), Fr(3), Fr(6))

    def test_multiplication_gate(self):
        gate = Gate.multiplication(0, 1, 2)
        assert gate.is_satisfied(Fr(4), Fr(6), Fr(24))
        assert not gate.is_satisfied(Fr(4), Fr(6), Fr(25))

    def test_constant_gate(self):
        gate = Gate.constant(1, Fr(42), 0)
        assert gate.is_satisfied(Fr(42), Fr(0), Fr(0))
        assert not gate.is_satisfied(Fr(41), Fr(0), Fr(0))

    def test_boolean_gate(self):
        gate = Gate.boolean(1, 0)
        assert gate.is_satisfied(Fr(0), Fr(0), Fr(0))
        assert gate.is_satisfied(Fr(1), Fr(1), Fr(0))
        assert not gate.is_satisfied(Fr(2), Fr(2), Fr(0))

    def test_noop_gate_always_satisfied(self):
        gate = Gate.noop(0)
        assert gate.is_satisfied(Fr(7), Fr(8), Fr(9))


class TestBuilder:
    def test_simple_arithmetic_circuit(self):
        builder = CircuitBuilder()
        a = builder.add_constant_gate(3)
        b = builder.add_constant_gate(4)
        c = builder.mul(a, b)
        d = builder.add(c, a)
        assert builder.value_of(c) == Fr(12)
        assert builder.value_of(d) == Fr(15)
        circuit = builder.compile()
        assert circuit.is_satisfied()

    def test_compile_pads_to_power_of_two(self):
        builder = CircuitBuilder()
        for _ in range(5):
            builder.add_constant_gate(1)
        circuit = builder.compile()
        assert circuit.num_gates & (circuit.num_gates - 1) == 0
        assert circuit.num_gates >= circuit.num_real_gates

    def test_min_num_vars_respected(self):
        builder = CircuitBuilder()
        builder.add_constant_gate(1)
        circuit = builder.compile(min_num_vars=5)
        assert circuit.num_vars == 5

    def test_selector_and_witness_tables_have_circuit_size(self):
        builder = CircuitBuilder()
        builder.add_constant_gate(2)
        circuit = builder.compile(min_num_vars=3)
        for name in SELECTOR_NAMES:
            assert len(circuit.selectors[name]) == circuit.num_gates
        for name in WITNESS_NAMES:
            assert len(circuit.witnesses[name]) == circuit.num_gates

    def test_gate_constraint_violated_by_bad_witness(self):
        builder = CircuitBuilder()
        a = builder.add_constant_gate(3)
        b = builder.add_constant_gate(4)
        builder.mul(a, b)
        circuit = builder.compile()
        # Corrupt the multiplication gate's output wire value.
        circuit.witnesses["w3"].evaluations[circuit.num_real_gates - 1] = Fr(999)
        assert not circuit.is_satisfied()

    def test_assert_boolean_and_equal(self):
        builder = CircuitBuilder()
        bit = builder.add_variable(1)
        builder.assert_boolean(bit)
        other = builder.add_variable(1)
        builder.assert_equal(bit, other)
        assert builder.compile().is_satisfied()

    def test_assert_boolean_fails_for_non_bit(self):
        builder = CircuitBuilder()
        bad = builder.add_variable(5)
        builder.assert_boolean(bad)
        assert not builder.compile().is_satisfied()

    def test_linear_combination(self):
        builder = CircuitBuilder()
        x = builder.add_constant_gate(3)
        y = builder.add_constant_gate(5)
        result = builder.linear_combination([(2, x), (7, y)])
        assert builder.value_of(result) == Fr(41)
        assert builder.compile().is_satisfied()

    def test_linear_combination_empty(self):
        builder = CircuitBuilder()
        assert builder.linear_combination([]) == builder.zero

    def test_gate_with_unknown_variable_rejected(self):
        builder = CircuitBuilder()
        with pytest.raises(ValueError):
            builder.add_gate(Gate.addition(0, 1, 99))

    def test_witness_sparsity_profile(self):
        builder = CircuitBuilder()
        for _ in range(4):
            builder.add_constant_gate(1)
        circuit = builder.compile()
        sparsity = circuit.witness_sparsity()
        total = sum(sparsity.values())
        assert abs(total - 1.0) < 1e-9
        assert sparsity["zero_fraction"] > 0


class TestPermutation:
    def test_identity_permutation_values(self):
        identities = identity_permutation(3)
        for col in range(3):
            for gate in range(8):
                assert identities[col][gate] == Fr(col * 8 + gate)

    def test_identity_permutation_eval_matches_table(self):
        rng = random.Random(3)
        identities = identity_permutation(4)
        point = [Fr.random(rng) for _ in range(4)]
        for col in range(3):
            assert identities[col].evaluate(point) == identity_permutation_eval(col, point)

    def test_position_value_validation(self):
        with pytest.raises(ValueError):
            position_value(3, 0, 4)

    def test_sigma_is_a_permutation_of_positions(self):
        builder = CircuitBuilder()
        a = builder.add_constant_gate(2)
        b = builder.add_constant_gate(3)
        c = builder.mul(a, b)
        builder.add(c, a)
        circuit = builder.compile()
        size = circuit.num_gates
        all_positions = {col * size + gate for col in range(3) for gate in range(size)}
        sigma_values = {
            sigma[gate].value for sigma in circuit.sigmas for gate in range(size)
        }
        assert sigma_values == all_positions

    def test_permutation_wiring_product_is_one(self):
        """The grand product of N/D over all positions equals 1 for a valid witness."""
        rng = random.Random(9)
        builder = CircuitBuilder()
        x = builder.add_constant_gate(5)
        y = builder.add_constant_gate(7)
        z = builder.mul(x, y)
        builder.add(z, x)
        circuit = builder.compile()
        beta, gamma = Fr.random(rng), Fr.random(rng)
        numerators, denominators = construct_numerator_denominator(
            circuit.witness_list(), circuit.identities, circuit.sigmas, beta, gamma
        )
        phi = fraction_mle(
            elementwise_product(numerators), elementwise_product(denominators)
        )
        total = Fr(1)
        for value in phi:
            total = total * value
        assert total == Fr(1)

    def test_inconsistent_copy_breaks_grand_product(self):
        """Changing one copy of a shared variable makes the product differ from 1."""
        rng = random.Random(10)
        builder = CircuitBuilder()
        x = builder.add_constant_gate(5)
        y = builder.add_constant_gate(7)
        z = builder.mul(x, y)
        builder.add(z, x)
        circuit = builder.compile()
        # Corrupt one use of x (w1 of the final addition gate).
        corrupt_index = circuit.num_real_gates - 1
        circuit.witnesses["w2"].evaluations[corrupt_index] = Fr(1234)
        beta, gamma = Fr.random(rng), Fr.random(rng)
        numerators, denominators = construct_numerator_denominator(
            circuit.witness_list(), circuit.identities, circuit.sigmas, beta, gamma
        )
        phi = fraction_mle(
            elementwise_product(numerators), elementwise_product(denominators)
        )
        total = Fr(1)
        for value in phi:
            total = total * value
        assert total != Fr(1)

    def test_build_permutation_size_validation(self):
        with pytest.raises(ValueError):
            build_permutation([(0, 0, 0)] * 3, 2)
