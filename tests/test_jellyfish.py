"""Tests for the Jellyfish (high-arity gate) extension study."""

import pytest

from repro.core.jellyfish import (
    JellyfishEncoding,
    arity_sweep,
    estimate_jellyfish,
)


class TestEncoding:
    def test_arity_two_matches_baseline_shape(self):
        encoding = JellyfishEncoding(baseline_num_vars=20, arity=2)
        assert encoding.num_vars == 20
        assert encoding.witness_columns == 3

    def test_higher_arity_shrinks_problem_size(self):
        assert JellyfishEncoding(20, arity=4).num_vars < 20
        assert JellyfishEncoding(20, arity=8).num_vars < JellyfishEncoding(20, arity=4).num_vars

    def test_higher_arity_grows_table_count(self):
        assert (
            JellyfishEncoding(20, arity=8).num_mle_tables
            > JellyfishEncoding(20, arity=2).num_mle_tables
        )

    def test_total_footprint_shrinks_with_arity(self):
        """The paper's observation: table size shrinks super-proportionally."""
        base = JellyfishEncoding(20, arity=2).total_table_entries
        high = JellyfishEncoding(20, arity=8).total_table_entries
        assert high < base

    def test_validation(self):
        with pytest.raises(ValueError):
            JellyfishEncoding(20, arity=1)
        with pytest.raises(ValueError):
            JellyfishEncoding(20, arity=4, gate_degree=1)

    def test_sumcheck_shape_reflects_degree(self):
        shape = JellyfishEncoding(20, arity=4, gate_degree=5).sumcheck_shape()
        assert shape.max_degree == 6
        assert shape.num_mles > 10


class TestEstimates:
    def test_estimate_structure(self):
        estimate = estimate_jellyfish(JellyfishEncoding(18, arity=4))
        assert estimate.baseline_runtime_ms > 0
        assert estimate.jellyfish_runtime_ms > 0
        assert estimate.footprint_ratio < 1.0

    def test_moderate_arity_improves_runtime(self):
        """With sufficient bandwidth, higher arity should reduce runtime
        (fewer gates outweigh the extra tables) -- the paper's conjecture."""
        estimate = estimate_jellyfish(JellyfishEncoding(20, arity=4))
        assert estimate.runtime_ratio < 1.0

    def test_arity_sweep(self):
        estimates = arity_sweep(baseline_num_vars=18, arities=(2, 4, 8))
        assert len(estimates) == 3
        assert estimates[0].encoding.arity == 2
        # Footprint decreases monotonically with arity in the sweep.
        footprints = [e.jellyfish_table_entries for e in estimates]
        assert footprints == sorted(footprints, reverse=True)
