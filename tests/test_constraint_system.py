"""Tests for the constraint-system subsystem: custom gates, lookups, ptau.

The acceptance surface of the constraint-system ISSUE: the four new
registry scenarios (range_check, sha3_round, merkle_path, stack_machine)
prove and verify end to end through the engine, the HTTP service, a
2-backend cluster and the jobs tier; proof bytes are identical across
field backends and worker counts; tampering with the lookup multiset or
a custom-selector claim fails verification; the extended V2 wire format
round-trips while vanilla proofs keep the V1 layout; and powers-of-tau
ceremony files drive the engine's SRS behind ``EngineConfig.srs_source``.
"""

from __future__ import annotations

import dataclasses
import itertools

import pytest

from repro.api import EngineConfig, ProverEngine
from repro.circuits.builder import CircuitBuilder
from repro.circuits.constraint_workloads import CONSTRAINT_WORKLOADS
from repro.circuits.gates import VANILLA_SPEC, resolve_custom_gate
from repro.circuits.lookups import compute_multiplicities
from repro.fields.backends import available_backends
from repro.pcs.srs import (
    PtauFormatError,
    parse_ptau,
    ptau_srs_cache_path,
    setup_from_ptau,
    write_synthetic_ptau,
)
from repro.protocol import VerificationError
from repro.protocol.serialization import (
    EXTENDED_VERSION,
    VERSION,
    deserialize_proof,
    serialize_proof,
)
from repro.service import (
    BackgroundServer,
    ProofService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.cluster import ClusterRouter, RouterConfig

NUM_VARS = 4
SRS_SEED = 7
NEW_SCENARIOS = sorted(CONSTRAINT_WORKLOADS)


# -- builder hardening ---------------------------------------------------------


class TestBuilderHardening:
    def test_unsatisfied_custom_gate_rejected_at_build_time(self):
        builder = CircuitBuilder()
        seven = builder.add_constant_gate(7)
        with pytest.raises(ValueError, match="not satisfied"):
            builder.add_custom_gate("range4", seven)

    def test_unknown_custom_gate_names_the_registry(self):
        builder = CircuitBuilder()
        v = builder.add_constant_gate(1)
        with pytest.raises(KeyError, match="range4"):
            builder.add_custom_gate("no-such-gate", v)

    def test_out_of_range_wire_rejected(self):
        from repro.circuits.builder import Gate

        builder = CircuitBuilder()
        builder.add_constant_gate(1)
        with pytest.raises(ValueError, match="unknown variable"):
            builder.add_gate(Gate.addition(0, 1, 999))

    def test_lookup_value_absent_from_table(self):
        builder = CircuitBuilder()
        builder.add_lookup_table("nibbles", range(16))
        v = builder.add_constant_gate(99)
        with pytest.raises(ValueError, match="not in lookup"):
            builder.lookup(v, "nibbles")

    def test_lookup_against_undeclared_table(self):
        builder = CircuitBuilder()
        v = builder.add_constant_gate(1)
        with pytest.raises(ValueError, match="unknown lookup table"):
            builder.lookup(v, "nope")

    def test_duplicate_and_empty_tables_rejected(self):
        builder = CircuitBuilder()
        builder.add_lookup_table("t", [1, 2])
        with pytest.raises(ValueError, match="already declared"):
            builder.add_lookup_table("t", [3])
        with pytest.raises(ValueError, match="must not be empty"):
            builder.add_lookup_table("empty", [])

    def test_compile_revalidates_lookup_membership(self):
        """A witness value mutated after the ``lookup`` call (bypassing the
        immediate check) must still be caught when the circuit compiles."""
        builder = CircuitBuilder()
        builder.add_lookup_table("bits", [0, 1])
        v = builder.add_constant_gate(1)
        builder.lookup(v, "bits")
        builder._values[v.index] = builder.field(5)
        with pytest.raises(ValueError, match="not in table"):
            builder.compile()

    def test_sha3_chi_inputs_must_be_ranged(self):
        builder = CircuitBuilder()
        x = builder.add_constant_gate(1)
        bad = builder.add_constant_gate(9)
        with pytest.raises(ValueError):
            builder.sha3_chi(x, bad)


class TestSpecAndFingerprint:
    def test_table_values_change_the_fingerprint(self):
        def circuit(values):
            builder = CircuitBuilder()
            builder.add_lookup_table("t", values)
            v = builder.add_constant_gate(1)
            builder.lookup(v, "t")
            return builder.compile()

        assert circuit([0, 1, 2]).fingerprint() != circuit([0, 1, 3]).fingerprint()

    def test_custom_gate_changes_spec_and_fingerprint(self):
        def circuit(with_gate):
            builder = CircuitBuilder()
            v = builder.add_constant_gate(2)
            if with_gate:
                builder.assert_range4(v)
            return builder.compile()

        plain, gated = circuit(False), circuit(True)
        assert plain.constraint_spec() == VANILLA_SPEC
        assert gated.constraint_spec().custom_gates == ("range4",)
        assert plain.fingerprint() != gated.fingerprint()

    def test_multiplicities_first_occurrence_rule(self):
        # Table rows [5, 5, 7]: both lookups of 5 land on the FIRST row.
        m = compute_multiplicities(
            w1_values=[5, 5, 0],
            q_lookup=[1, 1, 0],
            lk_qtid=[0, 0, 0],
            lk_table=[5, 5, 7],
            lk_tid=[0, 0, 0],
        )
        assert m == [2, 0, 0]

    def test_multiplicities_reject_unmatched_lookup(self):
        with pytest.raises(ValueError, match="does not contain"):
            compute_multiplicities(
                w1_values=[9], q_lookup=[1], lk_qtid=[0], lk_table=[5], lk_tid=[0]
            )

    def test_custom_gate_registry_definitions(self):
        range4 = resolve_custom_gate("range4")
        field = CircuitBuilder().field
        for value in range(4):
            assert range4.evaluate(field(value), field(0), field(0)).is_zero()
        assert not range4.evaluate(field(4), field(0), field(0)).is_zero()


# -- protocol e2e over the engine ----------------------------------------------


@pytest.fixture(scope="module")
def engine():
    instance = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
    yield instance
    instance.close()


@pytest.fixture(scope="module")
def artifacts(engine):
    """One proved artifact per new scenario, shared by the read-only tests."""
    return {
        name: engine.prove(name, num_vars=NUM_VARS, seed=3)
        for name in NEW_SCENARIOS
    }


class TestScenarioRoundTrip:
    @pytest.mark.parametrize("scenario", NEW_SCENARIOS)
    def test_prove_then_verify(self, engine, artifacts, scenario):
        artifact = artifacts[scenario]
        assert artifact.scenario == scenario
        assert not artifact.proof.spec.is_vanilla
        assert engine.verify(artifact) is True

    def test_expected_constraint_shapes(self, artifacts):
        shapes = {
            name: (
                artifacts[name].proof.spec.custom_gates,
                artifacts[name].proof.spec.lookup,
            )
            for name in NEW_SCENARIOS
        }
        assert shapes["range_check"] == (("range4",), True)
        assert shapes["sha3_round"] == (("range4", "sha3_chi"), False)
        assert shapes["merkle_path"] == ((), True)
        assert shapes["stack_machine"] == ((), True)

    def test_vanilla_proofs_keep_the_v1_layout(self, engine):
        artifact = engine.prove("mock", num_vars=NUM_VARS, seed=3)
        blob = serialize_proof(artifact.proof)
        assert blob[4] == VERSION
        assert artifact.proof.spec.is_vanilla

    @pytest.mark.parametrize("scenario", NEW_SCENARIOS)
    def test_extended_serialization_round_trips(self, engine, artifacts, scenario):
        proof = artifacts[scenario].proof
        blob = serialize_proof(proof)
        assert blob[4] == EXTENDED_VERSION
        restored = deserialize_proof(blob)
        assert restored.spec == proof.spec
        assert serialize_proof(restored) == blob
        assert engine.verify(restored, artifacts[scenario].verifying_key) is True


class TestTamper:
    def _mutated_claim(self, proof, poly, point):
        """A copy of ``proof`` with one evaluation claim bumped by one."""
        claims = []
        hit = False
        for claim in proof.evaluation_claims:
            if claim.poly == poly and claim.point == point and not hit:
                claims.append(
                    dataclasses.replace(claim, value=claim.value + claim.value.field.one())
                )
                hit = True
            else:
                claims.append(claim)
        assert hit, f"no claim for ({poly}, {point})"
        return dataclasses.replace(proof, evaluation_claims=claims)

    def test_corrupted_lookup_multiset_fails(self, engine, artifacts):
        artifact = artifacts["range_check"]
        tampered = self._mutated_claim(artifact.proof, "lk_m", "lookup")
        with pytest.raises(VerificationError):
            engine.verify(tampered, artifact.verifying_key)

    def test_swapped_lookup_commitments_fail(self, engine, artifacts):
        artifact = artifacts["merkle_path"]
        commitments = dict(artifact.proof.lookup_commitments)
        commitments["lk_m"], commitments["lk_h"] = (
            commitments["lk_h"],
            commitments["lk_m"],
        )
        tampered = dataclasses.replace(
            artifact.proof, lookup_commitments=commitments
        )
        with pytest.raises(VerificationError):
            engine.verify(tampered, artifact.verifying_key)

    def test_wrong_custom_selector_claim_fails(self, engine, artifacts):
        artifact = artifacts["range_check"]
        tampered = self._mutated_claim(artifact.proof, "q_range4", "gate")
        with pytest.raises(VerificationError):
            engine.verify(tampered, artifact.verifying_key)

    def test_spec_mismatch_is_rejected_up_front(self, engine, artifacts):
        """A proof claiming a different constraint system than the key's
        must fail before any claim arithmetic."""
        artifact = artifacts["sha3_round"]
        stripped = dataclasses.replace(artifact.proof, spec=VANILLA_SPEC)
        with pytest.raises(VerificationError, match="constraint system"):
            engine.verify(stripped, artifact.verifying_key)


# -- determinism across backends and worker counts -----------------------------


class TestDeterminism:
    BACKENDS = [b for b in ("python", "numpy", "native") if b in available_backends()]

    @pytest.fixture(scope="class")
    def srs_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("srs-cache"))

    @pytest.fixture(scope="class")
    def reference_bytes(self, srs_dir):
        engine = ProverEngine(
            EngineConfig(srs_seed=SRS_SEED, field_backend="python", srs_cache_dir=srs_dir)
        )
        try:
            return {
                name: engine.prove(name, num_vars=NUM_VARS, seed=5).to_bytes()
                for name in ("range_check", "stack_machine")
            }
        finally:
            engine.close()

    @pytest.mark.parametrize(
        "backend,workers", list(itertools.product(BACKENDS, (1, 2)))
    )
    def test_proof_bytes_identical(self, backend, workers, srs_dir, reference_bytes):
        engine = ProverEngine(
            EngineConfig(
                srs_seed=SRS_SEED,
                field_backend=backend,
                workers=workers,
                srs_cache_dir=srs_dir,
            )
        )
        try:
            for name, expected in reference_bytes.items():
                produced = engine.prove(name, num_vars=NUM_VARS, seed=5).to_bytes()
                assert produced == expected, (
                    f"{name} proof bytes diverge under backend={backend} "
                    f"workers={workers}"
                )
        finally:
            engine.close()


# -- powers-of-tau ceremony files ----------------------------------------------


class TestPtau:
    POWER = 3

    @pytest.fixture(scope="class")
    def ptau_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ptau") / "ceremony.ptau"
        write_synthetic_ptau(path, self.POWER, seed=11)
        return path

    def test_fixture_round_trips(self, ptau_file):
        ceremony = parse_ptau(ptau_file)
        assert ceremony.power == self.POWER
        assert len(ceremony.g1_points) == 1 << self.POWER
        assert len(ceremony.g2_points) == 2
        assert len(ceremony.digest) == 32

    def test_corrupted_g1_point_rejected(self, ptau_file, tmp_path):
        blob = bytearray(ptau_file.read_bytes())
        blob[90] ^= 0x01  # inside the first G1 x-coordinate
        bad = tmp_path / "corrupt.ptau"
        bad.write_bytes(bytes(blob))
        with pytest.raises(PtauFormatError, match="curve"):
            parse_ptau(bad)

    def test_truncated_file_rejected(self, ptau_file, tmp_path):
        bad = tmp_path / "short.ptau"
        bad.write_bytes(ptau_file.read_bytes()[:100])
        with pytest.raises(PtauFormatError):
            parse_ptau(bad)

    def test_wrong_magic_rejected(self, ptau_file, tmp_path):
        blob = bytearray(ptau_file.read_bytes())
        blob[:4] = b"nope"
        bad = tmp_path / "magic.ptau"
        bad.write_bytes(bytes(blob))
        with pytest.raises(PtauFormatError, match="magic"):
            parse_ptau(bad)

    def test_setup_is_deterministic_and_cached(self, ptau_file, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        first = setup_from_ptau(self.POWER, ptau_file, cache_dir=cache)
        digest = parse_ptau(ptau_file).digest
        expected = ptau_srs_cache_path(cache, self.POWER, digest, True)
        assert expected.exists()
        second = setup_from_ptau(self.POWER, ptau_file, cache_dir=cache)
        assert first.verifier_key.trapdoor == second.verifier_key.trapdoor
        assert (
            first.prover_key.lagrange_tables[0]
            == second.prover_key.lagrange_tables[0]
        )

    def test_engine_proves_under_a_ceremony_srs(self, ptau_file, tmp_path):
        config = EngineConfig(
            srs_source=str(ptau_file), srs_cache_dir=str(tmp_path / "cache")
        )
        engine = ProverEngine(config)
        try:
            artifact = engine.prove("range_check", num_vars=self.POWER, seed=1)
            assert engine.verify(artifact) is True
        finally:
            engine.close()
        # A second engine over the same file reproduces the bytes exactly.
        other = ProverEngine(config)
        try:
            again = other.prove("range_check", num_vars=self.POWER, seed=1)
            assert again.to_bytes() == artifact.to_bytes()
        finally:
            other.close()

    def test_srs_source_comes_from_the_environment(self, ptau_file, monkeypatch):
        monkeypatch.setenv("REPRO_SRS_SOURCE", str(ptau_file))
        assert EngineConfig.from_env().srs_source == str(ptau_file)


# -- serving tier --------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    service = ProofService(
        ServiceConfig(port=0, batch_window_ms=5.0, max_batch=8, max_queue=32),
        engine_config=EngineConfig(srs_seed=SRS_SEED),
    )
    with BackgroundServer(service) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient(port=server.port) as service_client:
        yield service_client


class TestServiceScenarios:
    def test_scenarios_advertise_new_workloads_with_capabilities(self, client):
        entries = {entry["name"]: entry for entry in client.scenarios()}
        assert set(NEW_SCENARIOS) <= set(entries)
        for name in NEW_SCENARIOS:
            assert entries[name]["capabilities"] == ["prove"]
        assert "simulate" in entries["mock"]["capabilities"]

    @pytest.mark.parametrize("scenario", NEW_SCENARIOS)
    def test_new_scenarios_prove_over_http(self, client, engine, scenario):
        result = client.prove(scenario, num_vars=NUM_VARS, seed=3)
        assert client.verify(result) is True
        direct = engine.prove(scenario, num_vars=NUM_VARS, seed=3)
        assert result["proof_bytes"] == direct.to_bytes()

    def test_unknown_scenario_rejected_with_available_list(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.prove("no-such-scenario", num_vars=NUM_VARS)
        assert excinfo.value.status == 400
        listed = excinfo.value.payload["error"]["available_scenarios"]
        assert set(NEW_SCENARIOS) <= set(listed)

    def test_capability_mismatch_rejected_before_queueing(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.simulate("range_check")
        assert excinfo.value.status == 400
        error = excinfo.value.payload["error"]
        assert error["scenario"] == "range_check"
        assert error["capabilities"] == ["prove"]
        assert "mock" in error["available_scenarios"]
        assert "range_check" not in error["available_scenarios"]


# -- cluster tier --------------------------------------------------------------


class _Backend:
    def __init__(self):
        self.engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
        self.service = ProofService(
            ServiceConfig(port=0, batch_window_ms=5.0, job_poll_s=0.02),
            engine=self.engine,
        )
        self.server = BackgroundServer(self.service)

    @property
    def backend_id(self) -> str:
        return f"127.0.0.1:{self.server.port}"


@pytest.fixture(scope="module")
def cluster():
    backends = [_Backend(), _Backend()]
    for backend in backends:
        backend.server.start()
    router = ClusterRouter(
        RouterConfig(port=0, health_interval_s=0.5, request_timeout_s=120.0),
        backends=[backend.backend_id for backend in backends],
    )
    router_server = BackgroundServer(router)
    router_server.start()
    try:
        yield {
            "backends": {backend.backend_id: backend for backend in backends},
            "router_server": router_server,
        }
    finally:
        router_server.stop()
        for backend in backends:
            backend.server.stop()
            backend.engine.close()


@pytest.fixture(scope="module")
def router_client(cluster):
    with ServiceClient(port=cluster["router_server"].port) as service_client:
        yield service_client


class TestClusterScenarios:
    @pytest.mark.parametrize("scenario", ["range_check", "stack_machine"])
    def test_routed_proofs_byte_identical(self, router_client, engine, scenario):
        result = router_client.prove(scenario, num_vars=NUM_VARS, seed=9)
        assert result["served_by"]
        direct = engine.prove(scenario, num_vars=NUM_VARS, seed=9)
        assert result["proof_bytes"] == direct.to_bytes()
        assert router_client.verify(result) is True

    def test_router_scenarios_include_new_workloads(self, router_client):
        entries = {entry["name"]: entry for entry in router_client.scenarios()}
        assert set(NEW_SCENARIOS) <= set(entries)
        assert entries["merkle_path"]["capabilities"] == ["prove"]

    def test_router_validates_capability_at_the_edge(self, cluster, router_client):
        """The 400 must come from the router itself — no backend sees it."""
        before = {
            backend_id: backend.service.metrics.requests_total.get("simulate", 0)
            for backend_id, backend in cluster["backends"].items()
        }
        with pytest.raises(ServiceError) as excinfo:
            router_client.simulate("sha3_round")
        assert excinfo.value.status == 400
        error = excinfo.value.payload["error"]
        assert error["capabilities"] == ["prove"]
        assert "sha3_round" not in error["available_scenarios"]
        for backend_id, backend in cluster["backends"].items():
            assert (
                backend.service.metrics.requests_total.get("simulate", 0)
                == before[backend_id]
            )

    def test_jobs_tier_proves_new_scenarios(self, router_client, engine):
        ack = router_client.submit_job(
            {
                "kind": "prove",
                "scenario": "merkle_path",
                "num_vars": NUM_VARS,
                "seed": 13,
            }
        )
        record = router_client.wait_for_job(ack["id"], timeout=120.0)
        assert record["state"] == "done"
        blob = router_client.job_artifact(ack["id"])
        direct = engine.prove("merkle_path", num_vars=NUM_VARS, seed=13)
        assert blob == direct.to_bytes()
