"""Tests for the Montgomery-arithmetic model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import FR_MODULUS, FQ_MODULUS, MontgomeryContext


class TestMontgomeryContext:
    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext(modulus=2 * 17)

    def test_rejects_bad_word_size(self):
        with pytest.raises(ValueError):
            MontgomeryContext(modulus=FR_MODULUS, word_bits=0)

    def test_limb_counts_for_bls12_381(self):
        fr_ctx = MontgomeryContext(FR_MODULUS)
        fq_ctx = MontgomeryContext(FQ_MODULUS)
        assert fr_ctx.num_limbs == 4   # 255 bits in 64-bit limbs
        assert fq_ctx.num_limbs == 6   # 381 bits in 64-bit limbs
        assert fr_ctx.r_bits == 256
        assert fq_ctx.r_bits == 384

    def test_n_prime_property(self):
        ctx = MontgomeryContext(FR_MODULUS)
        # N * N' == -1 mod R.
        assert (FR_MODULUS * ctx.n_prime) % ctx.r == ctx.r - 1

    def test_to_from_montgomery_round_trip(self):
        ctx = MontgomeryContext(FR_MODULUS)
        for value in (0, 1, 2, FR_MODULUS - 1, 12345678901234567890):
            mont = ctx.to_montgomery(value % FR_MODULUS)
            assert ctx.from_montgomery(mont) == value % FR_MODULUS

    def test_redc_range_check(self):
        ctx = MontgomeryContext(FR_MODULUS)
        with pytest.raises(ValueError):
            ctx.redc(-1)
        with pytest.raises(ValueError):
            ctx.redc(FR_MODULUS * ctx.r)

    def test_modmul_matches_plain_multiplication(self):
        ctx = MontgomeryContext(FR_MODULUS)
        a, b = 0xDEADBEEF, 0xCAFEBABE12345
        assert ctx.modmul(a, b) == (a * b) % FR_MODULUS

    def test_mont_square(self):
        ctx = MontgomeryContext(FR_MODULUS)
        a_mont = ctx.to_montgomery(98765)
        assert ctx.mont_square(a_mont) == ctx.mont_mul(a_mont, a_mont)

    def test_word_multiplication_counts(self):
        fr_ctx = MontgomeryContext(FR_MODULUS)
        fq_ctx = MontgomeryContext(FQ_MODULUS)
        # CIOS: 2*s^2 + s word multiplications.
        assert fr_ctx.word_multiplications() == 2 * 16 + 4
        assert fq_ctx.word_multiplications() == 2 * 36 + 6
        # The 381-bit multiplier is roughly (6/4)^2 = 2.25x the 255-bit one,
        # consistent with the paper's area ratio 0.314 / 0.133 ~ 2.36.
        ratio = fq_ctx.word_multiplications() / fr_ctx.word_multiplications()
        assert 2.0 < ratio < 2.6

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=FR_MODULUS - 1),
        b=st.integers(min_value=0, max_value=FR_MODULUS - 1),
    )
    def test_modmul_property(self, a, b):
        ctx = MontgomeryContext(FR_MODULUS)
        assert ctx.modmul(a, b) == (a * b) % FR_MODULUS

    def test_alternative_word_size(self):
        ctx = MontgomeryContext(FR_MODULUS, word_bits=32)
        assert ctx.num_limbs == 8
        assert ctx.modmul(12345, 67890) == (12345 * 67890) % FR_MODULUS
