"""Tests for the generic SumCheck prover and verifier."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import Fr
from repro.mle import MultilinearPolynomial, VirtualPolynomial
from repro.sumcheck import (
    SumcheckVerificationError,
    prove_sumcheck,
    verify_sumcheck,
)
from repro.transcript import Transcript


def build_poly(rng, num_vars=4):
    a = MultilinearPolynomial.random(num_vars, rng)
    b = MultilinearPolynomial.random(num_vars, rng)
    c = MultilinearPolynomial.random(num_vars, rng)
    vp = VirtualPolynomial(num_vars)
    vp.add_product([a, b, c], Fr(3))
    vp.add_product([a, b], Fr(2))
    vp.add_product([c])
    return vp


@pytest.fixture()
def rng():
    return random.Random(41)


class TestCompleteness:
    def test_honest_proof_verifies(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        verdict = verify_sumcheck(output.proof, Transcript())
        assert verdict.challenges == output.challenges
        assert verdict.final_claim == vp.evaluate(verdict.challenges)

    def test_claimed_sum_computed_when_omitted(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        assert output.proof.claimed_sum == vp.sum_over_hypercube()

    def test_final_evaluations_match_mle_evaluations(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        for mle, final in zip(vp.mles, output.final_evaluations):
            assert final == mle.evaluate(output.challenges)

    def test_single_variable(self, rng):
        vp = build_poly(rng, num_vars=1)
        output = prove_sumcheck(vp, Transcript())
        verdict = verify_sumcheck(output.proof, Transcript())
        assert verdict.final_claim == vp.evaluate(verdict.challenges)

    def test_degree_one_polynomial(self, rng):
        a = MultilinearPolynomial.random(3, rng)
        vp = VirtualPolynomial(3)
        vp.add_product([a])
        output = prove_sumcheck(vp, Transcript())
        assert output.proof.max_degree == 1
        verdict = verify_sumcheck(output.proof, Transcript())
        assert verdict.final_claim == a.evaluate(verdict.challenges)

    def test_prover_does_not_mutate_caller_tables(self, rng):
        vp = build_poly(rng)
        snapshot = [list(m.evaluations) for m in vp.mles]
        prove_sumcheck(vp, Transcript())
        assert [list(m.evaluations) for m in vp.mles] == snapshot

    def test_round_count_and_message_sizes(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        assert len(output.proof.rounds) == vp.num_vars
        assert all(
            len(r.evaluations) == vp.max_degree + 1 for r in output.proof.rounds
        )
        assert output.proof.round_messages()[0][0] + output.proof.round_messages()[0][
            1
        ] == output.proof.claimed_sum

    def test_zero_variable_polynomial_rejected(self):
        vp = VirtualPolynomial(0)
        with pytest.raises(ValueError):
            prove_sumcheck(vp, Transcript())


class TestSoundness:
    def test_wrong_claimed_sum_rejected(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        output.proof.claimed_sum = output.proof.claimed_sum + Fr(1)
        with pytest.raises(SumcheckVerificationError):
            verify_sumcheck(output.proof, Transcript())

    def test_tampered_round_message_rejected(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        output.proof.rounds[1].evaluations[0] = (
            output.proof.rounds[1].evaluations[0] + Fr(1)
        )
        with pytest.raises(SumcheckVerificationError):
            verify_sumcheck(output.proof, Transcript())

    def test_tampered_last_round_detected_via_final_claim(self, rng):
        """A consistent-but-wrong final round must fail the caller's final check."""
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        last = output.proof.rounds[-1].evaluations
        # Keep g(0)+g(1) equal to the running claim but perturb a higher point.
        last[2] = last[2] + Fr(1)
        verdict = verify_sumcheck(output.proof, Transcript())
        assert verdict.final_claim != vp.evaluate(verdict.challenges)

    def test_truncated_proof_rejected(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        output.proof.rounds.pop()
        with pytest.raises(SumcheckVerificationError):
            verify_sumcheck(output.proof, Transcript())

    def test_wrong_number_of_evaluations_rejected(self, rng):
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        output.proof.rounds[0].evaluations.append(Fr(0))
        with pytest.raises(SumcheckVerificationError):
            verify_sumcheck(output.proof, Transcript())

    def test_transcript_divergence_rejected(self, rng):
        """Verifying with a transcript that absorbed different data fails."""
        vp = build_poly(rng)
        output = prove_sumcheck(vp, Transcript())
        diverged = Transcript()
        diverged.absorb_field(b"extra", Fr(1))
        try:
            verdict = verify_sumcheck(output.proof, diverged)
        except SumcheckVerificationError:
            return
        assert verdict.final_claim != vp.evaluate(verdict.challenges)


class TestProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sumcheck_roundtrip_random_polynomials(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 4)
        num_terms = rng.randint(1, 3)
        mles = [MultilinearPolynomial.random(num_vars, rng) for _ in range(4)]
        vp = VirtualPolynomial(num_vars)
        for _ in range(num_terms):
            term = [rng.choice(mles) for _ in range(rng.randint(1, 3))]
            vp.add_product(term, Fr.random(rng))
        output = prove_sumcheck(vp, Transcript())
        verdict = verify_sumcheck(output.proof, Transcript())
        assert verdict.final_claim == vp.evaluate(verdict.challenges)
