"""Tests for the ZeroCheck construction."""

import random

import pytest

from repro.fields import Fr
from repro.mle import MultilinearPolynomial, VirtualPolynomial
from repro.sumcheck import (
    SumcheckVerificationError,
    prove_zerocheck,
    verify_zerocheck,
)
from repro.transcript import Transcript


@pytest.fixture()
def rng():
    return random.Random(53)


def vanishing_poly(rng, num_vars=4):
    """A virtual polynomial that vanishes on the whole hypercube: a*b - (a.b)."""
    a = MultilinearPolynomial.random(num_vars, rng)
    b = MultilinearPolynomial.random(num_vars, rng)
    ab = a.hadamard(b)
    vp = VirtualPolynomial(num_vars)
    vp.add_product([a, b])
    vp.add_product([ab], Fr(-1))
    return vp


class TestZerocheckCompleteness:
    def test_honest_zerocheck_verifies(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        verdict = verify_zerocheck(output.proof, vp.num_vars, Transcript())
        assert verdict.zerocheck_challenges == output.zerocheck_challenges
        assert verdict.sumcheck_challenges == output.sumcheck_challenges
        constraint_value = vp.evaluate(verdict.sumcheck_challenges)
        assert verdict.final_claim == verdict.eq_at_point * constraint_value

    def test_constraint_claim_division(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        verdict = verify_zerocheck(output.proof, vp.num_vars, Transcript())
        if not verdict.eq_at_point.is_zero():
            assert verdict.constraint_claim() == vp.evaluate(verdict.sumcheck_challenges)

    def test_claimed_sum_is_zero(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        assert output.proof.sumcheck.claimed_sum.is_zero()

    def test_degree_includes_eq_factor(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        assert output.proof.sumcheck.max_degree == vp.max_degree + 1

    def test_different_transcript_prefixes_give_different_challenges(self, rng):
        vp = vanishing_poly(rng)
        t1 = Transcript()
        t1.absorb_int(b"ctx", 1)
        t2 = Transcript()
        t2.absorb_int(b"ctx", 2)
        out1 = prove_zerocheck(vp, t1)
        out2 = prove_zerocheck(vp, t2)
        assert out1.zerocheck_challenges != out2.zerocheck_challenges


class TestZerocheckSoundness:
    def test_nonvanishing_polynomial_detected(self, rng):
        """For a polynomial that is NOT zero on the hypercube, an honest-style
        proof claiming zero must be caught by the verifier's final check."""
        num_vars = 3
        a = MultilinearPolynomial.random(num_vars, rng)
        b = MultilinearPolynomial.random(num_vars, rng)
        vp = VirtualPolynomial(num_vars)
        vp.add_product([a, b])
        assert not vp.is_zero_on_hypercube()
        try:
            output = prove_zerocheck(vp, Transcript())
        except SumcheckVerificationError:
            return
        try:
            verdict = verify_zerocheck(output.proof, num_vars, Transcript())
        except SumcheckVerificationError:
            return
        constraint_value = vp.evaluate(verdict.sumcheck_challenges)
        # The reduced claim cannot match eq(a, r) * F(r) for a lying prover
        # (except with negligible probability over the challenges).
        assert verdict.final_claim != verdict.eq_at_point * constraint_value

    def test_nonzero_claimed_sum_rejected(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        output.proof.sumcheck.claimed_sum = Fr(1)
        with pytest.raises(SumcheckVerificationError):
            verify_zerocheck(output.proof, vp.num_vars, Transcript())

    def test_wrong_num_vars_rejected(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        with pytest.raises(SumcheckVerificationError):
            verify_zerocheck(output.proof, vp.num_vars + 1, Transcript())

    def test_tampered_round_rejected(self, rng):
        vp = vanishing_poly(rng)
        output = prove_zerocheck(vp, Transcript())
        output.proof.sumcheck.rounds[0].evaluations[1] = Fr(12345)
        with pytest.raises(SumcheckVerificationError):
            verify_zerocheck(output.proof, vp.num_vars, Transcript())
