"""Tests for G1/G2 elliptic-curve arithmetic."""

import random

import pytest

from repro.curves import AffinePoint, JacobianPoint, G1_GENERATOR, g1_generator, g2_generator
from repro.curves.bls12_381 import G2Point
from repro.curves.curve import BLS12_381_G1, PADD_MODMULS, PDBL_MODMULS, sum_points, tree_sum_affine
from repro.fields.bls12_381 import FR_MODULUS


class TestAffinePoint:
    def test_generator_on_curve(self):
        assert G1_GENERATOR.is_on_curve()

    def test_identity(self):
        identity = AffinePoint.identity()
        assert identity.is_identity()
        assert identity.is_on_curve()
        assert identity.negate() == identity

    def test_negation_on_curve(self):
        neg = G1_GENERATOR.negate()
        assert neg.is_on_curve()
        assert neg != G1_GENERATOR

    def test_point_plus_negation_is_identity(self):
        result = (
            G1_GENERATOR.to_jacobian() + G1_GENERATOR.negate().to_jacobian()
        )
        assert result.is_identity()

    def test_affine_addition_wrapper(self):
        doubled = G1_GENERATOR + G1_GENERATOR
        assert doubled == (G1_GENERATOR.to_jacobian() * 2).to_affine()

    def test_off_curve_detection(self):
        bogus = AffinePoint(G1_GENERATOR.x, G1_GENERATOR.y + 1)
        assert not bogus.is_on_curve()

    def test_equality_and_hash(self):
        assert AffinePoint.identity() == AffinePoint.identity()
        assert hash(G1_GENERATOR) == hash(AffinePoint(G1_GENERATOR.x, G1_GENERATOR.y))
        assert G1_GENERATOR != AffinePoint.identity()


class TestJacobianGroupLaw:
    def test_identity_behaviour(self):
        identity = JacobianPoint.identity()
        g = g1_generator()
        assert identity + g == g
        assert g + identity == g
        assert identity.double().is_identity()
        assert (g - g).is_identity()

    def test_double_matches_add(self):
        g = g1_generator()
        assert g.double() == g + g

    def test_mixed_addition_matches_full(self):
        g = g1_generator()
        h = (g * 7).to_affine()
        assert g.add_affine(h) == g + h.to_jacobian()

    def test_mixed_addition_identity_cases(self):
        g = g1_generator()
        assert g.add_affine(AffinePoint.identity()) == g
        assert JacobianPoint.identity().add_affine(g.to_affine()) == g
        assert g.add_affine(g.to_affine()) == g.double()
        assert g.add_affine(g.negate().to_affine()).is_identity()

    def test_associativity(self):
        g = g1_generator()
        a, b, c = g * 3, g * 5, g * 11
        assert (a + b) + c == a + (b + c)

    def test_commutativity(self):
        g = g1_generator()
        a, b = g * 13, g * 29
        assert a + b == b + a

    def test_scalar_multiplication_small(self):
        g = g1_generator()
        acc = JacobianPoint.identity()
        for k in range(8):
            assert g * k == acc
            acc = acc + g

    def test_scalar_multiplication_modular(self):
        g = g1_generator()
        assert g * FR_MODULUS == JacobianPoint.identity()
        assert g * (FR_MODULUS + 3) == g * 3

    def test_scalar_multiplication_distributes(self):
        g = g1_generator()
        assert g * 7 + g * 9 == g * 16

    def test_order_annihilates_generator(self):
        g = g1_generator()
        assert (g * (FR_MODULUS - 1) + g).is_identity()

    def test_to_affine_round_trip(self):
        g = g1_generator()
        p = g * 123456789
        assert p.to_affine().to_jacobian() == p
        assert p.is_on_curve()

    def test_equality_across_representations(self):
        g = g1_generator()
        p = g * 5
        assert p == (p.to_affine()).to_jacobian()
        assert p != g

    def test_sum_points_helper(self):
        g = g1_generator()
        points = [g * k for k in range(1, 6)]
        assert sum_points(points) == g * 15
        assert sum_points([]).is_identity()

    def test_cost_constants_positive(self):
        assert PADD_MODMULS >= 10
        assert PDBL_MODMULS >= 5


class TestTreeSum:
    def test_tree_sum_matches_linear_sum(self):
        g = g1_generator()
        rng = random.Random(3)
        points = [(g * rng.randrange(1, 1000)).to_affine() for _ in range(13)]
        expected = sum_points([p.to_jacobian() for p in points])
        result, padds = tree_sum_affine(points)
        assert result == expected
        assert padds == 12  # n - 1 additions for n points

    def test_tree_sum_empty_and_single(self):
        result, padds = tree_sum_affine([])
        assert result.is_identity() and padds == 0
        g = g1_generator().to_affine()
        result, padds = tree_sum_affine([g])
        assert result == g.to_jacobian() and padds == 0


class TestG2:
    def test_generator_on_curve(self):
        assert g2_generator().is_on_curve()

    def test_identity(self):
        identity = G2Point.identity()
        assert identity.is_identity()
        assert identity.is_on_curve()
        h = g2_generator()
        assert identity + h == h
        assert h + identity == h

    def test_double_matches_add(self):
        h = g2_generator()
        assert h.double() == h + h

    def test_scalar_multiplication(self):
        h = g2_generator()
        assert h * 6 == h + h + h + h + h + h
        assert (h * FR_MODULUS).is_identity()

    def test_negation(self):
        h = g2_generator()
        assert (h + h.negate()).is_identity()

    def test_subgroup_membership_of_multiples(self):
        h = g2_generator() * 987654321
        assert h.is_on_curve()
