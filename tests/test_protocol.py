"""End-to-end tests of the HyperPlonk prover and verifier."""

import copy

import pytest

from repro.circuits import CircuitBuilder, mock_circuit, zcash_transfer_circuit
from repro.fields import Fr
from repro.pcs.srs import setup
from repro.protocol import HyperPlonkProof, VerificationError
from repro.protocol.keys import preprocess
from repro.protocol.prover import prove
from repro.protocol.verifier import verify
from repro.protocol.common import CLAIM_SCHEDULE, POINT_NAMES
from repro.protocol.keys import COMMITTED_POLY_NAMES
from repro.protocol.proof import EvaluationClaim


class TestCompleteness:
    def test_mock_circuit_proof_verifies(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        assert verify(vk, proof)

    def test_proof_is_deterministic(self, small_keys):
        pk, _ = small_keys
        a = prove(pk)
        b = prove(pk)
        assert a.evaluation_claims == b.evaluation_claims
        assert a.batch_opening_value == b.batch_opening_value

    def test_handcrafted_circuit(self, srs4):
        builder = CircuitBuilder()
        x = builder.add_constant_gate(3)
        y = builder.add_constant_gate(5)
        z = builder.mul(x, y)
        w = builder.add(z, x)
        builder.assert_equal(w, builder.add_constant_gate(18))
        circuit = builder.compile(min_num_vars=4)
        assert circuit.is_satisfied()
        pk, vk = preprocess(circuit, srs4)
        assert verify(vk, prove(pk))

    def test_zcash_workload_circuit(self, srs5):
        circuit = zcash_transfer_circuit(5)
        pk, vk = preprocess(circuit, srs5)
        assert verify(vk, prove(pk))

    @pytest.mark.slow
    def test_pairing_mode_verification(self, srs4):
        circuit = mock_circuit(4, seed=5)
        pk, vk = preprocess(circuit, srs4)
        proof = prove(pk)
        assert verify(vk, proof, use_pairing=True)

    def test_proof_structure(self, small_proof):
        proof, _ = small_proof
        assert isinstance(proof, HyperPlonkProof)
        assert set(proof.witness_commitments) == {"w1", "w2", "w3"}
        assert len(proof.evaluation_claims) == len(CLAIM_SCHEDULE)
        assert set(proof.opening_evaluations) == set(COMMITTED_POLY_NAMES)
        assert len(proof.batch_opening.quotients) == proof.num_vars

    def test_proof_size_in_kilobyte_range(self, small_proof):
        """HyperPlonk proofs are a few KB (Table 4 quotes 5.09 KB at 2^24)."""
        proof, _ = small_proof
        size = proof.size_bytes()
        assert 1_000 < size < 20_000

    def test_prover_trace_statistics(self, small_proof):
        _, trace = small_proof
        step_names = [s.name for s in trace.steps]
        assert step_names == [
            "witness_commits",
            "gate_identity",
            "wire_identity",
            "batch_evaluations",
            "poly_open",
            "sha3",
        ]
        witness = trace.step_named("witness_commits")
        assert len(witness.msm_stats) == 3
        assert trace.step_named("wire_identity").modular_inversions == 32
        assert trace.step_named("sha3").sha3_invocations > 50
        with pytest.raises(KeyError):
            trace.step_named("nonexistent")

    def test_mismatched_circuit_size_rejected(self, small_keys):
        pk, _ = small_keys
        wrong = mock_circuit(4, seed=1)
        with pytest.raises(ValueError):
            prove(pk, circuit=wrong)

    def test_preprocess_requires_matching_srs(self, srs4):
        circuit = mock_circuit(5, seed=2)
        with pytest.raises(ValueError):
            preprocess(circuit, srs4)


class TestSoundness:
    def test_tampered_claim_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        claim = bad.evaluation_claims[0]
        bad.evaluation_claims[0] = EvaluationClaim(claim.poly, claim.point, claim.value + Fr(1))
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_reordered_claims_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.evaluation_claims[0], bad.evaluation_claims[1] = (
            bad.evaluation_claims[1],
            bad.evaluation_claims[0],
        )
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_swapped_witness_commitment_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.witness_commitments["w1"] = bad.witness_commitments["w2"]
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_tampered_opening_evaluation_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.opening_evaluations["w1"] = bad.opening_evaluations["w1"] + Fr(1)
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_tampered_batch_opening_value_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.batch_opening_value = bad.batch_opening_value + Fr(1)
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_tampered_quotient_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.batch_opening.quotients[0] = bad.batch_opening.quotients[1]
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_tampered_sumcheck_round_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.gate_zerocheck.sumcheck.rounds[0].evaluations[0] = Fr(7)
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_wrong_num_vars_rejected(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        bad = copy.deepcopy(proof)
        bad.num_vars = proof.num_vars + 1
        with pytest.raises(VerificationError):
            verify(vk, bad)

    def test_unsatisfied_gate_rejected(self, srs4):
        """A witness that violates a gate constraint must not verify."""
        builder = CircuitBuilder()
        x = builder.add_constant_gate(3)
        y = builder.add_constant_gate(4)
        builder.mul(x, y)
        circuit = builder.compile(min_num_vars=4)
        # Corrupt the multiplication output (w3 of the last real gate) in a
        # way that keeps the copy constraints trivially consistent.
        circuit.witnesses["w3"].evaluations[circuit.num_real_gates - 1] = Fr(13)
        assert not circuit.is_satisfied()
        pk, vk = preprocess(circuit, srs4)
        proof = prove(pk)
        with pytest.raises(VerificationError):
            verify(vk, proof)

    def test_broken_copy_constraint_rejected(self, srs4):
        """A witness violating a copy (wiring) constraint must not verify."""
        builder = CircuitBuilder()
        x = builder.add_constant_gate(3)
        y = builder.add_constant_gate(5)
        z = builder.mul(x, y)
        builder.add(z, x)
        circuit = builder.compile(min_num_vars=4)
        # Replace the inputs of the final addition with different values that
        # still satisfy the local gate (15 + 3 = 18 -> 10 + 8 = 18), breaking
        # only the wiring (copy) constraints.
        last = circuit.num_real_gates - 1
        circuit.witnesses["w1"].evaluations[last] = Fr(10)
        circuit.witnesses["w2"].evaluations[last] = Fr(8)
        assert circuit.is_satisfied()
        pk, vk = preprocess(circuit, srs4)
        proof = prove(pk)
        with pytest.raises(VerificationError):
            verify(vk, proof)

    def test_verifying_key_mismatch_rejected(self, small_proof, srs5):
        proof, _ = small_proof
        other_circuit = mock_circuit(5, seed=99)
        _, other_vk = preprocess(other_circuit, srs5)
        with pytest.raises(VerificationError):
            verify(other_vk, proof)


class TestClaimSchedule:
    def test_schedule_covers_all_committed_polynomials(self):
        polys_with_claims = {poly for poly, _ in CLAIM_SCHEDULE}
        assert polys_with_claims == set(COMMITTED_POLY_NAMES)

    def test_schedule_points_are_known(self):
        assert {point for _, point in CLAIM_SCHEDULE} == set(POINT_NAMES)

    def test_schedule_size_matches_paper_scale(self):
        # The paper quotes 22 evaluations among 13 polynomials at 6 points;
        # our formulation needs 21 claims across 13 polynomials at 5 points.
        assert len(CLAIM_SCHEDULE) == 21
        assert len(COMMITTED_POLY_NAMES) == 13
        assert len(POINT_NAMES) == 5
