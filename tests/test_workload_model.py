"""Tests for the architectural workload model."""

import pytest

from repro.core import WorkloadModel


class TestWorkloadModel:
    def test_defaults_match_paper_sparsity_assumption(self):
        workload = WorkloadModel(num_vars=20)
        assert workload.dense_fraction == pytest.approx(0.10)
        assert workload.one_fraction == pytest.approx(0.45)
        assert workload.zero_fraction == pytest.approx(0.45)

    def test_num_gates(self):
        assert WorkloadModel(num_vars=17).num_gates == 1 << 17

    def test_scalar_counts(self):
        workload = WorkloadModel(num_vars=10)
        assert workload.dense_witness_scalars == round(0.1 * 1024)
        assert workload.one_witness_scalars == round(0.45 * 1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadModel(num_vars=0)
        with pytest.raises(ValueError):
            WorkloadModel(num_vars=10, dense_fraction=0.5, one_fraction=0.1, zero_fraction=0.1)
        with pytest.raises(ValueError):
            WorkloadModel(
                num_vars=10, dense_fraction=-0.1, one_fraction=0.6, zero_fraction=0.5
            )

    def test_paper_table3_sizes(self):
        models = WorkloadModel.paper_table3()
        assert [m.num_vars for m in models] == [17, 20, 21, 22, 23]
        assert models[0].name == "Zcash"
