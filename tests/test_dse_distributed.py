"""Tests for the distributed design-space exploration (``repro.dse``).

The acceptance surface of ISSUE 7: the online Pareto accumulator agrees
exactly with the batch frontier (shuffles, exact-cost ties, duplicates
included), a :class:`~repro.dse.SweepPlan` enumerates/shards/round-trips
deterministically, ``run_sweep`` produces identical results serially and
through the fork pool, the engine memoizes ``simulate_config`` per
(config fingerprint, workload), the service's ``POST /simulate`` /
``POST /sweep`` validate on the wire (bad chip configs are a 400, never a
failed shard) and stream NDJSON progress, and — the headline — a
500-point sweep through a real spawned 2-backend cluster returns the
*same Pareto frontier* as the serial in-process path.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api import EngineConfig, ProverEngine
from repro.api.parallel import fork_available
from repro.cluster import ClusterRouter, RouterConfig
from repro.core import DesignSpaceExplorer, WorkloadModel, ZkSpeedConfig
from repro.core.config import (
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    design_space_size,
    enumerate_design_space,
)
from repro.core.pareto import OnlineParetoFront, pareto_frontier
from repro.dse import (
    SweepPlan,
    frontier_for_points,
    merge_shard_points,
    point_costs,
    run_sweep,
)
from repro.service import (
    BackgroundServer,
    ProofService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

#: A restricted grid whose frontier has interesting structure but whose
#: full cross-product stays test-sized (every knob pinned: 3*3*2*3 = 54).
SMALL_OVERRIDES = {
    "msm_cores": (1,),
    "msm_pes_per_core": (2, 8, 16),
    "msm_window_bits": (9,),
    "msm_points_per_pe": (2048,),
    "fracmle_pes": (1,),
    "sumcheck_pes": (1, 2, 8),
    "mle_update_pes": (4, 11),
    "mle_update_modmuls_per_pe": (4,),
    "bandwidth_gbs": (256.0, 512.0, 2048.0),
}


def frontier_signature(pareto: list[dict]) -> list[tuple]:
    """Comparable identity of a wire-format frontier: points, not just costs."""
    return [
        (p["index"], p["fingerprint"], p["runtime_ms"], p["area_mm2"])
        for p in pareto
    ]


# -- online frontier vs batch frontier ----------------------------------------


class TestOnlineParetoFront:
    def _random_points(self, seed: int, n: int = 200) -> list[tuple]:
        rng = random.Random(seed)
        # A coarse lattice forces plenty of exact cost collisions.
        return [
            (float(rng.randint(0, 20)), float(rng.randint(0, 20)), i)
            for i in range(n)
        ]

    def test_matches_batch_frontier_under_shuffles(self):
        for seed in range(5):
            points = self._random_points(seed)
            batch = pareto_frontier(
                points, cost_x=lambda p: p[0], cost_y=lambda p: p[1]
            )
            for shuffle_seed in range(4):
                shuffled = points[:]
                random.Random(shuffle_seed).shuffle(shuffled)
                online = OnlineParetoFront(
                    cost_x=lambda p: p[0], cost_y=lambda p: p[1]
                )
                for point in shuffled:
                    online.add(point, order=point[2])
                # Same surviving items (identity, not just costs), same order.
                assert online.points == batch

    def test_exact_tie_keeps_smallest_order(self):
        first, second = (1.0, 1.0, "a"), (1.0, 1.0, "b")
        for arrival in ([first, second], [second, first]):
            online = OnlineParetoFront(cost_x=lambda p: p[0], cost_y=lambda p: p[1])
            orders = {"a": 3, "b": 7}
            for point in arrival:
                online.add(point, order=orders[point[2]])
            assert online.points == [first]  # order 3 beats order 7, always

    def test_duplicate_point_is_idempotent(self):
        online = OnlineParetoFront(cost_x=lambda p: p[0], cost_y=lambda p: p[1])
        assert online.add((2.0, 3.0), order=5) is True
        assert online.add((2.0, 3.0), order=5) is False
        assert len(online) == 1

    def test_dominated_point_rejected_and_evictions_contiguous(self):
        online = OnlineParetoFront(cost_x=lambda p: p[0], cost_y=lambda p: p[1])
        for point in [(1.0, 10.0), (2.0, 5.0), (3.0, 4.0), (4.0, 2.0)]:
            online.add(point)
        assert online.add((2.5, 6.0)) is False  # dominated by (2, 5)
        assert online.add((1.5, 3.0)) is True  # evicts (2,5) and (3,4)
        assert online.costs() == [(1.0, 10.0), (1.5, 3.0), (4.0, 2.0)]

    def test_merge_preserves_orders(self):
        left = OnlineParetoFront(cost_x=lambda p: p[0], cost_y=lambda p: p[1])
        right = OnlineParetoFront(cost_x=lambda p: p[0], cost_y=lambda p: p[1])
        left.add((1.0, 1.0, "late"), order=9)
        right.add((1.0, 1.0, "early"), order=2)
        left.merge(right)
        assert left.points == [(1.0, 1.0, "early")]

    def test_matches_explorer_global_pareto(self):
        """The streaming frontier reproduces the seed's batch DSE exactly."""
        explorer = DesignSpaceExplorer(WorkloadModel(num_vars=16))
        points = explorer.sweep(overrides=dict(SMALL_OVERRIDES), max_points=None)
        batch = explorer.global_pareto(points)
        online = OnlineParetoFront(
            cost_x=lambda p: p.runtime_ms, cost_y=lambda p: p.area_mm2
        )
        for order, point in enumerate(points):
            online.add(point, order=order)
        assert online.points == batch


# -- sweep plans --------------------------------------------------------------


class TestSweepPlan:
    def test_needs_workload_coordinates(self):
        with pytest.raises(ValueError):
            SweepPlan()

    def test_configs_and_overrides_are_exclusive(self):
        config = ZkSpeedConfig.paper_default()
        with pytest.raises(ValueError):
            SweepPlan(num_vars=10, configs=(config,), overrides={"msm_cores": (1,)})

    def test_unknown_knob_rejected_at_construction(self):
        with pytest.raises(KeyError):
            SweepPlan(num_vars=10, overrides={"warp_drives": (1, 2)})

    def test_total_points_matches_enumeration(self):
        for max_points in (None, 7, 50, 10**6):
            plan = SweepPlan(
                num_vars=12, overrides=SMALL_OVERRIDES, max_points=max_points
            )
            assert plan.total_points() == sum(1 for _ in plan.iter_configs())
        assert plan.grid_size() == design_space_size(dict(SMALL_OVERRIDES))

    def test_enumeration_matches_design_space(self):
        plan = SweepPlan(num_vars=12, overrides=SMALL_OVERRIDES, max_points=11)
        expected = list(
            enumerate_design_space(overrides=dict(SMALL_OVERRIDES), max_points=11)
        )
        assert [config for _, config in plan.iter_configs()] == expected

    def test_shards_partition_the_plan(self):
        plan = SweepPlan(num_vars=12, overrides=SMALL_OVERRIDES, max_points=40)
        everything = list(plan.iter_configs())
        for shard_count in (1, 2, 3, 5):
            shards = [plan.shard_items(s, shard_count) for s in range(shard_count)]
            recombined = sorted(
                (item for shard in shards for item in shard), key=lambda t: t[0]
            )
            assert recombined == everything
            for index, shard in enumerate(shards):
                assert all(i % shard_count == index for i, _ in shard)
        with pytest.raises(ValueError):
            plan.shard_items(3, 3)

    def test_wire_roundtrip(self):
        plans = [
            SweepPlan(scenario="zcash", max_points=100),
            SweepPlan(num_vars=14, overrides=SMALL_OVERRIDES, max_points=None),
            SweepPlan(
                scenario="mock",
                num_vars=9,
                configs=(
                    ZkSpeedConfig.paper_default(),
                    ZkSpeedConfig.paper_default().with_bandwidth(512.0),
                ),
            ),
        ]
        for plan in plans:
            body = json.loads(json.dumps(plan.to_wire()))  # through real JSON
            assert SweepPlan.from_wire(body) == plan

    def test_from_wire_rejects_junk_with_value_error(self):
        bad_bodies = [
            "not an object",
            {},  # no workload coordinates
            {"scenario": 7},
            {"num_vars": "ten"},
            {"num_vars": 10, "max_points": True},
            {"num_vars": 10, "overrides": {"msm_cores": "1,2"}},
            {"num_vars": 10, "overrides": {"warp_drives": [1]}},  # KeyError wrapped
            {"num_vars": 10, "configs": "nope"},
            {"num_vars": 10, "configs": [{"msm_cores": -1}]},  # invalid config
            {"num_vars": 10, "configs": [{"warp_drives": 2}]},  # unknown field
        ]
        for body in bad_bodies:
            with pytest.raises(ValueError):
                SweepPlan.from_wire(body)

    def test_workload_resolves_scenario_paper_size(self):
        from repro.api.scenarios import resolve_scenario

        plan = SweepPlan(scenario="zcash")
        assert plan.workload().num_vars == resolve_scenario("zcash").paper_log_size
        assert SweepPlan(scenario="zcash", num_vars=9).workload().num_vars == 9
        assert SweepPlan(num_vars=13).workload().num_vars == 13


# -- the sweep runner ---------------------------------------------------------


class TestRunSweep:
    PLAN = SweepPlan(num_vars=14, overrides=SMALL_OVERRIDES, max_points=None)

    def test_serial_sweep_point_integrity(self):
        result = run_sweep(self.PLAN)
        assert result.mode == "serial"
        assert len(result.points) == self.PLAN.total_points()
        assert [p["index"] for p in result.points] == list(range(len(result.points)))
        for point in result.points:
            assert point_costs(point) == (point["runtime_ms"], point["area_mm2"])
            assert point["fingerprint"] == config_fingerprint(
                config_from_dict(point["config"])
            )

    def test_serial_matches_explorer_costs(self):
        """The runner's costs are the seed explorer's, point for point."""
        result = run_sweep(self.PLAN)
        explorer = DesignSpaceExplorer(self.PLAN.workload())
        for point in result.points[:: max(1, len(result.points) // 7)]:
            reference = explorer.evaluate(config_from_dict(point["config"]))
            assert point["runtime_ms"] == reference.runtime_ms
            assert point["area_mm2"] == reference.area_mm2
            assert point["total_cycles"] == reference.report.total_cycles

    def test_engine_path_equals_plain_path(self):
        with ProverEngine(EngineConfig()) as engine:
            via_engine = engine.sweep(self.PLAN)
        assert via_engine.points == run_sweep(self.PLAN).points

    def test_shard_merge_equals_full_sweep_any_completion_order(self):
        full = run_sweep(self.PLAN)
        shard_results = [
            run_sweep(self.PLAN, items=self.PLAN.shard_items(s, 3)) for s in range(3)
        ]
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            merged, frontier = merge_shard_points(
                self.PLAN, [shard_results[i].points for i in order]
            )
            assert merged == full.points
            assert frontier.points == full.frontier.points

    def test_progress_callback_counts_up_to_total(self):
        seen: list[tuple] = []
        run_sweep(self.PLAN, on_progress=lambda *args: seen.append(args))
        assert seen[-1] == (
            self.PLAN.total_points(),
            self.PLAN.total_points(),
            len(run_sweep(self.PLAN).frontier),
        )
        assert all(done <= total for done, total, _ in seen)

    @needs_fork
    def test_workers_sweep_identical_to_serial(self):
        serial = run_sweep(self.PLAN)
        parallel = run_sweep(self.PLAN, workers=2)
        assert parallel.mode == "workers"
        assert parallel.points == serial.points
        assert parallel.frontier.points == serial.frontier.points
        assert parallel.frontier.costs() == serial.frontier.costs()

    def test_frontier_for_points_is_order_independent(self):
        points = run_sweep(self.PLAN).points
        shuffled = points[:]
        random.Random(3).shuffle(shuffled)
        assert (
            frontier_for_points(shuffled).points
            == frontier_for_points(points).points
        )


# -- engine memoization -------------------------------------------------------


class TestSimulationMemoization:
    def test_repeat_simulation_hits_cache(self):
        with ProverEngine(EngineConfig()) as engine:
            first = engine.simulate("zcash")
            assert engine.cache_stats.sim_misses == 1
            second = engine.simulate("zcash")
            assert engine.cache_stats.sim_hits == 1
            assert second is first  # the memo returns the same report object
            assert engine.cache_contents()["simulations_cached"] == 1

    def test_distinct_configs_and_workloads_miss(self):
        with ProverEngine(EngineConfig()) as engine:
            engine.simulate("zcash")
            engine.simulate("zcash", bandwidth_gbs=512.0)
            engine.simulate("zcash", num_vars=12)
            assert engine.cache_stats.sim_misses == 3
            assert engine.cache_stats.sim_hits == 0

    def test_cache_is_bounded(self):
        with ProverEngine(EngineConfig()) as engine:
            engine.SIM_CACHE_SIZE = 4
            for num_vars in range(10, 17):
                engine.simulate("mock", num_vars=num_vars)
            assert engine.cache_contents()["simulations_cached"] == 4


# -- the served surface -------------------------------------------------------


@pytest.fixture(scope="module")
def sim_server():
    server = BackgroundServer(
        ProofService(ServiceConfig(port=0), engine=ProverEngine(EngineConfig()))
    ).start()
    try:
        yield server
    finally:
        engine = server.service.engine
        server.stop()
        engine.close()


@pytest.fixture(scope="module")
def sim_client(sim_server):
    with ServiceClient(port=sim_server.port, timeout=120.0) as client:
        yield client


class TestServedSimulate:
    def test_scenarios_advertise_capabilities(self, sim_client):
        entries = {entry["name"]: entry for entry in sim_client.scenarios()}
        assert "simulate" in entries["zcash"]["capabilities"]
        assert "prove" in entries["zcash"]["capabilities"]

    def test_simulate_roundtrip_and_cache_flag(self, sim_client):
        first = sim_client.simulate("zcash", bandwidth_gbs=999.5)
        assert first["cached"] is False
        assert first["workload"] and first["num_vars"] == 17  # paper size
        assert first["total_cycles"] > 0
        assert first["chip_config"]["bandwidth_gbs"] == 999.5
        second = sim_client.simulate("zcash", bandwidth_gbs=999.5)
        assert second["cached"] is True
        assert second["total_cycles"] == first["total_cycles"]
        assert second["steps"] == first["steps"]

    def test_simulate_matches_direct_engine(self, sim_client):
        served = sim_client.simulate("rescue")
        with ProverEngine(EngineConfig()) as engine:
            direct = engine.simulate("rescue")
        assert served["total_cycles"] == direct.total_cycles
        assert served["runtime_ms"] == direct.total_runtime_ms
        assert served["area_mm2"] == direct.total_area_mm2

    def test_bad_chip_config_is_a_400(self, sim_client):
        with pytest.raises(ServiceError) as excinfo:
            sim_client.simulate("zcash", chip_config={"msm_cores": "three"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            sim_client.simulate("zcash", num_vars=4000)
        assert excinfo.value.status == 400

    def test_unknown_scenario_is_a_400(self, sim_client):
        with pytest.raises(ServiceError) as excinfo:
            sim_client.simulate("atlantis")
        assert excinfo.value.status == 400

    def test_healthz_surfaces_sim_cache(self, sim_client):
        sim_client.simulate("zcash")
        body = sim_client.healthz()
        assert body["engine"]["cache"]["simulations_cached"] >= 1


class TestServedSweep:
    PLAN = SweepPlan(num_vars=14, overrides=SMALL_OVERRIDES, max_points=None)

    def _overrides_wire(self):
        return {k: list(v) for k, v in SMALL_OVERRIDES.items()}

    def test_sweep_matches_local_serial(self, sim_client):
        body = sim_client.sweep(
            num_vars=14, overrides=self._overrides_wire(), max_points=None
        )
        local = run_sweep(self.PLAN)
        assert body["total_points"] == len(local.points)
        assert frontier_signature(body["pareto"]) == frontier_signature(
            local.to_wire()["pareto"]
        )

    def test_include_points_returns_identical_point_list(self, sim_client):
        body = sim_client.sweep(
            num_vars=14,
            overrides=self._overrides_wire(),
            max_points=None,
            include_points=True,
        )
        assert body["points"] == run_sweep(self.PLAN).points

    def test_manual_shards_merge_to_full_frontier(self, sim_client):
        shard_bodies = [
            sim_client.sweep(
                num_vars=14,
                overrides=self._overrides_wire(),
                max_points=None,
                shard=(index, 2),
                include_points=True,
            )
            for index in range(2)
        ]
        merged, frontier = merge_shard_points(
            self.PLAN, [body["points"] for body in shard_bodies]
        )
        local = run_sweep(self.PLAN)
        assert merged == local.points
        assert frontier.points == local.frontier.points

    def test_streamed_sweep_reports_progress_then_result(self, sim_client):
        events: list[dict] = []
        result = sim_client.sweep(
            num_vars=14,
            overrides=self._overrides_wire(),
            max_points=None,
            stream=True,
            on_event=events.append,
        )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "result"
        assert "progress" in kinds
        assert events[0]["total_points"] == self.PLAN.total_points()
        final_progress = [e for e in events if e["event"] == "progress"][-1]
        assert final_progress["done"] == self.PLAN.total_points()
        assert frontier_signature(result["pareto"]) == frontier_signature(
            run_sweep(self.PLAN).to_wire()["pareto"]
        )

    def test_invalid_sweeps_are_rejected_on_the_wire(self, sim_client):
        for kwargs in (
            dict(num_vars=14, overrides={"warp_drives": [1]}),
            dict(num_vars=14, overrides={"msm_cores": []}),
            dict(scenario="atlantis"),
            dict(num_vars=14, max_points=10**9),
            dict(num_vars=14, shard=(5, 2)),
        ):
            with pytest.raises(ServiceError) as excinfo:
                sim_client.sweep(**kwargs)
            assert excinfo.value.status == 400

    def test_metrics_count_sweeps_and_points(self, sim_client):
        before = sim_client.metrics()["sweeps"]
        sim_client.sweep(num_vars=12, overrides=self._overrides_wire(), max_points=20)
        evaluated = SweepPlan(
            num_vars=12, overrides=SMALL_OVERRIDES, max_points=20
        ).total_points()
        after = sim_client.metrics()["sweeps"]
        assert after["count"] == before["count"] + 1
        assert after["points_total"] == before["points_total"] + evaluated
        assert after["last_pareto_size"] >= 1


# -- the cluster surface ------------------------------------------------------


@pytest.fixture(scope="module")
def sim_cluster():
    backends = [
        BackgroundServer(
            ProofService(ServiceConfig(port=0), engine=ProverEngine(EngineConfig()))
        ).start()
        for _ in range(2)
    ]
    router_server = BackgroundServer(
        ClusterRouter(
            RouterConfig(port=0, health_interval_s=0.5, request_timeout_s=120.0),
            backends=[f"127.0.0.1:{backend.port}" for backend in backends],
        )
    ).start()
    try:
        with ServiceClient(port=router_server.port, timeout=120.0) as client:
            yield client
    finally:
        router_server.stop()
        for backend in backends:
            engine = backend.service.engine
            backend.stop()
            engine.close()


class TestClusterSweep:
    PLAN = SweepPlan(num_vars=14, overrides=SMALL_OVERRIDES, max_points=None)

    def _overrides_wire(self):
        return {k: list(v) for k, v in SMALL_OVERRIDES.items()}

    def test_routed_simulate_carries_served_by(self, sim_cluster):
        body = sim_cluster.simulate("zcash")
        assert body["served_by"].startswith("127.0.0.1:")
        assert body["total_cycles"] > 0

    def test_cluster_sweep_shards_across_both_backends(self, sim_cluster):
        body = sim_cluster.sweep(
            num_vars=14, overrides=self._overrides_wire(), max_points=None
        )
        assert body["mode"] == "cluster"
        shards = body["shards"]
        assert len(shards) == 2
        assert len({shard["served_by"] for shard in shards}) == 2
        assert sum(shard["points"] for shard in shards) == body["total_points"]
        local = run_sweep(self.PLAN)
        assert frontier_signature(body["pareto"]) == frontier_signature(
            local.to_wire()["pareto"]
        )

    def test_cluster_sweep_with_points_matches_serial_points(self, sim_cluster):
        body = sim_cluster.sweep(
            num_vars=14,
            overrides=self._overrides_wire(),
            max_points=None,
            include_points=True,
        )
        assert body["points"] == run_sweep(self.PLAN).points

    def test_streamed_cluster_sweep_emits_shard_events(self, sim_cluster):
        events: list[dict] = []
        result = sim_cluster.sweep(
            num_vars=12,
            overrides=self._overrides_wire(),
            max_points=30,
            stream=True,
            on_event=events.append,
        )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start" and kinds[-1] == "result"
        assert kinds.count("shard") == 2
        assert result["mode"] == "cluster"

    def test_invalid_sweep_rejected_at_the_router(self, sim_cluster):
        with pytest.raises(ServiceError) as excinfo:
            sim_cluster.sweep(num_vars=14, overrides={"warp_drives": [1]})
        assert excinfo.value.status == 400

    def test_router_metrics_aggregate_sim_counters(self, sim_cluster):
        sim_cluster.simulate("rollup")
        body = sim_cluster.metrics()
        assert body["router"]["sweeps_total"] >= 1
        aggregate = body["aggregate"]
        assert aggregate["simulations_total"] >= 1
        assert aggregate["sweep_points_total"] >= self.PLAN.total_points()


# -- the acceptance path: 500 points, spawned children ------------------------


class TestSweepAcceptance:
    """ISSUE 7's headline check, against real ``repro serve`` subprocesses."""

    PLAN = SweepPlan(scenario="zcash", max_points=500)

    def test_500_point_sweep_identical_serial_workers_cluster(self):
        serial = run_sweep(self.PLAN)
        assert len(serial.points) == 500
        reference = frontier_signature(serial.to_wire()["pareto"])

        if fork_available():
            with ProverEngine(EngineConfig(workers=2)) as engine:
                workers = engine.sweep(self.PLAN)
            assert workers.mode == "workers"
            assert workers.points == serial.points
            assert frontier_signature(workers.to_wire()["pareto"]) == reference

        router_server = BackgroundServer(
            ClusterRouter(
                RouterConfig(port=0, health_interval_s=1.0, request_timeout_s=300.0),
                spawn=2,
            )
        ).start()
        try:
            with ServiceClient(port=router_server.port, timeout=300.0) as client:
                body = client.sweep(scenario="zcash", max_points=500)
        finally:
            router_server.stop()
        assert body["mode"] == "cluster"
        assert body["total_points"] == 500
        assert len(body["shards"]) == 2
        assert len({shard["served_by"] for shard in body["shards"]}) == 2
        assert frontier_signature(body["pareto"]) == reference


# -- CLI ----------------------------------------------------------------------


class TestSweepCli:
    def test_local_sweep_prints_frontier(self, capsys, tmp_path):
        from repro.cli import main

        output = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep",
                    "--log-gates", "12",
                    "--max-points", "40",
                    "--override", "bandwidth_gbs=256,2048",
                    "--output", str(output),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "evaluated 40 configurations" in stdout
        saved = json.loads(output.read_text())
        assert saved["total_points"] == 40
        assert len(saved["points"]) == 40
        assert saved["pareto_size"] == len(saved["pareto"])

    def test_override_parsing_rejects_unknown_knob(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--log-gates", "12", "--override", "warp=1"]) == 2
        assert "warp" in capsys.readouterr().err

    def test_sweep_needs_a_workload(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--max-points", "10"]) == 2

    def test_submit_simulate_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "--url", "http://127.0.0.1:1", "--simulate", "--count", "3"]
        )
        assert args.simulate is True
        assert args.count == 3
        assert args.log_gates is None
