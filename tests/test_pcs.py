"""Tests for the multilinear KZG polynomial commitment scheme."""

import random

import pytest

from repro.curves.msm import MSMStatistics
from repro.fields import Fr
from repro.mle import MultilinearPolynomial
from repro.pcs import commit, open_at_point, verify_opening
from repro.pcs.multilinear_kzg import PCSError, combine_commitments
from repro.pcs.srs import setup


@pytest.fixture()
def rng():
    return random.Random(61)


class TestSetup:
    def test_setup_structure(self, srs4):
        assert srs4.num_vars == 4
        assert len(srs4.prover_key.lagrange_tables) == 4
        assert [len(t) for t in srs4.prover_key.lagrange_tables] == [16, 8, 4, 2]
        assert len(srs4.verifier_key.tau_g2) == 4
        assert srs4.verifier_key.trapdoor is not None

    def test_setup_deterministic_with_tau(self):
        tau = Fr.elements([3, 5, 7])
        a = setup(3, tau=tau)
        b = setup(3, tau=tau)
        assert a.prover_key.lagrange_tables[0] == b.prover_key.lagrange_tables[0]

    def test_setup_discard_trapdoor(self):
        srs = setup(2, seed=1, keep_trapdoor=False)
        assert srs.verifier_key.trapdoor is None

    def test_setup_validation(self):
        with pytest.raises(ValueError):
            setup(0)
        with pytest.raises(ValueError):
            setup(3, tau=Fr.elements([1, 2]))

    def test_lagrange_basis_encodes_eq_table(self, srs4):
        """The commitment to a table must equal [f(tau)]_1."""
        tau = srs4.verifier_key.trapdoor
        rng = random.Random(0)
        f = MultilinearPolynomial.random(4, rng)
        commitment = commit(srs4.prover_key, f)
        from repro.curves import g1_generator

        expected = g1_generator().scalar_mul(f.evaluate(tau).value).to_affine()
        assert commitment.point == expected


class TestCommit:
    def test_commitment_is_deterministic(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        assert commit(srs4.prover_key, f) == commit(srs4.prover_key, f)

    def test_commitment_binds_to_table(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        g = f.clone()
        g.evaluations[3] = g.evaluations[3] + Fr(1)
        assert commit(srs4.prover_key, f) != commit(srs4.prover_key, g)

    def test_sparse_commit_matches_dense(self, srs4):
        values = [0, 1, 1, 0, 1, 0, 5, 1, 0, 0, 1, 1, 7, 0, 1, 0]
        f = MultilinearPolynomial.from_ints(4, values)
        assert commit(srs4.prover_key, f, sparse=True) == commit(srs4.prover_key, f)

    def test_commit_size_mismatch(self, srs4, rng):
        with pytest.raises(PCSError):
            commit(srs4.prover_key, MultilinearPolynomial.random(3, rng))

    def test_commit_collects_stats(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        stats = MSMStatistics()
        commit(srs4.prover_key, f, stats=stats)
        assert stats.num_points == 16
        assert stats.total_padds > 0

    def test_homomorphic_combination(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        g = MultilinearPolynomial.random(4, rng)
        alpha, beta = Fr.random(rng), Fr.random(rng)
        combined_poly = f.scale(alpha) + g.scale(beta)
        lhs = commit(srs4.prover_key, combined_poly)
        rhs = combine_commitments(
            [commit(srs4.prover_key, f), commit(srs4.prover_key, g)], [alpha, beta]
        )
        assert lhs == rhs

    def test_combine_commitments_validation(self, srs4, rng):
        c = commit(srs4.prover_key, MultilinearPolynomial.random(4, rng))
        with pytest.raises(PCSError):
            combine_commitments([c], [Fr(1), Fr(2)])


class TestOpenAndVerify:
    def test_open_returns_correct_value(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        z = [Fr.random(rng) for _ in range(4)]
        value, proof = open_at_point(srs4.prover_key, f, z)
        assert value == f.evaluate(z)
        assert len(proof.quotients) == 4

    def test_trapdoor_verification_accepts_honest_proof(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        z = [Fr.random(rng) for _ in range(4)]
        commitment = commit(srs4.prover_key, f)
        value, proof = open_at_point(srs4.prover_key, f, z)
        assert verify_opening(srs4.verifier_key, commitment, z, value, proof, use_pairing=False)

    def test_trapdoor_verification_rejects_wrong_value(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        z = [Fr.random(rng) for _ in range(4)]
        commitment = commit(srs4.prover_key, f)
        value, proof = open_at_point(srs4.prover_key, f, z)
        assert not verify_opening(
            srs4.verifier_key, commitment, z, value + Fr(1), proof, use_pairing=False
        )

    def test_trapdoor_verification_rejects_wrong_commitment(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        g = MultilinearPolynomial.random(4, rng)
        z = [Fr.random(rng) for _ in range(4)]
        value, proof = open_at_point(srs4.prover_key, f, z)
        wrong_commitment = commit(srs4.prover_key, g)
        assert not verify_opening(
            srs4.verifier_key, wrong_commitment, z, value, proof, use_pairing=False
        )

    def test_verification_rejects_truncated_proof(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        z = [Fr.random(rng) for _ in range(4)]
        commitment = commit(srs4.prover_key, f)
        value, proof = open_at_point(srs4.prover_key, f, z)
        proof.quotients.pop()
        assert not verify_opening(
            srs4.verifier_key, commitment, z, value, proof, use_pairing=False
        )

    def test_open_at_boolean_point_matches_table(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        z = [Fr(1), Fr(0), Fr(1), Fr(1)]
        value, _ = open_at_point(srs4.prover_key, f, z)
        assert value == f[0b1101]

    def test_open_validation(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        with pytest.raises(PCSError):
            open_at_point(srs4.prover_key, f, [Fr(1)] * 3)
        with pytest.raises(PCSError):
            open_at_point(srs4.prover_key, MultilinearPolynomial.random(3, rng), [Fr(1)] * 3)

    def test_verify_validation(self, srs4, rng):
        f = MultilinearPolynomial.random(4, rng)
        z = [Fr.random(rng) for _ in range(4)]
        commitment = commit(srs4.prover_key, f)
        value, proof = open_at_point(srs4.prover_key, f, z)
        with pytest.raises(PCSError):
            verify_opening(srs4.verifier_key, commitment, z[:-1], value, proof)

    def test_trapdoor_mode_unavailable_when_discarded(self, rng):
        srs = setup(2, seed=3, keep_trapdoor=False)
        f = MultilinearPolynomial.random(2, rng)
        z = [Fr.random(rng) for _ in range(2)]
        commitment = commit(srs.prover_key, f)
        value, proof = open_at_point(srs.prover_key, f, z)
        with pytest.raises(PCSError):
            verify_opening(srs.verifier_key, commitment, z, value, proof, use_pairing=False)

    @pytest.mark.slow
    def test_pairing_verification_round_trip(self, rng):
        srs = setup(3, seed=9)
        f = MultilinearPolynomial.random(3, rng)
        z = [Fr.random(rng) for _ in range(3)]
        commitment = commit(srs.prover_key, f)
        value, proof = open_at_point(srs.prover_key, f, z)
        assert verify_opening(srs.verifier_key, commitment, z, value, proof, use_pairing=True)
        assert not verify_opening(
            srs.verifier_key, commitment, z, value + Fr(1), proof, use_pairing=True
        )

    def test_pairing_and_trapdoor_agree(self, rng):
        """Both verification paths must accept the same honest proof."""
        srs = setup(2, seed=10)
        f = MultilinearPolynomial.random(2, rng)
        z = [Fr.random(rng) for _ in range(2)]
        commitment = commit(srs.prover_key, f)
        value, proof = open_at_point(srs.prover_key, f, z)
        assert verify_opening(srs.verifier_key, commitment, z, value, proof, use_pairing=False)
        assert verify_opening(srs.verifier_key, commitment, z, value, proof, use_pairing=True)
