"""Tests for the memory model and the protocol-step scheduler."""

import pytest

from repro.core import WorkloadModel, ZkSpeedConfig
from repro.core.memory import MemoryModel
from repro.core.scheduler import Phase, ProtocolScheduler, StepTiming

CONFIG = ZkSpeedConfig.paper_default()


class TestMemoryModel:
    def test_compression_ratio_matches_section_4_6(self):
        """On-chip MLE compression saves 10-11x across problem sizes."""
        memory = MemoryModel(CONFIG)
        for num_vars in (17, 20, 23):
            plan = memory.plan(num_vars)
            assert 9.0 <= plan.compression_ratio <= 13.0

    def test_compression_disabled(self):
        memory = MemoryModel(ZkSpeedConfig(mle_compression=False))
        plan = memory.plan(20)
        assert plan.compression_ratio == 1.0
        assert plan.global_sram_mb == pytest.approx(8 * (1 << 20) * 32 / 1e6, rel=0.01)

    def test_streaming_only_configuration(self):
        memory = MemoryModel(ZkSpeedConfig(store_input_mles_on_chip=False))
        plan = memory.plan(20)
        assert plan.global_sram_mb < 1.0

    def test_sram_grows_with_problem_size(self):
        memory = MemoryModel(CONFIG)
        assert memory.sram_area_mm2(23) > 6 * memory.sram_area_mm2(20)

    def test_phy_plan_selection(self):
        assert MemoryModel(ZkSpeedConfig(bandwidth_gbs=128.0)).plan(20).phy_kind == "ddr"
        assert MemoryModel(ZkSpeedConfig(bandwidth_gbs=512.0)).plan(20).phy_kind == "hbm2"
        plan = MemoryModel(ZkSpeedConfig(bandwidth_gbs=4096.0)).plan(20)
        assert plan.phy_kind == "hbm3" and plan.phy_count == 4

    def test_memory_cycles(self):
        memory = MemoryModel(ZkSpeedConfig(bandwidth_gbs=1024.0))
        assert memory.memory_cycles(1024.0) == pytest.approx(1.0)
        assert memory.memory_cycles(0.0) == 0.0

    def test_power_positive(self):
        memory = MemoryModel(CONFIG)
        assert memory.sram_power_w(20) > 0
        assert memory.phy_power_w() > 0


class TestPhaseAndStepTiming:
    def test_phase_latency_is_max_of_compute_and_memory(self):
        phase = Phase("x", compute_cycles=100.0, memory_bytes=2048.0)
        assert phase.latency(1024.0) == pytest.approx(100.0)
        assert phase.latency(10.0) == pytest.approx(204.8)

    def test_step_totals_sum_phase_latencies(self):
        step = StepTiming(
            name="s",
            phases=[
                Phase("a", 100.0, 0.0),
                Phase("b", 10.0, 10_000.0),
            ],
            bandwidth_bytes_per_cycle=100.0,
        )
        assert step.compute_cycles == 110.0
        assert step.memory_cycles == 100.0
        assert step.total_cycles == pytest.approx(200.0)
        assert not step.is_memory_bound

    def test_memory_bound_flag(self):
        step = StepTiming(
            name="s",
            phases=[Phase("a", 10.0, 10_000.0)],
            bandwidth_bytes_per_cycle=10.0,
        )
        assert step.is_memory_bound


class TestScheduler:
    def test_schedule_has_five_steps_in_order(self):
        scheduler = ProtocolScheduler(CONFIG)
        steps = scheduler.schedule(WorkloadModel(num_vars=20))
        assert [s.name for s in steps] == [
            "witness_commits",
            "gate_identity",
            "wire_identity",
            "batch_evaluations",
            "poly_open",
        ]
        assert all(s.total_cycles > 0 for s in steps)

    def test_wire_identity_dominates_runtime(self):
        """Figure 12b: Wire Identity is the largest step on zkSpeed."""
        scheduler = ProtocolScheduler(CONFIG)
        steps = scheduler.schedule(WorkloadModel(num_vars=20))
        by_name = {s.name: s.total_cycles for s in steps}
        assert by_name["wire_identity"] == max(by_name.values())

    def test_runtime_scales_roughly_linearly_with_problem_size(self):
        scheduler = ProtocolScheduler(CONFIG)
        small = sum(s.total_cycles for s in scheduler.schedule(WorkloadModel(num_vars=18)))
        large = sum(s.total_cycles for s in scheduler.schedule(WorkloadModel(num_vars=21)))
        assert large / small == pytest.approx(8.0, rel=0.25)

    def test_more_bandwidth_never_hurts(self):
        workload = WorkloadModel(num_vars=20)
        runtimes = []
        for bandwidth in (64.0, 256.0, 1024.0, 4096.0):
            scheduler = ProtocolScheduler(ZkSpeedConfig(bandwidth_gbs=bandwidth))
            runtimes.append(sum(s.total_cycles for s in scheduler.schedule(workload)))
        assert runtimes == sorted(runtimes, reverse=True)

    def test_low_bandwidth_makes_sumcheck_steps_memory_bound(self):
        workload = WorkloadModel(num_vars=20)
        low = ProtocolScheduler(ZkSpeedConfig(bandwidth_gbs=64.0)).gate_identity_step(workload)
        high = ProtocolScheduler(ZkSpeedConfig(bandwidth_gbs=4096.0, sumcheck_pes=1)).gate_identity_step(workload)
        assert low.is_memory_bound
        assert not high.is_memory_bound

    def test_more_msm_pes_speed_up_witness_commits(self):
        workload = WorkloadModel(num_vars=20)
        slow = ProtocolScheduler(ZkSpeedConfig(msm_pes_per_core=1)).witness_commit_step(workload)
        fast = ProtocolScheduler(ZkSpeedConfig(msm_pes_per_core=16)).witness_commit_step(workload)
        assert slow.total_cycles > 5 * fast.total_cycles

    def test_msm_step_insensitive_to_bandwidth_at_high_compute(self):
        """MSMs are compute-bound (Figure 11): bandwidth barely changes them."""
        workload = WorkloadModel(num_vars=20)
        low_bw = ProtocolScheduler(
            ZkSpeedConfig(msm_pes_per_core=4, bandwidth_gbs=512.0)
        ).witness_commit_step(workload)
        high_bw = ProtocolScheduler(
            ZkSpeedConfig(msm_pes_per_core=4, bandwidth_gbs=4096.0)
        ).witness_commit_step(workload)
        assert low_bw.total_cycles == pytest.approx(high_bw.total_cycles, rel=0.10)

    def test_mle_compression_reduces_traffic(self):
        workload = WorkloadModel(num_vars=20)
        with_compression = ProtocolScheduler(ZkSpeedConfig(mle_compression=True)).schedule(workload)
        without = ProtocolScheduler(
            ZkSpeedConfig(mle_compression=False, store_input_mles_on_chip=False)
        ).schedule(workload)
        assert sum(s.memory_bytes for s in with_compression) < sum(
            s.memory_bytes for s in without
        )

    def test_unit_busy_cycles_recorded(self):
        scheduler = ProtocolScheduler(CONFIG)
        steps = scheduler.schedule(WorkloadModel(num_vars=18))
        busy_units = set()
        for step in steps:
            busy_units.update(step.unit_busy_cycles)
        assert {"msm", "sumcheck", "mle_update", "multifunction_tree", "fracmle",
                "construct_nd", "mle_combine", "sha3"} <= busy_units
