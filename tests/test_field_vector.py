"""Backend-parity and behavior tests for the FieldVector engine.

Property-style tests asserting that every installed vector backend (the
NumPy multi-limb Montgomery backend, the compiled native Montgomery
kernel, and any third-party registration) agrees with the pure-Python-int
reference backend on every vector operation, over both BLS12-381 prime
fields, including the edge cases the ISSUE calls out: the zero vector,
length-1 vectors, and values hugging the modulus.
"""

import random

import pytest

from repro.fields import Fq, Fr, available_backends, get_backend, set_default_backend
from repro.fields.backends import default_backend_for
from repro.fields.field import FieldElement
from repro.fields.vector import FieldVector

HAS_NUMPY = "numpy" in available_backends()
HAS_NATIVE = "native" in available_backends()

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
needs_native = pytest.mark.skipif(
    not HAS_NATIVE, reason="native extension not built"
)

#: Every installed backend other than the pure-Python reference; the parity
#: suite runs each of them against the reference (skipped when none exist).
ALT_BACKENDS = [name for name in available_backends() if name != "python"]

FIELDS = [Fr, Fq]
LENGTHS = [1, 2, 3, 8, 33, 130]


def _edge_values(field, n, rng):
    p = field.modulus
    edge_pool = [0, 1, 2, p - 1, p - 2, p // 2, (1 << 255) % p]
    values = [edge_pool[i % len(edge_pool)] for i in range(min(n, len(edge_pool)))]
    values += [rng.randrange(p) for _ in range(n - len(values))]
    return values


def _vectors(field, values, alt="numpy"):
    return (
        FieldVector.from_ints(field, values, get_backend("python")),
        FieldVector.from_ints(field, values, get_backend(alt)),
    )


@pytest.mark.parametrize("alt", ALT_BACKENDS or [pytest.param("none", marks=pytest.mark.skip(reason="only the python backend is installed"))])
@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
@pytest.mark.parametrize("n", LENGTHS)
class TestBackendParity:
    def test_roundtrip_and_elementwise_ops(self, field, n, alt):
        rng = random.Random(1000 + n)
        a_vals = _edge_values(field, n, rng)
        b_vals = _edge_values(field, n, random.Random(2000 + n))
        a_py, a_np = _vectors(field, a_vals, alt)
        b_py, b_np = _vectors(field, b_vals, alt)
        assert a_np.to_int_list() == a_vals
        assert (a_py + b_py).to_int_list() == (a_np + b_np).to_int_list()
        assert (a_py - b_py).to_int_list() == (a_np - b_np).to_int_list()
        assert (a_py * b_py).to_int_list() == (a_np * b_np).to_int_list()
        assert (-a_py).to_int_list() == (-a_np).to_int_list()

    def test_scalar_broadcast(self, field, n, alt):
        rng = random.Random(3000 + n)
        values = _edge_values(field, n, rng)
        a_py, a_np = _vectors(field, values, alt)
        for scalar in (0, 1, field.modulus - 1, rng.randrange(field.modulus)):
            assert a_py.scale(scalar).to_int_list() == a_np.scale(scalar).to_int_list()
            assert (
                a_py.add_scalar(scalar).to_int_list()
                == a_np.add_scalar(scalar).to_int_list()
            )
            assert (
                a_py.axpy(scalar, a_py).to_int_list()
                == a_np.axpy(scalar, a_np).to_int_list()
            )

    def test_reductions(self, field, n, alt):
        rng = random.Random(4000 + n)
        a_vals = _edge_values(field, n, rng)
        b_vals = [rng.randrange(field.modulus) for _ in range(n)]
        a_py, a_np = _vectors(field, a_vals, alt)
        b_py, b_np = _vectors(field, b_vals, alt)
        assert a_py.sum() == a_np.sum()
        assert a_py.dot(b_py) == a_np.dot(b_np)
        assert a_py.sum().value == sum(a_vals) % field.modulus

    def test_fold_matches_reference(self, field, n, alt):
        if n % 2:
            pytest.skip("fold needs even length")
        rng = random.Random(5000 + n)
        values = _edge_values(field, n, rng)
        r = rng.randrange(field.modulus)
        a_py, a_np = _vectors(field, values, alt)
        expected = [
            (values[2 * i] + r * (values[2 * i + 1] - values[2 * i])) % field.modulus
            for i in range(n // 2)
        ]
        assert a_py.fold(r).to_int_list() == expected
        assert a_np.fold(r).to_int_list() == expected

    def test_batch_inverse(self, field, n, alt):
        rng = random.Random(6000 + n)
        values = [v or 1 for v in _edge_values(field, n, rng)]
        a_py, a_np = _vectors(field, values, alt)
        inv_py = a_py.inverse().to_int_list()
        inv_np = a_np.inverse().to_int_list()
        assert inv_py == inv_np
        for v, i in zip(values, inv_py):
            assert v * i % field.modulus == 1

    def test_structural_ops(self, field, n, alt):
        rng = random.Random(7000 + n)
        values = _edge_values(field, n, rng)
        a_py, a_np = _vectors(field, values, alt)
        assert a_py == a_np  # cross-backend equality
        if n % 2 == 0:
            for (e, o) in (a_py.even_odd(), a_np.even_odd()):
                assert e.to_int_list() == values[0::2]
                assert o.to_int_list() == values[1::2]
        cat_py = a_py.concat(a_py)
        cat_np = a_np.concat(a_np)
        assert cat_py.to_int_list() == cat_np.to_int_list() == values + values
        assert a_py[n - 1] == a_np[n - 1] == FieldElement(values[-1], field)
        sl_py, sl_np = a_py[: n // 2], a_np[: n // 2]
        assert sl_py.to_int_list() == sl_np.to_int_list() == values[: n // 2]
        assert a_py.sparsity_counts() == a_np.sparsity_counts()


@pytest.mark.parametrize("field", FIELDS, ids=lambda f: f.name)
def test_zero_vector_everything(field):
    for backend in available_backends():
        z = FieldVector.zeros(field, 16, get_backend(backend))
        assert z.is_zero()
        assert z.sum().is_zero()
        assert (z + z).is_zero()
        assert (z * z).is_zero()
        assert (-z).is_zero()
        assert z.fold(5).is_zero()
        assert z.sparsity_counts() == (16, 0, 0)
        with pytest.raises(ZeroDivisionError):
            z.inverse()


def test_slices_never_alias_storage():
    """Full-range slices must be independent copies on every backend."""
    for backend in available_backends():
        vec = FieldVector.from_ints(Fr, [1, 2, 3, 4], get_backend(backend))
        window = vec[0:4]
        window[0] = Fr(99)
        assert vec.to_int_list() == [1, 2, 3, 4], backend
        even, _odd = FieldVector.from_ints(Fr, [7, 8], get_backend(backend)).even_odd()
        even[0] = Fr(0)  # length-1 halves must also be independent


def test_non_canonical_scalars_are_reduced():
    """Directly-constructed FieldElements may carry residues >= p."""
    from repro.fields import batch_inverse

    raw = FieldElement(Fr.modulus + 3, Fr)
    for backend in available_backends():
        vec = FieldVector.from_ints(Fr, [Fr.modulus - 1], get_backend(backend))
        assert vec.add_scalar(raw).to_int_list() == [2], backend
        vec[0] = raw
        assert vec.to_int_list() == [3], backend
    with pytest.raises(ZeroDivisionError):
        # residue exactly p is zero and must raise, not poison the batch
        batch_inverse([FieldElement(Fr.modulus, Fr), Fr(2)])


def test_mutation_parity():
    for backend in available_backends():
        vec = FieldVector.from_ints(Fr, [1, 2, 3, 4], get_backend(backend))
        vec[2] = Fr(99)
        vec[-1] = 7
        assert vec.to_int_list() == [1, 2, 99, 7]
        copy = vec.copy()
        copy[0] = Fr(0)
        assert vec[0] == Fr(1), "copy must not alias"


def test_equality_against_element_lists():
    values = [5, 0, 1, Fr.modulus - 1]
    for backend in available_backends():
        vec = FieldVector.from_ints(Fr, values, get_backend(backend))
        assert vec == [Fr(v) for v in values]
        assert vec == values
        assert not vec == [Fr(v + 1) for v in values]


@needs_numpy
def test_mixed_backend_binary_ops():
    rng = random.Random(9)
    values = [rng.randrange(Fr.modulus) for _ in range(12)]
    others = [rng.randrange(Fr.modulus) for _ in range(12)]
    a = FieldVector.from_ints(Fr, values, get_backend("python"))
    b = FieldVector.from_ints(Fr, others, get_backend("numpy"))
    expected = [(x + y) % Fr.modulus for x, y in zip(values, others)]
    assert (a + b).to_int_list() == expected
    assert (b + a.with_backend("numpy")).to_int_list() == expected


class TestSelectionPolicy:
    def test_explicit_override(self):
        set_default_backend("python")
        try:
            assert default_backend_for(1 << 20).name == "python"
        finally:
            set_default_backend(None)

    def test_auto_threshold(self):
        set_default_backend("auto")
        try:
            assert default_backend_for(4).name == "python"
            # The compiled kernel (priority 20, crossover 32) outranks NumPy
            # (priority 10, crossover 1024), which outranks pure Python.
            if HAS_NATIVE:
                expected_large = "native"
            elif HAS_NUMPY:
                expected_large = "numpy"
            else:
                expected_large = "python"
            assert default_backend_for(1 << 14).name == expected_large
            if HAS_NATIVE:
                from repro.fields.backends import NATIVE_AUTO_THRESHOLD

                assert default_backend_for(NATIVE_AUTO_THRESHOLD).name == "native"
                below = default_backend_for(NATIVE_AUTO_THRESHOLD - 1).name
                assert below == "python"
        finally:
            set_default_backend(None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            get_backend("cuda")
        with pytest.raises(KeyError):
            set_default_backend("cuda")

    def test_third_party_backend_participates_in_auto(self):
        """register_backend with a priority joins ``auto`` selection."""
        from repro.fields.backends import (
            PythonVectorBackend,
            register_backend,
            unregister_backend,
        )

        class LoudBackend(PythonVectorBackend):
            name = "loud"

        backend = LoudBackend()
        register_backend(backend, auto_priority=99, auto_min_length=8)
        set_default_backend("auto")
        try:
            assert get_backend("loud") is backend
            assert "loud" in available_backends()
            assert default_backend_for(8).name == "loud"
            assert default_backend_for(7).name == "python"
            vec = FieldVector.from_ints(Fr, list(range(10)))
            assert vec.backend.name == "loud"
            assert vec.to_int_list() == list(range(10))
        finally:
            set_default_backend(None)
            unregister_backend("loud")
        assert "loud" not in available_backends()
        assert default_backend_for(1 << 20).name != "loud"
        with pytest.raises(ValueError):
            unregister_backend("python")

    def test_proofs_identical_across_backends(self):
        """The whole protocol must be backend-invariant (acceptance criterion)."""
        from repro.circuits import mock_circuit
        from repro.pcs.srs import setup
        from repro.protocol.keys import preprocess
        from repro.protocol.prover import prove
        from repro.protocol.serialization import serialize_proof
        from repro.protocol.verifier import verify

        blobs = {}
        for backend in available_backends():
            set_default_backend(backend)
            try:
                srs = setup(4, seed=11)
                circuit = mock_circuit(4, seed=5)
                pk, vk = preprocess(circuit, srs)
                proof = prove(pk)
                assert verify(vk, proof)
                blobs[backend] = serialize_proof(proof)
            finally:
                set_default_backend(None)
        assert len(set(blobs.values())) == 1, sorted(blobs)


@needs_native
class TestNativeBackend:
    """Behaviors specific to the compiled Montgomery kernel."""

    def test_pickle_round_trip(self):
        import pickle

        vec = FieldVector.from_ints(Fr, [3, 1, 4, 1, 5], get_backend("native"))
        clone = pickle.loads(pickle.dumps(vec))
        assert clone.backend.name == "native"
        assert clone.to_int_list() == [3, 1, 4, 1, 5]
        clone[0] = Fr(9)  # unpickled storage must be writable and independent
        assert vec.to_int_list() == [3, 1, 4, 1, 5]

    def test_backend_unpickles_to_registry_singleton(self):
        import pickle

        backend = get_backend("native")
        assert pickle.loads(pickle.dumps(backend)) is backend

    def test_batch_inverse_reports_zero_index(self):
        vec = FieldVector.from_ints(Fr, [5, 7, 0, 11], get_backend("native"))
        with pytest.raises(ZeroDivisionError, match="element 2"):
            vec.inverse()

    def test_env_selection_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "native")
        assert default_backend_for(1).name == "native"
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "python")
        assert default_backend_for(1 << 20).name == "python"
