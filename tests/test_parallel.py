"""Parallel-execution subsystem tests.

Determinism is the contract: every sharded path (MSM windows, SumCheck
term-tables, whole proofs) must produce results — and proof bytes — that
are identical to the serial path, because the shards recombine with exact
group/field arithmetic.  These tests enforce that, plus the session pool's
lifecycle (lazy creation, reuse across proves, teardown on close) and the
satellite features (small-scalar sparse buckets, the SRS disk cache).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.api import EngineConfig, ProverEngine
from repro.api.parallel import (
    MSM_SCALARS_KEY,
    MleShardRunner,
    MsmShardRunner,
    SumcheckShardRunner,
    WorkerPool,
    _chunk_bounds,
    fork_available,
    point_table_ref,
    release_points,
    share_points,
    share_state,
    shared_value,
)
from repro.curves.bls12_381 import g1_generator
from repro.curves.msm import (
    MSMStatistics,
    classify_sparse_scalars,
    naive_msm,
    pippenger_msm,
    set_msm_shard_runner,
    sparse_msm,
)
from repro.fields.bls12_381 import Fr
from repro.mle.mle import MultilinearPolynomial
from repro.mle.virtual_poly import VirtualPolynomial
from repro.pcs.srs import load_srs, save_srs, setup_cached, srs_cache_path
from repro.fields import available_backends
from repro.fields.vector import FieldVector
from repro.mle.operations import set_mle_shard_runner
from repro.sumcheck.prover import prove_sumcheck, set_sumcheck_shard_runner
from repro.transcript.transcript import Transcript

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

#: Thresholds low enough that test-size circuits exercise every shard path.
PARALLEL_CONFIG = dict(
    workers=2, parallel_min_msm_points=4, parallel_min_sumcheck_size=4
)


@pytest.fixture
def msm_inputs():
    rng = random.Random(11)
    g = g1_generator()
    points = [(g * rng.randrange(1, 1 << 30)).to_affine() for _ in range(48)]
    scalars = [Fr.random(rng) for _ in range(48)]
    return scalars, points


@pytest.fixture
def pool():
    pool = WorkerPool(2)
    yield pool
    pool.close()


class TestChunkBounds:
    def test_covers_range_contiguously(self):
        for total in (1, 2, 5, 16, 17):
            for chunks in (1, 2, 3, 8, 40):
                bounds = _chunk_bounds(total, chunks)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == total
                for (_, end), (start, _) in zip(bounds, bounds[1:]):
                    assert end == start
                assert len(bounds) <= min(chunks, total)


@needs_fork
class TestMsmWindowSharding:
    def test_matches_serial_including_stats(self, msm_inputs, pool):
        scalars, points = msm_inputs
        serial_stats = MSMStatistics()
        serial = pippenger_msm(scalars, points, stats=serial_stats)
        set_msm_shard_runner(MsmShardRunner(pool, 2, min_points=1))
        try:
            parallel_stats = MSMStatistics()
            parallel = pippenger_msm(scalars, points, stats=parallel_stats)
        finally:
            set_msm_shard_runner(None)
        assert serial.to_affine() == parallel.to_affine()
        assert serial_stats == parallel_stats

    def test_shared_point_table_travels_by_reference(self, msm_inputs, pool):
        scalars, points = msm_inputs
        serial = pippenger_msm(scalars, points)
        share_points("test/msm-table", points)
        set_msm_shard_runner(MsmShardRunner(pool, 2, min_points=1))
        try:
            parallel = pippenger_msm(scalars, points)
        finally:
            set_msm_shard_runner(None)
        assert serial.to_affine() == parallel.to_affine()

    def test_size_gate_keeps_small_msms_serial(self, msm_inputs, pool):
        scalars, points = msm_inputs
        runner = MsmShardRunner(pool, 2, min_points=10_000)
        set_msm_shard_runner(runner)
        try:
            pippenger_msm(scalars, points)
        finally:
            set_msm_shard_runner(None)
        assert not pool.alive  # the gate never started worker processes

    def test_scalars_travel_by_shared_epoch(self, msm_inputs, pool):
        """Per-call scalars shared copy-on-write match the by-value path.

        With ``share_scalars_min_points=1`` every sharded MSM publishes its
        scalar list under :data:`MSM_SCALARS_KEY` instead of pickling it
        into each window task; results and statistics must be unchanged,
        and the epoch entry must be dropped again after the call.
        """
        scalars, points = msm_inputs
        serial_stats = MSMStatistics()
        serial = pippenger_msm(scalars, points, stats=serial_stats)
        runner = MsmShardRunner(pool, 2, min_points=1, share_scalars_min_points=1)
        set_msm_shard_runner(runner)
        try:
            shared_stats = MSMStatistics()
            shared = pippenger_msm(scalars, points, stats=shared_stats)
        finally:
            set_msm_shard_runner(None)
        assert serial.to_affine() == shared.to_affine()
        assert serial_stats == shared_stats
        with pytest.raises(KeyError):
            shared_value(MSM_SCALARS_KEY)  # epoch cleaned up after the call

    def test_scalar_epoch_reforks_per_call(self, msm_inputs, pool):
        """Each shared-scalar MSM is a fresh epoch: the pool re-forks."""
        scalars, points = msm_inputs
        runner = MsmShardRunner(pool, 2, min_points=1, share_scalars_min_points=1)
        set_msm_shard_runner(runner)
        try:
            pippenger_msm(scalars, points)
            first_forks = pool.fork_count
            pippenger_msm(scalars, points)
            assert pool.fork_count == first_forks + 1
        finally:
            set_msm_shard_runner(None)

    def test_small_msms_keep_by_value_scalars(self, msm_inputs, pool):
        """Below the share gate, no epoch is published (no refork needed)."""
        scalars, points = msm_inputs
        runner = MsmShardRunner(pool, 2, min_points=1, share_scalars_min_points=10_000)
        set_msm_shard_runner(runner)
        try:
            pippenger_msm(scalars, points)
            forks = pool.fork_count
            pippenger_msm(scalars, points)
            assert pool.fork_count == forks  # by-value payloads: stable pool
        finally:
            set_msm_shard_runner(None)


@needs_fork
class TestSumcheckSharding:
    def _polynomial(self, num_vars=5):
        rng = random.Random(7)
        mles = [MultilinearPolynomial.random(num_vars, rng) for _ in range(3)]
        poly = VirtualPolynomial(num_vars)
        poly.add_product(mles[:2])
        poly.add_product(mles[1:], Fr(9))
        return poly

    def test_round_messages_match_serial(self, pool):
        poly = self._polynomial()
        serial = prove_sumcheck(poly, Transcript())
        set_sumcheck_shard_runner(SumcheckShardRunner(pool, 2, min_size=2))
        try:
            parallel = prove_sumcheck(poly, Transcript())
        finally:
            set_sumcheck_shard_runner(None)
        assert serial.proof.round_messages() == parallel.proof.round_messages()
        assert serial.challenges == parallel.challenges
        assert serial.final_evaluations == parallel.final_evaluations


@needs_fork
class TestMleSharding:
    """The remaining serial prover phases, sharded (ROADMAP carried item).

    Covers the wiring identity's Fraction and Product MLE construction and
    the batch-evaluation dot products: every sharded result must equal the
    serial result exactly, on every installed backend, because inverse
    values are unique regardless of chunking, tree-level products are
    disjoint, and partial dot sums recombine by exact field addition.
    """

    def _vectors(self, backend, n=512, seed=13):
        rng = random.Random(seed)
        make = lambda: FieldVector.from_ints(
            Fr, [rng.randrange(1, Fr.modulus) for _ in range(n)], backend
        )
        return make(), make()

    def test_fraction_matches_serial_on_every_backend(self, pool):
        runner = MleShardRunner(pool, 2, min_size=0)
        for backend in available_backends():
            num, den = self._vectors(backend)
            for batch_size in (64, 100):  # aligned and ragged windows
                sharded = runner.run_fraction(num, den, batch_size, Fr)
                serial = num * den.inverse(batch_size)
                assert sharded.to_int_list() == serial.to_int_list(), backend

    def test_level_product_matches_serial(self, pool):
        runner = MleShardRunner(pool, 2, min_size=0)
        current, _ = self._vectors("python")
        sharded = runner.run_level_product(current, Fr)
        even, odd = current.even_odd()
        assert sharded.to_int_list() == (even * odd).to_int_list()

    def test_dots_match_serial_on_every_backend(self, pool):
        runner = MleShardRunner(pool, 2, min_size=0)
        for backend in available_backends():
            a, b = self._vectors(backend)
            sharded = runner.run_dots([a, b], b, Fr)
            assert [int(v) for v in sharded] == [int(a.dot(b)), int(b.dot(b))]

    def test_measured_gates_keep_losing_phases_serial(self, pool):
        """Defaults from bench_field_kernels measurements: dots stay serial
        at prover scales, level products shard only on the python floor."""
        runner = MleShardRunner(pool, 2, min_size=4096)
        num, den = self._vectors("python", n=1024)
        assert runner.run_fraction(num, den, 64, Fr) is None  # < 4 * min_size
        assert runner.run_dots([num], den, Fr) is None  # < 256 * min_size
        if "native" in available_backends():
            big, _ = self._vectors("native", n=1 << 15)
            small_gate = MleShardRunner(pool, 2, min_size=1)
            assert small_gate.run_level_product(big, Fr) is None  # not python

    def test_prove_byte_identical_with_mle_sharding_forced(self):
        """Acceptance criterion: python/numpy/native x workers 1 and 2."""
        reference = None
        for backend in available_backends():
            for workers in (1, 2):
                with ProverEngine(
                    EngineConfig(
                        srs_seed=1,
                        field_backend=backend,
                        workers=workers,
                        parallel_min_msm_points=4,
                        parallel_min_sumcheck_size=4,
                    )
                ) as engine:
                    artifact = engine.prove("mock", num_vars=5, seed=3)
                    assert engine.verify(artifact)
                    blob = artifact.to_bytes()
                if reference is None:
                    reference = blob
                assert blob == reference, (backend, workers)

    def test_worker_seam_is_cleared_in_children(self, pool):
        """A worker must never try to re-shard into the (absent) pool."""
        runner = MleShardRunner(pool, 2, min_size=0)
        set_mle_shard_runner(runner)
        try:
            num, den = self._vectors("python")
            sharded = runner.run_fraction(num, den, 64, Fr)
            serial = num * den.inverse(64)
            assert sharded.to_int_list() == serial.to_int_list()
        finally:
            set_mle_shard_runner(None)



@needs_fork
class TestEngineParallelProve:
    def test_single_proof_byte_identical_across_worker_counts(self):
        serial_engine = ProverEngine(EngineConfig(srs_seed=1))
        reference = serial_engine.prove("mock", num_vars=5, seed=3).to_bytes()
        with ProverEngine(
            EngineConfig(srs_seed=1, **PARALLEL_CONFIG)
        ) as engine:
            artifact = engine.prove("mock", num_vars=5, seed=3)
            assert artifact.to_bytes() == reference
            assert engine.verify(artifact)

    def test_trace_stats_match_serial(self):
        serial_engine = ProverEngine(EngineConfig(srs_seed=1, collect_trace=True))
        reference = serial_engine.prove("mock", num_vars=5, seed=3)
        with ProverEngine(
            EngineConfig(srs_seed=1, collect_trace=True, **PARALLEL_CONFIG)
        ) as engine:
            artifact = engine.prove("mock", num_vars=5, seed=3)
        for ref_step, par_step in zip(reference.trace.steps, artifact.trace.steps):
            assert ref_step.name == par_step.name
            assert ref_step.msm_stats == par_step.msm_stats

    def test_prove_many_whole_proof_sharding_byte_identical(self):
        requests = [
            {"scenario": "mock", "num_vars": 5, "seed": seed} for seed in (3, 4, 5)
        ]
        serial_engine = ProverEngine(EngineConfig(srs_seed=1))
        serial = serial_engine.prove_many(requests, workers=1)
        with ProverEngine(EngineConfig(srs_seed=1, workers=2)) as engine:
            parallel = engine.prove_many(requests, workers=2)
        assert [a.to_bytes() for a in serial] == [a.to_bytes() for a in parallel]
        for artifact in parallel:
            assert serial_engine.verify(artifact)

    def test_prove_many_whole_proof_sharding_carries_traces(self):
        requests = [
            {"scenario": "mock", "num_vars": 4, "seed": seed, "collect_trace": True}
            for seed in (1, 2)
        ]
        with ProverEngine(EngineConfig(srs_seed=1, workers=2)) as engine:
            artifacts = engine.prove_many(requests, workers=2)
        for artifact in artifacts:
            assert artifact.trace is not None
            assert artifact.trace.step_named("witness_commits").msm_stats


def _imap_probe(payload):
    index, delay = payload
    time.sleep(delay)
    return index


def _double(value):
    return value * 2


@needs_fork
class TestWorkerSignalSafety:
    def test_pool_teardown_under_asyncio_signal_handlers(self):
        """Workers forked inside an asyncio process must die on terminate.

        The serving subsystem forks pools from an executor thread while the
        event loop holds no-op SIGTERM/SIGINT handlers plus a wakeup fd;
        workers inherit both, and without ``_worker_init`` restoring the
        default dispositions ``Pool.terminate()``'s SIGTERM is a no-op and
        ``close()`` hangs forever (a wedged ``repro serve --workers N``).
        """
        import asyncio
        import signal

        async def scenario():
            loop = asyncio.get_running_loop()
            added = []
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, lambda: None)
                    added.append(signum)
                except (NotImplementedError, ValueError):  # pragma: no cover
                    pass
            try:

                def engine_thread():
                    pool = WorkerPool(2)
                    try:
                        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
                    finally:
                        pool.close()  # hangs forever without the fix
                    return True

                assert await asyncio.wait_for(
                    loop.run_in_executor(None, engine_thread), timeout=60
                )
            finally:
                for signum in added:
                    loop.remove_signal_handler(signum)

        asyncio.run(scenario())


@needs_fork
class TestWorkStealingImap:
    def test_imap_preserves_task_order(self):
        """Dynamic dispatch must still return results in task order.

        The first task is the slowest, so under ``chunksize=1`` the other
        worker steals through the rest of the queue while it runs — and the
        result list must come back ordered regardless.
        """
        pool = WorkerPool(2)
        try:
            tasks = [(0, 0.3), (1, 0.0), (2, 0.05), (3, 0.0), (4, 0.0)]
            assert pool.imap(_imap_probe, tasks) == [0, 1, 2, 3, 4]
        finally:
            pool.close()


@needs_fork
class TestPoolLifecycle:
    def test_pool_is_lazy_reused_and_closed(self):
        engine = ProverEngine(EngineConfig(srs_seed=1, **PARALLEL_CONFIG))
        assert engine._pool is None  # nothing proved yet: no processes
        engine.prove("mock", num_vars=5, seed=3)
        pool = engine._pool
        assert pool is not None and pool.alive
        forks = pool.fork_count
        engine.prove("mock", num_vars=5, seed=4)
        assert engine._pool is pool
        assert pool.fork_count == forks  # steady state: no refork
        engine.close()
        assert engine._pool is None
        assert not pool.alive

    def test_close_is_idempotent_and_engine_reusable(self):
        engine = ProverEngine(EngineConfig(srs_seed=1, **PARALLEL_CONFIG))
        engine.close()
        engine.close()
        artifact = engine.prove("mock", num_vars=4, seed=1)
        assert engine.verify(artifact)
        engine.close()

    def test_prove_after_close_at_cached_size(self):
        """Regression: close() drops shared SRS tables; a later prove at the
        same (session-cached) size must re-publish them, not crash on a
        stale point-table reference."""
        serial = ProverEngine(EngineConfig(srs_seed=1)).prove(
            "mock", num_vars=5, seed=3
        )
        engine = ProverEngine(EngineConfig(srs_seed=1, **PARALLEL_CONFIG))
        engine.prove("mock", num_vars=5, seed=3)
        engine.close()
        again = engine.prove("mock", num_vars=5, seed=3)
        assert again.to_bytes() == serial.to_bytes()
        engine.close()

    def test_stale_shared_state_triggers_refork(self, pool):
        share_state("test/epoch", 1)
        pool.ensure(["test/epoch"])
        first_forks = pool.fork_count
        pool.ensure(["test/epoch"])
        assert pool.fork_count == first_forks  # unchanged key: no refork
        share_state("test/epoch", 2)
        pool.ensure(["test/epoch"])
        assert pool.fork_count == first_forks + 1

    def test_ensure_requires_published_state(self, pool):
        with pytest.raises(KeyError):
            pool.ensure(["test/never-published"])

    def test_shared_table_registration_is_refcounted(self):
        table = [g1_generator().to_affine()]
        first = share_points("test/refcount-a", table)
        second = share_points("test/refcount-b", table)
        assert first == second == "test/refcount-a"  # one canonical key
        release_points(first)
        assert point_table_ref(table) == first  # one holder left: still fast
        release_points(first)
        assert point_table_ref(table) is None

    def test_closing_one_engine_keeps_anothers_fast_path(self, srs5):
        """Two sessions preloading one SRS must not strand each other's
        by-reference point tables when either closes."""
        config = EngineConfig(srs_seed=2025, **PARALLEL_CONFIG)
        first, second = ProverEngine(config), ProverEngine(config)
        first.preload_srs(srs5)
        second.preload_srs(srs5)
        table = srs5.prover_key.lagrange_tables[0]
        ref = point_table_ref(table)
        assert ref is not None
        second.close()
        assert point_table_ref(table) == ref  # first engine still registered
        first.close()
        assert point_table_ref(table) is None


class TestSmallScalarSparseMsm:
    def test_classification_buckets_small_scalars(self):
        scalars = [Fr(0), Fr(1), Fr(2), Fr(15), Fr(16), Fr(2), Fr(1 << 100)]
        zeros, ones, smalls, dense = classify_sparse_scalars(scalars)
        assert zeros == [0]
        assert ones == [1]
        assert smalls == {2: [2, 5], 15: [3]}
        assert dense == [4, 6]

    def test_small_max_disables_buckets(self):
        scalars = [Fr(2), Fr(3)]
        zeros, ones, smalls, dense = classify_sparse_scalars(scalars, small_max=1)
        assert smalls == {} and dense == [0, 1]

    def test_matches_naive_and_skips_pippenger(self):
        rng = random.Random(13)
        g = g1_generator()
        points = [(g * rng.randrange(1, 1 << 30)).to_affine() for _ in range(40)]
        scalars = [Fr(rng.choice([0, 1, 2, 3, 7, 15])) for _ in range(40)]
        stats = MSMStatistics()
        assert sparse_msm(scalars, points, stats=stats) == naive_msm(scalars, points)
        assert stats.small_scalars > 0
        assert stats.bucket_padds == 0  # nothing reached the windowed path
        # dense_scalars keeps its historical meaning: every non-0/1 scalar.
        assert stats.dense_scalars == sum(1 for s in scalars if s.value > 1)

    def test_mixed_small_and_wide_scalars(self):
        rng = random.Random(17)
        g = g1_generator()
        points = [(g * rng.randrange(1, 1 << 30)).to_affine() for _ in range(32)]
        scalars = [
            Fr(rng.choice([0, 1, 5, 12])) if rng.random() < 0.7 else Fr.random(rng)
            for _ in range(32)
        ]
        stats = MSMStatistics()
        assert sparse_msm(scalars, points, stats=stats) == naive_msm(scalars, points)

    def test_engine_small_scalar_knob_keeps_proofs_identical(self):
        reference = ProverEngine(
            EngineConfig(srs_seed=1, sparse_small_scalar_max=1)
        ).prove("mock", num_vars=4, seed=2)
        bucketed = ProverEngine(
            EngineConfig(srs_seed=1, sparse_small_scalar_max=15)
        ).prove("mock", num_vars=4, seed=2)
        assert reference.to_bytes() == bucketed.to_bytes()


class TestSrsDiskCache:
    def test_round_trip_and_reuse(self, tmp_path):
        srs = setup_cached(4, seed=9, cache_dir=tmp_path)
        path = srs_cache_path(tmp_path, 4, 9, True)
        assert path.is_file()
        loaded = setup_cached(4, seed=9, cache_dir=tmp_path)
        assert loaded.prover_key.lagrange_tables[0] == srs.prover_key.lagrange_tables[0]
        assert loaded.verifier_key.trapdoor == srs.verifier_key.trapdoor

    def test_corrupt_cache_is_regenerated(self, tmp_path):
        path = srs_cache_path(tmp_path, 4, 9, True)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert load_srs(path) is None
        srs = setup_cached(4, seed=9, cache_dir=tmp_path)
        assert srs.num_vars == 4
        assert load_srs(path) is not None  # overwritten with a good record

    def test_size_mismatch_rejected(self, tmp_path):
        srs = setup_cached(3, seed=9, cache_dir=tmp_path)
        path = srs_cache_path(tmp_path, 3, 9, True)
        save_srs(srs, path, seed=9)
        assert load_srs(path, num_vars=4) is None

    def test_engine_uses_disk_cache_across_sessions(self, tmp_path):
        config = EngineConfig(srs_seed=1, srs_cache_dir=str(tmp_path))
        first = ProverEngine(config).prove("mock", num_vars=4, seed=2)
        second_engine = ProverEngine(config)
        second = second_engine.prove("mock", num_vars=4, seed=2)
        assert first.to_bytes() == second.to_bytes()
        assert srs_cache_path(tmp_path, 4, 1, True).is_file()
