"""Tests for the SHA3 Fiat-Shamir transcript."""

import pytest

from repro.curves import g1_generator
from repro.curves.curve import AffinePoint
from repro.fields import Fr, Fq
from repro.transcript import Transcript


class TestDeterminism:
    def test_same_operations_same_challenges(self):
        def run():
            t = Transcript()
            t.absorb_field(b"a", Fr(5))
            t.absorb_bytes(b"b", b"hello")
            return [t.challenge_field(b"c") for _ in range(3)]

        assert run() == run()

    def test_different_labels_diverge(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_field(b"x", Fr(5))
        t2.absorb_field(b"y", Fr(5))
        assert t1.challenge_field(b"c") != t2.challenge_field(b"c")

    def test_different_values_diverge(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_field(b"x", Fr(5))
        t2.absorb_field(b"x", Fr(6))
        assert t1.challenge_field(b"c") != t2.challenge_field(b"c")

    def test_order_matters(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_field(b"x", Fr(1))
        t1.absorb_field(b"y", Fr(2))
        t2.absorb_field(b"y", Fr(2))
        t2.absorb_field(b"x", Fr(1))
        assert t1.challenge_field(b"c") != t2.challenge_field(b"c")

    def test_domain_label_in_constructor(self):
        assert (
            Transcript(label=b"a").challenge_field(b"c")
            != Transcript(label=b"b").challenge_field(b"c")
        )

    def test_challenge_updates_state(self):
        t = Transcript()
        first = t.challenge_field(b"c")
        second = t.challenge_field(b"c")
        assert first != second

    def test_state_digest_changes(self):
        t = Transcript()
        before = t.state_digest()
        t.absorb_int(b"n", 7)
        assert t.state_digest() != before


class TestAbsorbers:
    def test_absorb_point_and_identity(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_point(b"p", g1_generator())
        t2.absorb_point(b"p", AffinePoint.identity())
        assert t1.challenge_field(b"c") != t2.challenge_field(b"c")

    def test_absorb_point_accepts_affine_and_jacobian(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb_point(b"p", g1_generator())
        t2.absorb_point(b"p", g1_generator().to_affine())
        assert t1.challenge_field(b"c") == t2.challenge_field(b"c")

    def test_absorb_fields_iterable(self):
        t = Transcript()
        t.absorb_fields(b"vec", Fr.elements([1, 2, 3]))
        assert t.num_absorbs == 3

    def test_challenge_fields_count(self):
        t = Transcript()
        challenges = t.challenge_fields(b"r", 5)
        assert len(challenges) == 5
        assert len(set(c.value for c in challenges)) == 5

    def test_counters(self):
        t = Transcript()
        t.absorb_int(b"n", 3)
        t.challenge_field(b"c")
        assert t.num_absorbs == 1
        assert t.num_challenges == 1
        assert t.num_hash_invocations > 2


class TestChallengeDistribution:
    def test_challenges_are_field_elements(self):
        t = Transcript()
        for i in range(10):
            c = t.challenge_field(str(i).encode())
            assert 0 <= c.value < Fr.modulus

    def test_alternate_field(self):
        t = Transcript(field=Fq)
        c = t.challenge_field(b"c")
        assert c.field is Fq
