"""Tests for the design-space exploration and Pareto analysis."""

import pytest

from repro.core import (
    CpuBaseline,
    DesignSpaceExplorer,
    WorkloadModel,
    ZkSpeedConfig,
    pareto_frontier,
)
from repro.core.pareto import dominates


@pytest.fixture(scope="module")
def explorer():
    return DesignSpaceExplorer(WorkloadModel(num_vars=20))


@pytest.fixture(scope="module")
def small_sweep(explorer):
    """A reduced but representative sweep used by several tests."""
    overrides = {
        "msm_cores": [1],
        "msm_pes_per_core": [2, 8, 16],
        "msm_window_bits": [9],
        "msm_points_per_pe": [2048],
        "fracmle_pes": [1],
        "sumcheck_pes": [1, 2, 8],
        "mle_update_pes": [4, 11],
        "mle_update_modmuls_per_pe": [4],
        "bandwidth_gbs": [256.0, 512.0, 2048.0],
    }
    return explorer.sweep(overrides=overrides, max_points=None)


class TestParetoFrontier:
    def test_frontier_of_simple_points(self):
        points = [(1.0, 10.0), (2.0, 5.0), (3.0, 6.0), (4.0, 1.0), (2.5, 4.0)]
        frontier = pareto_frontier(points, cost_x=lambda p: p[0], cost_y=lambda p: p[1])
        assert frontier == [(1.0, 10.0), (2.0, 5.0), (2.5, 4.0), (4.0, 1.0)]

    def test_frontier_empty(self):
        assert pareto_frontier([], cost_x=lambda p: p, cost_y=lambda p: p) == []

    def test_no_frontier_point_is_dominated(self, small_sweep, explorer):
        frontier = explorer.pareto(small_sweep)
        for candidate in frontier:
            assert not any(
                dominates(other, candidate, lambda p: p.runtime_ms, lambda p: p.area_mm2)
                for other in small_sweep
                if other is not candidate
            )

    def test_dominates_helper(self):
        a, b = (1.0, 1.0), (2.0, 2.0)
        assert dominates(a, b, lambda p: p[0], lambda p: p[1])
        assert not dominates(b, a, lambda p: p[0], lambda p: p[1])
        assert not dominates(a, a, lambda p: p[0], lambda p: p[1])

    def test_online_frontier_matches_global_pareto(self, small_sweep, explorer):
        """The streaming accumulator reproduces the batch frontier exactly.

        The distributed sweep (repro.dse) relies on this identity; the
        exhaustive order/tie/duplicate cases live in
        tests/test_dse_distributed.py.
        """
        from repro.core.pareto import OnlineParetoFront

        online = OnlineParetoFront(
            cost_x=lambda p: p.runtime_ms, cost_y=lambda p: p.area_mm2
        )
        for order, point in enumerate(small_sweep):
            online.add(point, order=order)
        assert online.points == explorer.global_pareto(small_sweep)


class TestSweep:
    def test_sweep_size(self, small_sweep):
        assert len(small_sweep) == 3 * 3 * 2 * 3

    def test_points_have_positive_metrics(self, small_sweep):
        for point in small_sweep:
            assert point.runtime_ms > 0
            assert point.area_mm2 > point.compute_area_mm2 > 0

    def test_per_bandwidth_pareto_keys(self, small_sweep, explorer):
        curves = explorer.per_bandwidth_pareto(small_sweep)
        assert set(curves) == {256.0, 512.0, 2048.0}
        assert all(len(curve) >= 1 for curve in curves.values())

    def test_high_bandwidth_frontier_reaches_lower_runtime(self, small_sweep, explorer):
        """Figure 9: HBM3-scale bandwidth extends the frontier to faster designs."""
        curves = explorer.per_bandwidth_pareto(small_sweep)
        fastest_512 = min(p.runtime_ms for p in curves[512.0])
        fastest_2048 = min(p.runtime_ms for p in curves[2048.0])
        assert fastest_2048 <= fastest_512

    def test_global_pareto_subset_of_union(self, small_sweep, explorer):
        frontier = explorer.global_pareto(small_sweep)
        assert set(id(p) for p in frontier) <= set(id(p) for p in small_sweep)

    def test_best_under_area(self, small_sweep, explorer):
        best = explorer.best_under_area(small_sweep, area_budget_mm2=300.0)
        assert best is not None
        assert best.area_mm2 <= 300.0
        # It is the fastest among eligible points.
        eligible = [p for p in small_sweep if p.area_mm2 <= 300.0]
        assert best.runtime_ms == min(p.runtime_ms for p in eligible)

    def test_best_under_area_compute_only(self, small_sweep, explorer):
        best = explorer.best_under_area(
            small_sweep, area_budget_mm2=296.0, use_compute_area=True
        )
        assert best is not None
        assert best.compute_area_mm2 <= 296.0

    def test_best_under_tiny_budget_is_none(self, small_sweep, explorer):
        assert explorer.best_under_area(small_sweep, area_budget_mm2=1.0) is None

    def test_fastest_per_bandwidth(self, small_sweep, explorer):
        fastest = explorer.fastest_per_bandwidth(small_sweep)
        assert set(fastest) == {256.0, 512.0, 2048.0}
        # Higher-bandwidth best designs are at least as fast.
        assert fastest[2048.0].runtime_ms <= fastest[256.0].runtime_ms

    def test_speedup_uses_cpu_baseline(self, small_sweep, explorer):
        cpu = CpuBaseline()
        point = small_sweep[0]
        assert explorer.speedup(point) == pytest.approx(
            cpu.runtime_ms(20) / point.runtime_ms
        )

    def test_default_sweep_is_decimated(self, explorer):
        points = explorer.sweep(max_points=50)
        assert 0 < len(points) <= 50

    def test_evaluate_single_config(self, explorer):
        point = explorer.evaluate(ZkSpeedConfig.paper_default())
        assert point.bandwidth_gbs == 2048.0
        assert point.report.total_runtime_ms == pytest.approx(point.runtime_ms)
