"""Tests for the analytical kernel profiles (Table 1 reproduction)."""

import pytest

from repro.core import WorkloadModel, protocol_operation_counts
from repro.core.opcounts import PAPER_TABLE1, KernelProfile


@pytest.fixture(scope="module")
def profiles_2_20():
    return protocol_operation_counts(WorkloadModel(num_vars=20))


class TestKernelProfiles:
    def test_all_twelve_kernels_present(self, profiles_2_20):
        names = {p.name for p in profiles_2_20}
        assert names == set(PAPER_TABLE1)

    def test_sorted_by_arithmetic_intensity(self, profiles_2_20):
        intensities = [p.arithmetic_intensity for p in profiles_2_20]
        assert intensities == sorted(intensities, reverse=True)

    def test_msm_kernels_are_most_intense(self, profiles_2_20):
        top_three = {p.name for p in profiles_2_20[:3]}
        assert top_three == {"Poly Open MSMs", "Wire Identity MSMs", "Witness MSMs"}

    def test_mle_updates_are_least_intense(self, profiles_2_20):
        assert profiles_2_20[-1].name == "All MLE Updates"

    def test_arithmetic_intensity_bands(self, profiles_2_20):
        """MSMs: AI of several modmuls/byte; streaming kernels: well below 1."""
        by_name = {p.name: p for p in profiles_2_20}
        for msm_kernel in ("Poly Open MSMs", "Wire Identity MSMs", "Witness MSMs"):
            assert by_name[msm_kernel].arithmetic_intensity > 2.0
        for streaming_kernel in (
            "ZeroCheck Rounds",
            "PermCheck Rounds",
            "OpenCheck Rounds",
            "All MLE Updates",
        ):
            assert by_name[streaming_kernel].arithmetic_intensity < 1.0

    def test_modmul_counts_within_2x_of_paper(self, profiles_2_20):
        by_name = {p.name: p for p in profiles_2_20}
        for name, (paper_modmuls_m, _, _) in PAPER_TABLE1.items():
            ours = by_name[name].modmuls / 1e6
            assert ours == pytest.approx(paper_modmuls_m, rel=1.0), name

    def test_traffic_within_2x_of_paper(self, profiles_2_20):
        by_name = {p.name: p for p in profiles_2_20}
        for name, (_, paper_in_mb, paper_out_mb) in PAPER_TABLE1.items():
            ours = by_name[name].total_bytes / 1e6
            paper = paper_in_mb + paper_out_mb
            if paper == 0:
                continue
            assert ours == pytest.approx(paper, rel=1.0), name

    def test_counts_scale_linearly_with_problem_size(self):
        small = {p.name: p for p in protocol_operation_counts(WorkloadModel(num_vars=18))}
        large = {p.name: p for p in protocol_operation_counts(WorkloadModel(num_vars=20))}
        for name in PAPER_TABLE1:
            assert large[name].modmuls == pytest.approx(4 * small[name].modmuls, rel=0.01)

    def test_sparse_witness_cost_tracks_density(self):
        dense_heavy = WorkloadModel(
            num_vars=20, dense_fraction=0.3, one_fraction=0.35, zero_fraction=0.35
        )
        sparse = WorkloadModel(num_vars=20)
        witness_dense = next(
            p for p in protocol_operation_counts(dense_heavy) if p.name == "Witness MSMs"
        )
        witness_sparse = next(
            p for p in protocol_operation_counts(sparse) if p.name == "Witness MSMs"
        )
        assert witness_dense.modmuls > witness_sparse.modmuls

    def test_kernel_profile_row_format(self, profiles_2_20):
        row = profiles_2_20[0].as_row()
        assert set(row) == {
            "kernel",
            "modmuls_millions",
            "input_mb",
            "output_mb",
            "arithmetic_intensity",
        }

    def test_infinite_intensity_for_zero_traffic(self):
        profile = KernelProfile("x", modmuls=10.0, input_bytes=0.0, output_bytes=0.0)
        assert profile.arithmetic_intensity == float("inf")
