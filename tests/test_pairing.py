"""Tests for the BLS12-381 optimal-ate pairing.

Pairings are only needed by the HyperPlonk verifier and are slow in pure
Python, so the bilinearity tests use small scalars and the heavier checks
are marked ``slow``.
"""

import pytest

from repro.curves import G1_GENERATOR, g1_generator, g2_generator, pairing, pairing_product_is_one
from repro.curves.curve import AffinePoint
from repro.curves.bls12_381 import G2Point
from repro.curves.pairing import embed_g1, untwist_g2, _add_points, _fq_to_fq12
from repro.fields.extensions import Fq12Element


class TestUntwist:
    def test_untwisted_generator_is_on_full_curve(self):
        point = untwist_g2(g2_generator())
        assert point is not None
        x, y = point
        four = _fq_to_fq12(4)
        assert y * y == x * x * x + four

    def test_untwist_identity(self):
        assert untwist_g2(G2Point.identity()) is None

    def test_embed_identity(self):
        assert embed_g1(AffinePoint.identity()) is None

    def test_embedded_g1_on_curve(self):
        point = embed_g1(G1_GENERATOR)
        assert point is not None
        x, y = point
        assert y * y == x * x * x + _fq_to_fq12(4)

    def test_fq12_point_addition_matches_g2_group_law(self):
        h = g2_generator()
        lhs = untwist_g2(h + h)
        rhs = _add_points(untwist_g2(h), untwist_g2(h))
        assert lhs == rhs


class TestPairing:
    def test_identity_inputs_give_one(self):
        assert pairing(AffinePoint.identity(), g2_generator()).is_one()
        assert pairing(G1_GENERATOR, G2Point.identity()).is_one()

    def test_nondegeneracy(self):
        assert not pairing(G1_GENERATOR, g2_generator()).is_one()

    def test_bilinearity_in_g1(self):
        g, h = g1_generator(), g2_generator()
        lhs = pairing((g * 3).to_affine(), h)
        rhs = pairing(G1_GENERATOR, h).pow(3)
        assert lhs == rhs

    def test_bilinearity_in_g2(self):
        g, h = g1_generator(), g2_generator()
        lhs = pairing(G1_GENERATOR, h * 4)
        rhs = pairing(G1_GENERATOR, h).pow(4)
        assert lhs == rhs

    @pytest.mark.slow
    def test_full_bilinearity(self):
        g, h = g1_generator(), g2_generator()
        lhs = pairing((g * 6).to_affine(), h * 5)
        rhs = pairing((g * 3).to_affine(), h * 10)
        assert lhs == rhs

    def test_pairing_product_check(self):
        # e(aG, H) * e(-aG, H) == 1.
        g, h = g1_generator(), g2_generator()
        a_g = (g * 9).to_affine()
        pairs = [(a_g, h), (a_g.negate(), h)]
        assert pairing_product_is_one(pairs)

    def test_pairing_product_check_rejects_imbalance(self):
        g, h = g1_generator(), g2_generator()
        pairs = [((g * 9).to_affine(), h), ((g * 8).negate().to_affine(), h)]
        assert not pairing_product_is_one(pairs)

    def test_pairing_product_skips_identity_pairs(self):
        h = g2_generator()
        assert pairing_product_is_one([(AffinePoint.identity(), h)])
