"""Shared fixtures for the test suite.

SRS generation and proving are the expensive operations in pure Python, so
the fixtures are session-scoped: one small universal SRS (and one proof per
circuit size) is reused by every test that needs it.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits import mock_circuit
from repro.pcs.srs import setup
from repro.protocol.keys import preprocess
from repro.protocol.prover import prove


@pytest.fixture(scope="session")
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def srs4():
    """A universal SRS for 4-variable (16-gate) circuits, trapdoor retained."""
    return setup(4, seed=2024)


@pytest.fixture(scope="session")
def srs5():
    """A universal SRS for 5-variable (32-gate) circuits."""
    return setup(5, seed=2025)


@pytest.fixture(scope="session")
def small_circuit():
    """A satisfiable 32-gate mock circuit."""
    circuit = mock_circuit(5, seed=7)
    assert circuit.is_satisfied()
    return circuit


@pytest.fixture(scope="session")
def small_keys(small_circuit, srs5):
    return preprocess(small_circuit, srs5)


@pytest.fixture(scope="session")
def small_proof(small_keys):
    pk, _ = small_keys
    proof, trace = prove(pk, collect_trace=True)
    return proof, trace
