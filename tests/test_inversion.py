"""Tests for constant-time BEEA and Montgomery batch inversion."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import Fr, FR_MODULUS, batch_inverse, beea_inverse, beea_iteration_count
from repro.fields.inversion import (
    batch_inverse_multiplication_count,
    batch_inverse_tree_depth,
)


class TestBeeaInverse:
    def test_matches_fermat_inverse(self):
        rng = random.Random(5)
        for _ in range(10):
            a = Fr.random(rng)
            if a.is_zero():
                continue
            assert beea_inverse(a) == a.inverse()

    def test_small_values(self):
        for value in (1, 2, 3, 255, FR_MODULUS - 1):
            a = Fr(value)
            assert (beea_inverse(a) * a).is_one()

    def test_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            beea_inverse(Fr(0))

    def test_iteration_count_matches_paper(self):
        # 2*W - 1 iterations: 509 cycles for the 255-bit scalar field
        # (Section 4.4.1 of the paper).
        assert beea_iteration_count(255) == 509
        assert beea_iteration_count(381) == 761

    def test_iteration_count_validation(self):
        with pytest.raises(ValueError):
            beea_iteration_count(0)

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(min_value=1, max_value=FR_MODULUS - 1))
    def test_beea_property(self, a):
        element = Fr(a)
        assert (beea_inverse(element) * element).is_one()


class TestBatchInverse:
    def test_empty_batch(self):
        assert batch_inverse([]) == []

    def test_single_element(self):
        assert batch_inverse([Fr(7)]) == [Fr(7).inverse()]

    def test_matches_individual_inverses(self):
        rng = random.Random(11)
        elements = [Fr.random(rng) for _ in range(33)]
        elements = [e if not e.is_zero() else Fr(1) for e in elements]
        assert batch_inverse(elements) == [e.inverse() for e in elements]

    def test_zero_element_raises_with_index(self):
        elements = [Fr(1), Fr(2), Fr(0), Fr(4)]
        with pytest.raises(ZeroDivisionError, match="element 2"):
            batch_inverse(elements)

    def test_non_power_of_two_batch(self):
        elements = [Fr(i) for i in range(1, 12)]
        assert batch_inverse(elements) == [e.inverse() for e in elements]

    @settings(max_examples=10, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=1, max_value=FR_MODULUS - 1), min_size=1, max_size=20
        )
    )
    def test_batch_property(self, values):
        elements = [Fr(v) for v in values]
        result = batch_inverse(elements)
        for element, inverse in zip(elements, result):
            assert (element * inverse).is_one()


class TestBatchingCostModel:
    def test_multiplication_count(self):
        # 3*(b-1) sequential multiplications in the textbook scheme.
        assert batch_inverse_multiplication_count(1) == 0
        assert batch_inverse_multiplication_count(64) == 189

    def test_multiplication_count_validation(self):
        with pytest.raises(ValueError):
            batch_inverse_multiplication_count(0)

    def test_tree_depth(self):
        assert batch_inverse_tree_depth(1) == 0
        assert batch_inverse_tree_depth(2) == 1
        assert batch_inverse_tree_depth(64) == 6
        assert batch_inverse_tree_depth(65) == 7

    def test_tree_depth_validation(self):
        with pytest.raises(ValueError):
            batch_inverse_tree_depth(0)
