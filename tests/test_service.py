"""Tests for the proof-serving subsystem (``repro.service``).

The acceptance surface of ISSUE 4: end-to-end prove/verify over a
localhost HTTP server, batch-coalescing determinism (>= 8 concurrent
requests coalesce into <= 2 ``prove_many`` calls and every served proof is
byte-identical to the direct in-process ``engine.prove`` output), the
backpressure 503 path (bounded queue -> fast rejection with
``Retry-After``, never a hang), and graceful-shutdown drain (every
admitted request is answered before the sockets close).

Real-engine tests share one module-scoped server at a tiny circuit size;
the backpressure/drain tests use a stub engine whose ``prove_many`` blocks
on an event so queue states are deterministic rather than timing-lucky.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.api import EngineConfig, ProverEngine
from repro.api.artifacts import ProofArtifact
from repro.service import (
    BackgroundServer,
    ProofService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceUnavailable,
)
from repro.service import wire
from repro.service.batcher import split_batches

NUM_VARS = 4
SRS_SEED = 7


@pytest.fixture(scope="module")
def server():
    """One serving stack for every real-engine test in this module.

    The generous batch window only delays the *first* request of a batch;
    with the suite's sequential requests each batch is a singleton and the
    window closes on arrival... of the next event-loop tick, so tests stay
    fast while the coalescing test gets a wide-open window to land all its
    concurrent requests in.
    """
    service = ProofService(
        ServiceConfig(port=0, batch_window_ms=150.0, max_batch=16, max_queue=64),
        engine_config=EngineConfig(srs_seed=SRS_SEED),
    )
    with BackgroundServer(service) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient(port=server.port) as service_client:
        yield service_client


@pytest.fixture(scope="module")
def direct_engine():
    """The in-process reference the served proofs must match byte for byte."""
    engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
    yield engine
    engine.close()


class TestEndToEnd:
    def test_prove_then_verify_over_http(self, client):
        result = client.prove("mock", num_vars=NUM_VARS, seed=5)
        assert result["scenario"] == "mock"
        assert result["num_vars"] == NUM_VARS
        assert result["proof_size_bytes"] == len(result["proof_bytes"])
        assert client.verify(result) is True

    def test_served_bytes_match_direct_engine(self, client, direct_engine):
        result = client.prove("mock", num_vars=NUM_VARS, seed=9)
        direct = direct_engine.prove("mock", num_vars=NUM_VARS, seed=9)
        assert result["proof_bytes"] == direct.to_bytes()

    def test_tampered_proof_rejected(self, client):
        result = client.prove("mock", num_vars=NUM_VARS, seed=5)
        tampered = bytearray(result["proof_bytes"])
        tampered[len(tampered) // 2] ^= 0x01
        # Either the wire format catches the flip (400 bad_proof) or the
        # verifier must reject it; acceptance would be a soundness bug.
        try:
            accepted = client.verify(
                bytes(tampered), scenario="mock", num_vars=NUM_VARS
            )
        except ServiceError as exc:
            assert exc.status == 400
        else:
            assert accepted is False

    def test_witness_passthrough(self, client, direct_engine):
        result = client.prove("mock", num_vars=3, seed=2, include_witness=True)
        _, circuit = direct_engine.resolve_circuit("mock", num_vars=3, seed=2)
        assert result["witness"] == wire.serialize_witness(circuit)

    def test_scenarios_lists_registry(self, client):
        names = {entry["name"] for entry in client.scenarios()}
        assert {"mock", "zcash"} <= names

    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["state"] == "serving"
        assert health["queue_capacity"] == 64

    def test_metrics_counts_proofs(self, client):
        before = client.metrics()
        client.prove("mock", num_vars=NUM_VARS, seed=5)
        after = client.metrics()
        assert after["proofs_total"] > before["proofs_total"]
        assert after["prove_many_calls"] > before["prove_many_calls"]
        assert after["latency_seconds"]["prove"]["count"] >= 1


class TestBatchCoalescing:
    CONCURRENT = 8

    def test_concurrent_requests_coalesce_and_stay_deterministic(
        self, server, client, direct_engine
    ):
        """The ISSUE 4 acceptance criterion, verbatim.

        >= 8 concurrent prove requests must coalesce into <= 2 ``prove_many``
        calls, every proof must verify, and the served bytes must equal the
        direct in-process ``engine.prove`` output for the same request.
        """
        before_calls = client.metrics()["prove_many_calls"]
        results: list[dict | None] = [None] * self.CONCURRENT
        errors: list[Exception] = []
        barrier = threading.Barrier(self.CONCURRENT)

        def submit(index: int) -> None:
            try:
                with ServiceClient(port=server.port) as own_client:
                    barrier.wait(timeout=30)
                    results[index] = own_client.prove(
                        "mock", num_vars=NUM_VARS, seed=100 + index
                    )
            except Exception as exc:  # surfaced below with context
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(index,))
            for index in range(self.CONCURRENT)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, f"concurrent prove failed: {errors[:3]}"
        assert all(result is not None for result in results)

        # Coalescing: the whole burst fit in at most two prove_many calls.
        made_calls = client.metrics()["prove_many_calls"] - before_calls
        assert 1 <= made_calls <= 2
        assert max(result["batch_size"] for result in results) >= 4

        # Determinism + soundness: byte-identical to the in-process engine,
        # and every proof verifies over HTTP.
        for index, result in enumerate(results):
            direct = direct_engine.prove("mock", num_vars=NUM_VARS, seed=100 + index)
            assert result["proof_bytes"] == direct.to_bytes()
            assert client.verify(result) is True


class TestWireFormat:
    def test_base64_round_trip(self):
        blob = bytes(range(256))
        assert wire.decode_bytes(wire.encode_bytes(blob)) == blob

    def test_decode_rejects_garbage(self):
        with pytest.raises(wire.WireError):
            wire.decode_bytes("not/base64!!")

    def test_parse_prove_request_defaults(self):
        parsed = wire.parse_prove_request({})
        assert parsed == {
            "scenario": "mock",
            "num_vars": None,
            "seed": 0,
            "include_witness": False,
        }

    @pytest.mark.parametrize(
        "body",
        [
            {"scenario": "no-such-workload"},
            {"scenario": 3},
            {"num_vars": 0},
            {"num_vars": "five"},
            # One request must not be able to demand a multi-GB circuit.
            {"num_vars": wire.MAX_NUM_VARS + 1},
            {"seed": -1},
            # An explicit null seed would reach the engine as seed=None and
            # build a nondeterministic witness from system entropy.
            {"seed": None},
            [],
        ],
    )
    def test_parse_prove_request_rejects(self, body):
        with pytest.raises(wire.WireError):
            wire.parse_prove_request(body)

    def test_explicit_null_num_vars_means_default_size(self):
        parsed = wire.parse_prove_request({"num_vars": None})
        assert parsed["num_vars"] is None  # engine resolves the default

    def test_unknown_paths_do_not_grow_latency_reservoirs(self, server, client):
        for index in range(5):
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", f"/scanner-path-{index}")
            assert excinfo.value.status == 404
        tracked = set(client.metrics()["latency_seconds"])
        assert not any(name.startswith("scanner-path") for name in tracked)

    def test_parse_verify_request_needs_proof(self):
        with pytest.raises(wire.WireError):
            wire.parse_verify_request({"scenario": "mock"})

    def test_http_error_statuses(self, server):
        def raw(method: str, path: str, body: bytes | None = None) -> int:
            connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
            try:
                connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"} if body else {},
                )
                return connection.getresponse().status
            finally:
                connection.close()

        assert raw("GET", "/nope") == 404
        assert raw("GET", "/prove") == 405
        assert raw("POST", "/prove", b"{not json") == 400
        assert raw("POST", "/prove", json.dumps({"scenario": "bad"}).encode()) == 400
        assert raw("POST", "/verify", json.dumps({"scenario": "mock"}).encode()) == 400


class TestBatcherUnits:
    def test_split_batches(self):
        assert split_batches(range(7), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert split_batches([], 4) == []
        with pytest.raises(ValueError):
            split_batches([1], 0)

    def test_batcher_rejects_after_drain(self):
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        from repro.service.batcher import Draining, DynamicBatcher

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = DynamicBatcher(
                    lambda requests: list(requests), executor, window_ms=0.0
                )
                batcher.start()
                # A request before the drain is answered by it...
                first = await batcher.submit({"seed": 1})
                assert first == {"seed": 1}
                await batcher.drain()
                # ... and afterwards admission is closed for good.
                with pytest.raises(Draining):
                    await batcher.submit({"seed": 2})

        asyncio.run(scenario())

    def test_batcher_respects_max_batch(self):
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        from repro.service.batcher import DynamicBatcher

        sizes: list[int] = []

        def record(requests):
            sizes.append(len(requests))
            return list(requests)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = DynamicBatcher(
                    record, executor, window_ms=200.0, max_batch=3
                )
                batcher.start()
                results = await asyncio.gather(
                    *(batcher.submit({"seed": index}) for index in range(7))
                )
                assert [r["seed"] for r in results] == list(range(7))
                await batcher.drain()

        asyncio.run(scenario())
        # 7 concurrent requests, max_batch 3: full batches of 3 first.
        assert sizes[0] == 3
        assert sum(sizes) == 7
        assert all(size <= 3 for size in sizes)

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(batch_window_ms=-1)


class TestSizeBuckets:
    """Satellite of ISSUE 5: size-aware batching in the DynamicBatcher."""

    def _run_bucketed(self, submissions, *, max_batch=16, window_ms=100.0):
        """Drive a recording batcher with concurrent ``submissions``."""
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        from repro.service.batcher import DynamicBatcher

        batches: list[list[dict]] = []

        def record(requests):
            batches.append(list(requests))
            return list(requests)

        async def scenario():
            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = DynamicBatcher(
                    record,
                    executor,
                    window_ms=window_ms,
                    max_batch=max_batch,
                    bucket_key=lambda request: request["num_vars"],
                )
                batcher.start()
                results = await asyncio.gather(
                    *(batcher.submit(request) for request in submissions)
                )
                await batcher.drain()
                return results

        results = asyncio.run(scenario())
        return batches, results

    def test_batches_never_mix_sizes(self):
        submissions = [
            {"num_vars": 10 if index % 2 else 14, "seed": index}
            for index in range(8)
        ]
        batches, results = self._run_bucketed(submissions)
        assert results == submissions  # everyone answered with their own
        for batch in batches:
            sizes = {request["num_vars"] for request in batch}
            assert len(sizes) == 1, f"mixed-size batch: {batch}"
        assert sum(len(batch) for batch in batches) == 8

    def test_fifo_within_bucket_and_across_buckets(self):
        submissions = [
            {"num_vars": 10, "seed": 0},
            {"num_vars": 14, "seed": 1},
            {"num_vars": 10, "seed": 2},
            {"num_vars": 14, "seed": 3},
            {"num_vars": 10, "seed": 4},
        ]
        batches, _ = self._run_bucketed(submissions)
        # Arrival order within each bucket is preserved...
        for batch in batches:
            seeds = [request["seed"] for request in batch]
            assert seeds == sorted(seeds)
        # ... and the first batch belongs to the *oldest* request's bucket.
        assert batches[0][0]["num_vars"] == 10
        assert [r["seed"] for r in batches[0]] == [0, 2, 4]

    def test_small_jobs_not_stuck_behind_big_bucket_overflow(self):
        # 3 big jobs overflow max_batch=2 into two batches; the small job's
        # bucket still gets its own batch without waiting a full window per
        # deferred request (the collector loops immediately).
        submissions = [
            {"num_vars": 14, "seed": 0},
            {"num_vars": 14, "seed": 1},
            {"num_vars": 14, "seed": 2},
            {"num_vars": 10, "seed": 3},
        ]
        batches, _ = self._run_bucketed(submissions, max_batch=2, window_ms=50.0)
        assert [len(batch) for batch in batches] == [2, 1, 1]
        assert batches[2] == [{"num_vars": 14, "seed": 2}] or batches[1] == [
            {"num_vars": 14, "seed": 2}
        ]

    def test_deferred_bucket_window_anchored_to_arrival(self):
        """A bucket deferred behind another's batch must not pay a fresh
        coalescing window per deferral: its window is anchored to its head
        request's arrival, so once that has elapsed it dispatches
        immediately on its turn."""
        import asyncio
        from concurrent.futures import ThreadPoolExecutor

        from repro.service.batcher import DynamicBatcher

        window_ms = 300.0
        dispatch_times: list[tuple[int, float]] = []

        async def scenario():
            loop = asyncio.get_running_loop()
            origin = loop.time()

            def record(requests):
                dispatch_times.append(
                    (requests[0]["num_vars"], loop.time() - origin)
                )
                return list(requests)

            with ThreadPoolExecutor(max_workers=1) as executor:
                batcher = DynamicBatcher(
                    record,
                    executor,
                    window_ms=window_ms,
                    max_batch=4,
                    bucket_key=lambda request: request["num_vars"],
                )
                batcher.start()
                await asyncio.gather(
                    batcher.submit({"num_vars": 10, "seed": 0}),
                    batcher.submit({"num_vars": 14, "seed": 1}),
                )
                await batcher.drain()

        asyncio.run(scenario())
        assert [num_vars for num_vars, _ in dispatch_times] == [10, 14]
        first, second = (elapsed for _, elapsed in dispatch_times)
        # Bucket 10 holds its window open; bucket 14 arrived at the same
        # time, so by its turn the shared window has expired and it must
        # dispatch right behind (well under a second full window).
        assert first >= window_ms / 1000.0 * 0.9
        assert second - first < window_ms / 1000.0 * 0.5

    def test_served_sizes_stay_byte_identical(self, server, client, direct_engine):
        """Mixed-size concurrent load through the real server: every proof
        still matches the direct engine byte for byte, and the bucketed
        batches are visible in the metrics."""
        sizes = [3, 4, 3, 4, 3, 4]
        results: list[dict | None] = [None] * len(sizes)
        errors: list[Exception] = []
        barrier = threading.Barrier(len(sizes))

        def submit(index: int) -> None:
            try:
                with ServiceClient(port=server.port) as own_client:
                    barrier.wait(timeout=30)
                    results[index] = own_client.prove(
                        "mock", num_vars=sizes[index], seed=300 + index
                    )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(index,))
            for index in range(len(sizes))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, f"mixed-size prove failed: {errors[:3]}"
        for index, result in enumerate(results):
            assert result is not None
            assert result["num_vars"] == sizes[index]
            direct = direct_engine.prove(
                "mock", num_vars=sizes[index], seed=300 + index
            )
            assert result["proof_bytes"] == direct.to_bytes()
        by_bucket = client.metrics()["batches"]["by_bucket"]
        assert {"mock:3", "mock:4"} <= set(by_bucket)


class TestExtendedHealthz:
    """Satellite of ISSUE 5: healthz reports load + cache state."""

    def test_healthz_reports_queue_and_engine_caches(self, client):
        client.prove("mock", num_vars=NUM_VARS, seed=5)
        health = client.healthz()
        assert health["queue_depth"] == 0
        assert health["in_flight_batches"] == 0
        assert health["size_buckets"] is True
        engine = health["engine"]
        assert engine["workers"] >= 1
        assert NUM_VARS in engine["cache"]["srs_sizes"]
        assert any(
            entry.startswith(f"{NUM_VARS}:")
            for entry in engine["cache"]["key_structures"]
        )
        assert engine["cache"]["circuits_cached"] >= 1

    def test_healthz_reports_field_backend(self, client):
        """ISSUE 6 fix: operators can see which kernel a node actually runs."""
        health = client.healthz()
        info = health["engine"]["field_backend"]
        assert "python" in info["available"]
        assert info["active"] in info["available"]
        cache_info = health["engine"]["cache"]["field_backend"]
        assert cache_info == info


class _StubEngine:
    """Engine double: ``prove_many`` blocks on an event and replays a canned
    artifact, so backpressure/drain states are deterministic."""

    def __init__(self, artifact: ProofArtifact, gate: threading.Event):
        self.config = EngineConfig()
        self.artifact = artifact
        self.gate = gate
        self.calls: list[int] = []
        self.closed = False

    def prove_many(self, requests):
        requests = list(requests)
        self.calls.append(len(requests))
        if not self.gate.wait(timeout=60):
            raise RuntimeError("stub gate never released")
        return [self.artifact for _ in requests]

    def resolve_circuit(self, *args, **kwargs):  # pragma: no cover - unused
        raise NotImplementedError

    def verifying_key(self, *args, **kwargs):  # pragma: no cover - unused
        raise NotImplementedError

    def close(self) -> None:
        self.closed = True


@pytest.fixture(scope="module")
def canned_artifact():
    engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
    artifact = engine.prove("mock", num_vars=3, seed=1)
    engine.close()
    return artifact


def _stub_service(canned_artifact, gate, **service_kwargs) -> ProofService:
    stub = _StubEngine(canned_artifact, gate)
    service = ProofService(
        ServiceConfig(port=0, **service_kwargs), engine=stub
    )
    return service


class TestBackpressure:
    def test_queue_bound_returns_503_not_a_hang(self, canned_artifact):
        """ISSUE 4: exceeding the queue bound is a fast 503 + Retry-After."""
        gate = threading.Event()
        service = _stub_service(
            canned_artifact, gate, batch_window_ms=0.0, max_batch=1, max_queue=2
        )
        with BackgroundServer(service) as background:
            results: list[dict] = []

            def submit(seed: int) -> None:
                with ServiceClient(port=background.port) as own_client:
                    results.append(own_client.prove("mock", num_vars=3, seed=seed))

            # One request enters the in-flight batch (blocked on the gate),
            # the next two fill the bounded queue.
            threads = [
                threading.Thread(target=submit, args=(seed,)) for seed in range(3)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.15)
            deadline = time.time() + 10
            while service.batcher.queue_depth < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert service.batcher.queue_depth == 2

            # The bound is hit: the next request is rejected immediately.
            started = time.perf_counter()
            with ServiceClient(port=background.port) as extra:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    extra.prove("mock", num_vars=3, seed=99)
            assert time.perf_counter() - started < 5.0  # a rejection, not a hang
            assert excinfo.value.status == 503
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.retry_after >= 1

            rejected = service.metrics.rejected_total
            assert rejected >= 1

            # Releasing the gate lets every admitted request complete.
            gate.set()
            for thread in threads:
                thread.join(timeout=30)
            assert len(results) == 3
        assert service.engine.closed is False  # injected engine is not owned


class TestColdRetryAfter:
    """Satellite of ISSUE 5: the 503 path on a service with no batch history.

    Before any batch completes there is no wall-time sample to estimate
    from; the answer must be the documented floor, not a degenerate
    extrapolation of the coalescing window (a zero-window server would
    otherwise advertise an almost-immediate retry while its first cold
    batch is still building the SRS).
    """

    def test_cold_503_returns_documented_floor(self, canned_artifact):
        from repro.service.server import COLD_RETRY_AFTER_SECONDS

        gate = threading.Event()
        service = _stub_service(
            canned_artifact, gate, batch_window_ms=0.0, max_batch=1, max_queue=1
        )
        with BackgroundServer(service) as background:
            threads = [
                threading.Thread(
                    target=lambda seed: ServiceClient(port=background.port).prove(
                        "mock", num_vars=3, seed=seed
                    ),
                    args=(seed,),
                    daemon=True,
                )
                for seed in range(2)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.15)
            deadline = time.time() + 10
            while service.batcher.queue_depth < 1 and time.time() < deadline:
                time.sleep(0.01)

            assert service.metrics.average_batch_seconds() == 0.0  # truly cold
            with ServiceClient(port=background.port) as extra:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    extra.prove("mock", num_vars=3, seed=99)
            assert excinfo.value.retry_after == COLD_RETRY_AFTER_SECONDS

            gate.set()
            for thread in threads:
                thread.join(timeout=30)


class TestGracefulDrain:
    def test_drain_answers_admitted_requests_then_stops(self, canned_artifact):
        gate = threading.Event()
        service = _stub_service(
            canned_artifact, gate, batch_window_ms=0.0, max_batch=2, max_queue=16
        )
        background = BackgroundServer(service).start()
        results: list[dict] = []
        errors: list[Exception] = []

        def submit(seed: int) -> None:
            try:
                with ServiceClient(port=background.port) as own_client:
                    results.append(own_client.prove("mock", num_vars=3, seed=seed))
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(seed,)) for seed in range(5)
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 10
        while (
            service.metrics.requests_total.get("prove", 0) < 5
            and time.time() < deadline
        ):
            time.sleep(0.01)
        # Requests are queued/in flight; begin the drain, then release the
        # engine so the drain can actually finish.
        stopper = threading.Thread(target=background.stop)
        stopper.start()
        time.sleep(0.2)
        gate.set()
        stopper.join(timeout=60)
        for thread in threads:
            thread.join(timeout=30)

        assert not errors, f"drain dropped admitted requests: {errors[:3]}"
        assert len(results) == 5  # every admitted request was answered
        assert service.state == "stopped"

        # The service is gone: new connections are refused.
        with pytest.raises((ConnectionError, OSError)):
            connection = http.client.HTTPConnection(
                "127.0.0.1", background.service.port, timeout=2
            )
            connection.request("GET", "/healthz")
            connection.getresponse()

    def test_draining_service_rejects_new_proves(self, canned_artifact):
        gate = threading.Event()
        gate.set()  # engine never blocks; drain is immediate
        service = _stub_service(canned_artifact, gate, batch_window_ms=0.0)
        with BackgroundServer(service) as background:
            with ServiceClient(port=background.port) as own_client:
                own_client.prove("mock", num_vars=3, seed=1)
        # After the context exits the server has fully stopped.
        assert service.state == "stopped"


class TestServeCliParser:
    def test_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--batch-window-ms", "10",
                "--max-batch", "4",
                "--max-queue", "8",
                "--workers", "2",
            ]
        )
        assert args.port == 0
        assert args.batch_window_ms == 10.0
        assert args.max_batch == 4
        assert args.max_queue == 8
        assert args.workers == 2

    def test_submit_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "--url", "http://127.0.0.1:9", "--count", "3", "--no-verify"]
        )
        assert args.url == "http://127.0.0.1:9"
        assert args.count == 3
        assert args.no_verify is True

    def test_submit_round_trip_against_live_server(self, server, capsys):
        from repro.cli import main

        rc = main(
            [
                "submit",
                "--url", f"http://127.0.0.1:{server.port}",
                "--log-gates", str(NUM_VARS),
                "--count", "2",
                "--concurrency", "2",
            ]
        )
        output = capsys.readouterr().out
        assert rc == 0
        assert output.count("ACCEPT") == 2
        assert "proofs/s" in output
