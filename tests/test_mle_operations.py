"""Tests for MLE-level operations mapped to zkSpeed units."""

import random

import pytest

from repro.fields import Fr
from repro.mle import MultilinearPolynomial
from repro.mle.operations import (
    build_eq_table,
    construct_numerator_denominator,
    elementwise_product,
    fraction_mle,
    linear_combine,
    prod_check_halves,
    product_tree_levels,
    product_tree_mle,
)


@pytest.fixture()
def rng():
    return random.Random(23)


class TestFractionMle:
    def test_entrywise_division(self, rng):
        numerator = MultilinearPolynomial.random(4, rng)
        denominator = MultilinearPolynomial.from_ints(
            4, [rng.randrange(1, 1000) for _ in range(16)]
        )
        phi = fraction_mle(numerator, denominator, batch_size=4)
        for n, d, f in zip(numerator, denominator, phi):
            assert f == n / d

    def test_batch_size_does_not_change_result(self, rng):
        numerator = MultilinearPolynomial.random(3, rng)
        denominator = MultilinearPolynomial.from_ints(
            3, [rng.randrange(1, 99) for _ in range(8)]
        )
        results = {
            batch: fraction_mle(numerator, denominator, batch_size=batch).evaluations
            for batch in (1, 2, 3, 8, 64)
        }
        first = next(iter(results.values()))
        assert all(value == first for value in results.values())

    def test_size_mismatch_and_bad_batch(self, rng):
        a = MultilinearPolynomial.random(2, rng)
        b = MultilinearPolynomial.random(3, rng)
        with pytest.raises(ValueError):
            fraction_mle(a, b)
        with pytest.raises(ValueError):
            fraction_mle(a, a, batch_size=0)

    def test_zero_denominator_raises(self):
        numerator = MultilinearPolynomial.from_ints(1, [1, 1])
        denominator = MultilinearPolynomial.from_ints(1, [1, 0])
        with pytest.raises(ZeroDivisionError):
            fraction_mle(numerator, denominator)


class TestProductTree:
    def test_levels_structure(self):
        values = Fr.elements([1, 2, 3, 4, 5, 6, 7, 8])
        levels = product_tree_levels(values)
        assert [len(level) for level in levels] == [8, 4, 2, 1]
        assert levels[1] == Fr.elements([2, 12, 30, 56])
        assert levels[-1][0] == Fr(40320)

    def test_levels_require_power_of_two(self):
        with pytest.raises(ValueError):
            product_tree_levels(Fr.elements([1, 2, 3]))
        with pytest.raises(ValueError):
            product_tree_levels([])

    def test_product_mle_constraint_holds_everywhere(self, rng):
        phi = MultilinearPolynomial.from_ints(
            3, [rng.randrange(1, 50) for _ in range(8)]
        )
        pi = product_tree_mle(phi)
        p1, p2 = prod_check_halves(phi, pi)
        for j in range(8):
            assert pi[j] == p1[j] * p2[j]

    def test_total_product_location_and_final_zero(self, rng):
        for mu in (2, 3, 4):
            phi = MultilinearPolynomial.from_ints(
                mu, [rng.randrange(1, 50) for _ in range(1 << mu)]
            )
            pi = product_tree_mle(phi)
            total = Fr(1)
            for value in phi:
                total = total * value
            assert pi[(1 << mu) - 2] == total
            assert pi[(1 << mu) - 1] == Fr(0)

    def test_total_product_as_mle_point(self, rng):
        mu = 4
        phi = MultilinearPolynomial.from_ints(
            mu, [rng.randrange(1, 50) for _ in range(1 << mu)]
        )
        pi = product_tree_mle(phi)
        point = [Fr(0)] + [Fr(1)] * (mu - 1)
        total = Fr(1)
        for value in phi:
            total = total * value
        assert pi.evaluate(point) == total

    def test_p1_p2_partial_evaluation_identity(self, rng):
        """p1(r) = (1 - r_mu) phi(0, r') + r_mu pi(0, r') -- the verifier's reconstruction."""
        mu = 4
        phi = MultilinearPolynomial.random(mu, rng)
        pi = product_tree_mle(phi)
        p1, p2 = prod_check_halves(phi, pi)
        r = [Fr.random(rng) for _ in range(mu)]
        r_prefix = r[:-1]
        one = Fr(1)
        expected_p1 = (one - r[-1]) * phi.evaluate([Fr(0)] + r_prefix) + r[-1] * pi.evaluate(
            [Fr(0)] + r_prefix
        )
        expected_p2 = (one - r[-1]) * phi.evaluate([Fr(1)] + r_prefix) + r[-1] * pi.evaluate(
            [Fr(1)] + r_prefix
        )
        assert p1.evaluate(r) == expected_p1
        assert p2.evaluate(r) == expected_p2

    def test_prod_check_halves_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            prod_check_halves(
                MultilinearPolynomial.random(2, rng), MultilinearPolynomial.random(3, rng)
            )


class TestConstructNumeratorDenominator:
    def test_definition(self, rng):
        mu = 3
        witnesses = [MultilinearPolynomial.random(mu, rng) for _ in range(3)]
        identities = [MultilinearPolynomial.random(mu, rng) for _ in range(3)]
        sigmas = [MultilinearPolynomial.random(mu, rng) for _ in range(3)]
        beta, gamma = Fr.random(rng), Fr.random(rng)
        numerators, denominators = construct_numerator_denominator(
            witnesses, identities, sigmas, beta, gamma
        )
        for col in range(3):
            for j in range(1 << mu):
                assert numerators[col][j] == witnesses[col][j] + beta * identities[col][j] + gamma
                assert denominators[col][j] == witnesses[col][j] + beta * sigmas[col][j] + gamma

    def test_column_count_mismatch(self, rng):
        mle = MultilinearPolynomial.random(2, rng)
        with pytest.raises(ValueError):
            construct_numerator_denominator([mle], [mle, mle], [mle], Fr(1), Fr(2))

    def test_identity_permutation_gives_product_one(self, rng):
        """With sigma == id the grand product of N/D is trivially one."""
        mu = 3
        witnesses = [MultilinearPolynomial.random(mu, rng) for _ in range(3)]
        identities = [MultilinearPolynomial.random(mu, rng) for _ in range(3)]
        beta, gamma = Fr.random(rng), Fr.random(rng)
        numerators, denominators = construct_numerator_denominator(
            witnesses, identities, identities, beta, gamma
        )
        phi = fraction_mle(
            elementwise_product(numerators), elementwise_product(denominators)
        )
        total = Fr(1)
        for value in phi:
            total = total * value
        assert total == Fr(1)


class TestLinearCombineAndHelpers:
    def test_linear_combine(self, rng):
        mles = [MultilinearPolynomial.random(3, rng) for _ in range(4)]
        coeffs = [Fr.random(rng) for _ in range(4)]
        combined = linear_combine(mles, coeffs)
        point = [Fr.random(rng) for _ in range(3)]
        expected = Fr(0)
        for coeff, mle in zip(coeffs, mles):
            expected = expected + coeff * mle.evaluate(point)
        assert combined.evaluate(point) == expected

    def test_linear_combine_validation(self, rng):
        a = MultilinearPolynomial.random(2, rng)
        b = MultilinearPolynomial.random(3, rng)
        with pytest.raises(ValueError):
            linear_combine([a], [Fr(1), Fr(2)])
        with pytest.raises(ValueError):
            linear_combine([], [])
        with pytest.raises(ValueError):
            linear_combine([a, b], [Fr(1), Fr(1)])

    def test_elementwise_product(self, rng):
        mles = [MultilinearPolynomial.random(2, rng) for _ in range(3)]
        product = elementwise_product(mles)
        for j in range(4):
            assert product[j] == mles[0][j] * mles[1][j] * mles[2][j]
        with pytest.raises(ValueError):
            elementwise_product([])

    def test_build_eq_table_alias(self, rng):
        point = [Fr.random(rng) for _ in range(3)]
        table = build_eq_table(point)
        assert table.sum_over_hypercube() == Fr(1)
