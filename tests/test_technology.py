"""Tests for the technology (area/power/delay) model."""

import pytest

from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel


class TestTechnologyModel:
    def test_paper_scaling_factors(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.area_scale_22_to_7 == pytest.approx(3.6)
        assert tech.power_scale_22_to_7 == pytest.approx(3.3)
        assert tech.delay_scale_22_to_7 == pytest.approx(1.7)

    def test_modmul_areas_match_table4(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.modmul_area_mm2_255 == pytest.approx(0.133)
        assert tech.modmul_area_mm2_381 == pytest.approx(0.314)

    def test_sumcheck_pe_area_consistent_with_modmul_count(self):
        tech = DEFAULT_TECHNOLOGY
        # 94 modmuls x 0.133 mm^2 ~ 12.5 mm^2 (Table 5: 24.96 mm^2 / 2 PEs).
        assert tech.sumcheck_pe_modmuls * tech.modmul_area_mm2_255 == pytest.approx(
            tech.sumcheck_pe_area_mm2, rel=0.02
        )

    def test_beea_latency(self):
        assert DEFAULT_TECHNOLOGY.modinv_latency_cycles == 509

    def test_cycles_to_ms(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.cycles_to_ms(1_000_000) == pytest.approx(1.0)
        assert tech.cycle_time_ns == pytest.approx(1.0)

    def test_cycles_to_ms_other_clock(self):
        tech = TechnologyModel(clock_ghz=2.0)
        assert tech.cycles_to_ms(2_000_000) == pytest.approx(1.0)

    def test_hbm_phy_plan(self):
        tech = DEFAULT_TECHNOLOGY
        kind, count, area = tech.hbm_phy_plan(128.0)
        assert kind == "ddr" and count == 1
        kind, count, area = tech.hbm_phy_plan(512.0)
        assert kind == "hbm2" and area == pytest.approx(14.9)
        kind, count, area = tech.hbm_phy_plan(2048.0)
        assert kind == "hbm3" and count == 2 and area == pytest.approx(59.2)
        kind, count, area = tech.hbm_phy_plan(4096.0)
        assert count == 4

    def test_to_22nm_area(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.to_22nm_area(10.0) == pytest.approx(36.0)

    def test_power_densities_reproduce_table5_unit_powers(self):
        tech = DEFAULT_TECHNOLOGY
        # MSM: 105.64 mm^2 * density ~ 76.19 W.
        assert 105.64 * tech.power_density_msm == pytest.approx(76.19, rel=0.02)
        # SumCheck: 24.96 mm^2 * density ~ 5.38 W.
        assert 24.96 * tech.power_density_sumcheck == pytest.approx(5.38, rel=0.02)
        # HBM PHYs: 59.2 mm^2 * density ~ 63.6 W.
        assert 59.2 * tech.power_density_hbm_phy == pytest.approx(63.6, rel=0.02)
