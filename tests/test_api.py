"""Tests for the public session API (``repro.api``).

Covers the ISSUE-2 acceptance surface: engine-level round-trips
(prove -> serialize -> deserialize -> verify), SRS/key cache behavior,
byte-equality of proofs between the low-level free-function path and the
engine, removal of the PR 2 deprecation shims (they warned for two PRs),
the scenario registry that unifies the functional prover and the chip
model, and the ``prove_many`` witness-commit worker pool.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import (
    EngineConfig,
    ProofArtifact,
    ProverEngine,
    available_scenarios,
    resolve_scenario,
)
from repro.api.parallel import batch_witness_commitments, fork_available
from repro.circuits import mock_circuit
from repro.core.chip import SimulationReport
from repro.protocol.serialization import serialize_proof


@pytest.fixture(scope="module")
def engine():
    return ProverEngine(EngineConfig(srs_seed=11))


@pytest.fixture(scope="module")
def artifact(engine):
    return engine.prove("mock", num_vars=5, seed=21)


class TestEngineConfig:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.field_backend == "auto"
        assert config.workers == 1

    def test_rejects_unknown_backend_policy(self):
        with pytest.raises(ValueError, match="backend policy"):
            EngineConfig(field_backend="cuda")

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(workers=-1)

    def test_rejects_bad_window_bits(self):
        with pytest.raises(ValueError, match="window_bits"):
            EngineConfig(msm_window_bits=0)

    def test_effective_workers_auto_is_cpu_gated(self):
        import os

        assert EngineConfig(workers=0).effective_workers() == (os.cpu_count() or 1)
        assert EngineConfig(workers=3).effective_workers() == 3

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIELD_BACKEND", "python")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        config = EngineConfig.from_env()
        assert config.field_backend == "python"
        assert config.workers == 4
        assert EngineConfig.from_env(workers=2).workers == 2

    def test_with_options(self):
        config = EngineConfig().with_options(field_backend="python")
        assert config.field_backend == "python"

    def test_apply_restores_backend_policy(self):
        from repro.fields.backends import default_policy

        before = default_policy()
        with EngineConfig(field_backend="python").apply():
            assert default_policy() == "python"
        assert default_policy() == before

    def test_apply_unavailable_backend_degrades_with_warning(self):
        # Policy validation happens at construction, so sneak an
        # unregistered name past it to model e.g. a NumPy-free install
        # asked for the numpy backend.
        config = EngineConfig(field_backend="auto")
        object.__setattr__(config, "field_backend", "ghost")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            with config.apply():
                pass


class TestProveVerifyRoundTrip:
    def test_prove_returns_artifact(self, artifact):
        assert isinstance(artifact, ProofArtifact)
        assert artifact.scenario == "mock"
        assert artifact.num_vars == 5
        assert artifact.size_bytes > 0

    def test_verify_accepts(self, engine, artifact):
        assert engine.verify(artifact)

    def test_serialize_deserialize_verify(self, engine, artifact):
        blob = artifact.to_bytes()
        restored = ProofArtifact.proof_from_bytes(blob)
        assert engine.verify(restored, verifying_key=artifact.verifying_key)

    def test_bare_proof_requires_key(self, engine, artifact):
        with pytest.raises(ValueError, match="verifying_key"):
            engine.verify(artifact.proof)

    def test_prove_with_prebuilt_circuit(self, engine):
        circuit = mock_circuit(5, seed=21)
        built = engine.prove(circuit=circuit)
        assert engine.verify(built)

    def test_requires_exactly_one_source(self, engine):
        with pytest.raises(ValueError, match="exactly one"):
            engine.prove()
        with pytest.raises(ValueError, match="exactly one"):
            engine.prove("mock", circuit=mock_circuit(5, seed=1))

    def test_collect_trace(self, engine):
        traced = engine.prove("mock", num_vars=5, seed=21, collect_trace=True)
        assert traced.trace is not None
        assert [s.name for s in traced.trace.steps][0] == "witness_commits"

    def test_transcript_domain_tag_separates_proofs(self):
        base = ProverEngine(EngineConfig(srs_seed=11))
        tagged = ProverEngine(EngineConfig(srs_seed=11, transcript_label=b"other"))
        plain = base.prove("mock", num_vars=5, seed=21)
        other = tagged.prove("mock", num_vars=5, seed=21)
        assert plain.to_bytes() != other.to_bytes()
        # Each engine accepts its own proof but rejects the foreign tag.
        assert base.verify(plain) and tagged.verify(other)
        from repro.protocol.verifier import VerificationError

        with pytest.raises(VerificationError):
            base.verify(other)


class TestFieldBackendIntrospection:
    def test_field_backend_info_resolves_policy(self):
        from repro.fields import available_backends

        engine = ProverEngine(EngineConfig(field_backend="python"))
        info = engine.field_backend_info()
        assert info["policy"] == "python"
        assert info["active"] == "python"
        assert info["available"] == available_backends()

    def test_auto_policy_reports_resolved_backend(self):
        from repro.fields import available_backends
        from repro.fields.backends import HAS_NATIVE, HAS_NUMPY

        engine = ProverEngine(EngineConfig(field_backend="auto"))
        info = engine.field_backend_info()
        assert info["policy"] == "auto"
        if HAS_NATIVE:
            assert info["active"] == "native"
        elif HAS_NUMPY:
            assert info["active"] == "numpy"
        else:
            assert info["active"] == "python"
        assert info["active"] in available_backends()

    def test_cache_contents_carry_field_backend(self):
        engine = ProverEngine(EngineConfig())
        contents = engine.cache_contents()
        assert contents["field_backend"] == engine.field_backend_info()


class TestSessionCaches:
    def test_srs_and_key_cache_hits(self):
        engine = ProverEngine(EngineConfig(srs_seed=5))
        first = engine.prove("mock", num_vars=5, seed=9)
        assert engine.cache_stats.srs_misses == 1
        assert engine.cache_stats.key_misses == 1
        second = engine.prove("mock", num_vars=5, seed=9)
        assert engine.cache_stats.key_hits >= 1
        assert second.timings["setup_and_preprocess"] == 0.0
        assert first.to_bytes() == second.to_bytes()

    def test_key_cache_is_structure_keyed(self):
        # zcash circuits with different witness seeds share gate structure
        # only when the embedded random constants match, so same-seed
        # rebuilds hit and different-seed builds miss.
        engine = ProverEngine(EngineConfig(srs_seed=5))
        spec = resolve_scenario("zcash")
        a = spec.build_circuit(num_vars=5, seed=1)
        b = spec.build_circuit(num_vars=5, seed=1)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()
        engine.preprocess(a)
        engine.preprocess(b)
        assert engine.cache_stats.key_hits == 1
        assert engine.cache_stats.key_misses == 1

    def test_fingerprint_ignores_witness(self):
        spec = resolve_scenario("auction")
        a = spec.build_circuit(num_vars=6, seed=2)
        b = spec.build_circuit(num_vars=6, seed=3)
        assert a.fingerprint() != b.fingerprint()

    def test_setup_cached_across_sizes(self):
        engine = ProverEngine()
        srs = engine.setup(4)
        assert engine.setup(4) is srs
        assert engine.cache_stats.srs_hits == 1
        assert engine.setup(5) is not srs

    def test_preload_srs(self):
        from repro.pcs.srs import setup as raw_setup

        srs = raw_setup(4, seed=0)
        engine = ProverEngine()
        engine.preload_srs(srs)
        assert engine.setup(4) is srs
        assert engine.cache_stats.srs_misses == 0


class TestOldApiEquivalence:
    def test_proof_bytes_identical_old_vs_new(self):
        """The redesign must not change a single proof byte."""
        engine = ProverEngine(EngineConfig(srs_seed=1))
        new_blob = engine.prove("mock", num_vars=5, seed=3).to_bytes()

        from repro.pcs.srs import setup
        from repro.protocol.keys import preprocess
        from repro.protocol.prover import prove

        srs = setup(5, seed=1)
        pk, _vk = preprocess(mock_circuit(5, seed=3), srs)
        old_blob = serialize_proof(prove(pk))
        assert old_blob == new_blob

    def test_deprecated_shims_removed(self):
        """The PR 2 shims warned for two PRs; per policy they are now gone.

        ``repro.pcs`` / ``repro.protocol`` still re-export the genuinely
        public names — only the free-function prover entry points moved.
        """
        import repro.pcs
        import repro.protocol

        assert not hasattr(repro.pcs, "setup")
        for name in ("preprocess", "prove", "verify"):
            assert not hasattr(repro.protocol, name)

    def test_implementation_modules_do_not_warn(self):
        from repro.pcs.srs import setup as raw_setup

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            raw_setup(2, seed=0)


class TestProveMany:
    def test_serial_batch_matches_singles(self):
        engine = ProverEngine(EngineConfig(srs_seed=11))
        single = engine.prove("mock", num_vars=5, seed=4)
        batch = engine.prove_many(
            [{"scenario": "mock", "num_vars": 5, "seed": 4}], workers=1
        )
        assert len(batch) == 1
        assert batch[0].to_bytes() == single.to_bytes()
        assert engine.verify(batch[0])

    def test_request_forms(self):
        engine = ProverEngine(EngineConfig(srs_seed=11))
        circuit = mock_circuit(5, seed=8)
        artifacts = engine.prove_many(["mock", circuit], workers=1)
        assert [a.scenario for a in artifacts] == ["mock", circuit.name]
        assert all(engine.verify(a) for a in artifacts)

    @pytest.mark.skipif(not fork_available(), reason="requires fork start method")
    def test_parallel_batch_is_byte_identical(self):
        engine = ProverEngine(EngineConfig(srs_seed=11))
        requests = [
            {"scenario": "mock", "num_vars": 5, "seed": 4},
            {"scenario": "mock", "num_vars": 5, "seed": 5},
        ]
        serial = engine.prove_many(requests, workers=1)
        parallel = engine.prove_many(requests, workers=2)
        assert [a.to_bytes() for a in serial] == [a.to_bytes() for a in parallel]

    @pytest.mark.skipif(not fork_available(), reason="requires fork start method")
    def test_pool_commitments_match_serial(self, engine):
        circuit = mock_circuit(5, seed=4)
        pk, _ = engine.preprocess(circuit)
        serial = batch_witness_commitments([pk.pcs], [circuit], [0], workers=1)
        pooled = batch_witness_commitments([pk.pcs], [circuit], [0], workers=2)
        for name in ("w1", "w2", "w3"):
            assert serial[0][name][0] == pooled[0][name][0]
            # The trace statistics survive the process boundary too.
            assert (
                serial[0][name][1].num_points == pooled[0][name][1].num_points
            )

    def test_trace_collected_through_batch_path(self):
        engine = ProverEngine(EngineConfig(srs_seed=11, collect_trace=True))
        (artifact,) = engine.prove_many(
            [{"scenario": "mock", "num_vars": 5, "seed": 4}], workers=1
        )
        assert artifact.trace is not None
        witness_step = artifact.trace.steps[0]
        assert witness_step.name == "witness_commits"
        assert sum(s.num_points for s in witness_step.msm_stats) > 0


class TestScenarios:
    def test_registry_contents(self):
        names = available_scenarios()
        assert "mock" in names
        for expected in ("zcash", "auction", "rescue", "recursive", "rollup"):
            assert expected in names

    def test_unknown_scenario_is_guided(self):
        with pytest.raises(KeyError, match="available"):
            resolve_scenario("aes")

    @pytest.mark.parametrize("name", ["zcash", "auction", "rescue", "recursive", "rollup"])
    def test_scenarios_build_satisfiable_circuits(self, name):
        scenario = resolve_scenario(name)
        circuit = scenario.build_circuit(num_vars=6, seed=0)
        assert circuit.is_satisfied()
        model = scenario.workload_model()
        assert model.num_vars == scenario.paper_log_size
        assert model.name == scenario.title

    def test_workload_model_from_circuit(self):
        scenario = resolve_scenario("zcash")
        circuit = scenario.build_circuit(num_vars=6, seed=0)
        model = scenario.workload_model(num_vars=17, circuit=circuit)
        assert model.num_vars == 17
        measured = circuit.witness_sparsity()
        assert model.dense_fraction == pytest.approx(measured["dense_fraction"])

    def test_simulate_and_profiles_by_name(self, engine):
        report = engine.simulate(scenario="zcash")
        assert isinstance(report, SimulationReport)
        assert report.total_runtime_ms > 0
        profiles = engine.kernel_profiles(scenario="zcash")
        assert any("MSM" in p.name for p in profiles)

    def test_explore_by_size(self, engine):
        explorer, points = engine.explore(num_vars=16, max_points=16)
        assert len(points) == 16
        assert explorer.global_pareto(points)

    def test_top_level_reexports(self):
        import repro

        assert repro.ProverEngine is ProverEngine
        assert repro.EngineConfig is EngineConfig
        with pytest.raises(AttributeError):
            repro.not_a_symbol
