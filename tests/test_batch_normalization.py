"""Regression tests: affine-normalization paths share batched inversions.

The seed implementation inverted one ``z`` coordinate per point when
normalizing Jacobian points (SRS generation, opening-proof quotients) and
one chord denominator per point addition.  These tests pin the batched
behavior via the curve layer's :data:`~repro.curves.curve.FQ_INVERSIONS`
meter so the per-point inversions cannot silently come back.
"""

import random

import pytest

from repro.curves.bls12_381 import g1_generator
from repro.curves.curve import (
    FQ_INVERSIONS,
    AffinePoint,
    JacobianPoint,
    batch_affine_add_pairs,
    batch_to_affine,
    tree_sum_affine,
)
from repro.mle import MultilinearPolynomial
from repro.pcs import open_at_point
from repro.pcs.srs import setup


@pytest.fixture(autouse=True)
def _reset_meter():
    FQ_INVERSIONS.reset()
    yield
    FQ_INVERSIONS.reset()


def _random_points(count, seed=7):
    g = g1_generator()
    rng = random.Random(seed)
    return [g.scalar_mul(rng.randrange(1, 1 << 64)) for _ in range(count)]


class TestBatchToAffine:
    def test_matches_individual_normalization(self):
        jacobians = _random_points(17)
        expected = [p.to_affine() for p in jacobians]
        assert batch_to_affine(jacobians) == expected

    def test_single_inversion_for_whole_batch(self):
        jacobians = _random_points(64)
        FQ_INVERSIONS.reset()
        batch_to_affine(jacobians)
        assert FQ_INVERSIONS.count == 1
        assert FQ_INVERSIONS.elements == 64

    def test_identity_points_skipped(self):
        jacobians = [JacobianPoint.identity()] + _random_points(3)
        result = batch_to_affine(jacobians)
        assert result[0].is_identity()
        assert FQ_INVERSIONS.elements == 3

    def test_regression_vs_per_point_inversion(self):
        """The batched path must do strictly fewer inversions than points."""
        count = 32
        jacobians = _random_points(count)
        FQ_INVERSIONS.reset()
        batch_to_affine(jacobians)
        batched = FQ_INVERSIONS.count
        FQ_INVERSIONS.reset()
        for p in jacobians:
            p.to_affine()
        per_point = FQ_INVERSIONS.count
        assert per_point == count
        assert batched == 1 < per_point


class TestBatchedCurvePaths:
    def test_batch_add_pairs_one_inversion(self):
        points = [p.to_affine() for p in _random_points(32)]
        pairs = list(zip(points[0::2], points[1::2]))
        FQ_INVERSIONS.reset()
        batch_affine_add_pairs(pairs)
        # One inversion for the adds themselves (the conversion back to
        # AffinePoint objects performs no inversions at all).
        assert FQ_INVERSIONS.count == 1

    def test_tree_sum_one_inversion_per_level(self):
        points = [p.to_affine() for p in _random_points(33, seed=3)]
        expected, _ = tree_sum_affine(points)
        FQ_INVERSIONS.reset()
        result, padds = tree_sum_affine(points)
        # 33 leaves -> 6 tree levels -> at most 6 batched inversions, far
        # fewer than the 32 chord inversions of an unbatched affine tree.
        # (Checked before the equality below, whose to_affine() also meters.)
        assert FQ_INVERSIONS.count <= 6
        assert padds == 32
        assert result == expected

    def test_srs_setup_batches_lagrange_normalization(self):
        FQ_INVERSIONS.reset()
        setup(3, seed=9)
        # 8 + 4 + 2 = 14 table points plus the generator normalization used
        # to be >= 15 inversions; the batched path needs one per suffix
        # table plus O(1) for the generator itself.
        assert FQ_INVERSIONS.elements >= 14
        assert FQ_INVERSIONS.count <= 3 + 2

    def test_opening_batches_quotient_normalization(self):
        srs = setup(4, seed=1)
        rng = random.Random(5)
        mle = MultilinearPolynomial.random(4, rng)
        point = [mle.field(rng.randrange(mle.field.modulus)) for _ in range(4)]
        FQ_INVERSIONS.reset()
        open_at_point(srs.prover_key, mle, point)
        # The 4 quotient commitments are normalized with ONE shared
        # inversion; everything else is the quotient MSMs' internal batched
        # trees.  The seed inverted once per normalized point / addition
        # (hundreds here); the batched paths need an order of magnitude
        # fewer actual inversions than values inverted.
        assert FQ_INVERSIONS.elements > 100
        assert FQ_INVERSIONS.count <= 16
        assert FQ_INVERSIONS.count * 10 < FQ_INVERSIONS.elements