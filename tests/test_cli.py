"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.log_gates == 20
        assert args.bandwidth == 2048.0


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--log-gates", "18"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "step breakdown" in output

    def test_simulate_custom_bandwidth(self, capsys):
        assert main(["simulate", "--log-gates", "18", "--bandwidth", "512"]) == 0
        assert "512" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--log-gates", "20"]) == 0
        output = capsys.readouterr().out
        assert "Witness MSMs" in output
        assert "All MLE Updates" in output

    def test_dse(self, capsys):
        assert main(["dse", "--log-gates", "18", "--max-points", "40"]) == 0
        output = capsys.readouterr().out
        assert "Pareto frontier" in output

    def test_prove(self, capsys):
        assert main(["prove", "--log-gates", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ACCEPT" in output
        assert "proof size" in output
