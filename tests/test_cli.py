"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        # --log-gates defaults to None so a named scenario can fall through
        # to its published Table 3 size; the synthetic workload resolves to
        # the historical 2^20 (covered in TestCommands).
        args = build_parser().parse_args(["simulate"])
        assert args.log_gates is None
        assert args.bandwidth == 2048.0

    def test_rejects_nonpositive_count_and_negative_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prove", "--count", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prove", "--workers", "-1"])

    def test_engine_flags_accepted_by_every_command(self):
        # --field-backend/--workers used to silently no-op on everything
        # but `prove`; now they parse (and are honored) uniformly.
        for command in ("simulate", "dse", "prove", "table1"):
            args = build_parser().parse_args(
                [command, "--field-backend", "python", "--workers", "2"]
            )
            assert args.field_backend == "python"
            assert args.workers == 2

    def test_prove_scenario_and_count(self):
        args = build_parser().parse_args(
            ["prove", "--scenario", "zcash", "--count", "3"]
        )
        assert args.scenario == "zcash"
        assert args.count == 3

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prove", "--scenario", "aes"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "--log-gates", "18"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "step breakdown" in output

    def test_simulate_custom_bandwidth(self, capsys):
        assert main(["simulate", "--log-gates", "18", "--bandwidth", "512"]) == 0
        assert "512" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--log-gates", "20"]) == 0
        output = capsys.readouterr().out
        assert "Witness MSMs" in output
        assert "All MLE Updates" in output

    def test_dse(self, capsys):
        assert main(["dse", "--log-gates", "18", "--max-points", "40"]) == 0
        output = capsys.readouterr().out
        assert "Pareto frontier" in output

    def test_prove(self, capsys):
        assert main(["prove", "--log-gates", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ACCEPT" in output
        assert "proof size" in output

    def test_prove_with_field_backend(self, capsys):
        assert main(
            ["prove", "--log-gates", "4", "--seed", "1", "--field-backend", "python"]
        ) == 0
        assert "ACCEPT" in capsys.readouterr().out

    def test_prove_scenario_batch(self, capsys):
        assert main(
            ["prove", "--log-gates", "4", "--seed", "1", "--scenario", "zcash",
             "--count", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert output.count("ACCEPT") == 2
        assert "batch: 2 proofs" in output

    def test_simulate_scenario(self, capsys):
        assert main(["simulate", "--scenario", "zcash", "--log-gates", "17"]) == 0
        output = capsys.readouterr().out
        assert "Zcash" in output
        assert "speedup" in output

    def test_simulate_scenario_defaults_to_paper_size(self, capsys):
        assert main(["simulate", "--scenario", "zcash"]) == 0
        assert "problem size  : 2^17 gates" in capsys.readouterr().out

    def test_simulate_synthetic_defaults_to_2_20(self, capsys):
        assert main(["simulate"]) == 0
        assert "problem size  : 2^20 gates" in capsys.readouterr().out

    def test_table1_with_engine_flags(self, capsys):
        assert main(["table1", "--log-gates", "18", "--workers", "2"]) == 0
        assert "Witness MSMs" in capsys.readouterr().out
