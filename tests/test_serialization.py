"""Tests for proof serialization (compact binary wire format)."""

import pytest

from repro.curves import g1_generator
from repro.curves.curve import AffinePoint
from repro.fields import Fr
from repro.protocol import (
    SerializationError,
    deserialize_proof,
    proof_size_bytes,
    serialize_proof,
)
from repro.protocol.verifier import verify
from repro.protocol.serialization import compress_g1, decompress_g1


class TestPointCompression:
    def test_round_trip_generator_multiples(self):
        g = g1_generator()
        for k in (1, 2, 3, 17, 123456789):
            point = (g * k).to_affine()
            assert decompress_g1(compress_g1(point)) == point

    def test_round_trip_identity(self):
        identity = AffinePoint.identity()
        assert decompress_g1(compress_g1(identity)) == identity

    def test_compressed_size(self):
        assert len(compress_g1(g1_generator().to_affine())) == 48

    def test_bad_length_rejected(self):
        with pytest.raises(SerializationError):
            decompress_g1(b"\x00" * 47)

    def test_uncompressed_flag_rejected(self):
        with pytest.raises(SerializationError):
            decompress_g1(b"\x00" * 48)

    def test_not_on_curve_rejected(self):
        # x = 1 is not the x-coordinate of a curve point (1 + 4 = 5 is a QNR
        # check done by decompression; if it is a QR the point check catches it).
        data = bytearray(48)
        data[0] = 0b1000_0000
        data[-1] = 0x01
        with pytest.raises(SerializationError):
            decompress_g1(bytes(data))


class TestProofSerialization:
    def test_round_trip_preserves_verification(self, small_keys, small_proof):
        _, vk = small_keys
        proof, _ = small_proof
        data = serialize_proof(proof)
        restored = deserialize_proof(data)
        assert verify(vk, restored)

    def test_round_trip_preserves_fields(self, small_proof):
        proof, _ = small_proof
        restored = deserialize_proof(serialize_proof(proof))
        assert restored.num_vars == proof.num_vars
        assert restored.witness_commitments == proof.witness_commitments
        assert restored.phi_commitment == proof.phi_commitment
        assert restored.pi_commitment == proof.pi_commitment
        assert restored.evaluation_claims == proof.evaluation_claims
        assert restored.opening_evaluations == proof.opening_evaluations
        assert restored.batch_opening_value == proof.batch_opening_value
        assert restored.batch_opening.quotients == proof.batch_opening.quotients
        assert (
            restored.gate_zerocheck.sumcheck.round_messages()
            == proof.gate_zerocheck.sumcheck.round_messages()
        )

    def test_serialized_size_in_kilobyte_range(self, small_proof):
        """HyperPlonk proofs are a few KB (5.09 KB at 2^24 per Table 4)."""
        proof, _ = small_proof
        size = proof_size_bytes(proof)
        assert 1_000 < size < 10_000
        # The size estimate on the proof object is within 25% of the real size.
        assert proof.size_bytes() == pytest.approx(size, rel=0.25)

    def test_bad_magic_rejected(self, small_proof):
        proof, _ = small_proof
        data = bytearray(serialize_proof(proof))
        data[0] ^= 0xFF
        with pytest.raises(SerializationError):
            deserialize_proof(bytes(data))

    def test_bad_version_rejected(self, small_proof):
        proof, _ = small_proof
        data = bytearray(serialize_proof(proof))
        data[4] = 99
        with pytest.raises(SerializationError):
            deserialize_proof(bytes(data))

    def test_trailing_bytes_rejected(self, small_proof):
        proof, _ = small_proof
        data = serialize_proof(proof) + b"\x00"
        with pytest.raises(SerializationError):
            deserialize_proof(data)

    def test_tampered_serialized_claim_fails_verification(self, small_keys, small_proof):
        """Flipping a byte of a serialized claim must not verify."""
        _, vk = small_keys
        proof, _ = small_proof
        data = bytearray(serialize_proof(proof))
        # Flip a byte near the middle of the buffer (inside the claims /
        # sumcheck region); decompression may fail or verification must fail.
        data[len(data) // 2] ^= 0x01
        try:
            restored = deserialize_proof(bytes(data))
        except SerializationError:
            return
        from repro.protocol import VerificationError

        with pytest.raises(VerificationError):
            verify(vk, restored)
