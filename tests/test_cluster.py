"""Tests for the sharded serving tier (``repro.cluster``).

The acceptance surface of ISSUE 5: structure-affine routing (the same
``(scenario, num_vars)`` always lands on the same live backend, and the
second request hits that backend's caches), byte-identity of routed proofs
against the direct in-process ``engine.prove``, health-checked failover
(killing a backend re-routes its rendezvous slots and completes all
admitted requests), metrics aggregation across the fleet, and the spawn /
terminate lifecycle of child ``repro serve`` processes.

The e2e tests attach the router to in-process ``ProofService`` backends
(module-scoped, tiny circuits) so the engines are directly inspectable;
one slower test exercises the real subprocess spawn path.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.api import EngineConfig, ProverEngine
from repro.cluster import (
    AsyncBackendClient,
    BackendBusy,
    ClusterRouter,
    ClusterTopology,
    RouterConfig,
    parse_backend_list,
    rank_members,
    rendezvous_score,
    spawn_backend,
    structure_key,
)
from repro.service import (
    BackgroundServer,
    ProofService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceUnavailable,
)

SRS_SEED = 7


# -- placement units ----------------------------------------------------------


class TestTopology:
    MEMBERS = [f"10.0.0.{n}:8000" for n in range(1, 5)]

    def test_scores_are_deterministic(self):
        assert rendezvous_score("mock:5", "a:1") == rendezvous_score("mock:5", "a:1")
        assert rank_members("mock:5", self.MEMBERS) == rank_members(
            "mock:5", self.MEMBERS
        )
        # Order of the member list must not matter.
        assert set(rank_members("mock:5", self.MEMBERS)) == set(self.MEMBERS)
        assert rank_members("mock:5", list(reversed(self.MEMBERS))) == rank_members(
            "mock:5", self.MEMBERS
        )

    def test_structure_key_resolves_scenario_default_size(self):
        from repro.api.scenarios import resolve_scenario

        default = resolve_scenario("mock").default_log_size
        assert structure_key("mock", None) == f"mock:{default}"
        assert structure_key("mock", 9) == "mock:9"
        assert structure_key("zcash", 6) == "zcash:6"

    def test_keys_spread_over_all_members(self):
        topology = ClusterTopology(self.MEMBERS)
        keys = [f"mock:{size}" for size in range(3, 43)]
        owners = set(topology.placement(keys).values())
        assert owners == set(self.MEMBERS)

    def test_mark_down_moves_only_the_victims_keys(self):
        topology = ClusterTopology(self.MEMBERS)
        keys = [f"scenario{i}:{8 + i % 5}" for i in range(60)]
        before = topology.placement(keys)
        victim = self.MEMBERS[2]
        topology.mark_down(victim)
        after = topology.placement(keys)
        moved = 0
        for key in keys:
            if before[key] == victim:
                # The victim's keys fall to their next rendezvous choice...
                moved += 1
                survivors = [m for m in self.MEMBERS if m != victim]
                assert after[key] == rank_members(key, survivors)[0]
            else:
                # ... and nobody else's placement moves at all.
                assert after[key] == before[key]
        assert moved > 0  # the victim owned something to begin with
        # Recovery restores the exact original placement (caches still hot).
        topology.mark_up(victim)
        assert topology.placement(keys) == before

    def test_liveness_bookkeeping(self):
        topology = ClusterTopology(self.MEMBERS[:2], assume_live=False)
        assert topology.live_members == []
        assert topology.route("mock:5") is None
        assert topology.mark_up(self.MEMBERS[0]) is True
        assert topology.mark_up(self.MEMBERS[0]) is False  # already live
        assert topology.route("mock:5") == self.MEMBERS[0]
        assert topology.mark_down(self.MEMBERS[0]) is True
        assert topology.mark_down(self.MEMBERS[0]) is False  # already down

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology([])
        with pytest.raises(ValueError):
            ClusterTopology(["a:1", "a:1"])


class TestBackendParsing:
    def test_parse_backend_list(self):
        assert parse_backend_list("127.0.0.1:8321, 127.0.0.1:8322") == [
            ("127.0.0.1", 8321),
            ("127.0.0.1", 8322),
        ]

    @pytest.mark.parametrize("spec", ["", "no-port", "host:", ":8000", "h:80:x"])
    def test_parse_backend_list_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_backend_list(spec)


class TestAsyncBackendClient:
    def test_saturated_pool_raises_busy_not_hang(self):
        """A full connection pool answers BackendBusy within the bounded
        wait — the router turns that into 503 backpressure — instead of
        queueing callers invisibly behind the semaphore."""

        async def scenario():
            async def stall(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(stall, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = AsyncBackendClient(
                "127.0.0.1", port, pool_size=1, timeout=20.0, acquire_timeout=0.2
            )
            slow = asyncio.ensure_future(client.request("GET", "/healthz"))
            await asyncio.sleep(0.05)  # let the slow request take the slot
            started = asyncio.get_running_loop().time()
            with pytest.raises(BackendBusy):
                await client.request("GET", "/healthz")
            elapsed = asyncio.get_running_loop().time() - started
            slow.cancel()
            with pytest.raises(asyncio.CancelledError):
                await slow
            await client.close()
            server.close()
            await server.wait_closed()
            return elapsed

        assert asyncio.run(scenario()) < 2.0  # a bounded wait, not a hang

    def test_retry_after_stale_keep_alive_uses_fresh_connection(self):
        """With several stale pooled sockets (backend restarted), the one
        retry must open a fresh connection rather than popping a second
        stale socket and falsely declaring the live backend dead."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        def make_server():
            engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
            return BackgroundServer(
                ProofService(
                    ServiceConfig(port=port, batch_window_ms=0.0), engine=engine
                )
            )

        def stop_server(server):
            engine = server.service.engine
            server.stop()
            engine.close()

        async def scenario():
            first = make_server()
            await asyncio.to_thread(first.start)
            client = AsyncBackendClient("127.0.0.1", port, pool_size=2, timeout=30.0)
            try:
                # Two concurrent requests leave two keep-alive sockets pooled.
                await asyncio.gather(
                    client.request("GET", "/healthz"),
                    client.request("GET", "/healthz"),
                )
                assert len(client._idle) == 2
                # Restart the backend on the same port: both pooled sockets
                # are now stale.
                await asyncio.to_thread(stop_server, first)
                second = make_server()
                await asyncio.to_thread(second.start)
                try:
                    response = await client.request("GET", "/healthz")
                    assert response.status == 200
                    assert response.body["state"] == "serving"
                finally:
                    await asyncio.to_thread(stop_server, second)
            finally:
                await client.close()

        asyncio.run(scenario())


# -- e2e over in-process backends ---------------------------------------------


class _Backend:
    """One in-process ProofService whose engine stays inspectable."""

    def __init__(self):
        self.engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
        self.service = ProofService(
            ServiceConfig(port=0, batch_window_ms=5.0), engine=self.engine
        )
        self.server = BackgroundServer(self.service)

    @property
    def backend_id(self) -> str:
        return f"127.0.0.1:{self.server.port}"


@pytest.fixture(scope="module")
def cluster():
    """Two live backends + a router, shared by the read-mostly e2e tests."""
    backends = [_Backend(), _Backend()]
    for backend in backends:
        backend.server.start()
    router = ClusterRouter(
        RouterConfig(port=0, health_interval_s=0.5, request_timeout_s=120.0),
        backends=[backend.backend_id for backend in backends],
    )
    router_server = BackgroundServer(router)
    router_server.start()
    try:
        yield {
            "backends": {backend.backend_id: backend for backend in backends},
            "router": router,
            "router_server": router_server,
        }
    finally:
        router_server.stop()
        for backend in backends:
            backend.server.stop()
            backend.engine.close()


@pytest.fixture(scope="module")
def router_client(cluster):
    with ServiceClient(port=cluster["router_server"].port) as client:
        yield client


@pytest.fixture(scope="module")
def direct_engine():
    engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
    yield engine
    engine.close()


class TestRoutedServing:
    def test_routed_proof_byte_identical_to_direct(self, router_client, direct_engine):
        """ISSUE 5 acceptance: cluster-served bytes == direct engine.prove."""
        result = router_client.prove("mock", num_vars=4, seed=11)
        direct = direct_engine.prove("mock", num_vars=4, seed=11)
        assert result["proof_bytes"] == direct.to_bytes()
        assert result["served_by"]
        assert router_client.verify(result) is True

    def test_structure_affinity_and_cache_hit(self, cluster, router_client):
        """Same structure → same backend, and the repeat hits its caches.

        The mock scenario's gate structure varies with the witness seed, so
        across seeds the hot artifact is the size-keyed SRS; a repeat of the
        same request additionally hits the circuit LRU and the key cache.
        """
        first = router_client.prove("mock", num_vars=4, seed=21)
        owner_id = first["served_by"]
        owner = cluster["backends"][owner_id]
        srs_before = owner.engine.cache_stats.srs_hits
        repeat = router_client.prove("mock", num_vars=4, seed=22)
        assert repeat["served_by"] == owner_id
        # The second request found the 2^4 SRS hot on the owning backend —
        # the artifact structure-affine placement exists to reuse.
        assert owner.engine.cache_stats.srs_hits > srs_before
        key_hits_before = owner.engine.cache_stats.key_hits
        again = router_client.prove("mock", num_vars=4, seed=21)
        assert again["served_by"] == owner_id
        assert again["proof_bytes"] == first["proof_bytes"]
        assert owner.engine.cache_stats.key_hits > key_hits_before
        contents = owner.engine.cache_contents()
        assert 4 in contents["srs_sizes"]
        assert any(entry.startswith("4:") for entry in contents["key_structures"])

    def test_affinity_is_stable_across_repeats(self, router_client):
        owners = {
            router_client.prove("mock", num_vars=5, seed=seed)["served_by"]
            for seed in range(3)
        }
        assert len(owners) == 1

    def test_served_by_matches_rendezvous_prediction(self, cluster, router_client):
        """The router's placement is exactly the topology's pure function —
        any observer (or a second router) can predict it offline.  (Spread
        across backends is asserted with fixed ids in TestTopology; here
        the backend ids carry ephemeral ports, so we check prediction, not
        a particular split.)"""
        member_ids = list(cluster["backends"])
        for size in (3, 4, 5, 6):
            expected = rank_members(structure_key("mock", size), member_ids)[0]
            served_by = router_client.prove("mock", num_vars=size, seed=1)["served_by"]
            assert served_by == expected

    def test_verify_routes_to_the_proving_backend(self, router_client):
        result = router_client.prove("mock", num_vars=4, seed=31)
        # ServiceClient.verify returns only the boolean; go one level down
        # to read served_by off the verify response.
        body = router_client._request(
            "POST",
            "/verify",
            {
                "scenario": "mock",
                "num_vars": 4,
                "seed": 31,
                "proof": result["proof"],
            },
        )
        assert body["valid"] is True
        assert body["served_by"] == result["served_by"]

    def test_scenarios_proxied_through_router(self, router_client):
        names = {entry["name"] for entry in router_client.scenarios()}
        assert {"mock", "zcash"} <= names

    def test_router_healthz_reports_fleet(self, cluster, router_client):
        health = router_client.healthz()
        assert health["role"] == "router"
        assert health["status"] == "ok"
        assert health["backends_total"] == 2
        assert health["backends_live"] == 2
        assert set(health["backends"]) == set(cluster["backends"])
        for report in health["backends"].values():
            assert report["live"] is True
            # The monitor keeps each backend's own healthz body, including
            # the PR's extended fields.
            assert "in_flight_batches" in report["report"]

    def test_metrics_aggregate_sums_backends(self, cluster, router_client):
        before = router_client.metrics()
        router_client.prove("mock", num_vars=4, seed=41)
        after = router_client.metrics()
        assert (
            after["aggregate"]["proofs_total"]
            == before["aggregate"]["proofs_total"] + 1
        )
        assert after["aggregate"]["backends_reporting"] == 2
        direct_total = sum(
            snapshot["proofs_total"] for snapshot in after["backends"].values()
        )
        assert after["aggregate"]["proofs_total"] == direct_total
        assert sum(after["router"]["routed_total"].values()) > 0
        assert after["router"]["latency_seconds"]["prove"]["count"] >= 1

    def test_router_validates_at_the_edge(self, router_client):
        with pytest.raises(ServiceError) as excinfo:
            router_client.prove("no-such-scenario", num_vars=4)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            router_client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            router_client._request("GET", "/prove")
        assert excinfo.value.status == 405


# -- failover -----------------------------------------------------------------


class TestFailover:
    def _start_cluster(self, backend_count: int = 2):
        backends = [_Backend() for _ in range(backend_count)]
        for backend in backends:
            backend.server.start()
        router = ClusterRouter(
            RouterConfig(
                port=0,
                health_interval_s=0.3,
                fail_threshold=1,
                request_timeout_s=120.0,
            ),
            backends=[backend.backend_id for backend in backends],
        )
        router_server = BackgroundServer(router).start()
        return backends, router, router_server

    def test_kill_mid_load_reroutes_and_completes_everything(self, direct_engine):
        """ISSUE 5 acceptance: killing a backend mid-load re-routes its
        rendezvous slots and every admitted request still completes."""
        backends, router, router_server = self._start_cluster()
        try:
            with ServiceClient(port=router_server.port) as probe:
                owner_id = probe.prove("mock", num_vars=4, seed=0)["served_by"]
            victim = next(b for b in backends if b.backend_id == owner_id)
            survivor = next(b for b in backends if b.backend_id != owner_id)

            results: list[dict] = [None] * 8
            errors: list[Exception] = []

            def submit(index: int) -> None:
                try:
                    with ServiceClient(port=router_server.port, timeout=120.0) as c:
                        while True:
                            try:
                                results[index] = c.prove(
                                    "mock", num_vars=4, seed=100 + index
                                )
                                return
                            except ServiceUnavailable as exc:
                                time.sleep(min(exc.retry_after, 1.0))
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(index,)) for index in range(8)
            ]
            for index, thread in enumerate(threads):
                thread.start()
                if index == 2:
                    # Kill the structure's home backend while the load is in
                    # flight; its admitted requests drain, later ones fail
                    # over to the survivor.
                    victim.server.stop()
            for thread in threads:
                thread.join(timeout=120)

            assert not errors, f"failover dropped requests: {errors[:3]}"
            assert all(result is not None for result in results)
            assert {r["served_by"] for r in results} <= {
                victim.backend_id,
                survivor.backend_id,
            }
            # After the kill the key's slots moved to the survivor.
            with ServiceClient(port=router_server.port) as probe:
                moved = probe.prove("mock", num_vars=4, seed=999)
                assert moved["served_by"] == survivor.backend_id
                health = probe.healthz()
                assert health["backends_live"] == 1
                assert health["status"] == "degraded"
                assert health["backends"][victim.backend_id]["live"] is False
            # Re-routed proofs are still byte-identical to direct proving.
            for index, result in enumerate(results):
                direct = direct_engine.prove("mock", num_vars=4, seed=100 + index)
                assert result["proof_bytes"] == direct.to_bytes()
        finally:
            router_server.stop()
            for backend in backends:
                backend.server.stop()
                backend.engine.close()

    def test_no_live_backends_is_a_fast_503(self):
        backends, router, router_server = self._start_cluster(backend_count=1)
        try:
            backends[0].server.stop()
            with ServiceClient(port=router_server.port, timeout=30.0) as client:
                # First request discovers the death: transport error, marked
                # down, no failover target left → 502.
                with pytest.raises(ServiceError) as excinfo:
                    client.prove("mock", num_vars=3, seed=1)
                assert excinfo.value.status in (502, 503)
                # Once it is out of rotation the answer is an immediate 503
                # with a Retry-After, not a hang.
                started = time.perf_counter()
                with pytest.raises(ServiceUnavailable) as unavailable:
                    client.prove("mock", num_vars=3, seed=2)
                assert time.perf_counter() - started < 5.0
                assert unavailable.value.code == "no_backends"
                assert unavailable.value.retry_after >= 1
        finally:
            router_server.stop()
            for backend in backends:
                backend.server.stop()
                backend.engine.close()

    def test_router_drain_leaves_attached_backends_serving(self):
        backends, router, router_server = self._start_cluster()
        try:
            router_server.stop()
            assert router.state == "stopped"
            # Attached (not spawned) backends outlive the router.
            for backend in backends:
                with ServiceClient(port=backend.server.port) as client:
                    assert client.healthz()["state"] == "serving"
        finally:
            for backend in backends:
                backend.server.stop()
                backend.engine.close()


# -- spawned children ---------------------------------------------------------


class TestSpawn:
    def test_spawn_probe_terminate(self):
        """The subprocess path: announce parsing, healthz, SIGTERM drain."""

        async def scenario() -> int | None:
            backend = await spawn_backend(
                ["--batch-window-ms", "5"], start_timeout=120.0
            )
            try:
                client = AsyncBackendClient(backend.host, backend.port, timeout=60.0)
                response = await client.request("GET", "/healthz")
                assert response.status == 200
                assert response.body["state"] == "serving"
                await client.close()
            except BaseException:
                await backend.terminate()
                raise
            return await backend.terminate()

        assert asyncio.run(scenario()) == 0


class TestClusterCliParser:
    def test_cluster_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "cluster",
                "--port", "0",
                "--spawn", "2",
                "--workers", "2",
                "--retry-limit", "1",
                "--health-interval", "0.5",
                "--max-batch", "4",
            ]
        )
        assert args.spawn == 2
        assert args.port == 0
        assert args.workers == 2
        assert args.retry_limit == 1
        assert args.health_interval == 0.5
        assert args.max_batch == 4
        assert args.backends is None

    def test_attach_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["cluster", "--backends", "127.0.0.1:8321,127.0.0.1:8322"]
        )
        assert args.backends == "127.0.0.1:8321,127.0.0.1:8322"
        assert args.spawn == 0

    def test_router_config_validation(self):
        with pytest.raises(ValueError):
            RouterConfig(health_interval_s=0)
        with pytest.raises(ValueError):
            RouterConfig(retry_limit=-1)
        with pytest.raises(ValueError):
            RouterConfig(fail_threshold=0)
        with pytest.raises(ValueError):
            ClusterRouter(RouterConfig())  # neither backends nor spawn
        with pytest.raises(ValueError):
            ClusterRouter(RouterConfig(), backends=["a:1"], spawn=2)
