"""Tests for the prime-field arithmetic layer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import Fr, Fq, FR_MODULUS, FQ_MODULUS
from repro.fields.field import FieldElement, FieldMismatchError, PrimeField, dot_product

fr_values = st.integers(min_value=0, max_value=FR_MODULUS - 1)


class TestPrimeFieldConstruction:
    def test_moduli_bit_lengths(self):
        assert FR_MODULUS.bit_length() == 255
        assert FQ_MODULUS.bit_length() == 381

    def test_modulus_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_element_reduction(self):
        assert Fr(FR_MODULUS) == Fr(0)
        assert Fr(FR_MODULUS + 5) == Fr(5)
        assert Fr(-1) == Fr(FR_MODULUS - 1)

    def test_coerce_existing_element(self):
        a = Fr(10)
        assert Fr(a) is a

    def test_cross_field_coercion_rejected(self):
        with pytest.raises(FieldMismatchError):
            Fq(Fr(3))

    def test_from_bytes_round_trip(self):
        a = Fr(123456789)
        assert Fr.from_bytes(a.to_bytes()) == a

    def test_zero_one_singletons(self):
        assert Fr.zero().is_zero()
        assert Fr.one().is_one()
        assert Fr.zero() + Fr.one() == Fr.one()

    def test_random_in_range(self):
        rng = random.Random(1)
        for _ in range(20):
            value = Fr.random(rng)
            assert 0 <= value.value < FR_MODULUS

    def test_elements_vectorized(self):
        elements = Fr.elements([1, 2, 3])
        assert elements == [Fr(1), Fr(2), Fr(3)]

    def test_contains(self):
        assert Fr(5) in Fr
        assert Fq(5) not in Fr

    def test_repr_mentions_name(self):
        assert "Fr" in repr(Fr)
        assert "Fr" in repr(Fr(7))


class TestFieldArithmetic:
    def test_add_sub_inverse_relationship(self):
        a, b = Fr(17), Fr(23)
        assert (a + b) - b == a
        assert a - a == Fr.zero()

    def test_mixed_int_operations(self):
        a = Fr(10)
        assert a + 5 == Fr(15)
        assert 5 + a == Fr(15)
        assert a - 3 == Fr(7)
        assert 3 - a == Fr(-7)
        assert a * 2 == Fr(20)
        assert 2 * a == Fr(20)

    def test_negation(self):
        a = Fr(42)
        assert a + (-a) == Fr.zero()
        assert -Fr.zero() == Fr.zero()

    def test_division_and_inverse(self):
        a, b = Fr(99), Fr(101)
        assert (a / b) * b == a
        assert a * a.inverse() == Fr.one()

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Fr(1) / Fr(0)
        with pytest.raises(ZeroDivisionError):
            Fr(0).inverse()

    def test_rtruediv(self):
        a = Fr(7)
        assert (3 / a) * a == Fr(3)

    def test_pow(self):
        a = Fr(3)
        assert a**0 == Fr.one()
        assert a**5 == Fr(243)
        assert a**-1 == a.inverse()

    def test_fermat_little_theorem(self):
        a = Fr(123456)
        assert a ** (FR_MODULUS - 1) == Fr.one()

    def test_square_and_double(self):
        a = Fr(9)
        assert a.square() == a * a
        assert a.double() == a + a

    def test_sqrt_of_square(self):
        a = Fr(987654321)
        root = (a * a).sqrt()
        assert root is not None
        assert root * root == a * a

    def test_sqrt_of_non_residue_is_none(self):
        # Find a quadratic non-residue and check sqrt returns None.
        for candidate in range(2, 50):
            value = Fr(candidate)
            if pow(candidate, (FR_MODULUS - 1) // 2, FR_MODULUS) == FR_MODULUS - 1:
                assert value.sqrt() is None
                break
        else:
            pytest.fail("no non-residue found in range")

    def test_sqrt_base_field_p_mod_4_is_3(self):
        # Fq has q = 3 mod 4, exercising the fast square-root branch.
        assert FQ_MODULUS % 4 == 3
        a = Fq(5)
        square = a * a
        root = square.sqrt()
        assert root is not None and root * root == square

    def test_hash_and_equality(self):
        assert hash(Fr(5)) == hash(Fr(5))
        assert Fr(5) == 5
        assert Fr(5) != Fr(6)
        assert Fr(5) != "5"

    def test_bool_and_int_conversions(self):
        assert not Fr(0)
        assert Fr(1)
        assert int(Fr(77)) == 77
        assert list(range(3))[Fr(2)] == 2  # __index__

    def test_dot_product(self):
        scalars = Fr.elements([1, 2, 3])
        values = Fr.elements([4, 5, 6])
        assert dot_product(scalars, values) == Fr(32)

    def test_dot_product_validation(self):
        with pytest.raises(ValueError):
            dot_product(Fr.elements([1]), Fr.elements([1, 2]))
        with pytest.raises(ValueError):
            dot_product([], [])


class TestFieldProperties:
    """Algebraic laws checked with hypothesis."""

    @settings(max_examples=25, deadline=None)
    @given(a=fr_values, b=fr_values, c=fr_values)
    def test_ring_axioms(self, a, b, c):
        x, y, z = Fr(a), Fr(b), Fr(c)
        assert x + y == y + x
        assert x * y == y * x
        assert (x + y) + z == x + (y + z)
        assert (x * y) * z == x * (y * z)
        assert x * (y + z) == x * y + x * z

    @settings(max_examples=25, deadline=None)
    @given(a=fr_values)
    def test_additive_and_multiplicative_identities(self, a):
        x = Fr(a)
        assert x + Fr.zero() == x
        assert x * Fr.one() == x
        assert x * Fr.zero() == Fr.zero()

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(min_value=1, max_value=FR_MODULUS - 1))
    def test_inverse_round_trip(self, a):
        x = Fr(a)
        assert x * x.inverse() == Fr.one()

    @settings(max_examples=25, deadline=None)
    @given(a=fr_values, b=fr_values)
    def test_subtraction_is_additive_inverse(self, a, b):
        x, y = Fr(a), Fr(b)
        assert x - y == x + (-y)
