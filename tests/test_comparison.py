"""Tests for the Table 4 cross-accelerator comparison."""

import pytest

from repro.core import ACCELERATOR_COMPARISON, accelerator_comparison_table
from repro.core.comparison import (
    PAPER_ZKSPEED_COLUMN,
    zkspeed_modmul_count,
    zkspeed_summary,
)
from repro.core.config import ZkSpeedConfig


class TestPublishedColumns:
    def test_prior_work_columns_present(self):
        assert set(ACCELERATOR_COMPARISON) == {"NoCap", "SZKP+"}

    def test_nocap_characteristics(self):
        nocap = ACCELERATOR_COMPARISON["NoCap"]
        assert nocap.protocol == "Spartan+Orion"
        assert nocap.proof_size_kb == pytest.approx(8100.0)
        assert nocap.setup == "none"
        assert nocap.bit_width == "64"

    def test_szkp_characteristics(self):
        szkp = ACCELERATOR_COMPARISON["SZKP+"]
        assert szkp.protocol == "Groth16"
        assert szkp.setup == "circuit-specific"
        assert szkp.proof_size_kb < 1.0


class TestZkSpeedColumn:
    def test_modmul_count_same_order_as_paper(self):
        """The provisioned-multiplier count is the same order of magnitude as the
        paper's 1206 (the exact figure depends on how deeply the PADD pipeline
        replicates its multipliers, which the paper does not specify)."""
        count = zkspeed_modmul_count(ZkSpeedConfig.paper_default())
        assert PAPER_ZKSPEED_COLUMN.num_modmuls / 3 < count < PAPER_ZKSPEED_COLUMN.num_modmuls * 3

    def test_modmul_count_scales_with_configuration(self):
        small = zkspeed_modmul_count(ZkSpeedConfig(msm_pes_per_core=1, sumcheck_pes=1))
        large = zkspeed_modmul_count(ZkSpeedConfig(msm_pes_per_core=16, sumcheck_pes=16))
        assert large > 2 * small

    def test_summary_from_models(self):
        summary = zkspeed_summary(num_vars=24)
        assert summary.protocol == "HyperPlonk"
        assert summary.setup == "universal"
        assert summary.encoding == "Plonk"
        # Prover time within 2x of the published 171.61 ms at 2^24.
        assert summary.hw_prover_ms == pytest.approx(
            PAPER_ZKSPEED_COLUMN.hw_prover_ms, rel=1.0
        )
        assert summary.cpu_prover_s == pytest.approx(
            PAPER_ZKSPEED_COLUMN.cpu_prover_s, rel=0.1
        )
        assert summary.chip_area_mm2 > 300

    def test_full_table(self):
        table = accelerator_comparison_table(num_vars=24)
        assert set(table) == {"NoCap", "SZKP+", "zkSpeed"}

    def test_key_tradeoffs_reproduced(self):
        """The qualitative story of Table 4: zkSpeed trades area for proof size."""
        table = accelerator_comparison_table(num_vars=24)
        zkspeed = table["zkSpeed"]
        nocap = table["NoCap"]
        szkp = table["SZKP+"]
        # Proof size: orders of magnitude smaller than NoCap, larger than Groth16.
        assert zkspeed.proof_size_kb < nocap.proof_size_kb / 100
        assert zkspeed.proof_size_kb > szkp.proof_size_kb
        # Area: roughly 10x NoCap's.
        assert zkspeed.chip_area_mm2 > 5 * nocap.chip_area_mm2
        # Setup: universal (the HyperPlonk selling point).
        assert zkspeed.setup == "universal"
        # zkSpeed has the slowest CPU (software) prover of the three.
        assert zkspeed.cpu_prover_s > nocap.cpu_prover_s
        assert zkspeed.cpu_prover_s > szkp.cpu_prover_s
