"""Tests for dense multilinear-extension tables."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fields import Fr, FR_MODULUS
from repro.mle import MultilinearPolynomial, eq_eval, eq_mle

small_field_values = st.integers(min_value=0, max_value=FR_MODULUS - 1)


class TestConstruction:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            MultilinearPolynomial(2, [Fr(1)] * 3)
        with pytest.raises(ValueError):
            MultilinearPolynomial(-1, [])

    def test_from_ints_and_constant(self):
        mle = MultilinearPolynomial.from_ints(2, [1, 2, 3, 4])
        assert mle[3] == Fr(4)
        const = MultilinearPolynomial.constant(3, Fr(9))
        assert all(v == Fr(9) for v in const)
        assert MultilinearPolynomial.zero(2).is_zero()

    def test_from_function(self):
        mle = MultilinearPolynomial.from_function(
            3, lambda bits: Fr(bits[0] + 2 * bits[1] + 4 * bits[2])
        )
        # Index i encodes x1 as the least-significant bit.
        for i in range(8):
            assert mle[i] == Fr(i)

    def test_random_and_clone(self):
        rng = random.Random(0)
        mle = MultilinearPolynomial.random(3, rng)
        copy = mle.clone()
        assert copy == mle
        copy.evaluations[0] = copy.evaluations[0] + Fr(1)
        assert copy != mle

    def test_len_iter_getitem(self):
        mle = MultilinearPolynomial.from_ints(2, [5, 6, 7, 8])
        assert len(mle) == 4
        assert list(mle) == Fr.elements([5, 6, 7, 8])


class TestEvaluation:
    def test_boolean_point_evaluation_matches_table(self):
        rng = random.Random(1)
        mle = MultilinearPolynomial.random(4, rng)
        for index in range(16):
            point = [Fr((index >> k) & 1) for k in range(4)]
            assert mle.evaluate(point) == mle[index]

    def test_wrong_point_length(self):
        mle = MultilinearPolynomial.zero(3)
        with pytest.raises(ValueError):
            mle.evaluate([Fr(1)] * 2)

    def test_multilinearity_in_each_variable(self):
        rng = random.Random(2)
        mle = MultilinearPolynomial.random(3, rng)
        point = [Fr.random(rng) for _ in range(3)]
        for var in range(3):
            p0 = list(point)
            p1 = list(point)
            pt = list(point)
            p0[var] = Fr(0)
            p1[var] = Fr(1)
            t = Fr.random(rng)
            pt[var] = t
            expected = (Fr(1) - t) * mle.evaluate(p0) + t * mle.evaluate(p1)
            assert mle.evaluate(pt) == expected

    def test_fix_first_variable_matches_paper_equation_2(self):
        rng = random.Random(3)
        mle = MultilinearPolynomial.random(3, rng)
        r = Fr.random(rng)
        fixed = mle.fix_first_variable(r)
        for i in range(4):
            expected = (mle[2 * i + 1] - mle[2 * i]) * r + mle[2 * i]
            assert fixed[i] == expected

    def test_fix_variables_consistent_with_evaluate(self):
        rng = random.Random(4)
        mle = MultilinearPolynomial.random(5, rng)
        point = [Fr.random(rng) for _ in range(5)]
        partially = mle.fix_variables(point[:3])
        assert partially.num_vars == 2
        assert partially.evaluate(point[3:]) == mle.evaluate(point)

    def test_fix_variable_of_constant_polynomial(self):
        with pytest.raises(ValueError):
            MultilinearPolynomial(0, [Fr(3)]).fix_first_variable(Fr(1))

    def test_sum_over_hypercube(self):
        mle = MultilinearPolynomial.from_ints(3, list(range(8)))
        assert mle.sum_over_hypercube() == Fr(28)

    @settings(max_examples=10, deadline=None)
    @given(
        values=st.lists(small_field_values, min_size=8, max_size=8),
        point=st.lists(small_field_values, min_size=3, max_size=3),
    )
    def test_evaluate_matches_explicit_multilinear_formula(self, values, point):
        mle = MultilinearPolynomial.from_ints(3, values)
        z = [Fr(p) for p in point]
        expected = Fr(0)
        for index, value in enumerate(values):
            weight = Fr(1)
            for k in range(3):
                bit = (index >> k) & 1
                weight = weight * (z[k] if bit else Fr(1) - z[k])
            expected = expected + weight * Fr(value)
        assert mle.evaluate(z) == expected


class TestTableArithmetic:
    def test_add_sub_neg_scale(self):
        rng = random.Random(5)
        a = MultilinearPolynomial.random(3, rng)
        b = MultilinearPolynomial.random(3, rng)
        point = [Fr.random(rng) for _ in range(3)]
        assert (a + b).evaluate(point) == a.evaluate(point) + b.evaluate(point)
        assert (a - b).evaluate(point) == a.evaluate(point) - b.evaluate(point)
        assert (-a).evaluate(point) == -(a.evaluate(point))
        assert a.scale(Fr(7)).evaluate(point) == Fr(7) * a.evaluate(point)

    def test_hadamard_on_boolean_points_only(self):
        rng = random.Random(6)
        a = MultilinearPolynomial.random(2, rng)
        b = MultilinearPolynomial.random(2, rng)
        product = a.hadamard(b)
        for i in range(4):
            assert product[i] == a[i] * b[i]

    def test_incompatible_sizes(self):
        a = MultilinearPolynomial.zero(2)
        b = MultilinearPolynomial.zero(3)
        with pytest.raises(ValueError):
            _ = a + b

    def test_sparsity_profile(self):
        mle = MultilinearPolynomial.from_ints(2, [0, 1, 1, 5])
        profile = mle.sparsity_profile()
        assert profile == {"zeros": 1, "ones": 2, "dense": 1}


class TestEqPolynomial:
    def test_eq_eval_definition(self):
        x = Fr.elements([1, 0])
        y = Fr.elements([1, 0])
        assert eq_eval(x, y) == Fr(1)
        assert eq_eval(x, Fr.elements([0, 0])) == Fr(0)

    def test_eq_eval_length_mismatch(self):
        with pytest.raises(ValueError):
            eq_eval(Fr.elements([1]), Fr.elements([1, 0]))

    def test_eq_mle_matches_eq_eval_on_boolean_points(self):
        rng = random.Random(7)
        point = [Fr.random(rng) for _ in range(4)]
        table = eq_mle(point)
        for index in range(16):
            boolean = [Fr((index >> k) & 1) for k in range(4)]
            assert table[index] == eq_eval(point, boolean)

    def test_eq_mle_evaluation_anywhere(self):
        rng = random.Random(8)
        point = [Fr.random(rng) for _ in range(5)]
        other = [Fr.random(rng) for _ in range(5)]
        assert eq_mle(point).evaluate(other) == eq_eval(point, other)

    def test_eq_mle_sums_to_one(self):
        rng = random.Random(9)
        point = [Fr.random(rng) for _ in range(6)]
        assert eq_mle(point).sum_over_hypercube() == Fr(1)

    def test_eq_mle_empty_point(self):
        table = eq_mle([])
        assert table.num_vars == 0
        assert table.evaluations == [Fr(1)]
