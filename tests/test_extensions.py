"""Tests for the Fq2 / Fq6 / Fq12 extension-field tower."""

import random

import pytest

from repro.fields.bls12_381 import FQ_MODULUS
from repro.fields.extensions import Fq2Element, Fq6Element, Fq12Element


def random_fq2(rng):
    return Fq2Element(rng.randrange(FQ_MODULUS), rng.randrange(FQ_MODULUS))


def random_fq6(rng):
    return Fq6Element(random_fq2(rng), random_fq2(rng), random_fq2(rng))


def random_fq12(rng):
    return Fq12Element(random_fq6(rng), random_fq6(rng))


class TestFq2:
    def test_basic_identities(self):
        one, zero = Fq2Element.one(), Fq2Element.zero()
        assert zero.is_zero()
        assert not one.is_zero()
        assert one * one == one
        assert one + zero == one

    def test_u_squared_is_minus_one(self):
        u = Fq2Element(0, 1)
        assert u * u == Fq2Element(FQ_MODULUS - 1, 0)

    def test_mul_matches_square(self):
        rng = random.Random(1)
        for _ in range(5):
            a = random_fq2(rng)
            assert a.square() == a * a

    def test_inverse(self):
        rng = random.Random(2)
        for _ in range(5):
            a = random_fq2(rng)
            if a.is_zero():
                continue
            assert a * a.inverse() == Fq2Element.one()

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fq2Element.zero().inverse()

    def test_conjugate_norm(self):
        rng = random.Random(3)
        a = random_fq2(rng)
        norm = a * a.conjugate()
        # The norm lies in the base field (imaginary part zero).
        assert norm.c1 == 0

    def test_nonresidue_multiplication(self):
        a = Fq2Element(3, 5)
        assert a.mul_by_nonresidue() == a * Fq2Element(1, 1)

    def test_scalar_multiplication(self):
        a = Fq2Element(3, 5)
        assert a * 4 == a + a + a + a
        assert 4 * a == a * 4

    def test_distributivity(self):
        rng = random.Random(4)
        a, b, c = (random_fq2(rng) for _ in range(3))
        assert a * (b + c) == a * b + a * c


class TestFq6:
    def test_identities(self):
        one = Fq6Element.one()
        zero = Fq6Element.zero()
        assert zero.is_zero()
        assert one * one == one
        assert (one + zero) - zero == one

    def test_associativity_and_commutativity(self):
        rng = random.Random(5)
        a, b, c = (random_fq6(rng) for _ in range(3))
        assert a * b == b * a
        assert (a * b) * c == a * (b * c)

    def test_inverse(self):
        rng = random.Random(6)
        a = random_fq6(rng)
        assert a * a.inverse() == Fq6Element.one()

    def test_v_cubed_is_nonresidue(self):
        v = Fq6Element(Fq2Element.zero(), Fq2Element.one(), Fq2Element.zero())
        v3 = v * v * v
        expected = Fq6Element(Fq2Element(1, 1), Fq2Element.zero(), Fq2Element.zero())
        assert v3 == expected

    def test_mul_by_nonresidue_is_mul_by_v(self):
        rng = random.Random(7)
        a = random_fq6(rng)
        v = Fq6Element(Fq2Element.zero(), Fq2Element.one(), Fq2Element.zero())
        assert a.mul_by_nonresidue() == a * v

    def test_frobenius_is_field_automorphism(self):
        rng = random.Random(8)
        a, b = random_fq6(rng), random_fq6(rng)
        assert (a * b).frobenius() == a.frobenius() * b.frobenius()
        assert (a + b).frobenius() == a.frobenius() + b.frobenius()


class TestFq12:
    def test_identities(self):
        one = Fq12Element.one()
        assert one.is_one()
        assert one * one == one

    def test_inverse(self):
        rng = random.Random(9)
        a = random_fq12(rng)
        assert a * a.inverse() == Fq12Element.one()

    def test_w_squared_is_v(self):
        w = Fq12Element(Fq6Element.zero(), Fq6Element.one())
        v_in_fq12 = Fq12Element(
            Fq6Element(Fq2Element.zero(), Fq2Element.one(), Fq2Element.zero()),
            Fq6Element.zero(),
        )
        assert w * w == v_in_fq12

    def test_pow(self):
        rng = random.Random(10)
        a = random_fq12(rng)
        assert a.pow(0) == Fq12Element.one()
        assert a.pow(3) == a * a * a
        assert a.pow(-1) == a.inverse()

    def test_frobenius_order_twelve(self):
        rng = random.Random(11)
        a = random_fq12(rng)
        result = a
        for _ in range(12):
            result = result.frobenius()
        assert result == a

    def test_frobenius_matches_q_power(self):
        rng = random.Random(12)
        a = random_fq12(rng)
        assert a.frobenius() == a.pow(FQ_MODULUS)

    def test_conjugate_multiplication(self):
        rng = random.Random(13)
        a, b = random_fq12(rng), random_fq12(rng)
        assert (a * b).conjugate() == a.conjugate() * b.conjugate()
