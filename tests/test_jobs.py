"""Tests for the durable job tier (``repro.jobs`` + its HTTP surface).

The acceptance surface of ISSUE 8: crash-safe jobs.  The store tests pin
the lease/retry/dead-letter state machine (including a simulated process
restart: reopen the sqlite file and recover); the artifact tests pin
content-addressed dedup and atomic publish; the service tests prove jobs
served over HTTP are byte-identical to the direct engine and that the
admission bound answers 429 with an honest ``Retry-After``; the
fault-injection tests drive a real ``repro serve`` subprocess, SIGKILL it
mid-batch, restart it on the same ``--job-dir``, and require every
accepted job to reach ``done`` with byte-identical artifacts; the router
tests pin structure-affine job placement, the 307 artifact redirect, and
the fleet-wide jobs view in ``/metrics`` and ``/healthz``.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import EngineConfig, ProverEngine
from repro.api.artifacts import ProofArtifact
from repro.cluster import ClusterRouter, RouterConfig
from repro.jobs import ArtifactStore, JobStore, job_id_structure_key, new_job_id
from repro.service import (
    BackgroundServer,
    ProofService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceUnavailable,
)
from repro.testing import faults

NUM_VARS = 4
SRS_SEED = 7


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Fault rules are process-global; never leak one into the next test."""
    yield
    faults.disarm()


# -- fault-injection seam -----------------------------------------------------


class TestFaultPoints:
    def test_unarmed_point_is_a_noop(self):
        faults.fault_point("store-write")  # must not raise

    def test_error_action_with_after_and_times(self):
        faults.arm("store-write", "error", after=1, times=2)
        faults.fault_point("store-write")  # skipped (after=1)
        with pytest.raises(faults.InjectedFault):
            faults.fault_point("store-write")
        with pytest.raises(faults.InjectedFault):
            faults.fault_point("store-write")
        faults.fault_point("store-write")  # budget (times=2) exhausted
        rule = faults.active_faults()[0]
        assert rule["hits"] == 4 and rule["fired"] == 2

    def test_delay_action_continues(self):
        faults.arm("lease-renew", "delay", delay_s=0.01)
        start = time.perf_counter()
        faults.fault_point("lease-renew")
        assert time.perf_counter() - start >= 0.01

    def test_parse_spec(self):
        rules = faults.parse_fault_spec(
            "batch-execute:kill:after=2:times=1;store-write"
        )
        assert [r.point for r in rules] == ["batch-execute", "store-write"]
        assert rules[0].action == "kill"
        assert rules[0].after == 2 and rules[0].times == 1
        assert rules[1].action == "error"  # the default
        for bad in ("", ":kill", "p:jump", "p:error:after", "p:error:times=x"):
            with pytest.raises(ValueError):
                faults.parse_fault_spec(bad)

    def test_install_from_env(self):
        installed = faults.install_from_env({faults.FAULTS_ENV: "store-write:delay"})
        assert len(installed) == 1
        assert faults.active_faults()[0]["action"] == "delay"
        assert faults.install_from_env({}) == []


# -- the persistent queue -----------------------------------------------------


@pytest.fixture()
def store(tmp_path):
    job_store = JobStore(tmp_path / "queue.sqlite3")
    yield job_store
    job_store.close()


class TestJobStore:
    def test_job_id_embeds_structure_key(self):
        job_id = new_job_id("mock:4")
        assert job_id_structure_key(job_id) == "mock:4"
        for bad in ("nope", "~abc", "key~"):
            with pytest.raises(ValueError):
                job_id_structure_key(bad)

    def test_submit_claim_complete_roundtrip(self, store):
        job_id, created = store.submit("prove", "mock:4", {"seed": 1})
        assert created is True
        batch = store.claim_batch("w1", limit=4)
        assert [job["id"] for job in batch] == [job_id]
        assert batch[0]["state"] == "running" and batch[0]["attempts"] == 1
        assert store.complete(
            job_id, "w1", artifact_digest="ab" * 32, artifact_size=10,
            result={"ok": True},
        )
        record = store.get(job_id)
        assert record["state"] == "done"
        assert record["artifact_digest"] == "ab" * 32
        assert record["result"] == {"ok": True}
        assert store.claim_batch("w1") == []

    def test_submit_with_explicit_id_is_idempotent(self, store):
        job_id = new_job_id("mock:4")
        assert store.submit("prove", "mock:4", {}, job_id=job_id) == (job_id, True)
        assert store.submit("prove", "mock:4", {}, job_id=job_id) == (job_id, False)
        with pytest.raises(ValueError):
            store.submit("transmute", "mock:4", {})

    def test_claim_batches_by_kind_and_structure(self, store):
        first, _ = store.submit("prove", "mock:4", {"seed": 1})
        second, _ = store.submit("prove", "mock:4", {"seed": 2})
        store.submit("prove", "zcash:6", {"seed": 3})
        store.submit("sweep", "mock:4", {})
        batch = store.claim_batch("w1", limit=8)
        # FIFO head decides the (kind, structure); only its peers join.
        assert [job["id"] for job in batch] == [first, second]
        assert {job["structure_key"] for job in batch} == {"mock:4"}

    def test_expired_lease_is_reclaimed_and_loser_cannot_commit(self, store):
        job_id, _ = store.submit("prove", "mock:4", {})
        store.claim_batch("w1", lease_s=30.0)
        # Nothing to claim while the lease is live...
        assert store.claim_batch("w2") == []
        # ... but a dead worker's lease expires and w2 re-claims.
        batch = store.claim_batch("w2", now=time.time() + 31.0)
        assert [job["id"] for job in batch] == [job_id]
        assert batch[0]["attempts"] == 2
        # The zombie's commit hits the lease guard and lands nowhere.
        assert store.complete(job_id, "w1", result={"stale": True}) is False
        assert store.fail(job_id, "w1", "boom") == "lost"
        assert store.complete(job_id, "w2", result={"fresh": True}) is True
        assert store.get(job_id)["result"] == {"fresh": True}

    def test_restart_recovers_leased_jobs(self, store, tmp_path):
        """The crash model: reopen the sqlite file, running rows re-queue."""
        job_id, _ = store.submit("prove", "mock:4", {}, max_attempts=3)
        store.claim_batch("w1")
        store.close()
        reopened = JobStore(tmp_path / "queue.sqlite3")
        try:
            assert reopened.recover_abandoned() == 1
            record = reopened.get(job_id)
            assert record["state"] == "pending"
            assert record["attempts"] == 1  # the crashed attempt stays burned
            assert record["lease_owner"] is None
            batch = reopened.claim_batch("w2")
            assert batch[0]["id"] == job_id and batch[0]["attempts"] == 2
        finally:
            reopened.close()

    def test_recovery_dead_letters_exhausted_jobs(self, store):
        job_id, _ = store.submit("prove", "mock:4", {}, max_attempts=1)
        store.claim_batch("w1")
        assert store.recover_abandoned() == 0
        assert store.get(job_id)["state"] == "dead"

    def test_failure_backoff_then_dead_letter(self, store):
        job_id, _ = store.submit("prove", "mock:4", {}, max_attempts=2)
        store.claim_batch("w1")
        assert store.fail(job_id, "w1", "transient") == "failed"
        record = store.get(job_id)
        assert record["not_before"] > time.time()  # backoff is real
        assert store.claim_batch("w2") == []  # not eligible yet
        batch = store.claim_batch("w2", now=record["not_before"] + 0.1)
        assert batch[0]["attempts"] == 2
        assert store.fail(job_id, "w2", "still broken") == "dead"
        record = store.get(job_id)
        assert record["state"] == "dead" and record["error"] == "still broken"
        # Dead is terminal: never claimed again, even far in the future.
        assert store.claim_batch("w3", now=time.time() + 3600) == []

    def test_stats_surface(self, store):
        store.submit("prove", "mock:4", {})
        store.submit("prove", "mock:4", {})
        store.claim_batch("w1", limit=1)
        dead_id, _ = store.submit("prove", "zcash:6", {}, max_attempts=1)
        stats = store.stats()
        assert stats["states"]["pending"] == 2
        assert stats["states"]["running"] == 1
        assert stats["queue_depth"] == 3
        assert stats["leases_active"] == 1
        assert stats["oldest_lease_age_s"] >= 0.0
        assert stats["dead_letter"] == 0


# -- the content-addressed artifact store -------------------------------------


class TestArtifactStore:
    def test_roundtrip_and_dedup(self, tmp_path):
        artifacts = ArtifactStore(tmp_path / "artifacts")
        digest, size, deduped = artifacts.put(b"proof bytes")
        assert (size, deduped) == (len(b"proof bytes"), False)
        assert artifacts.get(digest) == b"proof bytes"
        assert artifacts.size_of(digest) == size
        # Identical bytes re-derive the identical digest: stored once.
        again, _, deduped = artifacts.put(b"proof bytes")
        assert again == digest and deduped is True
        assert artifacts.stats() == {"count": 1, "bytes": size}

    def test_chunked_reads(self, tmp_path):
        artifacts = ArtifactStore(tmp_path / "artifacts")
        blob = bytes(range(256)) * 600  # > 2 chunks at 64 KiB
        digest, _, _ = artifacts.put(blob)
        chunks = list(artifacts.open_chunks(digest))
        assert len(chunks) > 2
        assert b"".join(chunks) == blob

    def test_unknown_digest_raises(self, tmp_path):
        artifacts = ArtifactStore(tmp_path / "artifacts")
        with pytest.raises(KeyError):
            artifacts.get("ab" * 32)
        with pytest.raises(KeyError):
            next(artifacts.open_chunks("ab" * 32))
        with pytest.raises(ValueError):
            artifacts.path_for("../escape")

    def test_concurrent_identical_puts_store_one_blob(self, tmp_path):
        """ISSUE 8 satellite: identical jobs racing put() converge on one
        blob — last writer republishes the same bytes, nobody corrupts."""
        artifacts = ArtifactStore(tmp_path / "artifacts")
        blob = b"deterministic proof" * 1000
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda _: artifacts.put(blob), range(16)))
        digests = {digest for digest, _, _ in results}
        assert len(digests) == 1
        assert artifacts.stats()["count"] == 1
        assert artifacts.get(digests.pop()) == blob


# -- jobs over HTTP (in-process service, real engine) -------------------------


@pytest.fixture(scope="module")
def job_server():
    service = ProofService(
        ServiceConfig(port=0, batch_window_ms=5.0, job_poll_s=0.02),
        engine_config=EngineConfig(srs_seed=SRS_SEED),
    )
    with BackgroundServer(service) as background:
        yield background


@pytest.fixture(scope="module")
def job_client(job_server):
    with ServiceClient(port=job_server.port) as service_client:
        yield service_client


@pytest.fixture(scope="module")
def direct_engine():
    engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
    yield engine
    engine.close()


class TestJobsOverHTTP:
    def test_prove_job_artifact_byte_identical_to_direct(
        self, job_client, direct_engine
    ):
        ack = job_client.submit_job(
            {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS, "seed": 41}
        )
        assert ack["state"] in ("pending", "running")
        assert ack["created"] is True
        record = job_client.wait_for_job(ack["id"], timeout=120.0)
        assert record["state"] == "done"
        assert record["attempts"] == 1
        blob = job_client.job_artifact(ack["id"])
        direct = direct_engine.prove("mock", num_vars=NUM_VARS, seed=41)
        assert blob == direct.to_bytes()
        assert record["artifact"]["size_bytes"] == len(blob)

    def test_identical_jobs_dedup_to_one_artifact(self, job_client):
        payload = {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS,
                   "seed": 43}
        first = job_client.submit_job(payload)
        second = job_client.submit_job(payload)
        assert first["id"] != second["id"]  # distinct jobs, same work
        one = job_client.wait_for_job(first["id"], timeout=120.0)
        two = job_client.wait_for_job(second["id"], timeout=120.0)
        assert one["state"] == two["state"] == "done"
        # Determinism → identical bytes → content addressing stores one.
        assert one["artifact"]["digest"] == two["artifact"]["digest"]
        metrics = job_client.metrics()
        assert metrics["jobs"]["artifact_dedup_total"] >= 1

    def test_submit_with_id_is_idempotent(self, job_client):
        job_id = new_job_id(f"mock:{NUM_VARS}")
        body = {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS,
                "seed": 44, "id": job_id}
        assert job_client.submit_job(body)["created"] is True
        assert job_client.submit_job(body)["created"] is False
        assert job_client.wait_for_job(job_id, timeout=120.0)["state"] == "done"

    def test_verify_job(self, job_client, direct_engine):
        artifact = direct_engine.prove("mock", num_vars=NUM_VARS, seed=45)
        import base64

        ack = job_client.submit_job(
            {
                "kind": "verify",
                "scenario": "mock",
                "num_vars": NUM_VARS,
                "seed": 45,  # mock's gate structure (and key) follows the seed
                "proof": base64.b64encode(artifact.to_bytes()).decode("ascii"),
            }
        )
        record = job_client.wait_for_job(ack["id"], timeout=120.0)
        assert record["state"] == "done"
        assert record["result"]["valid"] is True

    def test_sweep_job_artifact_is_canonical_result_json(self, job_client):
        ack = job_client.submit_job(
            {"kind": "sweep", "num_vars": 4, "max_points": 16}
        )
        assert ack["structure_key"].startswith("sweep:")
        record = job_client.wait_for_job(ack["id"], timeout=120.0)
        assert record["state"] == "done"
        body = json.loads(job_client.job_artifact(ack["id"]))
        assert body["total_points"] == 16
        assert body["pareto"]
        assert record["result"]["total_points"] == 16

    def test_unknown_job_and_bad_request(self, job_client):
        with pytest.raises(ServiceError) as excinfo:
            job_client.job("mock:4~ffffffffffffffffffffffff")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            job_client.submit_job({"kind": "transmute"})
        assert excinfo.value.status == 400
        # A submitted id must carry the structure key it routes by.
        with pytest.raises(ServiceError) as excinfo:
            job_client.submit_job(
                {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS,
                 "seed": 1, "id": "zcash:6~aaaaaaaaaaaaaaaaaaaaaaaa"}
            )
        assert excinfo.value.status == 400

    def test_healthz_and_metrics_expose_queue_state(self, job_client):
        health = job_client.healthz()
        jobs = health["jobs"]
        for field in ("queue_depth", "dead_letter", "leases_active",
                      "oldest_lease_age_s", "retries_total", "queue_limit",
                      "artifacts"):
            assert field in jobs
        metrics = job_client.metrics()
        assert metrics["jobs"]["submitted_total"] >= 1
        assert metrics["jobs"]["completed_total"] >= 1


# -- admission control + retry path (stub engine, deterministic states) -------


class _StubJobEngine:
    """Engine double whose job batches block on a gate."""

    def __init__(self, gate: threading.Event, artifact: ProofArtifact):
        self.config = EngineConfig()
        self.gate = gate
        self.artifact = artifact
        self.batches: list[int] = []

    def execute_job_batch(self, kind, payloads):
        payloads = list(payloads)
        self.batches.append(len(payloads))
        if not self.gate.wait(timeout=60):
            raise RuntimeError("stub gate never released")
        return [
            (self.artifact.to_bytes(), {"stub": True}) for _ in payloads
        ]

    def prove_many(self, requests):  # pragma: no cover - jobs-only tests
        raise NotImplementedError

    def resolve_circuit(self, *a, **k):  # pragma: no cover - unused
        raise NotImplementedError

    def verifying_key(self, *a, **k):  # pragma: no cover - unused
        raise NotImplementedError

    def close(self) -> None:
        pass


@pytest.fixture(scope="module")
def canned_artifact():
    engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
    artifact = engine.prove("mock", num_vars=3, seed=1)
    engine.close()
    return artifact


class TestAdmissionAndRetries:
    def _payload(self, seed: int) -> dict:
        return {"kind": "prove", "scenario": "mock", "num_vars": 3, "seed": seed}

    def test_queue_limit_answers_429_with_retry_after(self, canned_artifact):
        gate = threading.Event()
        service = ProofService(
            ServiceConfig(port=0, job_queue_limit=2, job_poll_s=0.02),
            engine=_StubJobEngine(gate, canned_artifact),
        )
        with BackgroundServer(service) as background:
            with ServiceClient(port=background.port) as client:
                first = client.submit_job(self._payload(1))
                second = client.submit_job(self._payload(2))
                with pytest.raises(ServiceUnavailable) as excinfo:
                    client.submit_job(self._payload(3))
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after >= 1.0
                gate.set()
                for ack in (first, second):
                    record = client.wait_for_job(ack["id"], timeout=30.0)
                    assert record["state"] == "done"
                # With the queue drained, admission reopens.
                third = client.submit_job(self._payload(3))
                assert client.wait_for_job(third["id"], timeout=30.0)[
                    "state"
                ] == "done"

    def test_artifact_before_done_is_409(self, canned_artifact):
        gate = threading.Event()
        service = ProofService(
            ServiceConfig(port=0, job_poll_s=0.02),
            engine=_StubJobEngine(gate, canned_artifact),
        )
        with BackgroundServer(service) as background:
            with ServiceClient(port=background.port) as client:
                ack = client.submit_job(self._payload(9))
                with pytest.raises(ServiceError) as excinfo:
                    client.job_artifact(ack["id"])
                assert excinfo.value.status == 409
                gate.set()
                client.wait_for_job(ack["id"], timeout=30.0)
                assert client.job_artifact(ack["id"]) == canned_artifact.to_bytes()

    def test_injected_batch_failure_retries_then_completes(self, canned_artifact):
        """An attempt that dies mid-batch burns a retry, then succeeds."""
        gate = threading.Event()
        gate.set()  # the engine itself never blocks here
        service = ProofService(
            ServiceConfig(port=0, job_poll_s=0.02),
            engine=_StubJobEngine(gate, canned_artifact),
        )
        faults.arm("batch-execute", "error", times=1)
        with BackgroundServer(service) as background:
            with ServiceClient(port=background.port) as client:
                ack = client.submit_job(self._payload(11))
                record = client.wait_for_job(ack["id"], timeout=30.0)
                assert record["state"] == "done"
                assert record["attempts"] == 2  # one injected death + one win
                metrics = client.metrics()
                assert metrics["jobs"]["failed_attempts_total"] >= 1

    def test_retry_exhaustion_dead_letters(self, canned_artifact):
        gate = threading.Event()
        gate.set()
        service = ProofService(
            ServiceConfig(port=0, job_poll_s=0.02),
            engine=_StubJobEngine(gate, canned_artifact),
        )
        faults.arm("batch-execute", "error")  # every attempt fails
        with BackgroundServer(service) as background:
            with ServiceClient(port=background.port) as client:
                ack = client.submit_job(
                    dict(self._payload(12), max_attempts=2)
                )
                record = client.wait_for_job(ack["id"], timeout=30.0)
                assert record["state"] == "dead"
                assert record["attempts"] == 2
                assert "injected fault" in record["error"]
                health = client.healthz()
                assert health["jobs"]["dead_letter"] == 1
                metrics = client.metrics()
                assert metrics["jobs"]["dead_total"] == 1


# -- the headline acceptance: SIGKILL mid-batch, restart, zero loss -----------


def _spawn_serve(tmp_path, env_extra=None, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.update(env_extra or {})
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--batch-window-ms", "5", "--job-dir", str(tmp_path / "jobs"),
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.time() + 120
    line = ""
    while time.time() < deadline:
        line = process.stdout.readline()
        if "serving on http://" in line:
            break
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if match is None:
        process.kill()
        raise RuntimeError(f"backend never announced: {line!r}")
    return process, int(match.group(1))


class TestCrashRecovery:
    def test_sigkill_mid_batch_loses_no_accepted_job(self, tmp_path):
        """ISSUE 8 acceptance: SIGKILL a worker mid-batch, restart on the
        same job dir, and every accepted job reaches ``done`` with
        artifacts byte-identical to a clean serial run."""
        seeds = [51, 52, 53]
        # Arm the honest crash: the first job batch to reach the engine
        # thread SIGKILLs the process (no flushes, no atexit).
        process, port = _spawn_serve(
            tmp_path, env_extra={faults.FAULTS_ENV: "batch-execute:kill"}
        )
        accepted: list[tuple[int, str]] = []
        try:
            # Keep the single engine thread busy with a synchronous prove so
            # all three submissions land (and are durably acked) before the
            # first job batch — and with it the SIGKILL — can execute.
            def busy_prove():
                try:
                    with ServiceClient(port=port, timeout=120.0) as sync_client:
                        sync_client.prove("mock", num_vars=NUM_VARS, seed=99)
                except Exception:
                    pass  # the process dies under us; that is the point

            blocker = threading.Thread(target=busy_prove)
            blocker.start()
            time.sleep(0.3)  # let the sync prove reach the engine thread
            with ServiceClient(port=port, timeout=30.0) as client:
                for seed in seeds:
                    ack = client.submit_job(
                        {"kind": "prove", "scenario": "mock",
                         "num_vars": NUM_VARS, "seed": seed}
                    )
                    accepted.append((seed, ack["id"]))
            blocker.join(timeout=120)
            assert process.wait(timeout=120) < 0  # died by signal, not exit()
            assert len(accepted) == 3
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        # The queue file survived the SIGKILL; a clean restart on the same
        # job dir recovers and finishes every accepted job.
        process, port = _spawn_serve(tmp_path)
        try:
            # The spawned server runs the CLI's default engine config; the
            # clean serial reference must match it exactly.
            engine = ProverEngine(EngineConfig())
            try:
                with ServiceClient(port=port, timeout=120.0) as client:
                    for seed, job_id in accepted:
                        record = client.wait_for_job(job_id, timeout=120.0)
                        assert record["state"] == "done", record
                        blob = client.job_artifact(job_id)
                        direct = engine.prove(
                            "mock", num_vars=NUM_VARS, seed=seed
                        )
                        assert blob == direct.to_bytes()
                    health = client.healthz()
                    assert health["jobs"]["queue_depth"] == 0
                    assert health["jobs"]["dead_letter"] == 0
                    # At least the killed batch burned one extra attempt.
                    records = [client.job(job_id) for _, job_id in accepted]
                    assert max(r["attempts"] for r in records) >= 1
            finally:
                engine.close()
        finally:
            process.send_signal(signal.SIGINT)
            process.wait(timeout=60)


# -- jobs across the cluster tier ---------------------------------------------


class _Backend:
    def __init__(self):
        self.engine = ProverEngine(EngineConfig(srs_seed=SRS_SEED))
        self.service = ProofService(
            ServiceConfig(port=0, batch_window_ms=5.0, job_poll_s=0.02),
            engine=self.engine,
        )
        self.server = BackgroundServer(self.service)

    @property
    def backend_id(self) -> str:
        return f"127.0.0.1:{self.server.port}"


@pytest.fixture(scope="module")
def job_cluster():
    backends = [_Backend(), _Backend()]
    for backend in backends:
        backend.server.start()
    router = ClusterRouter(
        RouterConfig(port=0, health_interval_s=0.3, request_timeout_s=120.0),
        backends=[backend.backend_id for backend in backends],
    )
    router_server = BackgroundServer(router)
    router_server.start()
    try:
        yield {
            "backends": {backend.backend_id: backend for backend in backends},
            "router_server": router_server,
        }
    finally:
        router_server.stop()
        for backend in backends:
            backend.server.stop()
            backend.engine.close()


@pytest.fixture(scope="module")
def cluster_client(job_cluster):
    with ServiceClient(port=job_cluster["router_server"].port) as client:
        yield client


class TestClusterJobs:
    def test_routed_job_with_redirected_artifact(
        self, cluster_client, direct_engine
    ):
        ack = cluster_client.submit_job(
            {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS,
             "seed": 61}
        )
        assert ack["served_by"]
        record = cluster_client.wait_for_job(ack["id"], timeout=120.0)
        assert record["state"] == "done"
        # The router answers the artifact GET with a 307 to the owning
        # backend; the client follows it and checks the digest end to end.
        blob = cluster_client.job_artifact(ack["id"])
        direct = direct_engine.prove("mock", num_vars=NUM_VARS, seed=61)
        assert blob == direct.to_bytes()

    def test_job_placement_is_structure_affine(self, cluster_client):
        acks = [
            cluster_client.submit_job(
                {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS,
                 "seed": seed}
            )
            for seed in (62, 63, 64)
        ]
        # Same structure key → same home backend for every job.
        assert len({ack["served_by"] for ack in acks}) == 1
        assert {job_id_structure_key(ack["id"]) for ack in acks} == {
            f"mock:{NUM_VARS}"
        }
        for ack in acks:
            assert cluster_client.wait_for_job(ack["id"], timeout=120.0)[
                "state"
            ] == "done"

    def test_router_404_for_unknown_job(self, cluster_client):
        with pytest.raises(ServiceError) as excinfo:
            cluster_client.job("mock:4~eeeeeeeeeeeeeeeeeeeeeeee")
        assert excinfo.value.status == 404

    def test_fleet_jobs_view_in_metrics_and_healthz(
        self, cluster_client, job_cluster
    ):
        ack = cluster_client.submit_job(
            {"kind": "prove", "scenario": "mock", "num_vars": NUM_VARS,
             "seed": 65}
        )
        cluster_client.wait_for_job(ack["id"], timeout=120.0)
        metrics = cluster_client.metrics()
        aggregate = metrics["aggregate"]
        assert aggregate["jobs_submitted_total"] >= 1
        assert aggregate["jobs_completed_total"] >= 1
        # The healthz jobs view comes from cached health probes; wait for
        # one probe cycle to pick up the post-completion stats.
        deadline = time.time() + 10
        while time.time() < deadline:
            health = cluster_client.healthz()
            view = health.get("jobs") or {}
            if view.get("backends_reporting") == 2:
                break
            time.sleep(0.2)
        assert view["backends_reporting"] == 2
        assert view["queue_depth"] >= 0
