"""Setup shim.

The environment used for offline evaluation ships setuptools without the
``wheel`` package, so PEP 660 editable installs are unavailable; this shim
lets ``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
