"""Setup shim.

The environment used for offline evaluation ships setuptools without the
``wheel`` package, so PEP 660 editable installs are unavailable; this shim
lets ``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.

The native Montgomery field kernel is an *optional* cffi extension: when
cffi and a C compiler are present, ``build_ext`` compiles
``repro.fields.backends._native_kernel`` via the ``cffi_modules`` hook
below; otherwise the install proceeds without it and the backend registry
falls back to the pure-Python / NumPy backends.  The kernel can also be
built directly with ``python src/repro/fields/backends/_native_build.py``.
"""

from setuptools import setup

kwargs = {}
try:
    import cffi  # noqa: F401

    kwargs["cffi_modules"] = [
        "src/repro/fields/backends/_native_build.py:ffibuilder"
    ]
    kwargs["setup_requires"] = ["cffi"]
except ImportError:
    pass

setup(**kwargs)
