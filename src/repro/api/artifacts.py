"""Artifacts returned by the engine: proof bundles and cache statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocol.proof import HyperPlonkProof, ProverTrace
from repro.protocol.keys import VerifyingKey
from repro.protocol.serialization import deserialize_proof, proof_size_bytes, serialize_proof


@dataclass
class ProofArtifact:
    """A proof plus everything needed to verify and account for it.

    ``timings`` holds wall-clock seconds for ``setup``, ``preprocess`` and
    ``prove``; cached stages report 0.0 (the point of the session API is
    that repeated proofs amortize them away).
    """

    scenario: str
    num_vars: int
    proof: HyperPlonkProof
    verifying_key: VerifyingKey
    timings: dict[str, float] = field(default_factory=dict)
    trace: ProverTrace | None = None

    def to_bytes(self) -> bytes:
        """Serialize the proof to the canonical wire format."""
        return serialize_proof(self.proof)

    @staticmethod
    def proof_from_bytes(data: bytes) -> HyperPlonkProof:
        """Deserialize a proof previously produced by :meth:`to_bytes`."""
        return deserialize_proof(data)

    @property
    def size_bytes(self) -> int:
        return proof_size_bytes(self.proof)


@dataclass
class CacheStats:
    """Hit/miss counters for the engine's SRS, circuit-key and sim caches."""

    srs_hits: int = 0
    srs_misses: int = 0
    key_hits: int = 0
    key_misses: int = 0
    sim_hits: int = 0
    sim_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "srs_hits": self.srs_hits,
            "srs_misses": self.srs_misses,
            "key_hits": self.key_hits,
            "key_misses": self.key_misses,
            "sim_hits": self.sim_hits,
            "sim_misses": self.sim_misses,
        }
