"""The :class:`ProverEngine` façade.

One configurable object in front of the whole stack: the functional
HyperPlonk prover/verifier, the universal setup, and the zkSpeed
architectural model.  Sessions cache the SRS by size and circuit keys by
``(num_vars, circuit fingerprint)`` so repeated ``prove()`` / ``verify()``
/ ``prove_many()`` calls amortize setup — the seam a heavy-traffic proving
service shards across.

The engine deliberately imports the *implementation* modules
(``repro.pcs.srs``, ``repro.protocol.prover`` ...) rather than the
package-level re-exports, which are deprecation shims as of this redesign.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence, Union

from repro.api.artifacts import CacheStats, ProofArtifact
from repro.api.config import EngineConfig
from repro.api.parallel import auto_workers, batch_witness_commitments
from repro.api.scenarios import available_scenarios, resolve_scenario
from repro.circuits.builder import Circuit
from repro.core.chip import SimulationReport, ZkSpeedChip
from repro.core.config import ZkSpeedConfig
from repro.core.cpu_baseline import CpuBaseline
from repro.core.dse import DesignPoint, DesignSpaceExplorer
from repro.core.opcounts import KernelProfile, protocol_operation_counts
from repro.core.workload_model import WorkloadModel
from repro.pcs.srs import UniversalSRS
from repro.pcs.srs import setup as _setup_srs
from repro.protocol.keys import ProvingKey, VerifyingKey
from repro.protocol.keys import preprocess as _preprocess
from repro.protocol.proof import HyperPlonkProof
from repro.protocol.prover import prove as _prove
from repro.protocol.verifier import verify as _verify
from repro.transcript.transcript import Transcript

#: A ``prove_many`` request: a scenario name, a built circuit, or keyword
#: arguments for :meth:`ProverEngine.prove`.
ProveRequest = Union[str, Circuit, Mapping]


class ProverEngine:
    """Session façade over proving, verification and accelerator simulation.

    >>> engine = ProverEngine()
    >>> artifact = engine.prove(scenario="zcash", num_vars=6)
    >>> assert engine.verify(artifact)
    >>> report = engine.simulate(scenario="zcash")   # same name, chip model

    All configuration lives in the :class:`EngineConfig` given at
    construction; the engine itself is cheap to create but worth keeping
    around, because its caches turn repeated proofs over the same circuit
    structure into witness-only work.
    """

    #: Bound on the built-circuit LRU: circuits carry full witness tables,
    #: so an unbounded cache would grow by megabytes per distinct seed in a
    #: long-lived service; the SRS/key caches hold the genuinely expensive
    #: artifacts and are keyed by the much smaller structure space.
    CIRCUIT_CACHE_SIZE = 16

    def __init__(self, config: EngineConfig | None = None):
        self.config = config if config is not None else EngineConfig()
        self.cache_stats = CacheStats()
        self._srs_cache: dict[int, UniversalSRS] = {}
        self._key_cache: dict[tuple[int, str], tuple[ProvingKey, VerifyingKey]] = {}
        self._circuit_cache: OrderedDict[tuple[str, int, int], Circuit] = OrderedDict()

    # -- configuration / introspection ------------------------------------------

    def scenarios(self) -> list[str]:
        """Names accepted by ``prove(scenario=...)`` / ``simulate(scenario=...)``."""
        return available_scenarios()

    def transcript(self) -> Transcript:
        """A fresh Fiat-Shamir transcript under this engine's domain tag."""
        return Transcript(label=self.config.transcript_label)

    # -- setup & preprocessing (cached) -----------------------------------------

    def setup(self, num_vars: int) -> UniversalSRS:
        """The universal SRS for ``num_vars``, generated once per session."""
        srs = self._srs_cache.get(num_vars)
        if srs is not None:
            self.cache_stats.srs_hits += 1
            return srs
        self.cache_stats.srs_misses += 1
        with self.config.apply():
            srs = _setup_srs(
                num_vars,
                seed=self.config.srs_seed,
                keep_trapdoor=self.config.keep_trapdoor,
            )
        self._srs_cache[num_vars] = srs
        return srs

    def preload_srs(self, srs: UniversalSRS) -> None:
        """Seed the SRS cache with an externally generated SRS.

        Lets several engines (e.g. one per backend in a benchmark) share
        one expensive setup; the SRS is plain curve points and carries no
        backend or config state.
        """
        self._srs_cache[srs.num_vars] = srs

    def preprocess(
        self, circuit: Circuit, fingerprint: str | None = None
    ) -> tuple[ProvingKey, VerifyingKey]:
        """Proving/verifying keys for ``circuit``, cached by structure.

        The cache key is ``(num_vars, circuit.fingerprint())`` — the
        witness-independent tables — so circuits that differ only in their
        witness share keys.  Pass ``fingerprint`` if already computed to
        avoid a second hash pass over the structure tables.
        """
        if fingerprint is None:
            fingerprint = circuit.fingerprint()
        cache_key = (circuit.num_vars, fingerprint)
        cached = self._key_cache.get(cache_key)
        if cached is not None:
            self.cache_stats.key_hits += 1
            return cached
        self.cache_stats.key_misses += 1
        # apply() nests cleanly, so direct calls honor this engine's MSM /
        # backend configuration just like the prove()/prove_many() paths.
        with self.config.apply():
            keys = _preprocess(circuit, self.setup(circuit.num_vars))
        self._key_cache[cache_key] = keys
        return keys

    # -- proving -----------------------------------------------------------------

    def _resolve_circuit(
        self,
        scenario: str | None,
        circuit: Circuit | None,
        num_vars: int | None,
        seed: int,
    ) -> tuple[str, Circuit]:
        if (scenario is None) == (circuit is None):
            raise ValueError("pass exactly one of scenario= or circuit=")
        if circuit is not None:
            return circuit.name, circuit
        spec = resolve_scenario(scenario)
        cache_key = (spec.name, -1 if num_vars is None else num_vars, seed)
        cached = self._circuit_cache.get(cache_key)
        if cached is not None:
            self._circuit_cache.move_to_end(cache_key)
            return spec.name, cached
        built = spec.build_circuit(num_vars=num_vars, seed=seed)
        self._circuit_cache[cache_key] = built
        while len(self._circuit_cache) > self.CIRCUIT_CACHE_SIZE:
            self._circuit_cache.popitem(last=False)
        return spec.name, built

    def prove(
        self,
        scenario: str | None = None,
        *,
        circuit: Circuit | None = None,
        num_vars: int | None = None,
        seed: int = 0,
        collect_trace: bool | None = None,
    ) -> ProofArtifact:
        """Prove one circuit, reusing the session's SRS and key caches.

        Exactly one of ``scenario`` (a registry name, built at ``num_vars``
        with ``seed``) or ``circuit`` (a pre-built circuit) must be given.
        """
        collect = self.config.collect_trace if collect_trace is None else collect_trace
        with self.config.apply():
            name, resolved = self._resolve_circuit(scenario, circuit, num_vars, seed)
            t0 = time.perf_counter()
            srs_cached = resolved.num_vars in self._srs_cache
            fingerprint = resolved.fingerprint()
            key_cached = (resolved.num_vars, fingerprint) in self._key_cache
            pk, vk = self.preprocess(resolved, fingerprint=fingerprint)
            preprocess_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            result = _prove(
                pk,
                circuit=resolved,
                transcript=self.transcript(),
                collect_trace=collect,
            )
            prove_seconds = time.perf_counter() - t0
        proof, trace = result if collect else (result, None)
        return ProofArtifact(
            scenario=name,
            num_vars=resolved.num_vars,
            proof=proof,
            verifying_key=vk,
            timings={
                "setup_and_preprocess": 0.0 if key_cached else preprocess_seconds,
                "srs_cached": float(srs_cached),
                "key_cached": float(key_cached),
                "prove": prove_seconds,
            },
            trace=trace,
        )

    def prove_many(
        self,
        requests: Iterable[ProveRequest],
        workers: int | None = None,
    ) -> list[ProofArtifact]:
        """Prove a batch, sharding the independent witness-commit MSMs.

        Each request is a scenario name, a built :class:`Circuit`, or a
        mapping of :meth:`prove` keyword arguments.  With ``workers > 1``
        (default: the engine config; ``0`` means one per CPU) the witness
        commitments of the whole batch are computed by a fork-based
        ``multiprocessing`` pool before the per-proof transcript work runs
        serially — proof bytes are identical to the serial path.
        """
        if workers is None:
            workers = self.config.workers
        if workers == 0:
            workers = auto_workers()

        normalized: list[dict] = []
        for request in requests:
            if isinstance(request, str):
                normalized.append({"scenario": request})
            elif isinstance(request, Circuit):
                normalized.append({"circuit": request})
            else:
                normalized.append(dict(request))

        with self.config.apply():
            jobs = []
            prover_keys: list = []
            key_index_of: dict[int, int] = {}
            key_indices: list[int] = []
            for request in normalized:
                name, resolved = self._resolve_circuit(
                    request.get("scenario"),
                    request.get("circuit"),
                    request.get("num_vars"),
                    request.get("seed", 0),
                )
                pk, vk = self.preprocess(resolved)
                if id(pk.pcs) not in key_index_of:
                    key_index_of[id(pk.pcs)] = len(prover_keys)
                    prover_keys.append(pk.pcs)
                key_indices.append(key_index_of[id(pk.pcs)])
                jobs.append((request, name, resolved, pk, vk))

            commitments = batch_witness_commitments(
                prover_keys,
                [resolved for _, _, resolved, _, _ in jobs],
                key_indices,
                workers,
            )

            artifacts: list[ProofArtifact] = []
            for (request, name, resolved, pk, vk), witness_commitments in zip(
                jobs, commitments
            ):
                collect = request.get("collect_trace", self.config.collect_trace)
                t0 = time.perf_counter()
                result = _prove(
                    pk,
                    circuit=resolved,
                    transcript=self.transcript(),
                    collect_trace=collect,
                    precomputed_witness_commitments=witness_commitments,
                )
                prove_seconds = time.perf_counter() - t0
                proof, trace = result if collect else (result, None)
                artifacts.append(
                    ProofArtifact(
                        scenario=name,
                        num_vars=resolved.num_vars,
                        proof=proof,
                        verifying_key=vk,
                        timings={"prove": prove_seconds},
                        trace=trace,
                    )
                )
        return artifacts

    # -- verification ------------------------------------------------------------

    def verify(
        self,
        artifact: ProofArtifact | HyperPlonkProof,
        verifying_key: VerifyingKey | None = None,
        use_pairing: bool | None = None,
    ) -> bool:
        """Verify a proof under this engine's transcript domain tag.

        Accepts a :class:`ProofArtifact` (which carries its verifying key)
        or a bare proof plus ``verifying_key``.
        """
        if isinstance(artifact, ProofArtifact):
            proof = artifact.proof
            verifying_key = (
                verifying_key if verifying_key is not None else artifact.verifying_key
            )
        else:
            proof = artifact
        if verifying_key is None:
            raise ValueError("a bare proof needs an explicit verifying_key")
        with self.config.apply():
            return _verify(
                verifying_key,
                proof,
                transcript=self.transcript(),
                use_pairing=use_pairing,
            )

    # -- accelerator model ---------------------------------------------------------

    def chip(
        self,
        chip_config: ZkSpeedConfig | None = None,
        bandwidth_gbs: float | None = None,
    ) -> ZkSpeedChip:
        """A zkSpeed chip model (paper-default configuration by default)."""
        config = chip_config if chip_config is not None else ZkSpeedConfig.paper_default()
        if bandwidth_gbs is not None:
            config = config.with_bandwidth(bandwidth_gbs)
        return ZkSpeedChip(config)

    def workload(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        circuit: Circuit | None = None,
    ) -> WorkloadModel:
        """The architectural-model workload for a scenario (or a plain size)."""
        if scenario is not None:
            return resolve_scenario(scenario).workload_model(
                num_vars=num_vars, circuit=circuit
            )
        if circuit is not None:
            return WorkloadModel.from_circuit(circuit)
        if num_vars is None:
            raise ValueError("pass scenario=, circuit= or num_vars=")
        return WorkloadModel(num_vars=num_vars)

    def simulate(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        workload: WorkloadModel | None = None,
        chip_config: ZkSpeedConfig | None = None,
        bandwidth_gbs: float | None = None,
    ) -> SimulationReport:
        """Simulate the zkSpeed accelerator on a scenario or explicit workload."""
        if workload is None:
            workload = self.workload(scenario, num_vars=num_vars)
        return self.chip(chip_config, bandwidth_gbs).simulate(workload)

    def explore(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        workload: WorkloadModel | None = None,
        overrides: Mapping[str, Sequence] | None = None,
        max_points: int | None = 400,
    ) -> tuple[DesignSpaceExplorer, list[DesignPoint]]:
        """Run a design-space exploration; returns (explorer, points)."""
        if workload is None:
            workload = self.workload(scenario, num_vars=num_vars)
        explorer = DesignSpaceExplorer(workload)
        points = explorer.sweep(overrides=overrides, max_points=max_points)
        return explorer, points

    def kernel_profiles(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        workload: WorkloadModel | None = None,
    ) -> list[KernelProfile]:
        """The Table 1 kernel profiles for a scenario or problem size."""
        if workload is None:
            workload = self.workload(scenario, num_vars=num_vars)
        return protocol_operation_counts(workload)

    def cpu_baseline(self) -> CpuBaseline:
        """The paper's calibrated CPU baseline."""
        return CpuBaseline()
