"""The :class:`ProverEngine` façade.

One configurable object in front of the whole stack: the functional
HyperPlonk prover/verifier, the universal setup, and the zkSpeed
architectural model.  Sessions cache the SRS by size and circuit keys by
``(num_vars, circuit fingerprint)`` so repeated ``prove()`` / ``verify()``
/ ``prove_many()`` calls amortize setup — the seam a heavy-traffic proving
service shards across.

The engine deliberately imports the *implementation* modules
(``repro.pcs.srs``, ``repro.protocol.prover`` ...) rather than the
package-level re-exports, which are deprecation shims as of this redesign.
"""

from __future__ import annotations

import contextlib
import json
import time
from collections import OrderedDict
from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.api.artifacts import CacheStats, ProofArtifact
from repro.api.config import EngineConfig
from repro.api.parallel import (
    MleShardRunner,
    MsmShardRunner,
    SumcheckShardRunner,
    WorkerPool,
    auto_workers,
    batch_witness_commitments,
    fork_available,
    release_points,
    run_batch_proofs,
    share_points,
)
from repro.api.scenarios import available_scenarios, resolve_scenario
from repro.circuits.builder import Circuit
from repro.core.chip import SimulationReport, ZkSpeedChip
from repro.core.config import ZkSpeedConfig, config_fingerprint
from repro.core.cpu_baseline import CpuBaseline
from repro.core.dse import DesignPoint, DesignSpaceExplorer
from repro.core.opcounts import KernelProfile, protocol_operation_counts
from repro.core.workload_model import WorkloadModel
from repro.curves.msm import msm_shard_runner, set_msm_shard_runner
from repro.mle.operations import mle_shard_runner, set_mle_shard_runner
from repro.pcs.srs import UniversalSRS
from repro.pcs.srs import setup_cached as _setup_srs
from repro.pcs.srs import setup_from_ptau as _setup_srs_from_ptau
from repro.sumcheck.prover import set_sumcheck_shard_runner, sumcheck_shard_runner
from repro.protocol.keys import ProvingKey, VerifyingKey
from repro.protocol.keys import preprocess as _preprocess
from repro.protocol.proof import HyperPlonkProof
from repro.protocol.prover import prove as _prove
from repro.protocol.verifier import verify as _verify
from repro.transcript.transcript import Transcript

#: A ``prove_many`` request: a scenario name, a built circuit, or keyword
#: arguments for :meth:`ProverEngine.prove`.
ProveRequest = Union[str, Circuit, Mapping]


class ProverEngine:
    """Session façade over proving, verification and accelerator simulation.

    >>> engine = ProverEngine()
    >>> artifact = engine.prove(scenario="zcash", num_vars=6)
    >>> assert engine.verify(artifact)
    >>> report = engine.simulate(scenario="zcash")   # same name, chip model

    All configuration lives in the :class:`EngineConfig` given at
    construction; the engine itself is cheap to create but worth keeping
    around, because its caches turn repeated proofs over the same circuit
    structure into witness-only work.
    """

    #: Bound on the built-circuit LRU: circuits carry full witness tables,
    #: so an unbounded cache would grow by megabytes per distinct seed in a
    #: long-lived service; the SRS/key caches hold the genuinely expensive
    #: artifacts and are keyed by the much smaller structure space.
    CIRCUIT_CACHE_SIZE = 16

    #: Bound on the simulation-report LRU.  A report is a few hundred bytes
    #: of floats, so the cache can afford to cover a whole decimated Table 2
    #: sweep (2000 points by default) with room for several workloads.
    SIM_CACHE_SIZE = 8192

    def __init__(self, config: EngineConfig | None = None):
        # A default-constructed engine honors the REPRO_* environment
        # (workers, field backend, SRS cache dir) via from_env(); with a
        # clean environment that is exactly EngineConfig().  Pass an
        # explicit config to pin every knob.
        self.config = config if config is not None else EngineConfig.from_env()
        self.cache_stats = CacheStats()
        self._srs_cache: dict[int, UniversalSRS] = {}
        self._key_cache: dict[tuple[int, str], tuple[ProvingKey, VerifyingKey]] = {}
        self._circuit_cache: OrderedDict[tuple[str, int, int], Circuit] = OrderedDict()
        #: Memoized accelerator simulations, keyed by (chip-config
        #: fingerprint, workload) — mirrors the SRS/key caches: simulation
        #: is deterministic, so a repeated (design point, workload) pair in
        #: a sweep or a /simulate request stream is pure cache traffic.
        self._sim_cache: OrderedDict[
            tuple[str, WorkloadModel], SimulationReport
        ] = OrderedDict()
        #: Session worker pool (created lazily on first parallel work).
        self._pool: WorkerPool | None = None
        self._shared_srs_keys: list[str] = []
        self._registered_srs_sizes: set[int] = set()

    # -- session / pool lifecycle -------------------------------------------------

    def _parallel_enabled(self) -> bool:
        """Whether this session shards work across processes at all."""
        return self.config.effective_workers() > 1 and fork_available()

    def _ensure_pool(self) -> WorkerPool:
        """The session's persistent fork pool, created on first use."""
        if self._pool is None:
            self._pool = WorkerPool(self.config.effective_workers())
        return self._pool

    def close(self) -> None:
        """Tear down the session: worker processes and shared-state entries.

        Safe to call more than once; the engine remains usable afterwards
        (a later parallel operation simply re-creates the pool).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for key in self._shared_srs_keys:
            release_points(key)
        self._shared_srs_keys = []
        self._registered_srs_sizes = set()

    def __enter__(self) -> "ProverEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing is interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def _register_srs_tables(self, srs: UniversalSRS) -> None:
        """Publish the SRS point tables for by-reference MSM shard payloads.

        Workers then receive megabytes of Lagrange-basis points through the
        fork's copy-on-write memory instead of per-task pickles.  Keys are
        engine-unique so two sessions never alias each other's tables; they
        are dropped again on :meth:`close`.
        """
        if not self._parallel_enabled() or srs.num_vars in self._registered_srs_sizes:
            return
        for k, table in enumerate(srs.prover_key.lagrange_tables):
            key = share_points(
                f"srs:{id(self)}:{self.config.srs_seed}:{srs.num_vars}:{k}", table
            )
            self._shared_srs_keys.append(key)
        self._registered_srs_sizes.add(srs.num_vars)

    @contextlib.contextmanager
    def _parallel_seams(self) -> Iterator[None]:
        """Install the intra-proof shard runners for one engine operation.

        With ``workers <= 1`` (or no fork support) this is a no-op and every
        kernel runs the serial path.  Otherwise the MSM window-shard,
        SumCheck round-shard, and MLE-phase (wiring-identity fraction /
        product construction and batch-evaluation dots) runners are pointed
        at the session pool for the duration, and restored afterwards so
        engines with different configs can interleave.
        """
        if not self._parallel_enabled():
            yield
            return
        workers = self.config.effective_workers()
        pool = self._ensure_pool()
        # Re-publish cached SRS tables if a close() dropped them (the cached
        # setup() path will not run again for sizes already in the cache).
        for srs in self._srs_cache.values():
            self._register_srs_tables(srs)
        previous_msm = msm_shard_runner()
        previous_sumcheck = sumcheck_shard_runner()
        previous_mle = mle_shard_runner()
        set_msm_shard_runner(
            MsmShardRunner(pool, workers, self.config.parallel_min_msm_points)
        )
        set_sumcheck_shard_runner(
            SumcheckShardRunner(pool, workers, self.config.parallel_min_sumcheck_size)
        )
        set_mle_shard_runner(
            MleShardRunner(pool, workers, self.config.parallel_min_sumcheck_size)
        )
        try:
            yield
        finally:
            set_msm_shard_runner(previous_msm)
            set_sumcheck_shard_runner(previous_sumcheck)
            set_mle_shard_runner(previous_mle)

    # -- configuration / introspection ------------------------------------------

    def cache_contents(self) -> dict:
        """What this session's caches currently hold (JSON-serializable).

        The serving layer reports this from ``GET /healthz`` so a routing
        tier can see which circuit structures a backend is *hot* for:
        ``srs_sizes`` (num_vars with a cached SRS), ``key_structures``
        (``"num_vars:fingerprint-prefix"`` of each cached proving/verifying
        key pair) and the built-circuit LRU occupancy — plus
        ``field_backend`` (policy, installed backends, and the backend the
        prover's large vectors actually resolve to under this config) so
        cluster operators can verify a fleet is running the compiled
        kernel and not silently degraded to the pure fallback.
        """
        return {
            "srs_sizes": sorted(self._srs_cache),
            "key_structures": sorted(
                f"{num_vars}:{fingerprint[:12]}"
                for num_vars, fingerprint in self._key_cache
            ),
            "circuits_cached": len(self._circuit_cache),
            "simulations_cached": len(self._sim_cache),
            "field_backend": self.field_backend_info(),
        }

    def field_backend_info(self) -> dict:
        """The field-backend policy and its runtime resolution.

        ``active`` is the backend a prover-sized vector (``1 << 16``
        elements, deep in every crossover) resolves to with this engine's
        config applied — i.e. what the hot paths will really use.
        """
        from repro.fields.backends import available_backends, default_backend_for

        with self.config.apply():
            active = default_backend_for(1 << 16).name
        return {
            "policy": self.config.field_backend,
            "active": active,
            "available": available_backends(),
        }

    def scenarios(self) -> list[str]:
        """Names accepted by ``prove(scenario=...)`` / ``simulate(scenario=...)``."""
        return available_scenarios()

    def transcript(self) -> Transcript:
        """A fresh Fiat-Shamir transcript under this engine's domain tag."""
        return Transcript(label=self.config.transcript_label)

    # -- setup & preprocessing (cached) -----------------------------------------

    def setup(self, num_vars: int) -> UniversalSRS:
        """The universal SRS for ``num_vars``, generated once per session.

        With ``EngineConfig.srs_cache_dir`` set, the SRS is also persisted
        to (and on later runs loaded from) a disk cache keyed by
        ``(num_vars, srs_seed, keep_trapdoor)``, so restarted processes
        skip the multi-second trusted setup.

        With ``EngineConfig.srs_source`` set, the SRS is instead derived
        from that powers-of-tau ceremony file (parsed and group-checked on
        first use; disk-cached by ceremony digest).
        """
        srs = self._srs_cache.get(num_vars)
        if srs is not None:
            self.cache_stats.srs_hits += 1
            return srs
        self.cache_stats.srs_misses += 1
        with self.config.apply():
            if self.config.srs_source is not None:
                srs = _setup_srs_from_ptau(
                    num_vars,
                    self.config.srs_source,
                    keep_trapdoor=self.config.keep_trapdoor,
                    cache_dir=self.config.srs_cache_dir,
                )
            else:
                srs = _setup_srs(
                    num_vars,
                    seed=self.config.srs_seed,
                    keep_trapdoor=self.config.keep_trapdoor,
                    cache_dir=self.config.srs_cache_dir,
                )
        self._srs_cache[num_vars] = srs
        self._register_srs_tables(srs)
        return srs

    def preload_srs(self, srs: UniversalSRS) -> None:
        """Seed the SRS cache with an externally generated SRS.

        Lets several engines (e.g. one per backend in a benchmark) share
        one expensive setup; the SRS is plain curve points and carries no
        backend or config state.
        """
        self._srs_cache[srs.num_vars] = srs
        self._register_srs_tables(srs)

    def preprocess(
        self, circuit: Circuit, fingerprint: str | None = None
    ) -> tuple[ProvingKey, VerifyingKey]:
        """Proving/verifying keys for ``circuit``, cached by structure.

        The cache key is ``(num_vars, circuit.fingerprint())`` — the
        witness-independent tables — so circuits that differ only in their
        witness share keys.  Pass ``fingerprint`` if already computed to
        avoid a second hash pass over the structure tables.
        """
        if fingerprint is None:
            fingerprint = circuit.fingerprint()
        cache_key = (circuit.num_vars, fingerprint)
        cached = self._key_cache.get(cache_key)
        if cached is not None:
            self.cache_stats.key_hits += 1
            return cached
        self.cache_stats.key_misses += 1
        # apply() nests cleanly, so direct calls honor this engine's MSM /
        # backend configuration just like the prove()/prove_many() paths.
        with self.config.apply():
            keys = _preprocess(circuit, self.setup(circuit.num_vars))
        self._key_cache[cache_key] = keys
        return keys

    # -- proving -----------------------------------------------------------------

    def _resolve_circuit(
        self,
        scenario: str | None,
        circuit: Circuit | None,
        num_vars: int | None,
        seed: int,
    ) -> tuple[str, Circuit]:
        if (scenario is None) == (circuit is None):
            raise ValueError("pass exactly one of scenario= or circuit=")
        if circuit is not None:
            return circuit.name, circuit
        spec = resolve_scenario(scenario)
        cache_key = (spec.name, -1 if num_vars is None else num_vars, seed)
        cached = self._circuit_cache.get(cache_key)
        if cached is not None:
            self._circuit_cache.move_to_end(cache_key)
            return spec.name, cached
        built = spec.build_circuit(num_vars=num_vars, seed=seed)
        self._circuit_cache[cache_key] = built
        while len(self._circuit_cache) > self.CIRCUIT_CACHE_SIZE:
            self._circuit_cache.popitem(last=False)
        return spec.name, built

    def resolve_circuit(
        self,
        scenario: str | None = None,
        *,
        circuit: Circuit | None = None,
        num_vars: int | None = None,
        seed: int = 0,
    ) -> tuple[str, Circuit]:
        """The ``(name, built circuit)`` a prove call with these arguments
        would use, through the session's circuit LRU.

        Public so out-of-process layers (the serving subsystem, benchmarks)
        can reach the exact witness tables behind a scenario request without
        re-deriving the registry-and-cache logic.
        """
        return self._resolve_circuit(scenario, circuit, num_vars, seed)

    def verifying_key(
        self,
        scenario: str | None = None,
        *,
        circuit: Circuit | None = None,
        num_vars: int | None = None,
        seed: int = 0,
    ) -> VerifyingKey:
        """The cached verifying key for a scenario request or built circuit.

        The key depends only on circuit *structure*, so any seed resolves to
        the same key; this is what lets a service verify an uploaded proof
        from nothing but ``(scenario, num_vars)`` coordinates.
        """
        _, resolved = self._resolve_circuit(scenario, circuit, num_vars, seed)
        _, vk = self.preprocess(resolved)
        return vk

    def prove(
        self,
        scenario: str | None = None,
        *,
        circuit: Circuit | None = None,
        num_vars: int | None = None,
        seed: int = 0,
        collect_trace: bool | None = None,
    ) -> ProofArtifact:
        """Prove one circuit, reusing the session's SRS and key caches.

        Exactly one of ``scenario`` (a registry name, built at ``num_vars``
        with ``seed``) or ``circuit`` (a pre-built circuit) must be given.
        """
        collect = self.config.collect_trace if collect_trace is None else collect_trace
        with self.config.apply(), self._parallel_seams():
            name, resolved = self._resolve_circuit(scenario, circuit, num_vars, seed)
            t0 = time.perf_counter()
            srs_cached = resolved.num_vars in self._srs_cache
            fingerprint = resolved.fingerprint()
            key_cached = (resolved.num_vars, fingerprint) in self._key_cache
            pk, vk = self.preprocess(resolved, fingerprint=fingerprint)
            preprocess_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            result = _prove(
                pk,
                circuit=resolved,
                transcript=self.transcript(),
                collect_trace=collect,
            )
            prove_seconds = time.perf_counter() - t0
        proof, trace = result if collect else (result, None)
        return ProofArtifact(
            scenario=name,
            num_vars=resolved.num_vars,
            proof=proof,
            verifying_key=vk,
            timings={
                "setup_and_preprocess": 0.0 if key_cached else preprocess_seconds,
                "srs_cached": float(srs_cached),
                "key_cached": float(key_cached),
                "prove": prove_seconds,
            },
            trace=trace,
        )

    def prove_many(
        self,
        requests: Iterable[ProveRequest],
        workers: int | None = None,
    ) -> list[ProofArtifact]:
        """Prove a batch, sharding the independent witness-commit MSMs.

        Each request is a scenario name, a built :class:`Circuit`, or a
        mapping of :meth:`prove` keyword arguments.  With ``workers > 1``
        (default: the engine config; ``0`` means one per CPU) on a
        fork-capable platform, the batch is sharded *whole proofs at a
        time*: one forked worker per proof, proving keys and witness tables
        inherited copy-on-write (the ``_POOL_STATE`` pattern), giving
        service-style throughput.  A single-request batch, ``workers <= 1``
        or a fork-less platform falls back to the PR 2 path (parallel
        witness commits where possible, serial transcript work) — and
        proof bytes are identical on every path.
        """
        if workers is None:
            workers = self.config.workers
        if workers == 0:
            workers = auto_workers()

        normalized: list[dict] = []
        for request in requests:
            if isinstance(request, str):
                normalized.append({"scenario": request})
            elif isinstance(request, Circuit):
                normalized.append({"circuit": request})
            else:
                normalized.append(dict(request))

        with self.config.apply():
            jobs = []
            prover_keys: list = []
            key_index_of: dict[int, int] = {}
            key_indices: list[int] = []
            for request in normalized:
                name, resolved = self._resolve_circuit(
                    request.get("scenario"),
                    request.get("circuit"),
                    request.get("num_vars"),
                    request.get("seed", 0),
                )
                pk, vk = self.preprocess(resolved)
                if id(pk.pcs) not in key_index_of:
                    key_index_of[id(pk.pcs)] = len(prover_keys)
                    prover_keys.append(pk.pcs)
                key_indices.append(key_index_of[id(pk.pcs)])
                jobs.append((request, name, resolved, pk, vk))

            if workers > 1 and fork_available() and len(jobs) > 1:
                return self._prove_many_sharded(jobs, workers)

            commitments = batch_witness_commitments(
                prover_keys,
                [resolved for _, _, resolved, _, _ in jobs],
                key_indices,
                workers,
            )

            artifacts: list[ProofArtifact] = []
            for (request, name, resolved, pk, vk), witness_commitments in zip(
                jobs, commitments
            ):
                collect = request.get("collect_trace", self.config.collect_trace)
                t0 = time.perf_counter()
                result = _prove(
                    pk,
                    circuit=resolved,
                    transcript=self.transcript(),
                    collect_trace=collect,
                    precomputed_witness_commitments=witness_commitments,
                )
                prove_seconds = time.perf_counter() - t0
                proof, trace = result if collect else (result, None)
                artifacts.append(
                    ProofArtifact(
                        scenario=name,
                        num_vars=resolved.num_vars,
                        proof=proof,
                        verifying_key=vk,
                        timings={"prove": prove_seconds},
                        trace=trace,
                    )
                )
        return artifacts

    def _prove_many_sharded(
        self,
        jobs: Sequence[tuple[Mapping, str, Circuit, ProvingKey, VerifyingKey]],
        workers: int,
    ) -> list[ProofArtifact]:
        """Whole-proof sharding: one forked worker per proof in the batch.

        Uses the session pool when the requested worker count matches the
        config (the common case); an explicit per-call override gets a
        short-lived pool of its own so the session pool keeps its size.
        """
        batch_jobs = [
            (pk, resolved, request.get("collect_trace", self.config.collect_trace))
            for request, _, resolved, pk, _ in jobs
        ]
        if workers == self.config.effective_workers():
            pool, ephemeral = self._ensure_pool(), False
        else:
            pool, ephemeral = WorkerPool(workers), True
        try:
            results = run_batch_proofs(pool, self.config, batch_jobs)
        finally:
            if ephemeral:
                pool.close()
        artifacts: list[ProofArtifact] = []
        for (request, name, resolved, pk, vk), (proof_bytes, trace, seconds) in zip(
            jobs, results
        ):
            artifacts.append(
                ProofArtifact(
                    scenario=name,
                    num_vars=resolved.num_vars,
                    proof=ProofArtifact.proof_from_bytes(proof_bytes),
                    verifying_key=vk,
                    timings={"prove": seconds},
                    trace=trace,
                )
            )
        return artifacts

    # -- verification ------------------------------------------------------------

    def verify(
        self,
        artifact: ProofArtifact | HyperPlonkProof,
        verifying_key: VerifyingKey | None = None,
        use_pairing: bool | None = None,
    ) -> bool:
        """Verify a proof under this engine's transcript domain tag.

        Accepts a :class:`ProofArtifact` (which carries its verifying key)
        or a bare proof plus ``verifying_key``.
        """
        if isinstance(artifact, ProofArtifact):
            proof = artifact.proof
            verifying_key = (
                verifying_key if verifying_key is not None else artifact.verifying_key
            )
        else:
            proof = artifact
        if verifying_key is None:
            raise ValueError("a bare proof needs an explicit verifying_key")
        with self.config.apply():
            return _verify(
                verifying_key,
                proof,
                transcript=self.transcript(),
                use_pairing=use_pairing,
            )

    # -- accelerator model ---------------------------------------------------------

    def chip(
        self,
        chip_config: ZkSpeedConfig | None = None,
        bandwidth_gbs: float | None = None,
    ) -> ZkSpeedChip:
        """A zkSpeed chip model (paper-default configuration by default)."""
        config = chip_config if chip_config is not None else ZkSpeedConfig.paper_default()
        if bandwidth_gbs is not None:
            config = config.with_bandwidth(bandwidth_gbs)
        return ZkSpeedChip(config)

    def workload(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        circuit: Circuit | None = None,
    ) -> WorkloadModel:
        """The architectural-model workload for a scenario (or a plain size)."""
        if scenario is not None:
            return resolve_scenario(scenario).workload_model(
                num_vars=num_vars, circuit=circuit
            )
        if circuit is not None:
            return WorkloadModel.from_circuit(circuit)
        if num_vars is None:
            raise ValueError("pass scenario=, circuit= or num_vars=")
        return WorkloadModel(num_vars=num_vars)

    def simulate(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        workload: WorkloadModel | None = None,
        chip_config: ZkSpeedConfig | None = None,
        bandwidth_gbs: float | None = None,
    ) -> SimulationReport:
        """Simulate the zkSpeed accelerator on a scenario or explicit workload.

        Memoized per ``(chip-config fingerprint, workload)`` in the session
        cache — the model is deterministic, so identical requests (common
        in served sweep traffic, where many clients probe the same Pareto
        region) cost one dict lookup after the first.
        """
        if workload is None:
            workload = self.workload(scenario, num_vars=num_vars)
        config = (
            chip_config if chip_config is not None else ZkSpeedConfig.paper_default()
        )
        if bandwidth_gbs is not None:
            config = config.with_bandwidth(bandwidth_gbs)
        report, _cached = self.simulate_config(config, workload)
        return report

    def simulate_config(
        self, chip_config: ZkSpeedConfig, workload: WorkloadModel
    ) -> tuple[SimulationReport, bool]:
        """Memoizing simulation primitive; returns ``(report, was_cached)``.

        The cache hit/miss split feeds :class:`CacheStats` (and from there
        ``/healthz``), and the boolean lets the service's ``/simulate``
        handler report whether it answered from cache.
        """
        key = (config_fingerprint(chip_config), workload)
        cached = self._sim_cache.get(key)
        if cached is not None:
            self._sim_cache.move_to_end(key)
            self.cache_stats.sim_hits += 1
            return cached, True
        self.cache_stats.sim_misses += 1
        report = ZkSpeedChip(chip_config).simulate(workload)
        self._sim_cache[key] = report
        if len(self._sim_cache) > self.SIM_CACHE_SIZE:
            self._sim_cache.popitem(last=False)
        return report, False

    def sweep(self, plan, *, items=None, on_progress=None):
        """Evaluate a :class:`~repro.dse.SweepPlan` with this session's pool.

        Runs through the fork :class:`WorkerPool` when the config enables
        parallelism (``workers > 1`` on a fork-capable platform), else
        serially through the memoized :meth:`simulate_config` path.  Both
        produce bit-identical results — the tests enforce it.  ``items``
        restricts evaluation to an explicit shard (``plan.shard_items``
        output); ``on_progress(done, total, pareto_size)`` streams progress.
        """
        from repro.dse.runner import run_sweep

        if self._parallel_enabled():
            return run_sweep(
                plan,
                items=items,
                pool=self._ensure_pool(),
                workers=self.config.effective_workers(),
                on_progress=on_progress,
            )
        return run_sweep(plan, items=items, engine=self, on_progress=on_progress)

    def execute_job_batch(
        self, kind: str, payloads: Sequence[Mapping]
    ) -> list[tuple[bytes | None, dict]]:
        """Execute one durable-job batch (the ``repro.jobs`` engine seam).

        ``kind`` is ``prove`` / ``verify`` / ``sweep``; payloads are the
        validated job payloads the service stored at admission (a batch is
        homogeneous by construction).  Returns one ``(artifact_bytes,
        result)`` pair per payload: prove artifacts are the canonical
        serialized proof bytes (deterministic, so re-execution after a
        crash re-derives the identical artifact — the content-addressed
        store dedups it), sweep artifacts are the canonical JSON result
        with volatile timing fields split into the job result, and verify
        jobs produce a result only.
        """
        import base64

        if kind == "prove":
            artifacts = self.prove_many(
                [
                    {
                        "scenario": payload["scenario"],
                        "num_vars": payload.get("num_vars"),
                        "seed": payload.get("seed", 0),
                    }
                    for payload in payloads
                ]
            )
            return [
                (
                    artifact.to_bytes(),
                    {
                        "scenario": artifact.scenario,
                        "num_vars": artifact.num_vars,
                        "seed": payload.get("seed", 0),
                        "proof_size_bytes": artifact.size_bytes,
                        "prove_seconds": artifact.timings.get("prove"),
                    },
                )
                for payload, artifact in zip(payloads, artifacts)
            ]

        if kind == "verify":
            from repro.protocol.serialization import (
                SerializationError,
                deserialize_proof,
            )
            from repro.protocol.verifier import VerificationError

            outcomes: list[tuple[bytes | None, dict]] = []
            for payload in payloads:
                result = {
                    "scenario": payload["scenario"],
                    "num_vars": payload.get("num_vars"),
                }
                try:
                    proof = deserialize_proof(
                        base64.b64decode(payload["proof"].encode("ascii"))
                    )
                    verifying_key = self.verifying_key(
                        payload["scenario"],
                        num_vars=payload.get("num_vars"),
                        seed=payload.get("seed", 0),
                    )
                    result["valid"] = bool(self.verify(proof, verifying_key))
                except (SerializationError, VerificationError) as exc:
                    result["valid"] = False
                    result["reason"] = str(exc)
                outcomes.append((None, result))
            return outcomes

        if kind == "sweep":
            from repro.dse.plan import SweepPlan

            outcomes = []
            for payload in payloads:
                plan = SweepPlan.from_wire(payload["plan"])
                result = self.sweep(plan)
                body = result.to_wire(
                    include_points=bool(payload.get("include_points", False))
                )
                # Volatile fields go in the job result; the artifact keeps
                # only the deterministic part so identical sweep jobs dedup
                # exactly like identical proofs do.
                summary = {
                    "total_points": body.get("total_points"),
                    "pareto_size": body.get("pareto_size"),
                    "elapsed_s": body.pop("elapsed_s", None),
                    "points_per_second": body.pop("points_per_second", None),
                    "mode": body.pop("mode", None),
                }
                blob = json.dumps(body, sort_keys=True).encode("utf-8")
                outcomes.append((blob, summary))
            return outcomes

        raise ValueError(f"unknown job kind {kind!r}")

    def explore(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        workload: WorkloadModel | None = None,
        overrides: Mapping[str, Sequence] | None = None,
        max_points: int | None = 400,
    ) -> tuple[DesignSpaceExplorer, list[DesignPoint]]:
        """Run a design-space exploration; returns (explorer, points)."""
        if workload is None:
            workload = self.workload(scenario, num_vars=num_vars)
        explorer = DesignSpaceExplorer(workload)
        points = explorer.sweep(overrides=overrides, max_points=max_points)
        return explorer, points

    def kernel_profiles(
        self,
        scenario: str | None = None,
        *,
        num_vars: int | None = None,
        workload: WorkloadModel | None = None,
    ) -> list[KernelProfile]:
        """The Table 1 kernel profiles for a scenario or problem size."""
        if workload is None:
            workload = self.workload(scenario, num_vars=num_vars)
        return protocol_operation_counts(workload)

    def cpu_baseline(self) -> CpuBaseline:
        """The paper's calibrated CPU baseline."""
        return CpuBaseline()
