"""Multiprocessing execution for the prover: the sharded-prover subsystem.

The paper's core observation is that proof generation is dominated by
massively parallel kernels — MSM bucket accumulation and SumCheck round
evaluation — and this module is the software mirror of that structure.  It
provides, all behind ``EngineConfig.workers``:

* :class:`WorkerPool` — one persistent fork-based pool per
  :class:`~repro.api.engine.ProverEngine` session, created lazily on first
  parallel work and torn down on ``close()``/GC.  Large read-only state
  (SRS tables, batch proving keys) reaches workers by copy-on-write
  inheritance through the :func:`share_state` registry: the pool snapshots
  the registry's versions at fork time and transparently re-forks when a
  required entry is missing or stale, so steady-state proving reuses one
  set of processes with zero per-call setup.  Per-call epochs — a
  ``prove_many`` batch, a shared-scalar large MSM — are the deliberate
  exceptions: each such call is one refork by design.
* :class:`MsmShardRunner` — intra-MSM window sharding.  Installed into
  :mod:`repro.curves.msm` for the duration of an engine operation; ships
  disjoint Pippenger window ranges to workers and merges the window sums
  serially.  Full-table MSMs (the wiring-identity commits and the large
  early quotient MSMs of the opening step) name their registered SRS
  tables by reference, reaching workers through fork copy-on-write.
  Per-call *scalars* of large MSMs travel the same way: the runner
  publishes them once under :data:`MSM_SCALARS_KEY` (a shared-state epoch
  — the pool re-forks and inherits them copy-on-write) instead of pickling
  the scalar list into every window task; below
  ``share_scalars_min_points`` the by-value payload stays, because one
  cheap pickle beats a re-fork.  The filtered sub-lists of the sparse
  witness-commit flow (the ~10% dense residue of a witness table) usually
  sit under both gates and keep the by-value path.
* :class:`SumcheckShardRunner` — SumCheck term-table sharding.  Splits each
  round's boolean-hypercube instances into contiguous chunks; workers
  return partial round-polynomial evaluations that sum (exactly — field
  addition is associative) in the parent.
* :func:`run_batch_proofs` — the process-per-proof pipeline behind
  ``ProverEngine.prove_many``: one forked worker per proof, proving keys
  and circuits inherited copy-on-write, serialized proofs returned.
* :func:`batch_witness_commitments` — the original PR 2 entry point
  (independent witness-commit MSMs of a batch), kept as the fallback path.

Every sharded path produces proofs byte-identical to the serial path: MSM
window sums are canonical group elements computed by the same kernel
(:func:`repro.curves.msm.compute_window_sums`), SumCheck partial sums are
exact field arithmetic, and whole-proof sharding only moves *which process*
runs an unchanged prover.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Callable, Iterable, Sequence

import importlib

from repro.circuits.builder import Circuit
from repro.curves.curve import AffinePoint
from repro.curves.msm import MSMStatistics, compute_window_sums
from repro.fields.backends import get_backend
from repro.fields.field import FieldElement, PrimeField
from repro.fields.vector import FieldVector
from repro.pcs.multilinear_kzg import Commitment, commit
from repro.pcs.srs import ProverKey
from repro.protocol.keys import WITNESS_POLY_NAMES
from repro.protocol.prover import prove as _prove
from repro.protocol.serialization import serialize_proof
from repro.transcript.transcript import Transcript

# The ``repro.curves`` package re-exports an ``msm`` *function*, which would
# shadow the submodule under ``from repro.curves import msm``; resolve both
# seam modules explicitly.
_msm_module = importlib.import_module("repro.curves.msm")
_sumcheck_module = importlib.import_module("repro.sumcheck.prover")
_mle_module = importlib.import_module("repro.mle.operations")

#: ``(prover_keys, circuits)`` visible to forked workers; set only for the
#: lifetime of a ``batch_witness_commitments`` pool.
_POOL_STATE: tuple[Sequence[ProverKey], Sequence[Circuit]] | None = None

WitnessCommitments = dict[str, tuple[Commitment, MSMStatistics]]


def fork_available() -> bool:
    """Whether a copy-on-write (fork) pool can be used on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def auto_workers() -> int:
    """Default worker count: one per CPU (the ``os.cpu_count()`` gate)."""
    return os.cpu_count() or 1


# -- copy-on-write shared state ------------------------------------------------------

#: Versioned registry of state forked workers inherit copy-on-write.
#: ``key -> (version, value)``; bumping a key's version is what tells a
#: :class:`WorkerPool` its snapshot went stale.
_SHARED: dict[str, tuple[int, object]] = {}
_SHARED_VERSION = 0

#: ``id(point table) -> shared key`` for registered SRS point tables, so MSM
#: shard tasks can name megabytes of curve points by reference instead of
#: pickling them per task.  ``_POINT_REF_COUNTS`` refcounts each key: two
#: engine sessions preloading the same SRS object share one registration,
#: and the fast path survives until the last holder releases it.
_POINT_REFS: dict[int, str] = {}
_POINT_REF_COUNTS: dict[str, int] = {}


def share_state(key: str, value: object) -> None:
    """Publish ``value`` under ``key`` for copy-on-write worker inheritance."""
    global _SHARED_VERSION
    _SHARED_VERSION += 1
    _SHARED[key] = (_SHARED_VERSION, value)


def drop_state(key: str) -> None:
    """Remove a shared entry (forked workers keep their snapshot until refork)."""
    _SHARED.pop(key, None)
    for table_id, ref in list(_POINT_REFS.items()):
        if ref == key:
            del _POINT_REFS[table_id]


def shared_value(key: str) -> object:
    """The current value under ``key`` (parent or fork-inherited copy)."""
    return _SHARED[key][1]


def share_points(key: str, table: Sequence[AffinePoint]) -> str:
    """Register an SRS point table for by-reference MSM shard payloads.

    Returns the canonical shared key: a table already registered (e.g. one
    SRS preloaded into several engines) keeps its first key with a bumped
    refcount instead of being re-published, so no session's ``close()``
    can strand another session's fast path.  Pair every call with
    :func:`release_points` on the returned key.
    """
    existing = _POINT_REFS.get(id(table))
    if existing is not None:
        _POINT_REF_COUNTS[existing] += 1
        return existing
    share_state(key, table)
    _POINT_REFS[id(table)] = key
    _POINT_REF_COUNTS[key] = 1
    return key


def release_points(key: str) -> None:
    """Drop one registration of a shared point table (refcounted)."""
    count = _POINT_REF_COUNTS.get(key)
    if count is None:
        return
    if count > 1:
        _POINT_REF_COUNTS[key] = count - 1
        return
    del _POINT_REF_COUNTS[key]
    drop_state(key)


def point_table_ref(table: Sequence[AffinePoint]) -> str | None:
    """The shared key of a registered point table, if any."""
    return _POINT_REFS.get(id(table))


def _worker_init() -> None:
    """Pool-worker initializer: forked children must never shard further.

    Children inherit the parent's installed shard runners (and their dead
    pool handles) at fork time; pool workers are daemonic and cannot spawn
    pools of their own, so the seams are cleared before any task runs.

    Children also inherit the parent's *signal state*.  When the engine
    lives inside an asyncio process (the serving subsystem), SIGTERM /
    SIGINT carry no-op C-level handlers plus a wakeup fd pointing at the
    parent's event loop — a worker inheriting those shrugs off the SIGTERM
    that ``Pool.terminate()`` sends and the parent's ``join()`` hangs
    forever (observed as a wedged ``repro serve --workers N``).  Restore
    the default SIGTERM disposition (so terminate kills), ignore SIGINT
    (so a Ctrl-C to the process group lets the parent drive the graceful
    drain instead of killing workers mid-batch), and detach the inherited
    wakeup fd.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.set_wakeup_fd(-1)
    _msm_module.set_msm_shard_runner(None)
    _sumcheck_module.set_sumcheck_shard_runner(None)
    _mle_module.set_mle_shard_runner(None)


class WorkerPool:
    """A persistent fork pool with copy-on-write shared-state epochs.

    The pool is cheap to hold and lazy to start: processes are forked on the
    first :meth:`ensure`/:meth:`map` call.  Each fork snapshots the versions
    of every :func:`share_state` entry; a later ``ensure`` whose required
    keys are missing or newer than the snapshot re-forks, giving workers a
    fresh copy-on-write view.  In steady state (same SRS, repeated proofs)
    no refork happens and per-call overhead is just task pickling.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.workers = workers
        self._pool = None
        self._snapshot: dict[str, int] = {}
        self.fork_count = 0

    @property
    def alive(self) -> bool:
        """Whether worker processes are currently running."""
        return self._pool is not None

    def ensure(self, keys: Iterable[str] = ()) -> None:
        """Start the pool if needed; re-fork if any required key is stale."""
        required = {}
        for key in keys:
            if key not in _SHARED:
                raise KeyError(f"shared state {key!r} must be published first")
            required[key] = _SHARED[key][0]
        if self._pool is None or any(
            self._snapshot.get(key) != version for key, version in required.items()
        ):
            self._fork()

    def _fork(self) -> None:
        self.close()
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(processes=self.workers, initializer=_worker_init)
        self._snapshot = {key: version for key, (version, _) in _SHARED.items()}
        self.fork_count += 1

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Run ``fn`` over ``tasks`` in the worker processes (pool must be up)."""
        self.ensure()
        return self._pool.map(fn, tasks)

    def imap(self, fn: Callable, tasks: Sequence) -> list:
        """Work-stealing variant of :meth:`map`: one task per dispatch.

        ``Pool.map`` pre-chunks the task list across workers, so a batch of
        heterogeneous tasks (e.g. whole proofs of different sizes) can
        strand a big chunk behind one slow worker while others idle.
        ``chunksize=1`` makes every worker pull the next pending task the
        moment it finishes — work stealing in all but name.  Results come
        back in task order regardless of completion order.
        """
        self.ensure()
        return list(self._pool.imap(fn, tasks, chunksize=1))

    def imap_iter(self, fn: Callable, tasks: Sequence):
        """Streaming variant of :meth:`imap`: yield results as they finish.

        Completion order, not task order — callers that need task order
        must carry an index inside each task (the sweep runner tags every
        design point with its global plan index for exactly this reason).
        Streaming matters for long sweeps: the consumer can fold each
        result into an online Pareto frontier and report progress while
        later tasks are still running, instead of blocking on the full
        materialized list.
        """
        self.ensure()
        yield from self._pool.imap_unordered(fn, tasks, chunksize=1)

    def close(self) -> None:
        """Terminate the worker processes (the pool may be ensured again later)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._snapshot = {}

    def __del__(self):  # pragma: no cover - GC timing is interpreter-dependent
        try:
            self.close()
        except Exception:
            pass


def _chunk_bounds(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into up to ``chunks`` balanced contiguous ranges."""
    chunks = max(1, min(chunks, total))
    base, extra = divmod(total, chunks)
    bounds = []
    start = 0
    for i in range(chunks):
        end = start + base + (1 if i < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


# -- intra-MSM window sharding --------------------------------------------------------

#: Shared-state key under which one MSM call's scalar values are published
#: for copy-on-write inheritance (bumped per call — an "epoch").
MSM_SCALARS_KEY = "msm/scalars"

#: Smallest scalar count for which publishing the scalars through the
#: shared-state registry beats pickling the list into every window-shard
#: task.  The trade is deliberate and not free: a new epoch means the pool
#: re-forks for that MSM (terminate + fork, and the workers' derived
#: ``_COORDS_CACHE`` starts empty and is rebuilt once per refork), while
#: the by-value path pays a pickle linear in points × shards on *every*
#: call.  The fork side is near-constant (kernel copy-on-write) and the
#: coords rebuild is one cheap O(points) pass, so very large MSMs win by
#: reference and everything below this bar keeps the stable-pool by-value
#: path — the steady-state "no refork" property of repeated proofs only
#: holds below the bar.  Calibrated conservatively for the CPython pickle
#: cost of ~255-bit ints; re-tune on a multi-core host (ROADMAP).
SHARE_SCALARS_MIN_POINTS = 1 << 14

#: Worker-side cache of coordinate lists derived from shared point tables,
#: keyed by shared key.  Populated only inside worker processes; a refork
#: (which is the only way a key's value can change) starts fresh processes
#: with an empty cache, so entries can never go stale.
_COORDS_CACHE: dict[str, list] = {}


def _coords_for_ref(points_ref: str) -> list:
    coords = _COORDS_CACHE.get(points_ref)
    if coords is None:
        table = shared_value(points_ref)
        coords = [None if p.infinity else (p.x, p.y) for p in table]
        _COORDS_CACHE[points_ref] = coords
    return coords


def _msm_shard_task(payload):
    """Worker: window sums for one shard of an MSM's Pippenger windows."""
    (values, coords, points_ref, start, end, window_bits, aggregation,
     group_size) = payload
    if values is None:
        values = shared_value(MSM_SCALARS_KEY)
    if coords is None:
        coords = _coords_for_ref(points_ref)
    stats = MSMStatistics()
    sums = compute_window_sums(
        values, coords, window_bits, start, end, aggregation, group_size, stats
    )
    return [(p.x, p.y, p.z) for p in sums], stats


class MsmShardRunner:
    """Shards Pippenger window ranges of one MSM across a :class:`WorkerPool`.

    Installed via :func:`repro.curves.msm.set_msm_shard_runner` for the
    duration of an engine operation.  ``min_points`` gates small MSMs to
    the serial path (task pickling would dominate); point tables registered
    with :func:`share_points` (the SRS Lagrange tables — every MSM input of
    the HyperPlonk prover) travel by reference and reach workers through
    the fork's copy-on-write memory.
    """

    def __init__(
        self,
        pool: WorkerPool,
        shards: int,
        min_points: int,
        share_scalars_min_points: int = SHARE_SCALARS_MIN_POINTS,
    ):
        self.pool = pool
        self.shards = max(1, shards)
        self.min_points = min_points
        self.share_scalars_min_points = share_scalars_min_points

    def run_windows(
        self,
        values: Sequence[int],
        points: Sequence[AffinePoint],
        coords: Sequence,
        window_bits: int,
        num_windows: int,
        aggregation: str,
        aggregation_group_size: int,
    ):
        shards = min(self.shards, num_windows)
        if shards <= 1:
            return None
        ref = point_table_ref(points)
        required = [ref] if ref is not None else []
        scalars_by_ref = len(values) >= self.share_scalars_min_points
        if scalars_by_ref:
            # One shared-state epoch per MSM call: every shard reads the
            # same inherited list instead of deserializing its own pickle.
            share_state(MSM_SCALARS_KEY, list(values))
            required.append(MSM_SCALARS_KEY)
        try:
            self.pool.ensure(required)
            payloads = [
                (
                    None if scalars_by_ref else list(values),
                    None if ref is not None else list(coords),
                    ref,
                    start,
                    end,
                    window_bits,
                    aggregation,
                    aggregation_group_size,
                )
                for start, end in _chunk_bounds(num_windows, shards)
            ]
            return self.pool.map(_msm_shard_task, payloads)
        finally:
            if scalars_by_ref:
                drop_state(MSM_SCALARS_KEY)


# -- SumCheck term-table sharding -----------------------------------------------------

#: Worker-side cache of reconstructed prime fields, keyed by modulus.
_FIELD_CACHE: dict[int, PrimeField] = {}


def _field_for(modulus: int) -> PrimeField:
    field = _FIELD_CACHE.get(modulus)
    if field is None:
        field = PrimeField(modulus, "Fshard")
        _FIELD_CACHE[modulus] = field
    return field


def _sumcheck_shard_task(payload):
    """Worker: partial round-polynomial evaluations over one hypercube chunk."""
    modulus, degree, mle_chunks, terms = payload
    field = _field_for(modulus)
    halves = [
        (FieldVector.from_ints(field, low), FieldVector.from_ints(field, high))
        for low, high in mle_chunks
    ]
    term_pairs = [(field(coeff), indices) for coeff, indices in terms]
    partials = _sumcheck_module.accumulate_round_evaluations(
        halves, term_pairs, field, degree
    )
    return [int(p) for p in partials]


class SumcheckShardRunner:
    """Shards one SumCheck round's hypercube instances across a pool.

    Installed via :func:`repro.sumcheck.prover.set_sumcheck_shard_runner`.
    The parent splits every unique MLE's even/odd halves into contiguous
    chunks; each worker runs the shared accumulation kernel over its chunk
    and returns the (exact) partial sums, which the parent adds in chunk
    order.  ``min_size`` gates small tables (late rounds fall back to the
    serial path automatically as the tables shrink).
    """

    def __init__(self, pool: WorkerPool, shards: int, min_size: int):
        self.pool = pool
        self.shards = max(1, shards)
        self.min_size = min_size

    def run_round(
        self,
        mle_halves: Sequence[tuple],
        terms: Sequence[tuple],
        field: PrimeField,
        degree: int,
    ) -> list[FieldElement] | None:
        half_len = len(mle_halves[0][0]) if mle_halves else 0
        shards = min(self.shards, half_len)
        if shards <= 1:
            return None
        int_halves = [
            (low.to_int_list(), high.to_int_list()) for low, high in mle_halves
        ]
        term_ints = [(int(coeff), indices) for coeff, indices in terms]
        payloads = [
            (
                field.modulus,
                degree,
                [(low[start:end], high[start:end]) for low, high in int_halves],
                term_ints,
            )
            for start, end in _chunk_bounds(half_len, shards)
        ]
        self.pool.ensure()
        results = self.pool.map(_sumcheck_shard_task, payloads)
        evaluations = []
        for t in range(degree + 1):
            evaluations.append(field(sum(partials[t] for partials in results)))
        return evaluations


# -- wiring-identity / batch-evaluation MLE sharding ----------------------------------


def _mle_chunk(vector: FieldVector, start: int, stop: int):
    """A backend-native chunk payload: ``(backend_name, data)``.

    Shipping the backend's own data object instead of a Python int list is
    what makes MLE sharding viable at all post-compiled-kernel: native
    chunks pickle as flat limb bytes (memcpy speed) and NumPy chunks as
    arrays, where bignum int lists cost ~1us/element each way — more than
    the compiled multiply they would parallelize.
    """
    backend = vector.backend
    return backend.name, backend.slice(vector.field.modulus, vector.data, start, stop)


def _mle_vector(field: PrimeField, chunk) -> FieldVector:
    backend_name, data = chunk
    return FieldVector(field, get_backend(backend_name), data)


def _mle_fraction_task(payload):
    """Worker: one contiguous window-aligned chunk of phi = N / D."""
    modulus, batch_size, num_chunk, den_chunk = payload
    field = _field_for(modulus)
    numerator = _mle_vector(field, num_chunk)
    denominator = _mle_vector(field, den_chunk)
    result = numerator * denominator.inverse(batch_size)
    return result.backend.name, result.data


def _mle_level_task(payload):
    """Worker: pairwise even*odd products over one chunk of a tree level."""
    modulus, chunk = payload
    field = _field_for(modulus)
    even, odd = _mle_vector(field, chunk).even_odd()
    result = even * odd
    return result.backend.name, result.data


def _mle_dots_task(payload):
    """Worker: partial dot products of several MLE chunks with an eq chunk."""
    modulus, eq_chunk, mle_chunks = payload
    field = _field_for(modulus)
    eq_vec = _mle_vector(field, eq_chunk)
    return [int(_mle_vector(field, chunk).dot(eq_vec)) for chunk in mle_chunks]


class MleShardRunner:
    """Shards the remaining serial prover phases across a :class:`WorkerPool`.

    Installed via :func:`repro.mle.operations.set_mle_shard_runner` for the
    duration of an engine operation; covers the wiring identity's Fraction
    MLE (batched inversion) and Product MLE (per-level pairwise products)
    construction plus the Batch Evaluations dot products — the phases the
    PR 3 sharding left serial (ROADMAP carried item).  Every recombination
    is exact: inverse values are unique regardless of chunking, level
    products are disjoint by construction, and partial dot sums recombine
    by field addition — so proofs stay byte-identical at every worker
    count.

    Gating: ``min_size`` is the floor below which nothing shards (the
    engine installs ``EngineConfig.parallel_min_sumcheck_size``), and each
    phase applies a measured multiplier on top.  The compiled field kernel
    moved these crossovers substantially (4 workers, 24-core dev host;
    see README "Field backends"):

    * Fraction MLE stays pow-bound (~3-5us/element batch inversion on
      every backend), so sharding pays from ~16k elements everywhere —
      measured 2.4x at 64k on the native backend.
    * Level products are one multiply per output element: sharding beats
      the pure-Python floor from ~16k (1.5x at 64k) but can never catch
      the compiled kernel (~87ns/multiply vs ~1us/element of payload
      transfer), so it engages only for python-backend tables.
    * Batch-evaluation dots ship one chunk per polynomial plus the eq
      chunk for one multiply-add each — payload-bound at every measured
      size on every backend, so the default gate sits beyond prover
      scales and the serial path stays the measured optimum.

    Lowering ``parallel_min_sumcheck_size`` scales all gates down
    proportionally, which is also how tests force sharding on tiny
    tables.
    """

    #: Phase gates as multiples of ``min_size`` (defaults: 4096 * these).
    FRACTION_FACTOR = 4  # pow-bound: measured crossover ~16k elements
    LEVEL_FACTOR = 4  # mul-bound: ~16k crossover, python backend only
    DOTS_FACTOR = 256  # payload-bound at every measured size

    def __init__(self, pool: WorkerPool, shards: int, min_size: int):
        self.pool = pool
        self.shards = max(1, shards)
        self.min_size = min_size

    def run_fraction(
        self,
        numerator: FieldVector,
        denominator: FieldVector,
        batch_size: int,
        field: PrimeField,
    ) -> FieldVector | None:
        total = len(numerator)
        # Chunk on inversion-window boundaries so each worker runs the same
        # windowed kernel the serial path would over its slice.
        windows = -(-total // batch_size)
        shards = min(self.shards, windows)
        if shards <= 1 or total < self.min_size * self.FRACTION_FACTOR:
            return None
        payloads = []
        for w_start, w_end in _chunk_bounds(windows, shards):
            start, end = w_start * batch_size, min(w_end * batch_size, total)
            payloads.append(
                (
                    field.modulus,
                    batch_size,
                    _mle_chunk(numerator, start, end),
                    _mle_chunk(denominator, start, end),
                )
            )
        self.pool.ensure()
        parts = self.pool.map(_mle_fraction_task, payloads)
        return FieldVector.concat_many(
            field, [_mle_vector(field, part) for part in parts]
        )

    def run_level_product(
        self, current: FieldVector, field: PrimeField
    ) -> FieldVector | None:
        half = len(current) // 2
        shards = min(self.shards, half)
        if (
            shards <= 1
            or len(current) < self.min_size * self.LEVEL_FACTOR
            or current.backend.name != "python"
        ):
            return None
        payloads = [
            (field.modulus, _mle_chunk(current, 2 * start, 2 * end))
            for start, end in _chunk_bounds(half, shards)
        ]
        self.pool.ensure()
        parts = self.pool.map(_mle_level_task, payloads)
        return FieldVector.concat_many(
            field, [_mle_vector(field, part) for part in parts]
        )

    def run_dots(
        self,
        vectors: Sequence[FieldVector],
        eq_vec: FieldVector,
        field: PrimeField,
    ) -> list[FieldElement] | None:
        total = len(eq_vec)
        shards = min(self.shards, total)
        if shards <= 1 or not vectors or total < self.min_size * self.DOTS_FACTOR:
            return None
        payloads = [
            (
                field.modulus,
                _mle_chunk(eq_vec, start, end),
                [_mle_chunk(v, start, end) for v in vectors],
            )
            for start, end in _chunk_bounds(total, shards)
        ]
        self.pool.ensure()
        parts = self.pool.map(_mle_dots_task, payloads)
        return [
            field(sum(part[i] for part in parts)) for i in range(len(vectors))
        ]


# -- process-per-proof pipeline -------------------------------------------------------

#: Shared-state key under which a ``prove_many`` batch is published.
BATCH_STATE_KEY = "prove_many/batch"


def _batch_proof_task(index: int):
    """Worker: run the full prover for one proof of the published batch."""
    config, jobs = shared_value(BATCH_STATE_KEY)
    pk, circuit, collect = jobs[index]
    with config.apply():
        start = time.perf_counter()
        result = _prove(
            pk,
            circuit=circuit,
            transcript=Transcript(label=config.transcript_label),
            collect_trace=collect,
        )
        prove_seconds = time.perf_counter() - start
    proof, trace = result if collect else (result, None)
    return serialize_proof(proof), trace, prove_seconds


def run_batch_proofs(
    pool: WorkerPool,
    config,
    jobs: Sequence[tuple[object, Circuit, bool]],
) -> list[tuple[bytes, object, float]]:
    """Prove a batch with one forked worker per proof (whole-proof sharding).

    ``jobs`` is a list of ``(proving_key, circuit, collect_trace)``.  The
    batch is published through the copy-on-write registry (proving keys and
    witness tables are never pickled); workers return ``(proof_bytes,
    trace, prove_seconds)`` per proof, in request order.  Each worker runs
    the identical serial prover against a fresh transcript, so proof bytes
    match the in-line path exactly.

    Dispatch is work-stealing (:meth:`WorkerPool.imap`): at ``batch >
    workers`` with heterogeneous proof sizes, a freed worker immediately
    picks up the next proof instead of idling behind a static round-robin
    assignment — the service batcher's mixed-scenario batches are exactly
    that shape.
    """
    share_state(BATCH_STATE_KEY, (config, list(jobs)))
    try:
        pool.ensure([BATCH_STATE_KEY])
        return pool.imap(_batch_proof_task, list(range(len(jobs))))
    finally:
        drop_state(BATCH_STATE_KEY)


# -- batched witness commitments (PR 2 path, kept as the fallback) --------------------


def _commit_one(
    prover_key: ProverKey, circuit: Circuit, name: str
) -> tuple[Commitment, MSMStatistics]:
    stats = MSMStatistics()
    commitment = commit(prover_key, circuit.witnesses[name], sparse=True, stats=stats)
    return commitment, stats


def _pool_task(task: tuple[int, int, str]):
    circuit_index, key_index, name = task
    assert _POOL_STATE is not None
    prover_keys, circuits = _POOL_STATE
    commitment, stats = _commit_one(prover_keys[key_index], circuits[circuit_index], name)
    point = commitment.point
    return circuit_index, name, (point.x, point.y, point.infinity), stats


def batch_witness_commitments(
    prover_keys: Sequence[ProverKey],
    circuits: Sequence[Circuit],
    key_indices: Sequence[int],
    workers: int,
) -> list[WitnessCommitments]:
    """Witness commitments for every circuit in a batch.

    Parameters
    ----------
    prover_keys:
        Distinct PCS prover keys used by the batch (typically one per size).
    circuits:
        The circuits to commit; ``key_indices[i]`` names the prover key for
        ``circuits[i]``.
    workers:
        Process count.  ``<= 1`` — or a platform without ``fork`` — runs
        the exact serial path the in-line prover would.
    """
    if len(circuits) != len(key_indices):
        raise ValueError("circuits and key_indices must have equal length")
    results: list[WitnessCommitments] = [{} for _ in circuits]

    workers = min(workers, len(circuits) * len(WITNESS_POLY_NAMES))
    if workers <= 1 or not fork_available():
        for index, circuit in enumerate(circuits):
            key = prover_keys[key_indices[index]]
            for name in WITNESS_POLY_NAMES:
                results[index][name] = _commit_one(key, circuit, name)
        return results

    tasks = [
        (circuit_index, key_indices[circuit_index], name)
        for circuit_index in range(len(circuits))
        for name in WITNESS_POLY_NAMES
    ]
    global _POOL_STATE
    _POOL_STATE = (prover_keys, circuits)
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers, initializer=_worker_init) as pool:
            for circuit_index, name, (x, y, infinity), stats in pool.map(
                _pool_task, tasks
            ):
                results[circuit_index][name] = (
                    Commitment(AffinePoint(x, y, infinity)),
                    stats,
                )
    finally:
        _POOL_STATE = None
    return results
