"""Multiprocessing witness-commit MSMs (the sharded-prover down-payment).

The three witness commitments of every proof in a batch are independent
sparse MSMs — embarrassingly parallel work the ROADMAP earmarks for a
fork-based shard backend.  :func:`batch_witness_commitments` computes them
for a whole ``prove_many`` batch, fanning out over a ``multiprocessing``
pool when the config asks for more than one worker and falling back to the
serial in-line path otherwise (or when the platform cannot fork).

Only the task *indices* cross the process boundary: workers are forked
after a module-level global is pointed at the proving keys and witness
tables, so the SRS (megabytes of curve points at interesting sizes) is
inherited by copy-on-write instead of being pickled per task.  Results
travel back as plain ``(x, y, infinity)`` integer tuples plus the
:class:`MSMStatistics` the trace needs.  Both paths produce identical
commitments — the parallel path only reorders *which process* runs each
MSM, not the arithmetic — so proof bytes are unaffected.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

from repro.circuits.builder import Circuit
from repro.curves.curve import AffinePoint
from repro.curves.msm import MSMStatistics
from repro.pcs.multilinear_kzg import Commitment, commit
from repro.pcs.srs import ProverKey
from repro.protocol.keys import WITNESS_POLY_NAMES

#: ``(prover_keys, circuits)`` visible to forked workers; set only for the
#: lifetime of the pool.
_POOL_STATE: tuple[Sequence[ProverKey], Sequence[Circuit]] | None = None

WitnessCommitments = dict[str, tuple[Commitment, MSMStatistics]]


def fork_available() -> bool:
    """Whether a copy-on-write (fork) pool can be used on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _commit_one(
    prover_key: ProverKey, circuit: Circuit, name: str
) -> tuple[Commitment, MSMStatistics]:
    stats = MSMStatistics()
    commitment = commit(prover_key, circuit.witnesses[name], sparse=True, stats=stats)
    return commitment, stats


def _pool_task(task: tuple[int, int, str]):
    circuit_index, key_index, name = task
    assert _POOL_STATE is not None
    prover_keys, circuits = _POOL_STATE
    commitment, stats = _commit_one(prover_keys[key_index], circuits[circuit_index], name)
    point = commitment.point
    return circuit_index, name, (point.x, point.y, point.infinity), stats


def batch_witness_commitments(
    prover_keys: Sequence[ProverKey],
    circuits: Sequence[Circuit],
    key_indices: Sequence[int],
    workers: int,
) -> list[WitnessCommitments]:
    """Witness commitments for every circuit in a batch.

    Parameters
    ----------
    prover_keys:
        Distinct PCS prover keys used by the batch (typically one per size).
    circuits:
        The circuits to commit; ``key_indices[i]`` names the prover key for
        ``circuits[i]``.
    workers:
        Process count.  ``<= 1`` — or a platform without ``fork`` — runs
        the exact serial path the in-line prover would.
    """
    if len(circuits) != len(key_indices):
        raise ValueError("circuits and key_indices must have equal length")
    results: list[WitnessCommitments] = [{} for _ in circuits]

    workers = min(workers, len(circuits) * len(WITNESS_POLY_NAMES))
    if workers <= 1 or not fork_available():
        for index, circuit in enumerate(circuits):
            key = prover_keys[key_indices[index]]
            for name in WITNESS_POLY_NAMES:
                results[index][name] = _commit_one(key, circuit, name)
        return results

    tasks = [
        (circuit_index, key_indices[circuit_index], name)
        for circuit_index in range(len(circuits))
        for name in WITNESS_POLY_NAMES
    ]
    global _POOL_STATE
    _POOL_STATE = (prover_keys, circuits)
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            for circuit_index, name, (x, y, infinity), stats in pool.map(
                _pool_task, tasks
            ):
                results[circuit_index][name] = (
                    Commitment(AffinePoint(x, y, infinity)),
                    stats,
                )
    finally:
        _POOL_STATE = None
    return results


def auto_workers() -> int:
    """Default worker count: one per CPU (the ``os.cpu_count()`` gate)."""
    return os.cpu_count() or 1
