"""The public session API: one configurable way into the whole stack.

``repro.api`` replaces the paper-shaped free-function surface
(``repro.pcs.setup`` + ``repro.protocol.preprocess/prove/verify`` and the
hand-wired CLI/examples) with a single façade:

>>> from repro.api import ProverEngine, EngineConfig
>>> engine = ProverEngine(EngineConfig(field_backend="auto"))
>>> artifact = engine.prove(scenario="zcash", num_vars=6)
>>> assert engine.verify(artifact)
>>> report = engine.simulate(scenario="zcash")        # zkSpeed chip model
>>> explorer, points = engine.explore(scenario="zcash")

Sessions cache the universal SRS by size and circuit keys by structure
fingerprint, so repeated proofs amortize setup (optionally to disk via
``EngineConfig.srs_cache_dir``).  With ``EngineConfig(workers=N)`` a
session shards work across a persistent fork pool: Pippenger MSM windows
and SumCheck round term-tables within one ``prove()``, whole proofs across
a ``prove_many()`` batch — proof bytes identical at every worker count
(see :mod:`repro.api.parallel`).  The old module-level entry points warned
as :class:`DeprecationWarning` shims for two PRs and have been removed;
the implementation modules (``repro.pcs.srs``, ``repro.protocol.prover``
...) remain the low-level surface.  For serving proofs over HTTP, see
:mod:`repro.service`.
"""

from repro.api.artifacts import CacheStats, ProofArtifact
from repro.api.config import EngineConfig, FIELD_BACKEND_POLICIES
from repro.api.engine import ProverEngine
from repro.api.scenarios import (
    Scenario,
    available_scenarios,
    register_scenario,
    resolve_scenario,
)

__all__ = [
    "CacheStats",
    "EngineConfig",
    "FIELD_BACKEND_POLICIES",
    "ProofArtifact",
    "ProverEngine",
    "Scenario",
    "available_scenarios",
    "register_scenario",
    "resolve_scenario",
]
