"""Unified scenario registry: one name drives prover *and* chip model.

Before this module the functional prover and the zkSpeed architectural
model shared no workload naming: ``repro.circuits.WORKLOADS`` mapped Table 3
names to circuit generators while ``WorkloadModel.paper_table3()`` kept its
own parallel list of display names and sizes.  A :class:`Scenario` binds
both views together so ``engine.prove(scenario="zcash")`` and
``engine.simulate(scenario="zcash")`` are guaranteed to describe the same
workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits.builder import Circuit
from repro.circuits.constraint_workloads import CONSTRAINT_WORKLOADS
from repro.circuits.workloads import WORKLOADS, mock_circuit
from repro.core.workload_model import WorkloadModel


@dataclass(frozen=True)
class Scenario:
    """A named workload usable by both the prover and the chip model."""

    name: str
    title: str
    description: str
    paper_log_size: int
    default_log_size: int
    builder: Callable[[int, int], Circuit]
    #: Which engine verbs accept this scenario.  Every registered scenario
    #: today supports both; the field exists so the wire layer can reject a
    #: simulate request for a future prove-only scenario (or vice versa)
    #: with a 400 instead of a mid-shard failure.
    capabilities: tuple[str, ...] = ("prove", "simulate")

    def build_circuit(self, num_vars: int | None = None, seed: int = 0) -> Circuit:
        """Build a functional circuit instance (laptop-scale by default)."""
        return self.builder(
            self.default_log_size if num_vars is None else num_vars, seed
        )

    def workload_model(
        self,
        num_vars: int | None = None,
        circuit: Circuit | None = None,
    ) -> WorkloadModel:
        """The architectural-model view of this scenario.

        With a ``circuit``, the sparsity statistics are measured from its
        actual witness; otherwise the paper's pessimistic 10/45/45 split is
        used at ``num_vars`` (default: the published Table 3 size).
        """
        if circuit is not None:
            model = WorkloadModel.from_circuit(circuit, name=self.title)
            if num_vars is not None and num_vars != model.num_vars:
                model = WorkloadModel(
                    num_vars=num_vars,
                    dense_fraction=model.dense_fraction,
                    one_fraction=model.one_fraction,
                    zero_fraction=model.zero_fraction,
                    name=self.title,
                )
            return model
        return WorkloadModel(
            num_vars=self.paper_log_size if num_vars is None else num_vars,
            name=self.title,
        )


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> None:
    """Register (or replace) a scenario under ``scenario.name``."""
    _REGISTRY[scenario.name] = scenario


def available_scenarios() -> list[str]:
    """Names of all registered scenarios."""
    return sorted(_REGISTRY)


def resolve_scenario(name: str) -> Scenario:
    """Look up a scenario by name (raises ``KeyError`` with guidance)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; "
            f"available: {', '.join(available_scenarios())}"
        ) from None


register_scenario(
    Scenario(
        name="mock",
        title="Mock circuit",
        description="Random satisfiable circuit with HyperPlonk's mock-workload "
        "sparsity statistics",
        paper_log_size=20,
        default_log_size=5,
        builder=lambda num_vars, seed: mock_circuit(num_vars, seed=seed),
    )
)

for _key, _spec in WORKLOADS.items():
    register_scenario(
        Scenario(
            name=_key,
            title=_spec.name,
            description=_spec.description,
            paper_log_size=_spec.paper_log_size,
            default_log_size=6,
            builder=_spec.generator,
        )
    )

# Constraint-system workloads: custom gates and lookup arguments.  The chip
# model does not yet cost the lookup/custom-gate prover steps, so these are
# prove-only -- a simulate request gets a capability 400 at the wire layer.
_CONSTRAINT_TITLES = {
    "range_check": ("Range checks", "Batched 2-bit range gates plus nibble lookups"),
    "sha3_round": ("SHA3 chi rows", "Keccak chi steps via the degree-4 custom gate"),
    "merkle_path": ("Merkle path", "Path traversal with looked-up direction bits"),
    "stack_machine": ("Stack machine", "Toy VM with lookup-constrained opcodes"),
}

for _key, _builder in CONSTRAINT_WORKLOADS.items():
    _title, _description = _CONSTRAINT_TITLES[_key]
    register_scenario(
        Scenario(
            name=_key,
            title=_title,
            description=_description,
            paper_log_size=20,
            default_log_size=5,
            builder=_builder,
            capabilities=("prove",),
        )
    )
