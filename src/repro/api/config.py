"""Engine configuration: every cross-cutting knob in one place.

PR 1 made performance configuration a cross-cutting concern — field-vector
backends (``REPRO_FIELD_BACKEND``), MSM window sizes, sparse-witness
strategies — with no single home.  :class:`EngineConfig` is that home: an
immutable dataclass consumed by :class:`repro.api.ProverEngine`, applied to
the process-wide seams (backend registry, MSM defaults) only for the
duration of an engine operation and restored afterwards, so two engines
with different configs can coexist in one process.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from dataclasses import dataclass, replace
from typing import Iterator

from repro.curves.msm import SPARSE_SMALL_SCALAR_MAX, msm_defaults, set_msm_defaults
from repro.fields.backends import available_backends, default_policy, set_default_backend

#: Policies accepted by ``field_backend`` ("auto" resolves per vector size).
FIELD_BACKEND_POLICIES = ("auto", "python", "numpy", "native")


@dataclass(frozen=True)
class EngineConfig:
    """All knobs of a :class:`~repro.api.engine.ProverEngine` session.

    Attributes
    ----------
    field_backend:
        Field-vector backend policy: ``"auto"`` (size-based selection),
        ``"python"``, ``"numpy"`` or ``"native"`` (the compiled cffi
        Montgomery kernel, when built).  A requested-but-unavailable
        backend degrades to the default policy with a warning, mirroring
        how a direct ``REPRO_FIELD_BACKEND`` request behaves.
    msm_window_bits:
        Fixed Pippenger window size for every MSM, or ``None`` for the
        built-in per-MSM cost model.  Performance-only: proof bytes do not
        depend on it.
    sparse_witness_msm:
        Whether sparse-classified commitments — the witness commits in the
        prover and the selector commits in preprocessing — take the
        Sparse-MSM path (skip zeros, tree-sum ones — Section 3.3.1) or
        plain Pippenger.  Performance-only.
    sparse_small_scalar_max:
        Largest scalar finished by the Sparse-MSM small-bucket flow (one
        PADD tree per value 2..max plus a short double-and-add) instead of
        the full Pippenger path.  ``<= 1`` disables the small buckets.
        Performance-only.
    workers:
        Worker-process count for the sharded prover.  With ``workers > 1``
        (and a fork-capable platform) a single
        :meth:`~repro.api.engine.ProverEngine.prove` shards Pippenger MSM
        windows and SumCheck round term-tables across a persistent
        per-session fork pool, and
        :meth:`~repro.api.engine.ProverEngine.prove_many` shards whole
        proofs (one forked worker per proof).  ``workers <= 1`` runs
        serially; ``0`` means "one per CPU" (``os.cpu_count()``-gated).
        Proof bytes are identical at every worker count.
    parallel_min_msm_points:
        Smallest MSM (point count) worth sharding across workers; smaller
        MSMs — e.g. the late, shrinking quotient MSMs of the opening step —
        run serially because task pickling would dominate.
    parallel_min_sumcheck_size:
        Smallest SumCheck table (full hypercube size) worth sharding; late
        rounds fall back to the serial path as the tables shrink below it.
    srs_cache_dir:
        Directory for the disk-backed SRS cache, or ``None`` to disable.
        Deterministic setups (``srs_seed``) are stored by
        ``(num_vars, seed, keep_trapdoor)`` so forked and restarted
        processes skip the multi-second trusted setup.
    transcript_label:
        Fiat-Shamir domain-separation tag.  Proofs made under one label
        never verify under another; the default matches the historical
        free-function path byte for byte.
    srs_seed:
        Seed for the toxic-waste RNG of the universal setup.
    srs_source:
        Path to a powers-of-tau ceremony file, or ``None`` (default) for
        the seeded synthetic setup.  When set, the engine derives its SRS
        via :func:`repro.pcs.srs.setup_from_ptau`: the file is parsed and
        group-checked, and its canonical bytes seed the multilinear
        trapdoor (see the honest-scope note in :mod:`repro.pcs.srs`).
        Ceremony-derived SRSs use ``srs_cache_dir`` keyed by file digest.
    keep_trapdoor:
        Retain the SRS trapdoor to enable the fast pairing-free
        verification path (tests / development).  Production would set
        False.
    collect_trace:
        Collect a :class:`~repro.protocol.proof.ProverTrace` with per-step
        operation statistics on every prove.
    """

    field_backend: str = "auto"
    msm_window_bits: int | None = None
    sparse_witness_msm: bool = True
    sparse_small_scalar_max: int = SPARSE_SMALL_SCALAR_MAX
    workers: int = 1
    parallel_min_msm_points: int = 2048
    parallel_min_sumcheck_size: int = 4096
    srs_cache_dir: str | None = None
    transcript_label: bytes = b"hyperplonk"
    srs_seed: int = 0
    srs_source: str | None = None
    keep_trapdoor: bool = True
    collect_trace: bool = False

    def __post_init__(self) -> None:
        if self.field_backend not in FIELD_BACKEND_POLICIES:
            raise ValueError(
                f"unknown field backend policy {self.field_backend!r}; "
                f"expected one of {', '.join(FIELD_BACKEND_POLICIES)}"
            )
        if self.msm_window_bits is not None and not 1 <= self.msm_window_bits <= 31:
            raise ValueError("msm_window_bits must be in 1..31 (or None for auto)")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means one per CPU)")
        if self.parallel_min_msm_points < 1:
            raise ValueError("parallel_min_msm_points must be >= 1")
        if self.parallel_min_sumcheck_size < 1:
            raise ValueError("parallel_min_sumcheck_size must be >= 1")
        if not isinstance(self.transcript_label, bytes):
            raise ValueError("transcript_label must be bytes")

    @classmethod
    def from_env(cls, **overrides) -> "EngineConfig":
        """Build a config from ``REPRO_*`` environment variables.

        Recognized: ``REPRO_FIELD_BACKEND``, ``REPRO_WORKERS``,
        ``REPRO_SRS_CACHE_DIR`` and ``REPRO_SRS_SOURCE``.  Keyword
        overrides win over the environment.
        """
        env: dict = {}
        backend = os.environ.get("REPRO_FIELD_BACKEND")
        if backend in FIELD_BACKEND_POLICIES:
            env["field_backend"] = backend
        raw_workers = os.environ.get("REPRO_WORKERS", "")
        try:
            env["workers"] = int(raw_workers)
        except ValueError:
            pass
        cache_dir = os.environ.get("REPRO_SRS_CACHE_DIR")
        if cache_dir:
            env["srs_cache_dir"] = cache_dir
        srs_source = os.environ.get("REPRO_SRS_SOURCE")
        if srs_source:
            env["srs_source"] = srs_source
        env.update(overrides)
        return cls(**env)

    def with_options(self, **changes) -> "EngineConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)

    def effective_workers(self) -> int:
        """Resolve ``workers`` against the machine (``0`` -> CPU count)."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers

    @contextlib.contextmanager
    def apply(self) -> Iterator[None]:
        """Install this config's process-wide seams, restoring them on exit.

        Covers the field-vector backend policy and the MSM defaults.  Heavy
        engine operations run inside this context so vectors, MSMs and
        transcripts all see one consistent configuration.
        """
        previous_policy = default_policy()
        previous_msm = msm_defaults()
        try:
            try:
                set_default_backend(
                    None if self.field_backend == "auto" else self.field_backend
                )
            except KeyError:
                warnings.warn(
                    f"field backend {self.field_backend!r} is unavailable "
                    f"(installed: {', '.join(available_backends())}); "
                    f"falling back to the default policy",
                    RuntimeWarning,
                    stacklevel=3,
                )
                set_default_backend(None)
            set_msm_defaults(
                window_bits=self.msm_window_bits,
                sparse_witness=self.sparse_witness_msm,
                small_scalar_max=self.sparse_small_scalar_max,
            )
            yield
        finally:
            try:
                set_default_backend(
                    None if previous_policy == "auto" else previous_policy
                )
            except KeyError:
                # The previous policy came from an env var naming a backend
                # that is not installed; fall back to resolution-time policy.
                set_default_backend(None)
            set_msm_defaults(*previous_msm)
