"""The HyperPlonk verifier.

The verifier replays the Fiat-Shamir transcript, checks each ZeroCheck /
SumCheck reduction, evaluates the gate and wiring constraints at the reduced
points using the prover's claimed openings, checks the grand-product value,
and finally validates every claimed opening with a single batched
multilinear-KZG opening check.
"""

from __future__ import annotations

from repro.fields.field import FieldElement
from repro.mle.mle import eq_eval
from repro.circuits.gates import resolve_custom_gate
from repro.circuits.lookups import lookup_fold
from repro.circuits.permutation import identity_permutation_eval
from repro.pcs.multilinear_kzg import Commitment, combine_commitments, verify_opening
from repro.protocol.common import (
    challenge_powers,
    claim_schedule_for,
    point_names_for,
    query_points,
)
from repro.protocol.keys import (
    VerifyingKey,
    WITNESS_POLY_NAMES,
    committed_poly_names_for,
)
from repro.protocol.proof import HyperPlonkProof
from repro.sumcheck.verifier import SumcheckVerificationError, verify_sumcheck
from repro.sumcheck.zerocheck import verify_zerocheck
from repro.transcript.transcript import Transcript


class VerificationError(Exception):
    """Raised when a proof fails verification."""


def _absorb_verifying_material(transcript: Transcript, vk: VerifyingKey) -> None:
    transcript.absorb_int(b"num_vars", vk.num_vars)
    if not vk.spec.is_vanilla:
        transcript.absorb_bytes(b"constraint_spec", vk.spec.encode())
    for name, commitment in sorted(vk.preprocessed_commitments.items()):
        transcript.absorb_point(b"preprocessed/" + name.encode(), commitment.point)


def verify(
    vk: VerifyingKey,
    proof: HyperPlonkProof,
    transcript: Transcript | None = None,
    use_pairing: bool | None = None,
) -> bool:
    """Verify a HyperPlonk proof.

    Raises :class:`VerificationError` describing the first failed check;
    returns True when every check passes.
    """
    transcript = transcript if transcript is not None else Transcript()
    num_vars = vk.num_vars
    if proof.num_vars != num_vars:
        raise VerificationError("proof and verifying key disagree on problem size")
    spec = vk.spec
    if proof.spec != spec:
        raise VerificationError(
            "proof and verifying key disagree on the constraint system "
            f"(proof: {proof.spec.encode().decode()}, key: {spec.encode().decode()})"
        )
    field = proof.batch_opening_value.field

    _absorb_verifying_material(transcript, vk)

    # ---- Step 1: witness commitments -------------------------------------------
    for name in WITNESS_POLY_NAMES:
        if name not in proof.witness_commitments:
            raise VerificationError(f"missing witness commitment {name}")
        transcript.absorb_point(
            b"witness/" + name.encode(), proof.witness_commitments[name].point
        )

    # ---- Step 2: Gate Identity ZeroCheck -----------------------------------------
    try:
        gate_verdict = verify_zerocheck(
            proof.gate_zerocheck, num_vars, transcript, label=b"gate_identity"
        )
    except SumcheckVerificationError as exc:
        raise VerificationError(f"gate identity ZeroCheck failed: {exc}") from exc
    gate_point = gate_verdict.sumcheck_challenges

    # ---- Step 3: Wiring Identity -----------------------------------------------------
    beta = transcript.challenge_field(b"perm/beta")
    gamma = transcript.challenge_field(b"perm/gamma")
    transcript.absorb_point(b"perm/phi", proof.phi_commitment.point)
    transcript.absorb_point(b"perm/pi", proof.pi_commitment.point)
    alpha = transcript.challenge_field(b"perm/alpha")
    try:
        perm_verdict = verify_zerocheck(
            proof.perm_zerocheck, num_vars, transcript, label=b"wire_identity"
        )
    except SumcheckVerificationError as exc:
        raise VerificationError(f"wiring identity ZeroCheck failed: {exc}") from exc
    perm_point = perm_verdict.sumcheck_challenges

    # ---- Step 3b: Lookup argument (logUp), extended circuits only ------------------
    lookup_point = None
    lookup_sum_point = None
    lookup_verdict = None
    lookup_sum_verdict = None
    lam = x = None
    if spec.lookup:
        if (
            proof.lookup_commitments is None
            or proof.lookup_zerocheck is None
            or proof.lookup_sumcheck is None
        ):
            raise VerificationError("lookup circuit proof is missing its lookup parts")
        for name in ("lk_m", "lk_h"):
            if name not in proof.lookup_commitments:
                raise VerificationError(f"missing lookup commitment {name}")
        transcript.absorb_point(b"lookup/m", proof.lookup_commitments["lk_m"].point)
        lam = transcript.challenge_field(b"lookup/lambda")
        x = transcript.challenge_field(b"lookup/x")
        transcript.absorb_point(b"lookup/h", proof.lookup_commitments["lk_h"].point)
        try:
            lookup_verdict = verify_zerocheck(
                proof.lookup_zerocheck, num_vars, transcript, label=b"lookup_identity"
            )
        except SumcheckVerificationError as exc:
            raise VerificationError(f"lookup ZeroCheck failed: {exc}") from exc
        lookup_point = lookup_verdict.sumcheck_challenges
        # The multiset check: h must sum to exactly zero over the hypercube.
        if not proof.lookup_sumcheck.claimed_sum.is_zero():
            raise VerificationError("lookup fraction polynomial does not sum to zero")
        try:
            lookup_sum_verdict = verify_sumcheck(
                proof.lookup_sumcheck, transcript, label=b"lookup_sum"
            )
        except SumcheckVerificationError as exc:
            raise VerificationError(f"lookup SumCheck failed: {exc}") from exc
        lookup_sum_point = lookup_sum_verdict.challenges

    # ---- Step 4: Batch Evaluation claims ----------------------------------------------
    claim_schedule = claim_schedule_for(spec)
    point_names = point_names_for(spec)
    committed_names = committed_poly_names_for(spec)
    points = query_points(
        num_vars,
        gate_point,
        perm_point,
        field,
        lookup_point=lookup_point,
        lookup_sum_point=lookup_sum_point,
    )
    claims: dict[tuple[str, str], FieldElement] = {}
    if len(proof.evaluation_claims) != len(claim_schedule):
        raise VerificationError("unexpected number of evaluation claims")
    for claim, (poly_name, point_name) in zip(proof.evaluation_claims, claim_schedule):
        if (claim.poly, claim.point) != (poly_name, point_name):
            raise VerificationError("evaluation claims are out of schedule order")
        claims[(poly_name, point_name)] = claim.value
        transcript.absorb_field(
            b"claim/" + poly_name.encode() + b"@" + point_name.encode(), claim.value
        )

    # Gate identity: eq(a, r) * F_gate(r) must equal the ZeroCheck's final claim.
    gate_constraint = (
        claims[("q_l", "gate")] * claims[("w1", "gate")]
        + claims[("q_r", "gate")] * claims[("w2", "gate")]
        + claims[("q_m", "gate")] * claims[("w1", "gate")] * claims[("w2", "gate")]
        - claims[("q_o", "gate")] * claims[("w3", "gate")]
        + claims[("q_c", "gate")]
    )
    # Custom gates fold into the same identity: q_<name>(r) * G_<name>(w(r)).
    for gate_name in spec.custom_gates:
        defn = resolve_custom_gate(gate_name)
        gate_constraint = gate_constraint + claims[
            (defn.selector_name, "gate")
        ] * defn.evaluate(
            claims[("w1", "gate")], claims[("w2", "gate")], claims[("w3", "gate")]
        )
    if gate_verdict.final_claim != gate_verdict.eq_at_point * gate_constraint:
        raise VerificationError("gate identity constraint does not hold at the challenge point")

    # Wiring identity: reconstruct p1, p2, N_i, D_i at the challenge point.
    r_last = perm_point[-1]
    one = field.one()
    p1_at_r = (one - r_last) * claims[("phi", "perm_even")] + r_last * claims[
        ("pi", "perm_even")
    ]
    p2_at_r = (one - r_last) * claims[("phi", "perm_odd")] + r_last * claims[
        ("pi", "perm_odd")
    ]
    numerator_product = one
    denominator_product = one
    for column, witness_name in enumerate(WITNESS_POLY_NAMES):
        w_at_r = claims[(witness_name, "perm")]
        sigma_at_r = claims[(f"sigma_{column + 1}", "perm")]
        id_at_r = identity_permutation_eval(column, perm_point, field)
        numerator_product = numerator_product * (w_at_r + beta * id_at_r + gamma)
        denominator_product = denominator_product * (w_at_r + beta * sigma_at_r + gamma)
    perm_constraint = (
        claims[("pi", "perm")]
        - p1_at_r * p2_at_r
        + alpha * (claims[("phi", "perm")] * denominator_product - numerator_product)
    )
    if perm_verdict.final_claim != perm_verdict.eq_at_point * perm_constraint:
        raise VerificationError("wiring identity constraint does not hold at the challenge point")

    # Grand product: pi at the product point must equal one.
    if not claims[("pi", "product")].is_one():
        raise VerificationError("grand product of the fraction polynomial is not one")

    # Lookup well-formedness:  h*A*B - q_lookup*B + m*A  at the challenge point.
    if spec.lookup:
        a_at_r = lookup_fold(
            claims[("w1", "lookup")], claims[("lk_qtid", "lookup")], x, lam
        )
        b_at_r = lookup_fold(
            claims[("lk_table", "lookup")], claims[("lk_tid", "lookup")], x, lam
        )
        lookup_constraint = (
            claims[("lk_h", "lookup")] * a_at_r * b_at_r
            - claims[("q_lookup", "lookup")] * b_at_r
            + claims[("lk_m", "lookup")] * a_at_r
        )
        if lookup_verdict.final_claim != lookup_verdict.eq_at_point * lookup_constraint:
            raise VerificationError(
                "lookup well-formedness constraint does not hold at the challenge point"
            )
        if lookup_sum_verdict.final_claim != claims[("lk_h", "lookup_sum")]:
            raise VerificationError(
                "lookup SumCheck final evaluation does not match the claimed opening"
            )

    # ---- Step 5: OpenCheck and the batched opening --------------------------------------
    eta = transcript.challenge_field(b"open/eta")
    weights = challenge_powers(eta, len(claim_schedule))
    expected_sum = field.zero()
    for weight, (poly_name, point_name) in zip(weights, claim_schedule):
        expected_sum = expected_sum + weight * claims[(poly_name, point_name)]
    if proof.opencheck.claimed_sum != expected_sum:
        raise VerificationError("OpenCheck claimed sum does not match the batched claims")
    try:
        open_verdict = verify_sumcheck(proof.opencheck, transcript, label=b"opencheck")
    except SumcheckVerificationError as exc:
        raise VerificationError(f"OpenCheck failed: {exc}") from exc
    open_point = open_verdict.challenges

    # Claimed evaluations at the OpenCheck point.
    for name in committed_names:
        if name not in proof.opening_evaluations:
            raise VerificationError(f"missing opening evaluation for {name}")
    for name in sorted(proof.opening_evaluations):
        transcript.absorb_field(
            b"open/eval/" + name.encode(), proof.opening_evaluations[name]
        )

    # Per-point linear-combination values y_j(r_open) from the claimed evaluations.
    y_at_open: dict[str, FieldElement] = {name: field.zero() for name in point_names}
    for weight, (poly_name, point_name) in zip(weights, claim_schedule):
        y_at_open[point_name] = (
            y_at_open[point_name] + weight * proof.opening_evaluations[poly_name]
        )
    expected_final = field.zero()
    for point_name in point_names:
        expected_final = expected_final + y_at_open[point_name] * eq_eval(
            points[point_name], open_point, field
        )
    if open_verdict.final_claim != expected_final:
        raise VerificationError("OpenCheck final evaluation does not match the claimed openings")

    # The combined polynomial g' = sum_j zeta^j y_j: commitment and value.
    zeta = transcript.challenge_field(b"open/zeta")
    zeta_powers = challenge_powers(zeta, len(point_names))
    poly_coefficients: dict[str, FieldElement] = {
        name: field.zero() for name in committed_names
    }
    for weight, (poly_name, point_name) in zip(weights, claim_schedule):
        point_index = point_names.index(point_name)
        poly_coefficients[poly_name] = (
            poly_coefficients[poly_name] + zeta_powers[point_index] * weight
        )

    all_commitments: dict[str, Commitment] = {
        **vk.preprocessed_commitments,
        **proof.witness_commitments,
        "phi": proof.phi_commitment,
        "pi": proof.pi_commitment,
        **(proof.lookup_commitments or {}),
    }
    names = list(committed_names)
    g_prime_commitment = combine_commitments(
        [all_commitments[name] for name in names],
        [poly_coefficients[name] for name in names],
    )
    expected_value = field.zero()
    for name in names:
        expected_value = (
            expected_value + poly_coefficients[name] * proof.opening_evaluations[name]
        )
    if proof.batch_opening_value != expected_value:
        raise VerificationError("batched opening value is inconsistent with the claimed evaluations")
    if not verify_opening(
        vk.pcs,
        g_prime_commitment,
        open_point,
        expected_value,
        proof.batch_opening,
        use_pairing=use_pairing,
    ):
        raise VerificationError("batched multilinear-KZG opening failed to verify")
    return True
