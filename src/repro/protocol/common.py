"""Shared prover/verifier protocol schedule.

The prover and verifier must agree exactly on (a) which polynomials are
opened at which points during Batch Evaluation and (b) the order in which
claims are absorbed into the transcript and weighted by the batching
challenges.  Both sides import the schedule from this module.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.bls12_381 import Fr
from repro.fields.field import FieldElement, PrimeField

#: Names of the query points used by Batch Evaluation, in canonical order.
POINT_NAMES = ("gate", "perm", "perm_even", "perm_odd", "product")

#: The (polynomial, point) pairs claimed during Batch Evaluation, in the
#: canonical order in which they are absorbed and weighted.  22 evaluations
#: among 13 polynomials (Section 3.3.4 quotes 22 evaluations / 13
#: polynomials / 6 distinct points; our formulation of the product check
#: needs 21 claims at 5 distinct points -- the last point of the paper's set
#: is folded into the OpenCheck's own challenge point).
CLAIM_SCHEDULE: tuple[tuple[str, str], ...] = (
    # Gate Identity openings.
    ("q_l", "gate"),
    ("q_r", "gate"),
    ("q_m", "gate"),
    ("q_o", "gate"),
    ("q_c", "gate"),
    ("w1", "gate"),
    ("w2", "gate"),
    ("w3", "gate"),
    # Wiring Identity openings.
    ("w1", "perm"),
    ("w2", "perm"),
    ("w3", "perm"),
    ("sigma_1", "perm"),
    ("sigma_2", "perm"),
    ("sigma_3", "perm"),
    ("phi", "perm"),
    ("pi", "perm"),
    # p1/p2 reconstruction points.
    ("phi", "perm_even"),
    ("pi", "perm_even"),
    ("phi", "perm_odd"),
    ("pi", "perm_odd"),
    # Total-product check.
    ("pi", "product"),
)


def query_points(
    num_vars: int,
    gate_point: Sequence[FieldElement],
    perm_point: Sequence[FieldElement],
    field: PrimeField = Fr,
) -> dict[str, list[FieldElement]]:
    """Construct the Batch Evaluation query points from the ZeroCheck points.

    * ``gate``      -- the Gate Identity SumCheck point.
    * ``perm``      -- the Wiring Identity SumCheck point r.
    * ``perm_even`` -- (0, r_1, ..., r_{mu-1}): needed to reconstruct p1(r).
    * ``perm_odd``  -- (1, r_1, ..., r_{mu-1}): needed to reconstruct p2(r).
    * ``product``   -- (0, 1, 1, ..., 1): where pi holds the total product.
    """
    if len(gate_point) != num_vars or len(perm_point) != num_vars:
        raise ValueError("query points must have num_vars coordinates")
    zero = field.zero()
    one = field.one()
    return {
        "gate": list(gate_point),
        "perm": list(perm_point),
        "perm_even": [zero] + list(perm_point[:-1]),
        "perm_odd": [one] + list(perm_point[:-1]),
        "product": [zero] + [one] * (num_vars - 1),
    }


def challenge_powers(base: FieldElement, count: int) -> list[FieldElement]:
    """[1, base, base^2, ..., base^(count-1)] -- batching weights."""
    field = base.field
    powers = [field.one()]
    for _ in range(count - 1):
        powers.append(powers[-1] * base)
    return powers
