"""Shared prover/verifier protocol schedule.

The prover and verifier must agree exactly on (a) which polynomials are
opened at which points during Batch Evaluation and (b) the order in which
claims are absorbed into the transcript and weighted by the batching
challenges.  Both sides import the schedule from this module.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.gates import VANILLA_SPEC, ConstraintSpec
from repro.fields.bls12_381 import Fr
from repro.fields.field import FieldElement, PrimeField

#: Names of the query points used by Batch Evaluation, in canonical order.
#: Vanilla-circuit schedule; extended circuits use :func:`point_names_for`.
POINT_NAMES = ("gate", "perm", "perm_even", "perm_odd", "product")

#: The lookup claims appended to the schedule when a circuit carries a
#: logUp argument: the well-formedness ZeroCheck point ("lookup") needs
#: every column of  h*A*B - q_lookup*B + m*A  plus w1, and the plain
#: SumCheck of h ("lookup_sum") needs h alone.
LOOKUP_CLAIM_SCHEDULE: tuple[tuple[str, str], ...] = (
    ("w1", "lookup"),
    ("lk_qtid", "lookup"),
    ("q_lookup", "lookup"),
    ("lk_table", "lookup"),
    ("lk_tid", "lookup"),
    ("lk_m", "lookup"),
    ("lk_h", "lookup"),
    ("lk_h", "lookup_sum"),
)

#: The (polynomial, point) pairs claimed during Batch Evaluation, in the
#: canonical order in which they are absorbed and weighted.  22 evaluations
#: among 13 polynomials (Section 3.3.4 quotes 22 evaluations / 13
#: polynomials / 6 distinct points; our formulation of the product check
#: needs 21 claims at 5 distinct points -- the last point of the paper's set
#: is folded into the OpenCheck's own challenge point).
CLAIM_SCHEDULE: tuple[tuple[str, str], ...] = (
    # Gate Identity openings.
    ("q_l", "gate"),
    ("q_r", "gate"),
    ("q_m", "gate"),
    ("q_o", "gate"),
    ("q_c", "gate"),
    ("w1", "gate"),
    ("w2", "gate"),
    ("w3", "gate"),
    # Wiring Identity openings.
    ("w1", "perm"),
    ("w2", "perm"),
    ("w3", "perm"),
    ("sigma_1", "perm"),
    ("sigma_2", "perm"),
    ("sigma_3", "perm"),
    ("phi", "perm"),
    ("pi", "perm"),
    # p1/p2 reconstruction points.
    ("phi", "perm_even"),
    ("pi", "perm_even"),
    ("phi", "perm_odd"),
    ("pi", "perm_odd"),
    # Total-product check.
    ("pi", "product"),
)


def point_names_for(spec: ConstraintSpec = VANILLA_SPEC) -> tuple[str, ...]:
    """The query-point names a circuit with this spec uses, in order."""
    if spec.lookup:
        return POINT_NAMES + ("lookup", "lookup_sum")
    return POINT_NAMES


def claim_schedule_for(
    spec: ConstraintSpec = VANILLA_SPEC,
) -> tuple[tuple[str, str], ...]:
    """The (polynomial, point) claim schedule for a circuit with this spec.

    Strictly additive over :data:`CLAIM_SCHEDULE`: the vanilla prefix is
    unchanged (so vanilla proofs keep their exact transcripts and wire
    bytes), followed by each custom-gate selector opened at the gate
    point, followed by the lookup claims when a lookup is present.
    """
    schedule = CLAIM_SCHEDULE
    if spec.custom_gates:
        schedule = schedule + tuple(
            (name, "gate") for name in spec.selector_names()
        )
    if spec.lookup:
        schedule = schedule + LOOKUP_CLAIM_SCHEDULE
    return schedule


def query_points(
    num_vars: int,
    gate_point: Sequence[FieldElement],
    perm_point: Sequence[FieldElement],
    field: PrimeField = Fr,
    lookup_point: Sequence[FieldElement] | None = None,
    lookup_sum_point: Sequence[FieldElement] | None = None,
) -> dict[str, list[FieldElement]]:
    """Construct the Batch Evaluation query points from the ZeroCheck points.

    * ``gate``      -- the Gate Identity SumCheck point.
    * ``perm``      -- the Wiring Identity SumCheck point r.
    * ``perm_even`` -- (0, r_1, ..., r_{mu-1}): needed to reconstruct p1(r).
    * ``perm_odd``  -- (1, r_1, ..., r_{mu-1}): needed to reconstruct p2(r).
    * ``product``   -- (0, 1, 1, ..., 1): where pi holds the total product.

    Lookup circuits add two more (present only when supplied):

    * ``lookup``     -- the lookup well-formedness ZeroCheck point.
    * ``lookup_sum`` -- the  sum(h) = 0  SumCheck point.
    """
    if len(gate_point) != num_vars or len(perm_point) != num_vars:
        raise ValueError("query points must have num_vars coordinates")
    zero = field.zero()
    one = field.one()
    points = {
        "gate": list(gate_point),
        "perm": list(perm_point),
        "perm_even": [zero] + list(perm_point[:-1]),
        "perm_odd": [one] + list(perm_point[:-1]),
        "product": [zero] + [one] * (num_vars - 1),
    }
    if lookup_point is not None:
        if len(lookup_point) != num_vars or len(lookup_sum_point or ()) != num_vars:
            raise ValueError("lookup query points must have num_vars coordinates")
        points["lookup"] = list(lookup_point)
        points["lookup_sum"] = list(lookup_sum_point)
    return points


def challenge_powers(base: FieldElement, count: int) -> list[FieldElement]:
    """[1, base, base^2, ..., base^(count-1)] -- batching weights."""
    field = base.field
    powers = [field.one()]
    for _ in range(count - 1):
        powers.append(powers[-1] * base)
    return powers
