"""Proof serialization.

HyperPlonk's selling point over Orion-style provers is its small proof
(~5 KB, Table 4), so the exact wire format matters.  This module serializes
proofs to a compact binary format (compressed G1 points, fixed-width field
elements, varint-free fixed layout) and back, and is the ground truth for
``HyperPlonkProof.size_bytes`` style estimates.

Format (big-endian):

* header: magic ``b"HPLK"``, version byte, ``num_vars`` byte
* commitments: w1, w2, w3, phi, pi as 48-byte compressed G1 points
* each SumCheck proof: claimed sum, round count, degree, then the round
  evaluations (32-byte field elements)
* evaluation claims and opening evaluations in canonical schedule order
  (values only -- the schedule itself is public)
* the batch-opening value and quotient commitments

Vanilla circuits serialize as version 1 -- byte-for-byte the historical
format.  Circuits with custom gates or a lookup argument serialize as
version 2, which adds after ``num_vars``: a flags byte (bit 0 = lookup),
a custom-gate count and the length-prefixed UTF-8 gate names; the lookup
commitments (lk_m, lk_h) follow pi, the lookup ZeroCheck/SumCheck follow
the wiring ZeroCheck, and the claim / opening-evaluation sections use the
spec's extended schedules.
"""

from __future__ import annotations

import struct

from repro.circuits.gates import ConstraintSpec, resolve_custom_gate
from repro.curves.curve import AffinePoint
from repro.fields.bls12_381 import FQ_MODULUS, Fr
from repro.pcs.multilinear_kzg import Commitment, OpeningProof
from repro.protocol.common import claim_schedule_for
from repro.protocol.keys import WITNESS_POLY_NAMES, committed_poly_names_for
from repro.protocol.proof import EvaluationClaim, HyperPlonkProof
from repro.sumcheck.prover import SumcheckProof, SumcheckRound
from repro.sumcheck.zerocheck import ZerocheckProof

MAGIC = b"HPLK"
VERSION = 1
EXTENDED_VERSION = 2
FIELD_BYTES = 32
G1_BYTES = 48
_LOOKUP_FLAG = 0b0000_0001


class SerializationError(ValueError):
    """Raised when a proof cannot be (de)serialized."""


# -- G1 point compression --------------------------------------------------------


def compress_g1(point: AffinePoint) -> bytes:
    """Compress an affine G1 point to 48 bytes (x with flag bits, as in ZCash).

    Bit 7 of the first byte marks compression, bit 6 marks infinity, bit 5
    carries the sign (lexicographically larger y).
    """
    if point.is_identity():
        flags = 0b1100_0000
        return bytes([flags]) + bytes(G1_BYTES - 1)
    x_bytes = point.x.to_bytes(G1_BYTES, "big")
    y_is_large = point.y > (FQ_MODULUS - point.y) % FQ_MODULUS
    first = x_bytes[0] | 0b1000_0000 | (0b0010_0000 if y_is_large else 0)
    return bytes([first]) + x_bytes[1:]


def decompress_g1(data: bytes) -> AffinePoint:
    """Inverse of :func:`compress_g1`."""
    if len(data) != G1_BYTES:
        raise SerializationError(f"expected {G1_BYTES} bytes for a G1 point")
    flags = data[0]
    if not flags & 0b1000_0000:
        raise SerializationError("uncompressed G1 encoding is not supported")
    if flags & 0b0100_0000:
        return AffinePoint.identity()
    x = int.from_bytes(bytes([flags & 0b0001_1111]) + data[1:], "big")
    # Recover y from the curve equation y^2 = x^3 + 4.
    rhs = (pow(x, 3, FQ_MODULUS) + 4) % FQ_MODULUS
    y = pow(rhs, (FQ_MODULUS + 1) // 4, FQ_MODULUS)
    if (y * y) % FQ_MODULUS != rhs:
        raise SerializationError("point is not on the curve")
    y_is_large = bool(flags & 0b0010_0000)
    if (y > (FQ_MODULUS - y) % FQ_MODULUS) != y_is_large:
        y = (FQ_MODULUS - y) % FQ_MODULUS
    point = AffinePoint(x, y)
    if not point.is_on_curve():
        raise SerializationError("decompressed point is not on the curve")
    return point


# -- field elements and sumcheck proofs ---------------------------------------------


def _write_field(value) -> bytes:
    return value.to_bytes()


def _read_field(data: bytes, offset: int) -> tuple:
    return Fr.from_bytes(data[offset : offset + FIELD_BYTES]), offset + FIELD_BYTES


def _write_sumcheck(proof: SumcheckProof) -> bytes:
    out = bytearray()
    out += struct.pack(">BBB", proof.num_vars, proof.max_degree, len(proof.rounds))
    out += _write_field(proof.claimed_sum)
    for round_message in proof.rounds:
        if len(round_message.evaluations) != proof.max_degree + 1:
            raise SerializationError("round message has inconsistent length")
        for value in round_message.evaluations:
            out += _write_field(value)
    return bytes(out)


def _read_sumcheck(data: bytes, offset: int) -> tuple[SumcheckProof, int]:
    num_vars, max_degree, num_rounds = struct.unpack_from(">BBB", data, offset)
    offset += 3
    claimed_sum, offset = _read_field(data, offset)
    rounds = []
    for _ in range(num_rounds):
        evaluations = []
        for _ in range(max_degree + 1):
            value, offset = _read_field(data, offset)
            evaluations.append(value)
        rounds.append(SumcheckRound(evaluations))
    return (
        SumcheckProof(
            claimed_sum=claimed_sum,
            rounds=rounds,
            num_vars=num_vars,
            max_degree=max_degree,
        ),
        offset,
    )


# -- top-level proof ------------------------------------------------------------------


def serialize_proof(proof: HyperPlonkProof) -> bytes:
    """Serialize a proof to its compact binary wire format.

    Vanilla proofs keep the exact version-1 byte layout; extended proofs
    (custom gates / lookup) use version 2.
    """
    spec = proof.spec
    out = bytearray()
    out += MAGIC
    if spec.is_vanilla:
        out += struct.pack(">BB", VERSION, proof.num_vars)
    else:
        out += struct.pack(">BB", EXTENDED_VERSION, proof.num_vars)
        flags = _LOOKUP_FLAG if spec.lookup else 0
        out += struct.pack(">BB", flags, len(spec.custom_gates))
        for name in spec.custom_gates:
            encoded = name.encode("utf-8")
            if len(encoded) > 255:
                raise SerializationError(f"custom gate name too long: {name!r}")
            out += struct.pack(">B", len(encoded)) + encoded
    for name in WITNESS_POLY_NAMES:
        out += compress_g1(proof.witness_commitments[name].point)
    out += compress_g1(proof.phi_commitment.point)
    out += compress_g1(proof.pi_commitment.point)
    if spec.lookup:
        if proof.lookup_commitments is None:
            raise SerializationError("lookup proof is missing its lookup commitments")
        for name in ("lk_m", "lk_h"):
            out += compress_g1(proof.lookup_commitments[name].point)
    out += _write_sumcheck(proof.gate_zerocheck.sumcheck)
    out += _write_sumcheck(proof.perm_zerocheck.sumcheck)
    if spec.lookup:
        if proof.lookup_zerocheck is None or proof.lookup_sumcheck is None:
            raise SerializationError("lookup proof is missing its lookup checks")
        out += _write_sumcheck(proof.lookup_zerocheck.sumcheck)
        out += _write_sumcheck(proof.lookup_sumcheck)
    claim_schedule = claim_schedule_for(spec)
    if len(proof.evaluation_claims) != len(claim_schedule):
        raise SerializationError("unexpected number of evaluation claims")
    for claim in proof.evaluation_claims:
        out += _write_field(claim.value)
    out += _write_sumcheck(proof.opencheck)
    for name in committed_poly_names_for(spec):
        out += _write_field(proof.opening_evaluations[name])
    out += _write_field(proof.batch_opening_value)
    out += struct.pack(">B", len(proof.batch_opening.quotients))
    for quotient in proof.batch_opening.quotients:
        out += compress_g1(quotient)
    return bytes(out)


def deserialize_proof(data: bytes) -> HyperPlonkProof:
    """Parse a proof from its binary wire format (versions 1 and 2)."""
    if data[:4] != MAGIC:
        raise SerializationError("bad magic bytes")
    version, num_vars = struct.unpack_from(">BB", data, 4)
    if version not in (VERSION, EXTENDED_VERSION):
        raise SerializationError(f"unsupported proof version {version}")
    offset = 6

    spec = ConstraintSpec()
    if version == EXTENDED_VERSION:
        flags, num_gates = struct.unpack_from(">BB", data, offset)
        offset += 2
        if flags & ~_LOOKUP_FLAG:
            raise SerializationError(f"unknown proof flags 0x{flags:02x}")
        gate_names = []
        for _ in range(num_gates):
            (length,) = struct.unpack_from(">B", data, offset)
            offset += 1
            name = data[offset : offset + length].decode("utf-8")
            offset += length
            try:
                resolve_custom_gate(name)
            except KeyError as exc:
                raise SerializationError(str(exc)) from exc
            gate_names.append(name)
        spec = ConstraintSpec(
            custom_gates=tuple(gate_names), lookup=bool(flags & _LOOKUP_FLAG)
        )
        if spec.is_vanilla:
            raise SerializationError("version-2 proof carries a vanilla spec")

    def read_point(off: int) -> tuple[AffinePoint, int]:
        return decompress_g1(data[off : off + G1_BYTES]), off + G1_BYTES

    witness_commitments = {}
    for name in WITNESS_POLY_NAMES:
        point, offset = read_point(offset)
        witness_commitments[name] = Commitment(point)
    phi_point, offset = read_point(offset)
    pi_point, offset = read_point(offset)

    lookup_commitments = None
    if spec.lookup:
        lookup_commitments = {}
        for name in ("lk_m", "lk_h"):
            point, offset = read_point(offset)
            lookup_commitments[name] = Commitment(point)

    gate_sumcheck, offset = _read_sumcheck(data, offset)
    perm_sumcheck, offset = _read_sumcheck(data, offset)

    lookup_zerocheck = None
    lookup_sumcheck = None
    if spec.lookup:
        lookup_zc_sumcheck, offset = _read_sumcheck(data, offset)
        lookup_zerocheck = ZerocheckProof(sumcheck=lookup_zc_sumcheck)
        lookup_sumcheck, offset = _read_sumcheck(data, offset)

    claims = []
    for poly_name, point_name in claim_schedule_for(spec):
        value, offset = _read_field(data, offset)
        claims.append(EvaluationClaim(poly_name, point_name, value))

    opencheck, offset = _read_sumcheck(data, offset)

    opening_evaluations = {}
    for name in committed_poly_names_for(spec):
        value, offset = _read_field(data, offset)
        opening_evaluations[name] = value

    batch_opening_value, offset = _read_field(data, offset)
    (num_quotients,) = struct.unpack_from(">B", data, offset)
    offset += 1
    quotients = []
    for _ in range(num_quotients):
        point, offset = read_point(offset)
        quotients.append(point)
    if offset != len(data):
        raise SerializationError("trailing bytes after proof")

    return HyperPlonkProof(
        num_vars=num_vars,
        witness_commitments=witness_commitments,
        phi_commitment=Commitment(phi_point),
        pi_commitment=Commitment(pi_point),
        gate_zerocheck=ZerocheckProof(sumcheck=gate_sumcheck),
        perm_zerocheck=ZerocheckProof(sumcheck=perm_sumcheck),
        evaluation_claims=claims,
        opencheck=opencheck,
        opening_evaluations=opening_evaluations,
        batch_opening=OpeningProof(quotients=quotients),
        batch_opening_value=batch_opening_value,
        spec=spec,
        lookup_commitments=lookup_commitments,
        lookup_zerocheck=lookup_zerocheck,
        lookup_sumcheck=lookup_sumcheck,
    )


def proof_size_bytes(proof: HyperPlonkProof) -> int:
    """Exact serialized size of a proof."""
    return len(serialize_proof(proof))
