"""The HyperPlonk prover.

The prover executes the protocol steps in the order shown in Figure 2 of the
paper (SHA3 transcript updates enforce this order):

1. Witness Commits          -- sparse MSMs over w1, w2, w3.
2. Gate Identity            -- Build MLE + ZeroCheck over Equation (3).
3. Wiring Identity          -- Construct N&D, Fraction MLE, Product MLE,
                               two MSMs, ZeroCheck over Equation (4).
4. Batch Evaluations        -- MLE Evaluate of 13 polynomials at 5 points.
5. Polynomial Opening       -- MLE Combine, OpenCheck (Equation (5)), and a
                               batched multilinear-KZG opening whose quotient
                               MSMs halve in size every round.

A :class:`~repro.protocol.proof.ProverTrace` records per-step operation
statistics for the architectural model.

Every compute-dominant kernel below runs through a shardable seam: the
MSMs (witness commits, wiring commits, opening quotients) consult
:func:`repro.curves.msm.msm_shard_runner` and the SumCheck rounds consult
:func:`repro.sumcheck.prover.sumcheck_shard_runner`.  When
``EngineConfig.workers > 1`` installs runners for the duration of a prove,
those kernels fan out across a process pool and recombine exactly — the
transcript sees identical bytes, so this module needs no parallel-specific
logic of its own.
"""

from __future__ import annotations

import time

from repro.circuits.builder import Circuit
from repro.circuits.gates import resolve_custom_gate
from repro.circuits.lookups import compute_multiplicities
from repro.curves.msm import MSMStatistics
from repro.fields.field import FieldElement
from repro.mle.mle import MultilinearPolynomial, eq_mle
from repro.mle.operations import (
    batch_evaluate,
    construct_numerator_denominator,
    elementwise_product,
    fraction_mle,
    linear_combine,
    prod_check_halves,
    product_tree_mle,
)
from repro.mle.virtual_poly import VirtualPolynomial
from repro.pcs.multilinear_kzg import commit, open_at_point
from repro.protocol.common import (
    challenge_powers,
    claim_schedule_for,
    point_names_for,
    query_points,
)
from repro.protocol.keys import ProvingKey, WITNESS_POLY_NAMES
from repro.protocol.proof import EvaluationClaim, HyperPlonkProof, ProverTrace
from repro.sumcheck.prover import prove_sumcheck
from repro.sumcheck.zerocheck import prove_zerocheck
from repro.transcript.transcript import Transcript


def _absorb_verifying_material(transcript: Transcript, pk: ProvingKey) -> None:
    transcript.absorb_int(b"num_vars", pk.num_vars)
    # The gate-identity description is transcript material for extended
    # circuits; vanilla circuits absorb nothing extra, keeping their
    # historical transcripts (and proof bytes) intact.
    if not pk.spec.is_vanilla:
        transcript.absorb_bytes(b"constraint_spec", pk.spec.encode())
    for name, commitment in sorted(pk.preprocessed_commitments.items()):
        transcript.absorb_point(b"preprocessed/" + name.encode(), commitment.point)


def _gate_constraint_polynomial(
    selectors: dict[str, MultilinearPolynomial],
    witnesses: dict[str, MultilinearPolynomial],
    num_vars: int,
    custom_selectors: dict[str, MultilinearPolynomial] | None = None,
) -> VirtualPolynomial:
    """Equation (3) without the eq factor (ZeroCheck adds it).

    Custom gates fold into the same ZeroCheck: each monomial of a gate's
    constraint becomes one product term  q_<name> * w1^e1 * w2^e2 * w3^e3,
    raising the round-polynomial degree (the barycentric interpolation in
    the SumCheck verifier handles arbitrary degree).
    """
    field = witnesses["w1"].field
    poly = VirtualPolynomial(num_vars, field)
    poly.add_product([selectors["q_l"], witnesses["w1"]])
    poly.add_product([selectors["q_r"], witnesses["w2"]])
    poly.add_product([selectors["q_m"], witnesses["w1"], witnesses["w2"]])
    poly.add_product([selectors["q_o"], witnesses["w3"]], field(-1))
    poly.add_product([selectors["q_c"]])
    wires = (witnesses["w1"], witnesses["w2"], witnesses["w3"])
    for name in sorted(custom_selectors or {}):
        defn = resolve_custom_gate(name)
        selector = custom_selectors[name]
        for coefficient, exponents in defn.monomials:
            factors = [selector]
            for wire, exponent in zip(wires, exponents):
                factors.extend([wire] * exponent)
            poly.add_product(factors, field(coefficient))
    return poly


def _perm_constraint_polynomial(
    pi: MultilinearPolynomial,
    p1: MultilinearPolynomial,
    p2: MultilinearPolynomial,
    phi: MultilinearPolynomial,
    numerators: list[MultilinearPolynomial],
    denominators: list[MultilinearPolynomial],
    alpha: FieldElement,
    num_vars: int,
) -> VirtualPolynomial:
    """Equation (4) without the eq factor."""
    field = pi.field
    poly = VirtualPolynomial(num_vars, field)
    poly.add_product([pi])
    poly.add_product([p1, p2], field(-1))
    poly.add_product([phi] + denominators, alpha)
    poly.add_product(numerators, -alpha)
    return poly


def prove(
    pk: ProvingKey,
    circuit: Circuit | None = None,
    transcript: Transcript | None = None,
    collect_trace: bool = False,
    precomputed_witness_commitments: (
        dict[str, tuple["Commitment", MSMStatistics]] | None
    ) = None,
) -> HyperPlonkProof | tuple[HyperPlonkProof, ProverTrace]:
    """Generate a HyperPlonk proof for the witness carried by ``circuit``.

    Parameters
    ----------
    circuit:
        Circuit with witness assignments.  Defaults to the circuit embedded
        in the proving key (whose witness was fixed at build time).
    collect_trace:
        When True, also return a :class:`ProverTrace` with per-step
        operation statistics for the architectural model.
    precomputed_witness_commitments:
        Optional ``{name: (commitment, msm_stats)}`` for the witness
        polynomials, e.g. computed ahead of time by a worker pool (see
        :mod:`repro.api.parallel`).  Must be the exact commitments of the
        witnesses in ``circuit``; the proof bytes are identical to the
        in-line path because the same points enter the transcript.
    """
    circuit = circuit if circuit is not None else pk.circuit
    if circuit.num_vars != pk.num_vars:
        raise ValueError("circuit size does not match the proving key")
    transcript = transcript if transcript is not None else Transcript()
    field = circuit.witnesses["w1"].field
    num_vars = pk.num_vars
    spec = pk.spec
    trace = ProverTrace(num_vars=num_vars)

    _absorb_verifying_material(transcript, pk)

    selectors = {name: circuit.selectors[name] for name in circuit.selectors}
    witnesses = {name: circuit.witnesses[name] for name in circuit.witnesses}
    sigmas = circuit.sigmas
    identities = circuit.identities

    # ---- Step 1: Witness Commits (Sparse MSMs) --------------------------------
    step = trace.step("witness_commits")
    start = time.perf_counter()
    witness_commitments = {}
    for name in WITNESS_POLY_NAMES:
        if precomputed_witness_commitments is not None:
            witness_commitments[name], stats = precomputed_witness_commitments[name]
        else:
            stats = MSMStatistics()
            witness_commitments[name] = commit(
                pk.pcs, witnesses[name], sparse=True, stats=stats
            )
        step.msm_stats.append(stats)
        transcript.absorb_point(b"witness/" + name.encode(), witness_commitments[name].point)
    step.wall_time_seconds = time.perf_counter() - start

    # ---- Step 2: Gate Identity (ZeroCheck) -------------------------------------
    step = trace.step("gate_identity")
    start = time.perf_counter()
    gate_poly = _gate_constraint_polynomial(
        selectors, witnesses, num_vars, circuit.custom_selectors
    )
    gate_output = prove_zerocheck(gate_poly, transcript, label=b"gate_identity")
    gate_point = gate_output.sumcheck_challenges
    step.sumcheck_rounds = num_vars
    step.wall_time_seconds = time.perf_counter() - start

    # ---- Step 3: Wiring Identity (PermCheck) -------------------------------------
    step = trace.step("wire_identity")
    start = time.perf_counter()
    beta = transcript.challenge_field(b"perm/beta")
    gamma = transcript.challenge_field(b"perm/gamma")
    witness_list = [witnesses[name] for name in WITNESS_POLY_NAMES]
    numerators, denominators = construct_numerator_denominator(
        witness_list, identities, sigmas, beta, gamma
    )
    numerator = elementwise_product(numerators)
    denominator = elementwise_product(denominators)
    phi = fraction_mle(numerator, denominator)
    step.modular_inversions = 1 << num_vars
    pi = product_tree_mle(phi)
    p1, p2 = prod_check_halves(phi, pi)

    phi_stats = MSMStatistics()
    pi_stats = MSMStatistics()
    phi_commitment = commit(pk.pcs, phi, stats=phi_stats)
    pi_commitment = commit(pk.pcs, pi, stats=pi_stats)
    step.msm_stats.extend([phi_stats, pi_stats])
    transcript.absorb_point(b"perm/phi", phi_commitment.point)
    transcript.absorb_point(b"perm/pi", pi_commitment.point)

    alpha = transcript.challenge_field(b"perm/alpha")
    perm_poly = _perm_constraint_polynomial(
        pi, p1, p2, phi, numerators, denominators, alpha, num_vars
    )
    perm_output = prove_zerocheck(perm_poly, transcript, label=b"wire_identity")
    perm_point = perm_output.sumcheck_challenges
    step.sumcheck_rounds = num_vars
    step.wall_time_seconds = time.perf_counter() - start

    # ---- Step 3b: Lookup argument (logUp), extended circuits only ------------------
    lookup_commitments: dict[str, "Commitment"] | None = None
    lookup_zc_output = None
    lookup_sc_output = None
    lookup_point: list[FieldElement] | None = None
    lookup_sum_point: list[FieldElement] | None = None
    lookup_polys: dict[str, MultilinearPolynomial] = {}
    if spec.lookup:
        step = trace.step("lookup")
        start = time.perf_counter()
        cols = circuit.lookup_columns
        m_values = compute_multiplicities(
            witnesses["w1"].evaluations.to_int_list(),
            cols["q_lookup"].evaluations.to_int_list(),
            cols["lk_qtid"].evaluations.to_int_list(),
            cols["lk_table"].evaluations.to_int_list(),
            cols["lk_tid"].evaluations.to_int_list(),
        )
        lk_m = MultilinearPolynomial.from_ints(num_vars, m_values, field)
        m_stats = MSMStatistics()
        lk_m_commitment = commit(pk.pcs, lk_m, sparse=True, stats=m_stats)
        step.msm_stats.append(m_stats)
        transcript.absorb_point(b"lookup/m", lk_m_commitment.point)
        lam = transcript.challenge_field(b"lookup/lambda")
        x = transcript.challenge_field(b"lookup/x")
        a_vec = (
            witnesses["w1"].evaluations.axpy(lam, cols["lk_qtid"].evaluations)
        ).add_scalar(x)
        b_vec = (
            cols["lk_table"].evaluations.axpy(lam, cols["lk_tid"].evaluations)
        ).add_scalar(x)
        a_mle = MultilinearPolynomial.from_vector(num_vars, a_vec, field)
        b_mle = MultilinearPolynomial.from_vector(num_vars, b_vec, field)
        # h = q_lookup/A - m/B = (q_lookup*B - m*A)/(A*B): one Fraction-MLE
        # pass, i.e. a single Montgomery batch inversion over the hypercube,
        # sharded exactly like the wiring identity's phi.
        lk_h = fraction_mle(
            MultilinearPolynomial.from_vector(
                num_vars,
                cols["q_lookup"].evaluations * b_vec - lk_m.evaluations * a_vec,
                field,
            ),
            MultilinearPolynomial.from_vector(num_vars, a_vec * b_vec, field),
        )
        step.modular_inversions = 1 << num_vars
        h_stats = MSMStatistics()
        lk_h_commitment = commit(pk.pcs, lk_h, stats=h_stats)
        step.msm_stats.append(h_stats)
        transcript.absorb_point(b"lookup/h", lk_h_commitment.point)

        # Well-formedness: h*A*B - q_lookup*B + m*A = 0 on the hypercube.
        lookup_poly = VirtualPolynomial(num_vars, field)
        lookup_poly.add_product([lk_h, a_mle, b_mle])
        lookup_poly.add_product([cols["q_lookup"], b_mle], field(-1))
        lookup_poly.add_product([lk_m, a_mle])
        lookup_zc_output = prove_zerocheck(
            lookup_poly, transcript, label=b"lookup_identity"
        )
        lookup_point = lookup_zc_output.sumcheck_challenges
        # Multiset equality: sum of h over the hypercube is zero.
        sum_poly = VirtualPolynomial(num_vars, field)
        sum_poly.add_product([lk_h])
        lookup_sc_output = prove_sumcheck(
            sum_poly, transcript, claimed_sum=field.zero(), label=b"lookup_sum"
        )
        lookup_sum_point = lookup_sc_output.challenges
        step.sumcheck_rounds = 2 * num_vars
        lookup_commitments = {"lk_m": lk_m_commitment, "lk_h": lk_h_commitment}
        lookup_polys = {**cols, "lk_m": lk_m, "lk_h": lk_h}
        step.wall_time_seconds = time.perf_counter() - start

    # ---- Step 4: Batch Evaluations -------------------------------------------------
    step = trace.step("batch_evaluations")
    start = time.perf_counter()
    committed_polys: dict[str, MultilinearPolynomial] = {
        **{name: selectors[name] for name in ("q_l", "q_r", "q_m", "q_o", "q_c")},
        **{f"sigma_{i}": sigma for i, sigma in enumerate(sigmas, start=1)},
        **{name: witnesses[name] for name in WITNESS_POLY_NAMES},
        "phi": phi,
        "pi": pi,
        **{f"q_{name}": circuit.custom_selectors[name] for name in spec.custom_gates},
        **lookup_polys,
    }
    claim_schedule = claim_schedule_for(spec)
    point_names = point_names_for(spec)
    points = query_points(
        num_vars,
        gate_point,
        perm_point,
        field,
        lookup_point=lookup_point,
        lookup_sum_point=lookup_sum_point,
    )
    # One Build-MLE per query point; every claim at that point is then a
    # dot product against the shared eq table (the Batch Evaluations
    # dataflow).  The tables are reused verbatim by the OpenCheck below.
    eq_tables = {name: eq_mle(point, field) for name, point in points.items()}
    claims_by_point: dict[str, list[str]] = {}
    for poly_name, point_name in claim_schedule:
        claims_by_point.setdefault(point_name, []).append(poly_name)
    claim_values: dict[tuple[str, str], FieldElement] = {}
    for point_name, poly_names in claims_by_point.items():
        values = batch_evaluate(
            [committed_polys[n] for n in poly_names],
            points[point_name],
            eq_table=eq_tables[point_name],
        )
        for poly_name, value in zip(poly_names, values):
            claim_values[(poly_name, point_name)] = value
    evaluation_claims: list[EvaluationClaim] = []
    for poly_name, point_name in claim_schedule:
        value = claim_values[(poly_name, point_name)]
        evaluation_claims.append(EvaluationClaim(poly_name, point_name, value))
        transcript.absorb_field(
            b"claim/" + poly_name.encode() + b"@" + point_name.encode(), value
        )
    step.wall_time_seconds = time.perf_counter() - start

    # ---- Step 5: Polynomial Opening (OpenCheck + batched KZG opening) --------------
    step = trace.step("poly_open")
    start = time.perf_counter()
    eta = transcript.challenge_field(b"open/eta")
    weights = challenge_powers(eta, len(evaluation_claims))

    # MLE Combine: one linear-combination MLE per query point (the "6 LC MLEs").
    lc_mles: dict[str, MultilinearPolynomial] = {}
    for point_name in point_names:
        members = [
            (weight, committed_polys[claim.poly])
            for weight, claim in zip(weights, evaluation_claims)
            if claim.point == point_name
        ]
        lc_mles[point_name] = linear_combine(
            [m for _, m in members], [w for w, _ in members]
        )

    # Build MLE: eq(z_j, .) for every query point, then OpenCheck (Equation 5).
    claimed_sum = field.zero()
    for weight, claim in zip(weights, evaluation_claims):
        claimed_sum = claimed_sum + weight * claim.value
    open_poly = VirtualPolynomial(num_vars, field)
    for point_name in point_names:
        open_poly.add_product([lc_mles[point_name], eq_tables[point_name]])
    opencheck_output = prove_sumcheck(
        open_poly, transcript, claimed_sum=claimed_sum, label=b"opencheck"
    )
    open_point = opencheck_output.challenges
    step.sumcheck_rounds = num_vars

    # Claimed evaluations of every committed polynomial at the OpenCheck
    # point: one shared eq table, one dot product per polynomial.
    sorted_names = sorted(committed_polys)
    opening_values = batch_evaluate(
        [committed_polys[name] for name in sorted_names], open_point
    )
    opening_evaluations: dict[str, FieldElement] = {}
    for name, value in zip(sorted_names, opening_values):
        opening_evaluations[name] = value
        transcript.absorb_field(b"open/eval/" + name.encode(), value)

    # Final combined polynomial g' and its single multilinear-KZG opening.
    zeta = transcript.challenge_field(b"open/zeta")
    zeta_powers = challenge_powers(zeta, len(point_names))
    g_prime = linear_combine(
        [lc_mles[name] for name in point_names], zeta_powers
    )
    opening_stats = MSMStatistics()
    opening_value, batch_opening = open_at_point(
        pk.pcs, g_prime, open_point, stats=opening_stats
    )
    step.msm_stats.append(opening_stats)
    step.wall_time_seconds = time.perf_counter() - start

    step = trace.step("sha3")
    step.sha3_invocations = transcript.num_hash_invocations

    proof = HyperPlonkProof(
        num_vars=num_vars,
        witness_commitments=witness_commitments,
        phi_commitment=phi_commitment,
        pi_commitment=pi_commitment,
        gate_zerocheck=gate_output.proof,
        perm_zerocheck=perm_output.proof,
        evaluation_claims=evaluation_claims,
        opencheck=opencheck_output.proof,
        opening_evaluations=opening_evaluations,
        batch_opening=batch_opening,
        batch_opening_value=opening_value,
        spec=spec,
        lookup_commitments=lookup_commitments,
        lookup_zerocheck=lookup_zc_output.proof if lookup_zc_output else None,
        lookup_sumcheck=lookup_sc_output.proof if lookup_sc_output else None,
    )
    if collect_trace:
        return proof, trace
    return proof
