"""The HyperPlonk proving protocol.

Implements the full prover and verifier described in Section 3.3 of the
paper: Witness Commits, Gate Identity (ZeroCheck), Wiring Identity
(PermCheck with Fraction and Product MLEs), Batch Evaluations, and the
Polynomial Opening step (OpenCheck followed by a batched multilinear-KZG
opening), all made non-interactive with a SHA3 Fiat-Shamir transcript.

Sessions should go through :class:`repro.api.ProverEngine`, which caches
circuit keys per session and owns all configuration; the implementation
modules (``repro.protocol.keys`` / ``.prover`` / ``.verifier``) are the
low-level entry points.  (The deprecated module-level
``preprocess``/``prove``/``verify`` shims warned for two PRs per the PR 2
policy and have been removed.)
"""

from repro.protocol.keys import ProvingKey, VerifyingKey
from repro.protocol.proof import EvaluationClaim, HyperPlonkProof, ProverTrace
from repro.protocol.serialization import (
    SerializationError,
    deserialize_proof,
    proof_size_bytes,
    serialize_proof,
)
from repro.protocol.verifier import VerificationError

__all__ = [
    "ProvingKey",
    "VerifyingKey",
    "EvaluationClaim",
    "HyperPlonkProof",
    "ProverTrace",
    "VerificationError",
    "serialize_proof",
    "deserialize_proof",
    "proof_size_bytes",
    "SerializationError",
]
