"""The HyperPlonk proving protocol.

Implements the full prover and verifier described in Section 3.3 of the
paper: Witness Commits, Gate Identity (ZeroCheck), Wiring Identity
(PermCheck with Fraction and Product MLEs), Batch Evaluations, and the
Polynomial Opening step (OpenCheck followed by a batched multilinear-KZG
opening), all made non-interactive with a SHA3 Fiat-Shamir transcript.
"""

from repro.protocol.keys import ProvingKey, VerifyingKey, preprocess
from repro.protocol.proof import EvaluationClaim, HyperPlonkProof, ProverTrace
from repro.protocol.prover import prove
from repro.protocol.serialization import (
    SerializationError,
    deserialize_proof,
    proof_size_bytes,
    serialize_proof,
)
from repro.protocol.verifier import VerificationError, verify

__all__ = [
    "ProvingKey",
    "VerifyingKey",
    "preprocess",
    "EvaluationClaim",
    "HyperPlonkProof",
    "ProverTrace",
    "prove",
    "verify",
    "VerificationError",
    "serialize_proof",
    "deserialize_proof",
    "proof_size_bytes",
    "SerializationError",
]
