"""The HyperPlonk proving protocol.

Implements the full prover and verifier described in Section 3.3 of the
paper: Witness Commits, Gate Identity (ZeroCheck), Wiring Identity
(PermCheck with Fraction and Product MLEs), Batch Evaluations, and the
Polynomial Opening step (OpenCheck followed by a batched multilinear-KZG
opening), all made non-interactive with a SHA3 Fiat-Shamir transcript.

.. deprecated::
    The module-level :func:`preprocess`, :func:`prove` and :func:`verify`
    entry points are kept for backward compatibility but new code should go
    through :class:`repro.api.ProverEngine`, which caches circuit keys per
    session and owns all configuration.  The implementation modules
    (``repro.protocol.keys`` / ``.prover`` / ``.verifier``) remain the
    non-deprecated low-level entry points.
"""

import functools
import warnings

from repro.protocol.keys import ProvingKey, VerifyingKey
from repro.protocol.keys import preprocess as _preprocess
from repro.protocol.proof import EvaluationClaim, HyperPlonkProof, ProverTrace
from repro.protocol.prover import prove as _prove
from repro.protocol.serialization import (
    SerializationError,
    deserialize_proof,
    proof_size_bytes,
    serialize_proof,
)
from repro.protocol.verifier import VerificationError
from repro.protocol.verifier import verify as _verify

__all__ = [
    "ProvingKey",
    "VerifyingKey",
    "preprocess",
    "EvaluationClaim",
    "HyperPlonkProof",
    "ProverTrace",
    "prove",
    "verify",
    "VerificationError",
    "serialize_proof",
    "deserialize_proof",
    "proof_size_bytes",
    "SerializationError",
]


def _deprecated(wrapped, name: str):
    @functools.wraps(wrapped)
    def shim(*args, **kwargs):
        warnings.warn(
            f"repro.protocol.{name}() is deprecated; use "
            f"repro.api.ProverEngine.{name}() instead (the implementation "
            f"modules under repro.protocol.* remain non-deprecated)",
            DeprecationWarning,
            stacklevel=2,
        )
        return wrapped(*args, **kwargs)

    return shim


preprocess = _deprecated(_preprocess, "preprocess")
prove = _deprecated(_prove, "prove")
verify = _deprecated(_verify, "verify")
