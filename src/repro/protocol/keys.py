"""Proving / verifying keys and circuit preprocessing.

Preprocessing commits to the circuit-dependent (but witness-independent)
polynomials -- the five selectors and the three wiring permutations -- once
per circuit.  Thanks to HyperPlonk's universal setup the same SRS serves
every circuit of a given maximum size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.builder import Circuit, SELECTOR_NAMES
from repro.mle.mle import MultilinearPolynomial
from repro.pcs.multilinear_kzg import Commitment, commit
from repro.pcs.srs import ProverKey as PcsProverKey
from repro.pcs.srs import UniversalSRS, VerifierKey as PcsVerifierKey

#: Canonical ordering of every committed polynomial in the protocol.
COMMITTED_POLY_NAMES = (
    "q_l",
    "q_r",
    "q_m",
    "q_o",
    "q_c",
    "sigma_1",
    "sigma_2",
    "sigma_3",
    "w1",
    "w2",
    "w3",
    "phi",
    "pi",
)

PREPROCESSED_POLY_NAMES = COMMITTED_POLY_NAMES[:8]
WITNESS_POLY_NAMES = ("w1", "w2", "w3")


@dataclass
class ProvingKey:
    """Everything the prover needs: circuit tables, SRS, preprocessed commitments."""

    num_vars: int
    circuit: Circuit
    pcs: PcsProverKey
    preprocessed_commitments: dict[str, Commitment]

    def preprocessed_polynomials(self) -> dict[str, MultilinearPolynomial]:
        polys = {name: self.circuit.selectors[name] for name in SELECTOR_NAMES}
        for i, sigma in enumerate(self.circuit.sigmas, start=1):
            polys[f"sigma_{i}"] = sigma
        return polys


@dataclass
class VerifyingKey:
    """Everything the verifier needs: commitments and PCS verifier material."""

    num_vars: int
    pcs: PcsVerifierKey
    preprocessed_commitments: dict[str, Commitment]


def preprocess(circuit: Circuit, srs: UniversalSRS) -> tuple[ProvingKey, VerifyingKey]:
    """Commit to the circuit's selector and permutation polynomials."""
    if circuit.num_vars != srs.num_vars:
        raise ValueError(
            f"circuit has 2^{circuit.num_vars} gates but the SRS supports "
            f"2^{srs.num_vars}; generate an SRS of matching size"
        )
    commitments: dict[str, Commitment] = {}
    for name in SELECTOR_NAMES:
        commitments[name] = commit(srs.prover_key, circuit.selectors[name], sparse=True)
    for i, sigma in enumerate(circuit.sigmas, start=1):
        commitments[f"sigma_{i}"] = commit(srs.prover_key, sigma)

    proving_key = ProvingKey(
        num_vars=circuit.num_vars,
        circuit=circuit,
        pcs=srs.prover_key,
        preprocessed_commitments=commitments,
    )
    verifying_key = VerifyingKey(
        num_vars=circuit.num_vars,
        pcs=srs.verifier_key,
        preprocessed_commitments=dict(commitments),
    )
    return proving_key, verifying_key
