"""Proving / verifying keys and circuit preprocessing.

Preprocessing commits to the circuit-dependent (but witness-independent)
polynomials -- the five selectors and the three wiring permutations -- once
per circuit.  Thanks to HyperPlonk's universal setup the same SRS serves
every circuit of a given maximum size.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.circuits.builder import Circuit, SELECTOR_NAMES
from repro.circuits.gates import VANILLA_SPEC, ConstraintSpec
from repro.circuits.lookups import LOOKUP_STRUCTURE_NAMES, LOOKUP_WITNESS_NAMES
from repro.mle.mle import MultilinearPolynomial
from repro.pcs.multilinear_kzg import Commitment, commit
from repro.pcs.srs import ProverKey as PcsProverKey
from repro.pcs.srs import UniversalSRS, VerifierKey as PcsVerifierKey

#: Canonical ordering of every committed polynomial in the protocol (the
#: vanilla set; extended circuits use :func:`committed_poly_names_for`).
COMMITTED_POLY_NAMES = (
    "q_l",
    "q_r",
    "q_m",
    "q_o",
    "q_c",
    "sigma_1",
    "sigma_2",
    "sigma_3",
    "w1",
    "w2",
    "w3",
    "phi",
    "pi",
)

PREPROCESSED_POLY_NAMES = COMMITTED_POLY_NAMES[:8]
WITNESS_POLY_NAMES = ("w1", "w2", "w3")


def committed_poly_names_for(spec: ConstraintSpec = VANILLA_SPEC) -> tuple[str, ...]:
    """Every committed polynomial name for a circuit with this spec.

    Strictly additive over :data:`COMMITTED_POLY_NAMES`: custom-gate
    selector columns follow the vanilla set, then the lookup columns
    (four preprocessed structure columns plus the prover-committed
    multiplicity and fraction MLEs).
    """
    names = COMMITTED_POLY_NAMES + spec.selector_names()
    if spec.lookup:
        names = names + LOOKUP_STRUCTURE_NAMES + LOOKUP_WITNESS_NAMES
    return names


def preprocessed_poly_names_for(spec: ConstraintSpec = VANILLA_SPEC) -> tuple[str, ...]:
    """The witness-independent (preprocessed) subset for this spec."""
    names = PREPROCESSED_POLY_NAMES + spec.selector_names()
    if spec.lookup:
        names = names + LOOKUP_STRUCTURE_NAMES
    return names


@dataclass
class ProvingKey:
    """Everything the prover needs: circuit tables, SRS, preprocessed commitments."""

    num_vars: int
    circuit: Circuit
    pcs: PcsProverKey
    preprocessed_commitments: dict[str, Commitment]
    #: The constraint-system shape (custom gates / lookup) committed here.
    spec: ConstraintSpec = dataclass_field(default=VANILLA_SPEC)

    def preprocessed_polynomials(self) -> dict[str, MultilinearPolynomial]:
        polys = {name: self.circuit.selectors[name] for name in SELECTOR_NAMES}
        for i, sigma in enumerate(self.circuit.sigmas, start=1):
            polys[f"sigma_{i}"] = sigma
        for name, selector in self.circuit.custom_selectors.items():
            polys[f"q_{name}"] = selector
        for name in LOOKUP_STRUCTURE_NAMES:
            if name in self.circuit.lookup_columns:
                polys[name] = self.circuit.lookup_columns[name]
        return polys


@dataclass
class VerifyingKey:
    """Everything the verifier needs: commitments and PCS verifier material."""

    num_vars: int
    pcs: PcsVerifierKey
    preprocessed_commitments: dict[str, Commitment]
    #: Gate-identity description: which custom gates and lookup columns the
    #: circuit uses.  Committed in the sense that the preprocessed
    #: commitments cover every extension column the spec names.
    spec: ConstraintSpec = dataclass_field(default=VANILLA_SPEC)


def preprocess(circuit: Circuit, srs: UniversalSRS) -> tuple[ProvingKey, VerifyingKey]:
    """Commit to the circuit's selector, permutation and extension polynomials."""
    if circuit.num_vars != srs.num_vars:
        raise ValueError(
            f"circuit has 2^{circuit.num_vars} gates but the SRS supports "
            f"2^{srs.num_vars}; generate an SRS of matching size"
        )
    spec = circuit.constraint_spec()
    commitments: dict[str, Commitment] = {}
    for name in SELECTOR_NAMES:
        commitments[name] = commit(srs.prover_key, circuit.selectors[name], sparse=True)
    for i, sigma in enumerate(circuit.sigmas, start=1):
        commitments[f"sigma_{i}"] = commit(srs.prover_key, sigma)
    # Extension columns: custom-gate selectors are 0/1 (ideal Sparse-MSM
    # input) and the lookup structure columns are small-integer-dominated,
    # so both take the sparse commit path like the vanilla selectors.
    for name in spec.custom_gates:
        commitments[f"q_{name}"] = commit(
            srs.prover_key, circuit.custom_selectors[name], sparse=True
        )
    if spec.lookup:
        for name in LOOKUP_STRUCTURE_NAMES:
            commitments[name] = commit(
                srs.prover_key, circuit.lookup_columns[name], sparse=True
            )

    proving_key = ProvingKey(
        num_vars=circuit.num_vars,
        circuit=circuit,
        pcs=srs.prover_key,
        preprocessed_commitments=commitments,
        spec=spec,
    )
    verifying_key = VerifyingKey(
        num_vars=circuit.num_vars,
        pcs=srs.verifier_key,
        preprocessed_commitments=dict(commitments),
        spec=spec,
    )
    return proving_key, verifying_key
