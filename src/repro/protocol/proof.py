"""Proof objects and prover-side traces.

:class:`HyperPlonkProof` carries exactly what is sent to the verifier.
:class:`ProverTrace` additionally records operation statistics of each
protocol step (MSM sizes, SumCheck rounds, modular-inversion counts, ...)
which the architectural model in :mod:`repro.core` validates its analytical
operation counts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuits.gates import VANILLA_SPEC, ConstraintSpec
from repro.curves.msm import MSMStatistics
from repro.fields.field import FieldElement
from repro.pcs.multilinear_kzg import Commitment, OpeningProof
from repro.sumcheck.prover import SumcheckProof
from repro.sumcheck.zerocheck import ZerocheckProof


@dataclass(frozen=True)
class EvaluationClaim:
    """A claim that polynomial ``poly`` evaluates to ``value`` at point ``point``."""

    poly: str
    point: str
    value: FieldElement


@dataclass
class HyperPlonkProof:
    """A complete HyperPlonk proof."""

    num_vars: int
    witness_commitments: dict[str, Commitment]
    phi_commitment: Commitment
    pi_commitment: Commitment
    gate_zerocheck: ZerocheckProof
    perm_zerocheck: ZerocheckProof
    evaluation_claims: list[EvaluationClaim]
    opencheck: SumcheckProof
    opening_evaluations: dict[str, FieldElement]
    """Claimed evaluations of every committed polynomial at the OpenCheck point."""
    batch_opening: OpeningProof
    batch_opening_value: FieldElement
    #: The constraint-system shape the proof was produced under; drives the
    #: claim schedule, committed-polynomial set and wire format.
    spec: ConstraintSpec = field(default=VANILLA_SPEC)
    #: Lookup-argument commitments (lk_m, lk_h), present iff ``spec.lookup``.
    lookup_commitments: dict[str, Commitment] | None = None
    #: ZeroCheck of  h*A*B - q_lookup*B + m*A = 0  (present iff ``spec.lookup``).
    lookup_zerocheck: ZerocheckProof | None = None
    #: SumCheck of  sum(h) = 0  (present iff ``spec.lookup``).
    lookup_sumcheck: SumcheckProof | None = None

    # -- size accounting ---------------------------------------------------------

    def num_commitments(self) -> int:
        count = 2 + len(self.witness_commitments) + len(self.batch_opening.quotients)
        if self.lookup_commitments is not None:
            count += len(self.lookup_commitments)
        return count

    def num_field_elements(self) -> int:
        count = len(self.evaluation_claims) + len(self.opening_evaluations) + 1
        zerochecks = [self.gate_zerocheck, self.perm_zerocheck]
        if self.lookup_zerocheck is not None:
            zerochecks.append(self.lookup_zerocheck)
        for zerocheck in zerochecks:
            for round_msg in zerocheck.sumcheck.rounds:
                count += len(round_msg.evaluations)
            count += 1  # claimed sum
        sumchecks = [self.opencheck]
        if self.lookup_sumcheck is not None:
            sumchecks.append(self.lookup_sumcheck)
        for sumcheck in sumchecks:
            for round_msg in sumcheck.rounds:
                count += len(round_msg.evaluations)
            count += 1
        return count

    def size_bytes(self, g1_bytes: int = 48, field_bytes: int = 32) -> int:
        """Approximate serialized proof size (compressed G1 points).

        HyperPlonk proofs are ~5 KB at typical sizes (Table 4 reports
        5.09 KB at 2^24 constraints); this method reproduces that estimate.
        """
        return self.num_commitments() * g1_bytes + self.num_field_elements() * field_bytes


@dataclass
class StepStatistics:
    """Operation counts recorded for one protocol step."""

    name: str
    modmuls: int = 0
    modular_inversions: int = 0
    msm_stats: list[MSMStatistics] = field(default_factory=list)
    sumcheck_rounds: int = 0
    sha3_invocations: int = 0
    wall_time_seconds: float = 0.0


@dataclass
class ProverTrace:
    """Per-step statistics collected while proving (used by the core model)."""

    num_vars: int
    steps: list[StepStatistics] = field(default_factory=list)

    def step(self, name: str) -> StepStatistics:
        stats = StepStatistics(name=name)
        self.steps.append(stats)
        return stats

    def total_wall_time(self) -> float:
        return sum(s.wall_time_seconds for s in self.steps)

    def step_named(self, name: str) -> StepStatistics:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(f"no step named {name!r}")
