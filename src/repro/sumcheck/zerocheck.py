"""ZeroCheck: prove a virtual polynomial vanishes on the boolean hypercube.

HyperPlonk's Gate Identity and Wiring Identity both reduce to ZeroChecks
(Sections 3.3.2 and 3.3.3).  The standard construction multiplies the
constraint polynomial F(x) by the random multilinear polynomial
``eq(a, x)`` (the "Build MLE" r(X) of the paper) and proves the sum of
F(x) * eq(a, x) over the hypercube is zero.  If F is nonzero at any boolean
point the sum is nonzero with overwhelming probability over ``a``.

ZeroChecks run through :func:`repro.sumcheck.prover.prove_sumcheck`, so an
installed round-shard runner (``EngineConfig.workers > 1``) shards both
identities' term tables across worker processes with no code here — the eq
factor is just one more MLE in the combined polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields.field import FieldElement
from repro.mle.mle import eq_eval, eq_mle
from repro.mle.virtual_poly import VirtualPolynomial
from repro.sumcheck.prover import SumcheckProof, prove_sumcheck
from repro.sumcheck.verifier import SumcheckVerificationError, verify_sumcheck
from repro.transcript.transcript import Transcript


@dataclass
class ZerocheckProof:
    """A ZeroCheck proof is a SumCheck proof with claimed sum zero."""

    sumcheck: SumcheckProof


@dataclass
class ZerocheckProverOutput:
    proof: ZerocheckProof
    zerocheck_challenges: list[FieldElement]
    """The challenge vector ``a`` defining eq(a, .)."""
    sumcheck_challenges: list[FieldElement]
    """The SumCheck point ``r`` at which openings are later required."""
    final_evaluations: list[FieldElement]
    """Evaluations of the constraint's MLEs (and eq last) at ``r``."""


@dataclass
class ZerocheckVerdict:
    zerocheck_challenges: list[FieldElement]
    sumcheck_challenges: list[FieldElement]
    final_claim: FieldElement
    eq_at_point: FieldElement

    def constraint_claim(self) -> FieldElement:
        """The value F(r) implied by the proof (final claim divided by eq(a, r))."""
        if self.eq_at_point.is_zero():
            raise SumcheckVerificationError("eq(a, r) is zero; cannot reduce claim")
        return self.final_claim / self.eq_at_point


def _multiply_by_eq(
    poly: VirtualPolynomial, eq_table
) -> VirtualPolynomial:
    """Return a new virtual polynomial whose every term is multiplied by eq."""
    combined = VirtualPolynomial(poly.num_vars, poly.field)
    combined.mles = list(poly.mles) + [eq_table]
    combined._mle_lookup = {id(m): i for i, m in enumerate(combined.mles)}
    eq_index = len(combined.mles) - 1
    for term in poly.terms:
        combined.terms.append(
            type(term)(term.coefficient, term.mle_indices + (eq_index,))
        )
    return combined


def prove_zerocheck(
    poly: VirtualPolynomial,
    transcript: Transcript,
    label: bytes = b"zerocheck",
) -> ZerocheckProverOutput:
    """Prove that ``poly`` evaluates to zero at every boolean point."""
    field = poly.field
    a = transcript.challenge_fields(label + b"/eq", poly.num_vars)
    eq_table = eq_mle(a, field)
    combined = _multiply_by_eq(poly, eq_table)
    output = prove_sumcheck(
        combined, transcript, claimed_sum=field.zero(), label=label + b"/sumcheck"
    )
    return ZerocheckProverOutput(
        proof=ZerocheckProof(sumcheck=output.proof),
        zerocheck_challenges=a,
        sumcheck_challenges=output.challenges,
        final_evaluations=output.final_evaluations,
    )


def verify_zerocheck(
    proof: ZerocheckProof,
    num_vars: int,
    transcript: Transcript,
    label: bytes = b"zerocheck",
) -> ZerocheckVerdict:
    """Verify a ZeroCheck proof down to an evaluation claim at a random point.

    The returned verdict carries ``final_claim`` (what eq(a, r) * F(r) must
    equal) and ``eq_at_point`` = eq(a, r), which the verifier computes itself;
    the caller supplies F(r) from polynomial openings and checks
    ``final_claim == eq_at_point * F(r)``.
    """
    field = proof.sumcheck.claimed_sum.field
    if not proof.sumcheck.claimed_sum.is_zero():
        raise SumcheckVerificationError("ZeroCheck proof must claim a zero sum")
    if proof.sumcheck.num_vars != num_vars:
        raise SumcheckVerificationError(
            f"proof is over {proof.sumcheck.num_vars} variables, expected {num_vars}"
        )
    a = transcript.challenge_fields(label + b"/eq", num_vars)
    verdict = verify_sumcheck(proof.sumcheck, transcript, label=label + b"/sumcheck")
    eq_at_point = eq_eval(a, verdict.challenges, field)
    return ZerocheckVerdict(
        zerocheck_challenges=a,
        sumcheck_challenges=verdict.challenges,
        final_claim=verdict.final_claim,
        eq_at_point=eq_at_point,
    )
