"""Univariate polynomials in evaluation form on the points 0, 1, ..., d.

SumCheck round polynomials are exchanged as their evaluations at the small
integer points 0..d (where d is the max term degree).  The verifier needs to
evaluate such a polynomial at a random challenge; the prover needs to extend
a lower-degree term's evaluations to the full point set ("the additional
evaluations are computed via Barycentric Interpolation", Section 4.1.1).
Both operations are implemented here with Lagrange/barycentric formulas over
the integer nodes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.fields.bls12_381 import Fr
from repro.fields.field import FieldElement, PrimeField


@lru_cache(maxsize=64)
def _barycentric_weights(num_points: int, modulus: int) -> tuple[int, ...]:
    """Barycentric weights w_j = 1 / prod_{k != j} (j - k) for nodes 0..n-1."""
    weights = []
    for j in range(num_points):
        denom = 1
        for k in range(num_points):
            if k != j:
                denom = (denom * (j - k)) % modulus
        weights.append(pow(denom, modulus - 2, modulus))
    return tuple(weights)


def evaluate_from_evaluations(
    evaluations: Sequence[FieldElement],
    point: FieldElement,
    field: PrimeField = Fr,
) -> FieldElement:
    """Evaluate the degree-(n-1) polynomial with values ``evaluations`` at 0..n-1.

    Uses the barycentric form; if ``point`` coincides with a node the stored
    evaluation is returned directly.
    """
    n = len(evaluations)
    if n == 0:
        raise ValueError("need at least one evaluation")
    p = field.modulus
    x = point.value % p
    if x < n:
        return evaluations[x]
    weights = _barycentric_weights(n, p)
    # numerator = sum_j w_j * y_j / (x - j); denominator = sum_j w_j / (x - j)
    num = 0
    den = 0
    for j in range(n):
        inv = pow((x - j) % p, p - 2, p)
        term = (weights[j] * inv) % p
        num = (num + term * evaluations[j].value) % p
        den = (den + term) % p
    return field(num * pow(den, p - 2, p))


def extrapolate_evaluations(
    evaluations: Sequence[FieldElement],
    target_count: int,
    field: PrimeField = Fr,
) -> list[FieldElement]:
    """Extend evaluations at 0..n-1 of a degree-(n-1) polynomial to 0..target-1.

    This is the fixed "interpolation step" the SumCheck unit applies to terms
    whose degree is lower than the round polynomial's maximum degree.
    """
    n = len(evaluations)
    if target_count < n:
        raise ValueError("target_count must be >= current number of evaluations")
    extended = list(evaluations)
    for x in range(n, target_count):
        extended.append(evaluate_from_evaluations(evaluations, field(x), field))
    return extended


def lagrange_coefficients_at(
    num_points: int, point: FieldElement, field: PrimeField = Fr
) -> list[FieldElement]:
    """Lagrange basis values L_j(point) for nodes 0..num_points-1.

    Exposed for the hardware model's fixed per-round interpolation cost and
    for tests of the barycentric evaluation.
    """
    p = field.modulus
    x = point.value % p
    coeffs = []
    for j in range(num_points):
        num, den = 1, 1
        for k in range(num_points):
            if k == j:
                continue
            num = (num * (x - k)) % p
            den = (den * (j - k)) % p
        coeffs.append(field(num * pow(den, p - 2, p)))
    return coeffs
