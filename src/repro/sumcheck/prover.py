"""SumCheck prover.

Implements the multi-round SumCheck protocol over a
:class:`~repro.mle.virtual_poly.VirtualPolynomial` (a sum of products of
MLEs), following the structure of zkSpeed's SumCheck PE (Section 4.1):

* for every boolean-hypercube instance of the remaining variables, each
  *unique* MLE is evaluated once at X = 0, 1, ..., d (linear extension of the
  pair of adjacent table entries), and the per-term products are accumulated
  into the round polynomial's evaluations;
* after the verifier's challenge r is drawn from the transcript, every MLE
  table is updated in place via  t'[i] = (t[2i+1] - t[2i]) * r + t[2i]
  (the MLE Update unit).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

from repro.fields.field import FieldElement
from repro.mle.virtual_poly import VirtualPolynomial
from repro.transcript.transcript import Transcript


@dataclass
class SumcheckRound:
    """One round's message: evaluations of g_k at 0, 1, ..., d."""

    evaluations: list[FieldElement]


@dataclass
class SumcheckProof:
    """The full SumCheck transcript produced by the prover."""

    claimed_sum: FieldElement
    rounds: list[SumcheckRound]
    num_vars: int
    max_degree: int

    def round_messages(self) -> list[list[FieldElement]]:
        return [r.evaluations for r in self.rounds]


@dataclass
class SumcheckProverOutput:
    """Proof plus the prover-side artefacts needed by later protocol steps."""

    proof: SumcheckProof
    challenges: list[FieldElement]
    final_evaluations: list[FieldElement]
    """Evaluation of each registered MLE at the challenge point."""


#: Round-shard runner installed by :mod:`repro.api.parallel` (None = serial).
#: The runner must expose ``min_size`` (full-table size gate) and
#: ``run_round(mle_halves, terms, field, degree)`` returning the round
#: polynomial evaluations at X = 0..degree, or None to decline.  Workers
#: execute :func:`accumulate_round_evaluations` over disjoint hypercube
#: chunks; field addition is exact, so the chunk partial sums combine to the
#: identical field elements (and transcript bytes) of the serial path.
_round_shard_runner = None


def set_sumcheck_shard_runner(runner) -> None:
    """Install (or clear, with ``None``) the process-wide round-shard runner."""
    global _round_shard_runner
    _round_shard_runner = runner


def sumcheck_shard_runner():
    """The currently installed SumCheck round-shard runner (or None)."""
    return _round_shard_runner


def accumulate_round_evaluations(
    mle_halves: Sequence[tuple],
    terms: Sequence[tuple],
    field,
    degree: int,
) -> list[FieldElement]:
    """Round-polynomial accumulation over one hypercube slice.

    ``mle_halves[i]`` is the ``(low, high)`` even/odd pair of the i-th unique
    MLE restricted to the slice (as :class:`~repro.fields.vector.FieldVector`
    instances); ``terms`` is a list of ``(coefficient, mle_indices)`` pairs.
    This is the shard kernel of :func:`_round_polynomial`: running it over
    the full table reproduces the serial result, and summing its outputs
    over disjoint slices reproduces it exactly as well (field addition is
    associative), which is what keeps parallel proofs byte-identical.
    """
    num_points = degree + 1
    # Per-MLE table evaluations at X = 0..degree, each a slice-size vector:
    # each table entry is linear in X, so one vector addition per extra point.
    mle_evals: list[list] = []
    for low, high in mle_halves:
        evals = [low, high]
        diff = high - low
        current = high
        for _ in range(2, num_points):
            current = current + diff
            evals.append(current)
        mle_evals.append(evals)
    # Per-term products; the coefficient is applied to the scalar sum since
    # sum(c * prod) == c * sum(prod).
    accumulators: list[FieldElement] = []
    for t in range(num_points):
        total = field.zero()
        for coefficient, mle_indices in terms:
            vec = mle_evals[mle_indices[0]][t]
            for mle_index in mle_indices[1:]:
                vec = vec * mle_evals[mle_index][t]
            total = total + coefficient * vec.sum()
        accumulators.append(total)
    return accumulators


def _round_polynomial(
    poly: VirtualPolynomial, degree: int
) -> list[FieldElement]:
    """Compute evaluations of the round polynomial g(X) at X = 0..degree.

    Vectorized over the boolean-hypercube instances: every unique MLE is
    split once into its even/odd halves, extended to X = 0..degree with one
    vector addition per extra point (each table entry is linear in X), and
    the per-term products reduce to a handful of whole-table Hadamard
    multiplies followed by a sum -- the streaming dataflow of zkSpeed's
    SumCheck PE (Section 4.1) expressed as array operations.

    When a round-shard runner is installed (``EngineConfig.workers > 1``)
    and the table clears its size gate, the per-instance work is split by
    hypercube chunks across worker processes; partial sums are combined
    here, preserving the exact field results of the serial path.
    """
    mle_halves = [m.evaluations.even_odd() for m in poly.mles]
    terms = [(t.coefficient, t.mle_indices) for t in poly.terms]
    runner = _round_shard_runner
    if (
        runner is not None
        and poly.num_vars > 1
        and (1 << poly.num_vars) >= getattr(runner, "min_size", 4096)
    ):
        result = runner.run_round(mle_halves, terms, poly.field, degree)
        if result is not None:
            return result
    return accumulate_round_evaluations(mle_halves, terms, poly.field, degree)


def prove_sumcheck(
    poly: VirtualPolynomial,
    transcript: Transcript,
    claimed_sum: FieldElement | None = None,
    label: bytes = b"sumcheck",
) -> SumcheckProverOutput:
    """Run the SumCheck prover for ``poly`` with Fiat-Shamir challenges.

    Parameters
    ----------
    poly:
        The virtual polynomial to be summed over the boolean hypercube.  The
        prover consumes a working copy; the caller's MLEs are not modified.
    claimed_sum:
        The claimed sum.  If omitted it is computed from the polynomial.
    """
    if poly.num_vars == 0:
        raise ValueError("SumCheck requires at least one variable")
    field = poly.field
    if claimed_sum is None:
        claimed_sum = poly.sum_over_hypercube()
    degree = max(poly.max_degree, 1)

    transcript.absorb_int(label + b"/num_vars", poly.num_vars)
    transcript.absorb_int(label + b"/degree", degree)
    transcript.absorb_field(label + b"/claimed_sum", claimed_sum)

    # Work on copies so the caller's tables survive (the hardware streams and
    # overwrites them, but the software API should be side-effect free).
    current = VirtualPolynomial(poly.num_vars, field)
    current.mles = [m.clone() for m in poly.mles]
    current._mle_lookup = {id(m): i for i, m in enumerate(current.mles)}
    current.terms = list(poly.terms)

    rounds: list[SumcheckRound] = []
    challenges: list[FieldElement] = []
    for round_index in range(poly.num_vars):
        evaluations = _round_polynomial(current, degree)
        rounds.append(SumcheckRound(evaluations))
        transcript.absorb_fields(
            label + b"/round" + str(round_index).encode(), evaluations
        )
        r = transcript.challenge_field(label + b"/challenge")
        challenges.append(r)
        current = current.fix_first_variable(r)

    final_evaluations = [m.evaluations[0] for m in current.mles]
    proof = SumcheckProof(
        claimed_sum=claimed_sum,
        rounds=rounds,
        num_vars=poly.num_vars,
        max_degree=degree,
    )
    return SumcheckProverOutput(
        proof=proof, challenges=challenges, final_evaluations=final_evaluations
    )
