"""The SumCheck protocol family used by HyperPlonk.

* :mod:`repro.sumcheck.prover` / :mod:`repro.sumcheck.verifier` -- the generic
  interactive SumCheck over a :class:`~repro.mle.virtual_poly.VirtualPolynomial`
  (made non-interactive with the Fiat-Shamir transcript).
* :mod:`repro.sumcheck.zerocheck` -- ZeroCheck: proves a virtual polynomial
  vanishes on the whole boolean hypercube (used by Gate Identity and the
  Wiring Identity's PermCheck).
* :mod:`repro.sumcheck.interpolation` -- univariate evaluation-form helpers
  (the barycentric step the SumCheck PE performs to balance term degrees).
"""

from repro.sumcheck.prover import SumcheckProof, SumcheckRound, prove_sumcheck
from repro.sumcheck.verifier import SumcheckVerificationError, verify_sumcheck
from repro.sumcheck.zerocheck import ZerocheckProof, prove_zerocheck, verify_zerocheck
from repro.sumcheck.interpolation import (
    evaluate_from_evaluations,
    extrapolate_evaluations,
)

__all__ = [
    "SumcheckProof",
    "SumcheckRound",
    "prove_sumcheck",
    "verify_sumcheck",
    "SumcheckVerificationError",
    "ZerocheckProof",
    "prove_zerocheck",
    "verify_zerocheck",
    "evaluate_from_evaluations",
    "extrapolate_evaluations",
]
