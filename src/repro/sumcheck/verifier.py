"""SumCheck verifier.

The verifier replays the Fiat-Shamir transcript, checks the round-consistency
identity  g_k(0) + g_k(1) == claim_k  for every round, and reduces the claim
to the evaluation of the original polynomial at the final challenge point.
It does *not* check that final evaluation itself -- the caller (ZeroCheck,
PermCheck, OpenCheck) does so with polynomial-commitment openings, exactly
as in HyperPlonk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields.field import FieldElement
from repro.sumcheck.interpolation import evaluate_from_evaluations
from repro.sumcheck.prover import SumcheckProof
from repro.transcript.transcript import Transcript


class SumcheckVerificationError(Exception):
    """Raised when a SumCheck proof fails a round-consistency check."""


@dataclass
class SumcheckVerdict:
    """Result of verifying a SumCheck proof."""

    challenges: list[FieldElement]
    final_claim: FieldElement
    """The value the original polynomial must take at ``challenges``."""


def verify_sumcheck(
    proof: SumcheckProof,
    transcript: Transcript,
    label: bytes = b"sumcheck",
) -> SumcheckVerdict:
    """Verify round consistency and return the reduced evaluation claim.

    Raises :class:`SumcheckVerificationError` on any inconsistency.
    """
    field = proof.claimed_sum.field
    transcript.absorb_int(label + b"/num_vars", proof.num_vars)
    transcript.absorb_int(label + b"/degree", proof.max_degree)
    transcript.absorb_field(label + b"/claimed_sum", proof.claimed_sum)

    if len(proof.rounds) != proof.num_vars:
        raise SumcheckVerificationError(
            f"expected {proof.num_vars} rounds, proof has {len(proof.rounds)}"
        )

    expected_points = proof.max_degree + 1
    claim = proof.claimed_sum
    challenges: list[FieldElement] = []
    for round_index, round_message in enumerate(proof.rounds):
        evaluations = round_message.evaluations
        if len(evaluations) != expected_points:
            raise SumcheckVerificationError(
                f"round {round_index}: expected {expected_points} evaluations, "
                f"got {len(evaluations)}"
            )
        if evaluations[0] + evaluations[1] != claim:
            raise SumcheckVerificationError(
                f"round {round_index}: g(0) + g(1) != running claim"
            )
        transcript.absorb_fields(
            label + b"/round" + str(round_index).encode(), evaluations
        )
        r = transcript.challenge_field(label + b"/challenge")
        challenges.append(r)
        claim = evaluate_from_evaluations(evaluations, r, field)

    return SumcheckVerdict(challenges=challenges, final_claim=claim)
