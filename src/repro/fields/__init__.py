"""Finite-field arithmetic for BLS12-381.

This package provides the two prime fields HyperPlonk computes over:

* ``Fr`` -- the 255-bit scalar field (MLE values, SumCheck arithmetic).
* ``Fq`` -- the 381-bit base field (elliptic-curve point coordinates).

It also provides the hardware-relevant arithmetic building blocks that the
zkSpeed units model: Montgomery multiplication (``montgomery``), the
constant-time Binary Extended Euclidean Algorithm used by the FracMLE unit
(``inversion.beea_inverse``) and Montgomery batch inversion
(``inversion.batch_inverse``).
"""

from repro.fields.field import FieldElement, PrimeField
from repro.fields.bls12_381 import FR_MODULUS, FQ_MODULUS, Fr, Fq
from repro.fields.inversion import (
    batch_inverse,
    batch_inverse_ints,
    beea_inverse,
    beea_iteration_count,
)
from repro.fields.montgomery import MontgomeryContext
from repro.fields.vector import FieldVector
from repro.fields.backends import (
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)

__all__ = [
    "FieldElement",
    "PrimeField",
    "FieldVector",
    "Fr",
    "Fq",
    "FR_MODULUS",
    "FQ_MODULUS",
    "batch_inverse",
    "batch_inverse_ints",
    "beea_inverse",
    "beea_iteration_count",
    "MontgomeryContext",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
]
