"""Extension-field towers for BLS12-381.

The pairing used by HyperPlonk's polynomial commitment verifier operates over
the tower  Fq -> Fq2 -> Fq6 -> Fq12.  These classes implement just enough
arithmetic for G2 point operations and the optimal-ate pairing:

* ``Fq2  = Fq[u]  / (u^2 + 1)``
* ``Fq6  = Fq2[v] / (v^3 - (u + 1))``
* ``Fq12 = Fq6[w] / (w^2 - v)``

Only the prover is accelerated by zkSpeed, so these classes favour clarity
over speed; they are exercised by the verifier at small problem sizes.
"""

from __future__ import annotations

from repro.fields.bls12_381 import FQ_MODULUS

P = FQ_MODULUS


class Fq2Element:
    """Element c0 + c1*u of Fq2 with u^2 = -1."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int):
        self.c0 = c0 % P
        self.c1 = c1 % P

    @classmethod
    def zero(cls) -> "Fq2Element":
        return cls(0, 0)

    @classmethod
    def one(cls) -> "Fq2Element":
        return cls(1, 0)

    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def __add__(self, other: "Fq2Element") -> "Fq2Element":
        return Fq2Element(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fq2Element") -> "Fq2Element":
        return Fq2Element(self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fq2Element":
        return Fq2Element(-self.c0, -self.c1)

    def __mul__(self, other: "Fq2Element | int") -> "Fq2Element":
        if isinstance(other, int):
            return Fq2Element(self.c0 * other, self.c1 * other)
        # (a0 + a1 u)(b0 + b1 u) = (a0 b0 - a1 b1) + (a0 b1 + a1 b0) u
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        return Fq2Element(a0 * b0 - a1 * b1, a0 * b1 + a1 * b0)

    __rmul__ = __mul__

    def square(self) -> "Fq2Element":
        a0, a1 = self.c0, self.c1
        return Fq2Element(a0 * a0 - a1 * a1, 2 * a0 * a1)

    def conjugate(self) -> "Fq2Element":
        return Fq2Element(self.c0, -self.c1)

    def mul_by_nonresidue(self) -> "Fq2Element":
        """Multiply by (u + 1), the cubic non-residue used to build Fq6."""
        return Fq2Element(self.c0 - self.c1, self.c0 + self.c1)

    def inverse(self) -> "Fq2Element":
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % P
        if norm == 0:
            raise ZeroDivisionError("inverse of zero in Fq2")
        inv_norm = pow(norm, P - 2, P)
        return Fq2Element(self.c0 * inv_norm, -self.c1 * inv_norm)

    def frobenius(self) -> "Fq2Element":
        """The q-power Frobenius map, i.e. conjugation."""
        return self.conjugate()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fq2Element)
            and self.c0 == other.c0
            and self.c1 == other.c1
        )

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fq2({self.c0}, {self.c1})"


# Frobenius coefficients for Fq6/Fq12 (gamma constants), computed on import.
_NONRESIDUE = Fq2Element(1, 1)


def _nonresidue_pow(exponent: int) -> Fq2Element:
    result = Fq2Element.one()
    base = _NONRESIDUE
    e = exponent
    while e:
        if e & 1:
            result = result * base
        base = base.square()
        e >>= 1
    return result


_FROB_GAMMA1 = [_nonresidue_pow(i * (P - 1) // 6) for i in range(6)]


class Fq6Element:
    """Element c0 + c1*v + c2*v^2 of Fq6 with v^3 = u + 1."""

    __slots__ = ("c0", "c1", "c2")

    def __init__(self, c0: Fq2Element, c1: Fq2Element, c2: Fq2Element):
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2

    @classmethod
    def zero(cls) -> "Fq6Element":
        return cls(Fq2Element.zero(), Fq2Element.zero(), Fq2Element.zero())

    @classmethod
    def one(cls) -> "Fq6Element":
        return cls(Fq2Element.one(), Fq2Element.zero(), Fq2Element.zero())

    def is_zero(self) -> bool:
        return self.c0.is_zero() and self.c1.is_zero() and self.c2.is_zero()

    def __add__(self, other: "Fq6Element") -> "Fq6Element":
        return Fq6Element(self.c0 + other.c0, self.c1 + other.c1, self.c2 + other.c2)

    def __sub__(self, other: "Fq6Element") -> "Fq6Element":
        return Fq6Element(self.c0 - other.c0, self.c1 - other.c1, self.c2 - other.c2)

    def __neg__(self) -> "Fq6Element":
        return Fq6Element(-self.c0, -self.c1, -self.c2)

    def __mul__(self, other: "Fq6Element") -> "Fq6Element":
        a0, a1, a2 = self.c0, self.c1, self.c2
        b0, b1, b2 = other.c0, other.c1, other.c2
        t0 = a0 * b0
        t1 = a1 * b1
        t2 = a2 * b2
        c0 = t0 + ((a1 + a2) * (b1 + b2) - t1 - t2).mul_by_nonresidue()
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1 + t2.mul_by_nonresidue()
        c2 = (a0 + a2) * (b0 + b2) - t0 - t2 + t1
        return Fq6Element(c0, c1, c2)

    def square(self) -> "Fq6Element":
        return self * self

    def scale(self, factor: Fq2Element) -> "Fq6Element":
        return Fq6Element(self.c0 * factor, self.c1 * factor, self.c2 * factor)

    def mul_by_nonresidue(self) -> "Fq6Element":
        """Multiply by v (used to build Fq12)."""
        return Fq6Element(self.c2.mul_by_nonresidue(), self.c0, self.c1)

    def inverse(self) -> "Fq6Element":
        a0, a1, a2 = self.c0, self.c1, self.c2
        t0 = a0.square() - (a1 * a2).mul_by_nonresidue()
        t1 = a2.square().mul_by_nonresidue() - a0 * a1
        t2 = a1.square() - a0 * a2
        denom = a0 * t0 + (a2 * t1).mul_by_nonresidue() + (a1 * t2).mul_by_nonresidue()
        denom_inv = denom.inverse()
        return Fq6Element(t0 * denom_inv, t1 * denom_inv, t2 * denom_inv)

    def frobenius(self) -> "Fq6Element":
        return Fq6Element(
            self.c0.frobenius(),
            self.c1.frobenius() * _FROB_GAMMA1[2],
            self.c2.frobenius() * _FROB_GAMMA1[4],
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fq6Element)
            and self.c0 == other.c0
            and self.c1 == other.c1
            and self.c2 == other.c2
        )

    def __repr__(self) -> str:
        return f"Fq6({self.c0}, {self.c1}, {self.c2})"


class Fq12Element:
    """Element c0 + c1*w of Fq12 with w^2 = v."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: Fq6Element, c1: Fq6Element):
        self.c0 = c0
        self.c1 = c1

    @classmethod
    def one(cls) -> "Fq12Element":
        return cls(Fq6Element.one(), Fq6Element.zero())

    @classmethod
    def zero(cls) -> "Fq12Element":
        return cls(Fq6Element.zero(), Fq6Element.zero())

    def is_one(self) -> bool:
        return self == Fq12Element.one()

    def __add__(self, other: "Fq12Element") -> "Fq12Element":
        return Fq12Element(self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fq12Element") -> "Fq12Element":
        return Fq12Element(self.c0 - other.c0, self.c1 - other.c1)

    def __mul__(self, other: "Fq12Element") -> "Fq12Element":
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        t0 = a0 * b0
        t1 = a1 * b1
        c0 = t0 + t1.mul_by_nonresidue()
        c1 = (a0 + a1) * (b0 + b1) - t0 - t1
        return Fq12Element(c0, c1)

    def square(self) -> "Fq12Element":
        return self * self

    def conjugate(self) -> "Fq12Element":
        return Fq12Element(self.c0, -self.c1)

    def inverse(self) -> "Fq12Element":
        denom = self.c0.square() - self.c1.square().mul_by_nonresidue()
        denom_inv = denom.inverse()
        return Fq12Element(self.c0 * denom_inv, -(self.c1 * denom_inv))

    def frobenius(self) -> "Fq12Element":
        c0 = self.c0.frobenius()
        # (c1 * w)^q = c1^q * w^(q-1) * w, and w^(q-1) = xi^((q-1)/6) in Fq2,
        # so the Frobenius of c1 is scaled uniformly by that constant.
        c1 = self.c1.frobenius().scale(_FROB_GAMMA1[1])
        return Fq12Element(c0, c1)

    def pow(self, exponent: int) -> "Fq12Element":
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fq12Element.one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fq12Element)
            and self.c0 == other.c0
            and self.c1 == other.c1
        )

    def __repr__(self) -> str:
        return f"Fq12({self.c0}, {self.c1})"
