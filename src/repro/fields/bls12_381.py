"""BLS12-381 field constants.

HyperPlonk (and zkSpeed) operate over the BLS12-381 pairing-friendly curve:

* ``Fr`` is the 255-bit *scalar field*.  All MLE table entries, SumCheck
  intermediate values and circuit witnesses live here.
* ``Fq`` is the 381-bit *base field*.  Elliptic-curve point coordinates used
  by the MSM / commitment kernels live here.

The moduli below are the standard parameters (see the IETF pairing-friendly
curves draft); the curve itself is defined in :mod:`repro.curves.bls12_381`.
"""

from __future__ import annotations

from repro.fields.field import PrimeField

# Scalar field modulus r (255 bits): the order of the G1/G2 subgroups.
FR_MODULUS = 0x73EDA753299D7D483339D80809A1D80553BDA402FFFE5BFEFFFFFFFF00000001

# Base field modulus q (381 bits).
FQ_MODULUS = (
    0x1A0111EA397FE69A4B1BA7B6434BACD764774B84F38512BF6730D2A0F6B0F6241EABFFFEB153FFFFB9FEFFFFFFFFAAAB
)

#: Scalar field of BLS12-381 (255-bit); MLE/SumCheck datatype in zkSpeed.
Fr = PrimeField(FR_MODULUS, name="Fr")

#: Base field of BLS12-381 (381-bit); elliptic-curve coordinate datatype.
Fq = PrimeField(FQ_MODULUS, name="Fq")

#: Bit widths quoted throughout the paper ("255-bit MLEs", "381-bit points").
FR_BITS = FR_MODULUS.bit_length()
FQ_BITS = FQ_MODULUS.bit_length()

#: Two-adicity of Fr (r - 1 = 2^32 * odd); HyperPlonk does not need NTT-friendly
#: roots of unity, but the constant is exposed for completeness and testing.
FR_TWO_ADICITY = 32

#: A generator of the multiplicative group of Fr.
FR_MULTIPLICATIVE_GENERATOR = 7
