"""Montgomery-form modular arithmetic.

zkSpeed's datapaths are built around Montgomery multipliers generated with
HLS (Section 6.1 of the paper).  This module provides a functional model of
Montgomery arithmetic (REDC reduction) both as a correctness cross-check for
the plain-integer arithmetic in :mod:`repro.fields.field` and as the source
of hardware cost parameters (limb counts, number of word multiplications)
that the technology model in :mod:`repro.core.technology` consumes.

A 255-bit or 381-bit Montgomery multiplication decomposes into word-level
multiply-accumulate operations; ``word_multiplications`` reports how many a
schoolbook CIOS implementation needs, which is the quantity HLS-synthesized
multipliers scale with.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MontgomeryContext:
    """Precomputed constants for Montgomery arithmetic modulo ``modulus``.

    Attributes
    ----------
    modulus:
        The odd prime modulus.
    word_bits:
        Machine word size of the modelled multiplier datapath (the paper's
        HLS designs use 64-bit limbs).
    """

    modulus: int
    word_bits: int = 64

    def __post_init__(self) -> None:
        if self.modulus % 2 == 0:
            raise ValueError("Montgomery reduction requires an odd modulus")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")

    # -- derived constants -----------------------------------------------------

    @property
    def num_limbs(self) -> int:
        """Number of machine words needed to hold one operand."""
        return -(-self.modulus.bit_length() // self.word_bits)

    @property
    def r_bits(self) -> int:
        """Bit width of the Montgomery radix R = 2^(limbs * word_bits)."""
        return self.num_limbs * self.word_bits

    @property
    def r(self) -> int:
        """The Montgomery radix R."""
        return 1 << self.r_bits

    @property
    def r_mod_n(self) -> int:
        return self.r % self.modulus

    @property
    def r2_mod_n(self) -> int:
        """R^2 mod N, used to convert into Montgomery form."""
        return (self.r * self.r) % self.modulus

    @property
    def n_prime(self) -> int:
        """-N^{-1} mod R, the REDC constant."""
        return (-pow(self.modulus, -1, self.r)) % self.r

    # -- conversions -----------------------------------------------------------

    def to_montgomery(self, x: int) -> int:
        """Map ``x`` to its Montgomery representation ``x * R mod N``."""
        return (x * self.r) % self.modulus

    def from_montgomery(self, x_mont: int) -> int:
        """Map a Montgomery representative back to the ordinary residue."""
        return self.redc(x_mont)

    # -- core operations ---------------------------------------------------------

    def redc(self, t: int) -> int:
        """Montgomery reduction: returns ``t * R^{-1} mod N`` for ``t < N*R``."""
        if t < 0 or t >= self.modulus * self.r:
            raise ValueError("REDC input out of range [0, N*R)")
        m = ((t % self.r) * self.n_prime) % self.r
        u = (t + m * self.modulus) >> self.r_bits
        if u >= self.modulus:
            u -= self.modulus
        return u

    def mont_mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form operands, result in Montgomery form."""
        return self.redc(a_mont * b_mont)

    def mont_square(self, a_mont: int) -> int:
        return self.redc(a_mont * a_mont)

    def modmul(self, a: int, b: int) -> int:
        """Ordinary-domain modular multiplication routed through REDC.

        This is the functional contract of one hardware "modmul": convert,
        multiply, reduce, convert back.  Used by tests to confirm the
        Montgomery path matches plain ``(a * b) % N``.
        """
        am = self.to_montgomery(a % self.modulus)
        bm = self.to_montgomery(b % self.modulus)
        return self.from_montgomery(self.mont_mul(am, bm))

    # -- hardware-cost helpers ---------------------------------------------------

    def word_multiplications(self) -> int:
        """Word-level multiplies in one CIOS Montgomery multiplication.

        A CIOS (coarsely integrated operand scanning) implementation with
        ``s`` limbs performs ``2*s^2 + s`` word multiplications.  The paper
        notes each 255/381-bit modmul "comprises three integer
        multiplications" at the big-integer granularity; the limb-level count
        here is what the synthesized area of a multiplier tracks.
        """
        s = self.num_limbs
        return 2 * s * s + s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MontgomeryContext(bits={self.modulus.bit_length()}, "
            f"limbs={self.num_limbs}, word_bits={self.word_bits})"
        )
