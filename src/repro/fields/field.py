"""Generic prime-field arithmetic.

The design follows the usual "field object creates elements" pattern: a
:class:`PrimeField` instance describes the modulus (and some cached
constants), and :class:`FieldElement` instances carry a value plus a
reference to their field.  Elements are immutable and hashable, so they can
be used as dictionary keys (useful for MSM bucket bookkeeping and tests).

Arithmetic is implemented with Python integers.  This is intentionally
simple: functional correctness of the HyperPlonk protocol is what matters
here; hardware-level cost is modelled separately in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

IntoField = Union[int, "FieldElement"]


class FieldMismatchError(TypeError):
    """Raised when combining elements from different fields."""


class PrimeField:
    """A prime field GF(p).

    Parameters
    ----------
    modulus:
        The prime modulus ``p``.  Primality is assumed, not checked (the
        moduli used in this library are the standardized BLS12-381 primes).
    name:
        Human-readable name used in ``repr`` output.
    """

    __slots__ = ("modulus", "name", "bit_length", "byte_length", "_zero", "_one")

    def __init__(self, modulus: int, name: str = "F"):
        if modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {modulus}")
        self.modulus = modulus
        self.name = name
        self.bit_length = modulus.bit_length()
        self.byte_length = (self.bit_length + 7) // 8
        self._zero = FieldElement(0, self)
        self._one = FieldElement(1, self)

    # -- element construction -------------------------------------------------

    def __call__(self, value: IntoField) -> "FieldElement":
        """Create (or coerce) an element of this field."""
        if isinstance(value, FieldElement):
            if value.field is not self:
                raise FieldMismatchError(
                    f"cannot coerce element of {value.field!r} into {self!r}"
                )
            return value
        return FieldElement(value % self.modulus, self)

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return self._zero

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return self._one

    def from_bytes(self, data: bytes) -> "FieldElement":
        """Reduce a big-endian byte string into a field element."""
        return self(int.from_bytes(data, "big"))

    def random(self, rng) -> "FieldElement":
        """Draw a uniformly random element using ``rng`` (``random.Random``)."""
        return self(rng.randrange(self.modulus))

    def elements(self, values: Iterable[IntoField]) -> list["FieldElement"]:
        """Vectorized constructor."""
        return [self(v) for v in values]

    # -- misc ------------------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        return isinstance(item, FieldElement) and item.field is self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField({self.name}, {self.bit_length} bits)"


class FieldElement:
    """An immutable element of a :class:`PrimeField`.

    Supports the natural operators (``+``, ``-``, ``*``, ``/``, ``**``,
    unary ``-``) as well as equality and hashing.  Mixed ``int`` operands are
    accepted and reduced into the field.
    """

    __slots__ = ("value", "field")

    def __init__(self, value: int, field: PrimeField):
        self.value = value
        self.field = field

    # -- helpers ---------------------------------------------------------------

    def _coerce(self, other: IntoField) -> int:
        if isinstance(other, FieldElement):
            if other.field.modulus != self.field.modulus:
                raise FieldMismatchError(
                    f"cannot combine {self.field!r} with {other.field!r}"
                )
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: IntoField) -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement((self.value + o) % self.field.modulus, self.field)

    __radd__ = __add__

    def __sub__(self, other: IntoField) -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement((self.value - o) % self.field.modulus, self.field)

    def __rsub__(self, other: IntoField) -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement((o - self.value) % self.field.modulus, self.field)

    def __mul__(self, other: IntoField) -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement((self.value * o) % self.field.modulus, self.field)

    __rmul__ = __mul__

    def __neg__(self) -> "FieldElement":
        return FieldElement((-self.value) % self.field.modulus, self.field)

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(
            pow(self.value, exponent, self.field.modulus), self.field
        )

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse (raises ``ZeroDivisionError`` on zero)."""
        if self.value == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return FieldElement(
            pow(self.value, self.field.modulus - 2, self.field.modulus), self.field
        )

    def __truediv__(self, other: IntoField) -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        if o == 0:
            raise ZeroDivisionError("division by zero field element")
        inv = pow(o, self.field.modulus - 2, self.field.modulus)
        return FieldElement((self.value * inv) % self.field.modulus, self.field)

    def __rtruediv__(self, other: IntoField) -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement(o, self.field) / self

    def double(self) -> "FieldElement":
        return FieldElement((self.value * 2) % self.field.modulus, self.field)

    def square(self) -> "FieldElement":
        return FieldElement((self.value * self.value) % self.field.modulus, self.field)

    def sqrt(self) -> "FieldElement | None":
        """Square root via Tonelli-Shanks; ``None`` if no root exists."""
        p = self.field.modulus
        a = self.value
        if a == 0:
            return self.field.zero()
        if pow(a, (p - 1) // 2, p) != 1:
            return None
        if p % 4 == 3:
            return FieldElement(pow(a, (p + 1) // 4, p), self.field)
        # Tonelli-Shanks for p = 1 mod 4.
        q, s = p - 1, 0
        while q % 2 == 0:
            q //= 2
            s += 1
        z = 2
        while pow(z, (p - 1) // 2, p) != p - 1:
            z += 1
        m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
        while t != 1:
            i, temp = 0, t
            while temp != 1:
                temp = (temp * temp) % p
                i += 1
            b = pow(c, 1 << (m - i - 1), p)
            m, c = i, (b * b) % p
            t, r = (t * c) % p, (r * b) % p
        return FieldElement(r, self.field)

    # -- predicates / conversions ----------------------------------------------

    def is_zero(self) -> bool:
        return self.value == 0

    def is_one(self) -> bool:
        return self.value == 1

    def to_bytes(self) -> bytes:
        """Big-endian fixed-width byte representation."""
        return self.value.to_bytes(self.field.byte_length, "big")

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return (
                other.field.modulus == self.field.modulus
                and other.value == self.value
            )
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:
        return f"{self.field.name}({self.value})"


def dot_product(
    scalars: Sequence[FieldElement], values: Sequence[FieldElement]
) -> FieldElement:
    """Field dot product; both sequences must be non-empty and equal length."""
    if len(scalars) != len(values):
        raise ValueError(
            f"length mismatch: {len(scalars)} scalars vs {len(values)} values"
        )
    if not scalars:
        raise ValueError("dot_product of empty sequences is undefined")
    field = scalars[0].field
    acc = 0
    for s, v in zip(scalars, values):
        acc += s.value * v.value
    return field(acc)
