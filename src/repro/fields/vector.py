"""Dense vectors of prime-field elements with pluggable storage backends.

:class:`FieldVector` is the array type every hot path of the HyperPlonk
prover operates on: MLE tables, SumCheck round accumulators, quotient tables
of the multilinear-KZG opening, and the scalar inputs of an MSM.  It wraps
an opaque backend representation (see :mod:`repro.fields.backends`) and
exposes exactly the operation set the paper's datapath units need:

* elementwise ``+``, ``-``, ``*`` and negation,
* scalar broadcast (``scale``, ``add_scalar``, fused ``axpy``),
* the fold-in-half MLE Update ``lo + r * (hi - lo)`` (:meth:`fold`),
* sum / dot reductions and Montgomery-style batch inversion,
* even/odd deinterleaving, concatenation and slicing.

Elements cross the API boundary as
:class:`~repro.fields.field.FieldElement`; internally everything stays in
the backend's representation, so a 2^mu-entry table makes one round trip at
construction and one at extraction instead of 2^mu per operation.

Backends are chosen per *vector* at construction time and results inherit
their inputs' backend; under the ``auto`` policy, size-changing operations
re-evaluate the choice so a table that shrinks below the vectorization
threshold (e.g. late SumCheck rounds) migrates back to the cheap Python
representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from repro.fields.backends import (
    VectorBackend,
    default_backend_for,
    default_policy,
    get_backend,
)
from repro.fields.field import FieldElement, FieldMismatchError, PrimeField

IntoScalar = Union[int, FieldElement]


class FieldVector:
    """A dense array of elements of one :class:`PrimeField`."""

    __slots__ = ("field", "backend", "data")

    def __init__(self, field: PrimeField, backend: VectorBackend, data):
        self.field = field
        self.backend = backend
        self.data = data

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_ints(
        cls,
        field: PrimeField,
        values: Sequence[int],
        backend: VectorBackend | str | None = None,
    ) -> "FieldVector":
        backend = cls._resolve_backend(backend, len(values))
        p = field.modulus
        reduced = [v % p for v in values]
        return cls(field, backend, backend.from_ints(p, reduced))

    @classmethod
    def from_elements(
        cls,
        field: PrimeField,
        elements: Iterable[IntoScalar],
        backend: VectorBackend | str | None = None,
    ) -> "FieldVector":
        p = field.modulus
        values = []
        for e in elements:
            if isinstance(e, FieldElement):
                if e.field.modulus != p:
                    raise FieldMismatchError(
                        f"cannot build {field!r} vector from {e.field!r} element"
                    )
                # Reduce defensively: directly-constructed FieldElements may
                # carry non-canonical residues, and every backend assumes
                # canonical storage.
                values.append(e.value % p)
            else:
                values.append(e % p)
        backend = cls._resolve_backend(backend, len(values))
        return cls(field, backend, backend.from_ints(p, values))

    @classmethod
    def filled(
        cls,
        field: PrimeField,
        value: IntoScalar,
        length: int,
        backend: VectorBackend | str | None = None,
    ) -> "FieldVector":
        backend = cls._resolve_backend(backend, length)
        if isinstance(value, FieldElement):
            if value.field.modulus != field.modulus:
                raise FieldMismatchError(
                    f"cannot fill {field!r} vector with {value.field!r} element"
                )
            v = value.value % field.modulus
        else:
            v = value % field.modulus
        return cls(field, backend, backend.filled(field.modulus, v, length))

    @classmethod
    def zeros(
        cls,
        field: PrimeField,
        length: int,
        backend: VectorBackend | str | None = None,
    ) -> "FieldVector":
        return cls.filled(field, 0, length, backend)

    @staticmethod
    def _resolve_backend(
        backend: VectorBackend | str | None, length: int
    ) -> VectorBackend:
        if backend is None:
            return default_backend_for(length)
        if isinstance(backend, str):
            return get_backend(backend)
        return backend

    # -- conversions ------------------------------------------------------------

    def to_int_list(self) -> list[int]:
        """Residues of every entry (the MSM digit-extraction boundary)."""
        return self.backend.to_ints(self.field.modulus, self.data)

    def to_elements(self) -> list[FieldElement]:
        field = self.field
        return [FieldElement(v, field) for v in self.to_int_list()]

    def copy(self) -> "FieldVector":
        return FieldVector(
            self.field, self.backend, self.backend.copy(self.field.modulus, self.data)
        )

    def with_backend(self, backend: VectorBackend | str) -> "FieldVector":
        """The same vector re-materialized on another backend."""
        backend = get_backend(backend) if isinstance(backend, str) else backend
        if backend is self.backend:
            return self
        return FieldVector.from_ints(self.field, self.to_int_list(), backend)

    def _rebalanced(self, data) -> "FieldVector":
        """Wrap a same-backend result, migrating backends under ``auto``.

        Only size-changing operations route through here, so the conversion
        cost is paid once per threshold crossing, not per operation.
        """
        result = FieldVector(self.field, self.backend, data)
        if default_policy() == "auto":
            preferred = default_backend_for(self.backend.length(data))
            if preferred is not self.backend:
                return result.with_backend(preferred)
        return result

    # -- shape / element access ---------------------------------------------------

    def __len__(self) -> int:
        return self.backend.length(self.data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return self._rebalanced(
                    self.backend.slice(self.field.modulus, self.data, start, stop)
                )
            values = self.to_int_list()[index]
            return FieldVector.from_ints(self.field, values)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("FieldVector index out of range")
        return FieldElement(
            self.backend.getitem(self.field.modulus, self.data, index), self.field
        )

    def __setitem__(self, index: int, value: IntoScalar) -> None:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("FieldVector index out of range")
        if isinstance(value, FieldElement):
            if value.field.modulus != self.field.modulus:
                raise FieldMismatchError("cannot store element of a different field")
            v = value.value % self.field.modulus
        else:
            v = value % self.field.modulus
        self.backend.setitem(self.field.modulus, self.data, index, v)

    def __iter__(self) -> Iterator[FieldElement]:
        field = self.field
        return iter([FieldElement(v, field) for v in self.to_int_list()])

    def concat(self, *others: "FieldVector") -> "FieldVector":
        parts = [self.data]
        for other in others:
            if other.field.modulus != self.field.modulus:
                raise FieldMismatchError("cannot concatenate different fields")
            if other.backend is not self.backend:
                other = other.with_backend(self.backend)
            parts.append(other.data)
        return self._rebalanced(self.backend.concat(self.field.modulus, parts))

    @classmethod
    def concat_many(
        cls, field: PrimeField, vectors: Sequence["FieldVector"]
    ) -> "FieldVector":
        if not vectors:
            return cls.zeros(field, 0)
        return vectors[0].concat(*vectors[1:])

    # -- helpers -----------------------------------------------------------------

    def _coerce(self, other: "FieldVector") -> "FieldVector":
        if not isinstance(other, FieldVector):
            raise TypeError(f"expected FieldVector, got {type(other).__name__}")
        if other.field.modulus != self.field.modulus:
            raise FieldMismatchError(
                f"cannot combine vectors over {self.field!r} and {other.field!r}"
            )
        if len(other) != len(self):
            raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")
        if other.backend is not self.backend:
            return other.with_backend(self.backend)
        return other

    def _scalar(self, value: IntoScalar) -> int:
        if isinstance(value, FieldElement):
            if value.field.modulus != self.field.modulus:
                raise FieldMismatchError("scalar from a different field")
            # Directly-constructed FieldElements may be unreduced; backends
            # require canonical residues.
            return value.value % self.field.modulus
        return value % self.field.modulus

    # -- elementwise arithmetic -----------------------------------------------------

    def __add__(self, other: "FieldVector") -> "FieldVector":
        other = self._coerce(other)
        return FieldVector(
            self.field,
            self.backend,
            self.backend.add(self.field.modulus, self.data, other.data),
        )

    def __sub__(self, other: "FieldVector") -> "FieldVector":
        other = self._coerce(other)
        return FieldVector(
            self.field,
            self.backend,
            self.backend.sub(self.field.modulus, self.data, other.data),
        )

    def __neg__(self) -> "FieldVector":
        return FieldVector(
            self.field, self.backend, self.backend.neg(self.field.modulus, self.data)
        )

    def __mul__(self, other) -> "FieldVector":
        if isinstance(other, (FieldElement, int)):
            return self.scale(other)
        other = self._coerce(other)
        return FieldVector(
            self.field,
            self.backend,
            self.backend.mul(self.field.modulus, self.data, other.data),
        )

    __rmul__ = __mul__

    # -- scalar broadcast -------------------------------------------------------------

    def scale(self, scalar: IntoScalar) -> "FieldVector":
        return FieldVector(
            self.field,
            self.backend,
            self.backend.scalar_mul(self.field.modulus, self.data, self._scalar(scalar)),
        )

    def add_scalar(self, scalar: IntoScalar) -> "FieldVector":
        return FieldVector(
            self.field,
            self.backend,
            self.backend.scalar_add(self.field.modulus, self.data, self._scalar(scalar)),
        )

    def axpy(self, scalar: IntoScalar, x: "FieldVector") -> "FieldVector":
        """Fused ``self + scalar * x``."""
        x = self._coerce(x)
        return FieldVector(
            self.field,
            self.backend,
            self.backend.axpy(
                self.field.modulus, self.data, self._scalar(scalar), x.data
            ),
        )

    # -- MLE-shaped operations ----------------------------------------------------------

    def fold(self, r: IntoScalar) -> "FieldVector":
        """MLE Update (Equation 2): ``out[i] = self[2i] + r*(self[2i+1] - self[2i])``."""
        n = len(self)
        if n == 0 or n % 2:
            raise ValueError(f"fold requires a non-empty even-length vector, got {n}")
        return self._rebalanced(
            self.backend.fold(self.field.modulus, self.data, self._scalar(r))
        )

    def even_odd(self) -> tuple["FieldVector", "FieldVector"]:
        """Deinterleave into (even-index, odd-index) halves."""
        even, odd = self.backend.even_odd(self.field.modulus, self.data)
        return self._rebalanced(even), self._rebalanced(odd)

    # -- reductions -----------------------------------------------------------------------

    def sum(self) -> FieldElement:
        return FieldElement(self.backend.sum(self.field.modulus, self.data), self.field)

    def dot(self, other: "FieldVector") -> FieldElement:
        other = self._coerce(other)
        return FieldElement(
            self.backend.dot(self.field.modulus, self.data, other.data), self.field
        )

    def inverse(self, batch_size: int | None = None) -> "FieldVector":
        """Elementwise inverse via batch inversion.

        ``batch_size=None`` inverts the whole vector with one field
        exponentiation; a positive ``batch_size`` processes fixed windows
        (one exponentiation each), mirroring hardware batching parameters
        like zkSpeed's FracMLE ``b=64``.  Windowing happens on the native
        backend — no auto-policy rebalancing of the slices.
        """
        p = self.field.modulus
        if batch_size is None or batch_size >= len(self):
            data = self.backend.inverse(p, self.data)
        else:
            if batch_size <= 0:
                raise ValueError("batch_size must be positive")
            parts = [
                self.backend.inverse(
                    p, self.backend.slice(p, self.data, start, min(len(self), start + batch_size))
                )
                for start in range(0, len(self), batch_size)
            ]
            data = self.backend.concat(p, parts)
        return FieldVector(self.field, self.backend, data)

    # -- predicates -------------------------------------------------------------------------

    def is_zero(self) -> bool:
        return self.backend.is_zero(self.field.modulus, self.data)

    def sparsity_counts(self) -> tuple[int, int, int]:
        """``(zeros, ones, dense)`` entry counts (Sparse-MSM statistics)."""
        zeros, ones = self.backend.count_zeros_ones(self.field.modulus, self.data)
        return zeros, ones, len(self) - zeros - ones

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldVector):
            if other.field.modulus != self.field.modulus or len(other) != len(self):
                return False
            if other.backend is self.backend:
                return self.backend.equal(self.field.modulus, self.data, other.data)
            return self.to_int_list() == other.to_int_list()
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            p = self.field.modulus
            mine = self.to_int_list()
            for x, o in zip(mine, other):
                if isinstance(o, FieldElement):
                    if o.field.modulus != p or o.value != x:
                        return False
                elif isinstance(o, int):
                    if o % p != x:
                        return False
                else:
                    return NotImplemented
            return True
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable container

    def __repr__(self) -> str:
        return (
            f"FieldVector({self.field.name}, len={len(self)}, "
            f"backend={self.backend.name})"
        )
