"""Modular inversion primitives used by the FracMLE unit.

The Wiring-Identity step of HyperPlonk needs the inverse of every element of
the Denominator MLE (Section 3.3.3 / 4.4 of the paper).  zkSpeed computes
these with:

* a **constant-time Binary Extended Euclidean Algorithm** (BEEA) that always
  runs ``2*W - 1`` iterations for ``W``-bit inputs (509 cycles for Fr), which
  keeps outputs in-order when several inversions run in parallel; and
* **Montgomery batch inversion**, which amortizes a single BEEA inversion
  over a batch of ``b`` elements using partial products (the paper selects
  ``b = 64``).

Both are implemented here functionally, together with the iteration/latency
counting hooks the hardware model uses.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.field import FieldElement, PrimeField


def beea_iteration_count(bit_width: int) -> int:
    """Iterations of the constant-time BEEA for ``bit_width``-bit moduli.

    The constant-time variant (Pornin 2020, as cited by the paper) runs
    ``2*W - 1`` shift/subtract iterations regardless of the input value, so
    for the 255-bit scalar field this is 509 — the cycle latency quoted in
    Section 4.4.1.
    """
    if bit_width <= 0:
        raise ValueError("bit_width must be positive")
    return 2 * bit_width - 1


def beea_inverse(element: FieldElement) -> FieldElement:
    """Constant-iteration binary extended GCD inversion.

    Functionally equivalent to ``element.inverse()`` but implemented with the
    shift/subtract structure of the hardware unit.  The loop is fixed-length
    (``2*W - 1`` iterations) so that the number of executed iterations does
    not depend on the value being inverted — mirroring the data-oblivious
    hardware described in the paper.
    """
    field = element.field
    p = field.modulus
    a = element.value % p
    if a == 0:
        raise ZeroDivisionError("zero has no inverse")

    # Binary extended GCD with invariants q*a == u (mod p) and r*a == v
    # (mod p), driven for a fixed 2W-1 iteration budget like the hardware's
    # constant-time schedule.  Once u reaches zero the remaining iterations
    # are no-ops, matching the unit which always runs the full schedule.
    u, v = a, p
    q, r = 1, 0
    half = (p + 1) // 2  # multiplicative inverse of 2 mod p
    iterations = beea_iteration_count(field.bit_length)
    for _ in range(iterations):
        if u == 0:
            continue
        if u % 2 == 0:
            u //= 2
            q = q // 2 if q % 2 == 0 else (q // 2 + half) % p
        elif v % 2 == 0:
            v //= 2
            r = r // 2 if r % 2 == 0 else (r // 2 + half) % p
        elif u >= v:
            u = (u - v) // 2
            q = (q - r) % p
            q = q // 2 if q % 2 == 0 else (q // 2 + half) % p
        else:
            v = (v - u) // 2
            r = (r - q) % p
            r = r // 2 if r % 2 == 0 else (r // 2 + half) % p
    # After full reduction v == gcd(a, p) == 1 and r == a^{-1} (mod p).
    result = field(r)
    if (result * element).value != 1:
        raise ArithmeticError("constant-time BEEA failed to converge")
    return result


def batch_inverse(elements: Sequence[FieldElement]) -> list[FieldElement]:
    """Montgomery batch inversion.

    Computes the inverse of every element using a single field inversion plus
    ``3*(n-1)`` multiplications: forward partial products, one inversion of
    the running product, then a backward sweep recovering each inverse.

    Raises ``ZeroDivisionError`` if any element is zero (HyperPlonk's
    denominator MLE elements are derived from random challenges and are
    nonzero with overwhelming probability; the hardware likewise assumes
    nonzero inputs).
    """
    n = len(elements)
    if n == 0:
        return []
    field: PrimeField = elements[0].field
    # Reduce defensively: directly-constructed FieldElements may carry
    # non-canonical residues (e.g. exactly p), which must hit the zero
    # check rather than silently zeroing the whole batch.
    values = [el.value % field.modulus for el in elements]
    try:
        inverses = batch_inverse_ints(values, field.modulus)
    except ZeroDivisionError:
        zero_index = values.index(0)
        raise ZeroDivisionError(
            f"batch_inverse: element {zero_index} is zero"
        ) from None
    return [FieldElement(v, field) for v in inverses]


def batch_inverse_ints(values: Sequence[int], modulus: int) -> list[int]:
    """Montgomery batch inversion over raw residues.

    The same one-inversion-plus-``3*(n-1)``-multiplications scheme as
    :func:`batch_inverse`, but on plain integers modulo ``modulus``.  This is
    the workhorse of the batched-affine curve paths
    (:func:`repro.curves.curve.batch_to_affine` and the MSM bucket trees),
    where coordinates live in Fq and per-element ``FieldElement`` wrapping
    would dominate the saved inversions.
    """
    n = len(values)
    if n == 0:
        return []
    p = modulus
    if 0 in values:
        raise ZeroDivisionError(
            f"batch_inverse_ints: element {values.index(0)} is zero"
        )
    prefix = [0] * n
    running = 1
    for i, v in enumerate(values):
        prefix[i] = running
        running = running * v % p
    inv_running = pow(running, p - 2, p)
    result = prefix
    for i in range(n - 1, -1, -1):
        result[i] = prefix[i] * inv_running % p
        inv_running = inv_running * values[i] % p
    return result


def batch_inverse_multiplication_count(batch_size: int) -> int:
    """Sequential multiplications in the textbook batching scheme (O(b))."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return 3 * (batch_size - 1)


def batch_inverse_tree_depth(batch_size: int) -> int:
    """Depth of the multiplier tree used by zkSpeed's FracMLE unit (O(log b))."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    depth = 0
    size = batch_size
    while size > 1:
        size = (size + 1) // 2
        depth += 1
    return depth
