"""Native backend: compiled Montgomery arithmetic via the cffi kernel.

Thin Python wrapper over ``repro.fields.backends._native_kernel`` (built by
:mod:`repro.fields.backends._native_build`).  Storage is the same ``(L, n)``
uint64 29-bit-limb Montgomery layout as the NumPy backend, held in a flat
``bytearray`` (``L * n * 8`` bytes, limb row ``j`` at byte offset
``j * n * 8``); the C kernels operate on it zero-copy through
``ffi.from_buffer`` and every call releases the GIL for its duration.

Only the boundary conversions (``from_ints`` / ``to_ints`` / ``getitem``)
touch Python integers; whole-vector arithmetic — including the CIOS
Montgomery multiply, the fused ``axpy``, the ``fold`` MLE Update and
prefix-product batch inversion — runs in C.  All residues crossing the
:class:`~repro.fields.backends.base.VectorBackend` interface are canonical,
and the C schedule mirrors the NumPy kernels limb for limb, so results are
byte-identical across the python / numpy / native backends.

Importing this module raises ``ImportError`` when the extension has not
been built; the backend registry treats that as "native unavailable" and
carries on with the pure backends.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.fields.backends._native_kernel import ffi, lib
from repro.fields.backends.base import VectorBackend

LIMB_BITS = 29
LIMB_MASK = (1 << LIMB_BITS) - 1

_WORD = 8  # bytes per uint64 limb


class NativeVecData:
    """Opaque storage handle: ``(L, n)`` limb rows in one flat bytearray."""

    __slots__ = ("buf", "n", "limbs")

    def __init__(self, buf: bytearray, n: int, limbs: int):
        self.buf = buf
        self.n = n
        self.limbs = limbs

    def words(self) -> memoryview:
        """The buffer as a flat uint64 view (native byte order)."""
        return memoryview(self.buf).cast("Q")

    # Pickled inside proving keys shared with forked/spawned workers.
    def __getstate__(self):
        return (bytes(self.buf), self.n, self.limbs)

    def __setstate__(self, state):
        buf, self.n, self.limbs = state
        self.buf = bytearray(buf)


def _backend_singleton():
    from repro.fields.backends import get_backend

    return get_backend("native")


class _NativeFieldContext:
    """Per-modulus constants handed to C as one ``repro_field`` struct."""

    __slots__ = (
        "modulus",
        "num_limbs",
        "r",
        "r_inv",
        "f",
        "r2_c",
        "one_c",
    )

    def __init__(self, modulus: int):
        if modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic requires an odd modulus")
        self.modulus = modulus
        self.num_limbs = -(-modulus.bit_length() // LIMB_BITS)
        if self.num_limbs > 16:
            raise ValueError("native kernel supports moduli up to 16 limbs")
        self.r = 1 << (LIMB_BITS * self.num_limbs)
        self.r_inv = pow(self.r, -1, modulus)
        f = ffi.new("repro_field *")
        f.limbs = self.num_limbs
        f.n0inv = (-pow(modulus, -1, 1 << LIMB_BITS)) % (1 << LIMB_BITS)
        for j, limb in enumerate(self._limb_list(modulus)):
            f.mod[j] = limb
        for j, limb in enumerate(self._limb_list(self.r - modulus)):
            f.comp[j] = limb
        for j, limb in enumerate(self._limb_list(self.r % modulus)):
            f.one_mont[j] = limb
        self.f = f
        self.r2_c = self._limbs_c((self.r * self.r) % modulus)
        self.one_c = self._limbs_c(1)

    def _limb_list(self, value: int) -> list[int]:
        return [
            (value >> (LIMB_BITS * j)) & LIMB_MASK for j in range(self.num_limbs)
        ]

    def _limbs_c(self, value: int):
        return ffi.new("uint64_t[]", self._limb_list(value))

    def to_mont_int(self, value: int) -> int:
        return (value * self.r) % self.modulus

    def from_mont_int(self, value: int) -> int:
        return (value * self.r_inv) % self.modulus


class NativeVectorBackend(VectorBackend):
    """Compiled Montgomery backend (requires the built cffi extension)."""

    name = "native"

    def __init__(self) -> None:
        self._contexts: dict[int, _NativeFieldContext] = {}

    # The engine pickles FieldVectors (inside proving keys) into worker
    # processes; resolve back to the registry singleton instead of
    # serializing cffi handles.
    def __reduce__(self):
        return (_backend_singleton, ())

    def _ctx(self, modulus: int) -> _NativeFieldContext:
        ctx = self._contexts.get(modulus)
        if ctx is None:
            ctx = _NativeFieldContext(modulus)
            self._contexts[modulus] = ctx
        return ctx

    def _alloc(self, ctx: _NativeFieldContext, n: int) -> NativeVecData:
        return NativeVecData(bytearray(ctx.num_limbs * n * _WORD), n, ctx.num_limbs)

    @staticmethod
    def _c(data: NativeVecData):
        return ffi.from_buffer("uint64_t[]", data.buf, require_writable=True)

    # -- construction / conversion --------------------------------------------

    def from_ints(self, modulus: int, values: Sequence[int]) -> NativeVecData:
        ctx = self._ctx(modulus)
        n = len(values)
        out = self._alloc(ctx, n)
        if n == 0:
            return out
        # Pack plain residues row by row, then one broadcast Montgomery
        # multiply by R^2 converts the whole vector into the domain.
        mv = memoryview(out.buf)
        for j in range(ctx.num_limbs):
            shift = LIMB_BITS * j
            row = array("Q", [(v >> shift) & LIMB_MASK for v in values])
            mv[j * n * _WORD : (j + 1) * n * _WORD] = row.tobytes()
        lib.repro_mont_mul_scalar(self._c(out), self._c(out), ctx.r2_c, n, ctx.f)
        return out

    def filled(self, modulus: int, value: int, length: int) -> NativeVecData:
        ctx = self._ctx(modulus)
        out = self._alloc(ctx, length)
        if length == 0:
            return out
        mont = ctx.to_mont_int(value)
        mv = memoryview(out.buf)
        for j in range(ctx.num_limbs):
            limb = (mont >> (LIMB_BITS * j)) & LIMB_MASK
            row = array("Q", [limb]) * length
            mv[j * length * _WORD : (j + 1) * length * _WORD] = row.tobytes()
        return out

    def to_ints(self, modulus: int, data: NativeVecData) -> list[int]:
        ctx = self._ctx(modulus)
        n = data.n
        if n == 0:
            return []
        # Multiplying by plain 1 is one REDC: x*R -> x for the whole vector.
        plain = self._alloc(ctx, n)
        lib.repro_mont_mul_scalar(self._c(plain), self._c(data), ctx.one_c, n, ctx.f)
        words = plain.words()
        out = [0] * n
        for j in range(ctx.num_limbs):
            shift = LIMB_BITS * j
            row = words[j * n : (j + 1) * n].tolist()
            for i in range(n):
                out[i] += row[i] << shift
        return out

    def copy(self, modulus: int, data: NativeVecData) -> NativeVecData:
        return NativeVecData(bytearray(data.buf), data.n, data.limbs)

    # -- shape / element access ------------------------------------------------

    def length(self, data: NativeVecData) -> int:
        return data.n

    def getitem(self, modulus: int, data: NativeVecData, index: int) -> int:
        ctx = self._ctx(modulus)
        words = data.words()
        mont = 0
        for j in range(ctx.num_limbs - 1, -1, -1):
            mont = (mont << LIMB_BITS) | words[j * data.n + index]
        return ctx.from_mont_int(mont)

    def setitem(
        self, modulus: int, data: NativeVecData, index: int, value: int
    ) -> None:
        ctx = self._ctx(modulus)
        mont = ctx.to_mont_int(value)
        words = data.words()
        for j in range(ctx.num_limbs):
            words[j * data.n + index] = (mont >> (LIMB_BITS * j)) & LIMB_MASK

    def slice(
        self, modulus: int, data: NativeVecData, start: int, stop: int
    ) -> NativeVecData:
        ctx = self._ctx(modulus)
        n = data.n
        m = max(0, stop - start)
        out = self._alloc(ctx, m)
        if m:
            src = memoryview(data.buf)
            dst = memoryview(out.buf)
            for j in range(ctx.num_limbs):
                dst[j * m * _WORD : (j + 1) * m * _WORD] = src[
                    (j * n + start) * _WORD : (j * n + stop) * _WORD
                ]
        return out

    def concat(
        self, modulus: int, parts: Sequence[NativeVecData]
    ) -> NativeVecData:
        ctx = self._ctx(modulus)
        total = sum(p.n for p in parts)
        out = self._alloc(ctx, total)
        dst = memoryview(out.buf)
        for j in range(ctx.num_limbs):
            offset = j * total * _WORD
            for p in parts:
                if p.n == 0:
                    continue
                row = memoryview(p.buf)[j * p.n * _WORD : (j + 1) * p.n * _WORD]
                dst[offset : offset + p.n * _WORD] = row
                offset += p.n * _WORD
        return out

    # -- elementwise arithmetic -------------------------------------------------

    def add(self, modulus: int, a: NativeVecData, b: NativeVecData) -> NativeVecData:
        ctx = self._ctx(modulus)
        out = self._alloc(ctx, a.n)
        lib.repro_add(self._c(out), self._c(a), self._c(b), a.n, ctx.f)
        return out

    def sub(self, modulus: int, a: NativeVecData, b: NativeVecData) -> NativeVecData:
        ctx = self._ctx(modulus)
        out = self._alloc(ctx, a.n)
        lib.repro_sub(self._c(out), self._c(a), self._c(b), a.n, ctx.f)
        return out

    def neg(self, modulus: int, a: NativeVecData) -> NativeVecData:
        ctx = self._ctx(modulus)
        out = self._alloc(ctx, a.n)
        lib.repro_neg(self._c(out), self._c(a), a.n, ctx.f)
        return out

    def mul(self, modulus: int, a: NativeVecData, b: NativeVecData) -> NativeVecData:
        ctx = self._ctx(modulus)
        out = self._alloc(ctx, a.n)
        lib.repro_mont_mul(self._c(out), self._c(a), self._c(b), a.n, ctx.f)
        return out

    # -- scalar broadcast --------------------------------------------------------

    def _scalar_c(self, ctx: _NativeFieldContext, scalar: int):
        return ffi.new("uint64_t[]", ctx._limb_list(ctx.to_mont_int(scalar)))

    def scalar_mul(self, modulus: int, a: NativeVecData, scalar: int) -> NativeVecData:
        ctx = self._ctx(modulus)
        if scalar == 0:
            return self._alloc(ctx, a.n)
        if scalar == 1:
            return self.copy(modulus, a)
        out = self._alloc(ctx, a.n)
        lib.repro_mont_mul_scalar(
            self._c(out), self._c(a), self._scalar_c(ctx, scalar), a.n, ctx.f
        )
        return out

    def scalar_add(self, modulus: int, a: NativeVecData, scalar: int) -> NativeVecData:
        ctx = self._ctx(modulus)
        if scalar == 0:
            return self.copy(modulus, a)
        out = self._alloc(ctx, a.n)
        lib.repro_add_scalar(
            self._c(out), self._c(a), self._scalar_c(ctx, scalar), a.n, ctx.f
        )
        return out

    def axpy(
        self, modulus: int, a: NativeVecData, scalar: int, x: NativeVecData
    ) -> NativeVecData:
        ctx = self._ctx(modulus)
        if scalar == 0:
            return self.copy(modulus, a)
        if scalar == 1:
            return self.add(modulus, a, x)
        out = self._alloc(ctx, a.n)
        lib.repro_axpy(
            self._c(out), self._c(a), self._scalar_c(ctx, scalar), self._c(x),
            a.n, ctx.f,
        )
        return out

    # -- MLE-shaped operations ----------------------------------------------------

    def fold(self, modulus: int, a: NativeVecData, r: int) -> NativeVecData:
        ctx = self._ctx(modulus)
        half = a.n // 2
        if r == 0 or r == 1:
            even, odd = self.even_odd(modulus, a)
            return even if r == 0 else odd
        out = self._alloc(ctx, half)
        lib.repro_fold(
            self._c(out), self._c(a), self._scalar_c(ctx, r), half, ctx.f
        )
        return out

    def even_odd(
        self, modulus: int, a: NativeVecData
    ) -> tuple[NativeVecData, NativeVecData]:
        ctx = self._ctx(modulus)
        even = self._alloc(ctx, (a.n + 1) // 2)
        odd = self._alloc(ctx, a.n // 2)
        if a.n:
            lib.repro_even_odd(self._c(even), self._c(odd), self._c(a), a.n, ctx.f)
        return even, odd

    # -- reductions ----------------------------------------------------------------

    def _acc_to_residue(self, ctx: _NativeFieldContext, acc) -> int:
        mont = 0
        for j in range(ctx.num_limbs - 1, -1, -1):
            mont = (mont << LIMB_BITS) + int(acc[j])
        return ctx.from_mont_int(mont % ctx.modulus)

    def sum(self, modulus: int, a: NativeVecData) -> int:
        ctx = self._ctx(modulus)
        acc = ffi.new("uint64_t[]", ctx.num_limbs)
        if a.n:
            lib.repro_limb_sums(acc, self._c(a), a.n, ctx.f)
        return self._acc_to_residue(ctx, acc)

    def dot(self, modulus: int, a: NativeVecData, b: NativeVecData) -> int:
        ctx = self._ctx(modulus)
        acc = ffi.new("uint64_t[]", ctx.num_limbs)
        if a.n:
            lib.repro_dot(acc, self._c(a), self._c(b), a.n, ctx.f)
        return self._acc_to_residue(ctx, acc)

    # -- batch inversion -------------------------------------------------------------

    def inverse(self, modulus: int, a: NativeVecData) -> NativeVecData:
        ctx = self._ctx(modulus)
        n = a.n
        if n == 0:
            return self.copy(modulus, a)
        out = self._alloc(ctx, n)
        total = ffi.new("uint64_t[]", ctx.num_limbs)
        zero_index = lib.repro_inv_prefix(
            self._c(out), total, self._c(a), n, ctx.f
        )
        if zero_index >= 0:
            raise ZeroDivisionError(
                f"batch inverse: element {zero_index} is zero"
            )
        total_mont = 0
        for j in range(ctx.num_limbs - 1, -1, -1):
            total_mont = (total_mont << LIMB_BITS) | int(total[j])
        root = ctx.from_mont_int(total_mont)
        # One scalar field exponentiation at the root; the backward C sweep
        # turns the prefixes into per-element inverses.
        inv_mont = ctx.to_mont_int(pow(root, modulus - 2, modulus))
        total_inv = ffi.new("uint64_t[]", ctx._limb_list(inv_mont))
        lib.repro_inv_finish(self._c(out), self._c(a), total_inv, n, ctx.f)
        return out

    # -- predicates -------------------------------------------------------------------

    def count_zeros_ones(self, modulus: int, a: NativeVecData) -> tuple[int, int]:
        ctx = self._ctx(modulus)
        zeros = ffi.new("size_t *")
        ones = ffi.new("size_t *")
        if a.n:
            lib.repro_count_zeros_ones(self._c(a), a.n, ctx.f, zeros, ones)
        return int(zeros[0]), int(ones[0])

    def is_zero(self, modulus: int, a: NativeVecData) -> bool:
        if a.n == 0:
            return True
        return bool(lib.repro_is_zero(self._c(a), a.n, self._ctx(modulus).f))

    def equal(self, modulus: int, a: NativeVecData, b: NativeVecData) -> bool:
        # Canonical Montgomery limbs make bytewise comparison exact.
        return a.n == b.n and a.buf == b.buf
