"""Reference backend: vectors as plain lists of Python integers.

This is the portable baseline every other backend is checked against.  It is
already substantially faster than per-element
:class:`~repro.fields.field.FieldElement` arithmetic because it

* stores raw residues (no per-element object allocation or field checks),
* fuses multi-step expressions into a single ``%`` reduction per element
  (e.g. the MLE-Update ``lo + r*(hi - lo)`` costs one reduction, not three),
* defers reduction entirely in sum/dot accumulations.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields.backends.base import VectorBackend


class PythonVectorBackend(VectorBackend):
    """Pure-Python ``list[int]`` backend (no third-party dependencies)."""

    name = "python"

    # -- construction / conversion --------------------------------------------

    def from_ints(self, modulus: int, values: Sequence[int]) -> list[int]:
        # The interface transfers ownership of list inputs (FieldVector's
        # constructors always hand over a freshly built list), so the hot
        # table-construction path avoids a redundant O(n) copy.
        return values if type(values) is list else list(values)

    def filled(self, modulus: int, value: int, length: int) -> list[int]:
        return [value] * length

    def to_ints(self, modulus: int, data: list[int]) -> list[int]:
        return list(data)

    def copy(self, modulus: int, data: list[int]) -> list[int]:
        return list(data)

    # -- shape / element access ------------------------------------------------

    def length(self, data: list[int]) -> int:
        return len(data)

    def getitem(self, modulus: int, data: list[int], index: int) -> int:
        return data[index]

    def setitem(self, modulus: int, data: list[int], index: int, value: int) -> None:
        data[index] = value

    def slice(self, modulus: int, data: list[int], start: int, stop: int) -> list[int]:
        return data[start:stop]

    def concat(self, modulus: int, parts: Sequence[list[int]]) -> list[int]:
        out: list[int] = []
        for part in parts:
            out.extend(part)
        return out

    # -- elementwise arithmetic -------------------------------------------------

    def add(self, modulus: int, a: list[int], b: list[int]) -> list[int]:
        p = modulus
        return [s if (s := x + y) < p else s - p for x, y in zip(a, b)]

    def sub(self, modulus: int, a: list[int], b: list[int]) -> list[int]:
        p = modulus
        return [d if (d := x - y) >= 0 else d + p for x, y in zip(a, b)]

    def neg(self, modulus: int, a: list[int]) -> list[int]:
        p = modulus
        return [p - x if x else 0 for x in a]

    def mul(self, modulus: int, a: list[int], b: list[int]) -> list[int]:
        p = modulus
        return [(x * y) % p for x, y in zip(a, b)]

    # -- scalar broadcast --------------------------------------------------------

    def scalar_mul(self, modulus: int, a: list[int], scalar: int) -> list[int]:
        p = modulus
        if scalar == 0:
            return [0] * len(a)
        if scalar == 1:
            return list(a)
        return [(scalar * x) % p for x in a]

    def scalar_add(self, modulus: int, a: list[int], scalar: int) -> list[int]:
        p = modulus
        if scalar == 0:
            return list(a)
        return [s if (s := x + scalar) < p else s - p for x in a]

    def axpy(self, modulus: int, a: list[int], scalar: int, x: list[int]) -> list[int]:
        p = modulus
        if scalar == 0:
            return list(a)
        if scalar == 1:
            return self.add(modulus, a, x)
        return [(y + scalar * z) % p for y, z in zip(a, x)]

    # -- MLE-shaped operations ----------------------------------------------------

    def fold(self, modulus: int, a: list[int], r: int) -> list[int]:
        p = modulus
        pairs = iter(a)
        # One fused reduction per output entry: lo + r*(hi - lo) mod p.
        return [(lo + r * (hi - lo)) % p for lo, hi in zip(pairs, pairs)]

    def even_odd(self, modulus: int, a: list[int]) -> tuple[list[int], list[int]]:
        return a[0::2], a[1::2]

    # -- reductions ----------------------------------------------------------------

    def sum(self, modulus: int, a: list[int]) -> int:
        return sum(a) % modulus

    def dot(self, modulus: int, a: list[int], b: list[int]) -> int:
        acc = 0
        for x, y in zip(a, b):
            acc += x * y
        return acc % modulus

    # -- batch inversion -------------------------------------------------------------

    def inverse(self, modulus: int, a: list[int]) -> list[int]:
        # Montgomery batch inversion (one exponentiation + 3*(n-1)
        # multiplications); single shared implementation with the curve layer.
        from repro.fields.inversion import batch_inverse_ints

        return batch_inverse_ints(a, modulus)

    # -- predicates -------------------------------------------------------------------

    def count_zeros_ones(self, modulus: int, a: list[int]) -> tuple[int, int]:
        zeros = a.count(0)
        ones = a.count(1)
        return zeros, ones

    def equal(self, modulus: int, a: list[int], b: list[int]) -> bool:
        return a == b
