"""Pluggable field-vector backends.

Three backends ship with the repository:

* ``"python"`` -- portable ``list[int]`` arithmetic (always available).
* ``"numpy"``  -- vectorized multi-limb Montgomery arithmetic (requires
  NumPy; silently absent when the dependency is not installed).
* ``"native"`` -- the compiled cffi Montgomery kernel (requires the
  ``_native_kernel`` extension built by ``_native_build.py`` / ``setup.py``;
  silently absent until built).

Selection
---------
The active policy is resolved, in order, from:

1. an explicit :func:`set_default_backend` call (e.g. from the CLI),
2. the ``REPRO_FIELD_BACKEND`` environment variable
   (``python`` / ``numpy`` / ``native`` / ``auto``),
3. the built-in default ``auto``.

``auto`` ranks the registered backends by *priority* and picks the
highest-priority backend whose ``auto_min_length`` the vector meets --
so the compiled kernel (priority 20, crossover ``NATIVE_AUTO_THRESHOLD``,
default 32) outranks NumPy (priority 10, crossover ``AUTO_THRESHOLD``,
default 1024), which outranks the Python reference (priority 0, always
eligible).  Small vectors therefore never pay per-call dispatch overhead,
and third-party backends registered with
``register_backend(backend, auto_priority=..., auto_min_length=...)``
participate in ``auto`` on the same terms.

The crossovers are measured, not guessed: ``benchmarks/bench_field_kernels.py``
puts native ahead of pure Python from ~32 elements (1.7x at 16, 3.6x at 64)
and ahead of NumPy at every size, while NumPy needs ~1k elements to amortize
its dispatch overhead.  Both are overridable via
``REPRO_FIELD_BACKEND_THRESHOLD`` and ``REPRO_FIELD_BACKEND_NATIVE_THRESHOLD``.
"""

from __future__ import annotations

import os

from repro.fields.backends.base import VectorBackend
from repro.fields.backends.python_backend import PythonVectorBackend

__all__ = [
    "VectorBackend",
    "PythonVectorBackend",
    "available_backends",
    "get_backend",
    "default_backend_for",
    "default_policy",
    "register_backend",
    "unregister_backend",
    "set_default_backend",
]

_REGISTRY: dict[str, VectorBackend] = {}

#: ``name -> (auto_priority, auto_min_length)`` for backends that take part
#: in ``auto`` selection.  Higher priority wins among eligible backends.
_AUTO_RANKS: dict[str, tuple[int, int]] = {}


def _int_env(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


#: Vector length at which ``auto`` prefers NumPy over the Python backend.
AUTO_THRESHOLD = _int_env("REPRO_FIELD_BACKEND_THRESHOLD", 1024)

#: Vector length at which ``auto`` prefers the compiled kernel (it beats the
#: Python backend from a few dozen elements; below that, cffi call overhead
#: and limb packing dominate).
NATIVE_AUTO_THRESHOLD = _int_env("REPRO_FIELD_BACKEND_NATIVE_THRESHOLD", 32)


def register_backend(
    backend: VectorBackend,
    *,
    auto_priority: int | None = None,
    auto_min_length: int = 0,
) -> None:
    """Register (or replace) a backend under ``backend.name``.

    ``auto_priority`` opts the backend into ``auto`` selection: among the
    registered backends whose ``auto_min_length`` a vector meets, the
    highest priority wins.  ``None`` keeps the backend explicit-only
    (reachable via ``get_backend`` / ``REPRO_FIELD_BACKEND=<name>`` but
    never chosen by ``auto``).
    """
    _REGISTRY[backend.name] = backend
    if auto_priority is not None:
        _AUTO_RANKS[backend.name] = (auto_priority, auto_min_length)
    else:
        _AUTO_RANKS.pop(backend.name, None)


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (and from ``auto`` selection)."""
    if name == "python":
        raise ValueError("the python reference backend cannot be unregistered")
    _REGISTRY.pop(name, None)
    _AUTO_RANKS.pop(name, None)


register_backend(PythonVectorBackend(), auto_priority=0, auto_min_length=0)

try:  # NumPy is an optional dependency; the repo must work without it.
    from repro.fields.backends.numpy_backend import NumpyVectorBackend

    register_backend(
        NumpyVectorBackend(), auto_priority=10, auto_min_length=AUTO_THRESHOLD
    )
    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised on NumPy-free installs
    HAS_NUMPY = False

try:  # The compiled kernel is optional; absent until built in place.
    from repro.fields.backends.native_backend import NativeVectorBackend

    register_backend(
        NativeVectorBackend(),
        auto_priority=20,
        auto_min_length=NATIVE_AUTO_THRESHOLD,
    )
    HAS_NATIVE = True
except ImportError:  # pragma: no cover - exercised on extension-free installs
    HAS_NATIVE = False

_override_policy: str | None = None


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> VectorBackend:
    """Look up a backend by name (raises ``KeyError`` with guidance)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown field-vector backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def set_default_backend(name: str | None) -> None:
    """Force the selection policy (a backend name, ``"auto"``, or ``None``).

    ``None`` restores environment-variable / built-in resolution.
    """
    if name is not None and name != "auto":
        get_backend(name)  # validate eagerly
    global _override_policy
    _override_policy = name


def default_policy() -> str:
    """The currently active policy string."""
    if _override_policy is not None:
        return _override_policy
    return os.environ.get("REPRO_FIELD_BACKEND", "auto")


def default_backend_for(length: int) -> VectorBackend:
    """Resolve the backend a new ``length``-element vector should use."""
    policy = default_policy()
    if policy == "auto":
        best = _REGISTRY["python"]
        best_rank = -1
        for name, (priority, min_length) in _AUTO_RANKS.items():
            if length >= min_length and priority > best_rank:
                best = _REGISTRY[name]
                best_rank = priority
        return best
    backend = _REGISTRY.get(policy)
    if backend is None:
        # A requested-but-unavailable backend (e.g. REPRO_FIELD_BACKEND=native
        # without the built extension) degrades to the reference
        # implementation rather than failing an otherwise valid run.
        return _REGISTRY["python"]
    return backend
