"""Pluggable field-vector backends.

Two backends ship with the repository:

* ``"python"`` -- portable ``list[int]`` arithmetic (always available).
* ``"numpy"``  -- vectorized multi-limb Montgomery arithmetic (requires
  NumPy; silently absent when the dependency is not installed).

Selection
---------
The active policy is resolved, in order, from:

1. an explicit :func:`set_default_backend` call (e.g. from the CLI),
2. the ``REPRO_FIELD_BACKEND`` environment variable
   (``python`` / ``numpy`` / ``auto``),
3. the built-in default ``auto``.

``auto`` picks NumPy for vectors of at least ``REPRO_FIELD_BACKEND_THRESHOLD``
elements (default 1024 -- the measured crossover where vectorized Montgomery
limb arithmetic overtakes CPython big-int arithmetic) and the Python backend
below it, so small test vectors never pay per-call NumPy dispatch overhead.
"""

from __future__ import annotations

import os

from repro.fields.backends.base import VectorBackend
from repro.fields.backends.python_backend import PythonVectorBackend

__all__ = [
    "VectorBackend",
    "PythonVectorBackend",
    "available_backends",
    "get_backend",
    "default_backend_for",
    "default_policy",
    "register_backend",
    "set_default_backend",
]

_REGISTRY: dict[str, VectorBackend] = {}


def register_backend(backend: VectorBackend) -> None:
    """Register (or replace) a backend under ``backend.name``."""
    _REGISTRY[backend.name] = backend


register_backend(PythonVectorBackend())

try:  # NumPy is an optional dependency; the repo must work without it.
    from repro.fields.backends.numpy_backend import NumpyVectorBackend

    register_backend(NumpyVectorBackend())
    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised on NumPy-free installs
    HAS_NUMPY = False


def _threshold_from_env() -> int:
    raw = os.environ.get("REPRO_FIELD_BACKEND_THRESHOLD", "")
    try:
        return int(raw)
    except ValueError:
        return 1024


#: Vector length at which ``auto`` switches from the Python backend to NumPy.
AUTO_THRESHOLD = _threshold_from_env()

_override_policy: str | None = None


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> VectorBackend:
    """Look up a backend by name (raises ``KeyError`` with guidance)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown field-vector backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def set_default_backend(name: str | None) -> None:
    """Force the selection policy (``"python"``/``"numpy"``/``"auto"``/None).

    ``None`` restores environment-variable / built-in resolution.
    """
    if name is not None and name != "auto":
        get_backend(name)  # validate eagerly
    global _override_policy
    _override_policy = name


def default_policy() -> str:
    """The currently active policy string."""
    if _override_policy is not None:
        return _override_policy
    return os.environ.get("REPRO_FIELD_BACKEND", "auto")


def default_backend_for(length: int) -> VectorBackend:
    """Resolve the backend a new ``length``-element vector should use."""
    policy = default_policy()
    if policy == "auto":
        if HAS_NUMPY and length >= AUTO_THRESHOLD:
            return _REGISTRY["numpy"]
        return _REGISTRY["python"]
    backend = _REGISTRY.get(policy)
    if backend is None:
        # A requested-but-unavailable backend (e.g. REPRO_FIELD_BACKEND=numpy
        # without NumPy installed) degrades to the reference implementation
        # rather than failing an otherwise valid run.
        return _REGISTRY["python"]
    return backend
