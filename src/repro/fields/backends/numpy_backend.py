"""NumPy backend: multi-limb Montgomery arithmetic over uint64 lanes.

Elements are stored as ``(L, n)`` ``uint64`` arrays of 29-bit limbs in
Montgomery form (``x * R mod N`` with ``R = 2^(29 L)``), little-endian limb
order, every limb normalized below ``2^29`` and every value below ``N``.
This is the software analogue of zkSpeed's wide Montgomery-multiplier
datapaths (Section 6.1): one vectorized multiply advances *all* lanes of an
MLE table through the same schoolbook+REDC schedule a hardware unit would
pipeline.

Why 29-bit limbs in 64-bit lanes: a limb product is below ``2^58``, so a
full schoolbook column (up to ``L`` products from the operand product plus
``L`` more from the interleaved REDC additions, ``L <= 14`` for the BLS12-381
base field) accumulates below ``2^63`` -- lazy carries never overflow a
``uint64`` lane, and carry propagation happens once per multiplication
instead of once per partial product.

Large vectors are processed in cache-sized chunks; the ``(2L, chunk)``
accumulator of a 255-bit multiply then stays within L2, which measurably
beats both the unchunked kernel and CPython big-int arithmetic from a few
hundred lanes upward.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fields.backends.base import VectorBackend

LIMB_BITS = 29
LIMB_MASK = (1 << LIMB_BITS) - 1

#: Lanes per cache-sized tile of the multiply kernel.
CHUNK = 4096

_U_MASK = np.uint64(LIMB_MASK)
_U_SHIFT = np.uint64(LIMB_BITS)


class _MontgomeryLaneContext:
    """Per-modulus constants for the vectorized Montgomery kernels."""

    __slots__ = (
        "modulus",
        "num_limbs",
        "r",
        "r_inv",
        "n0_inv",
        "n_col",
        "comp_n_col",
        "one_mont_col",
        "r2_col",
        "one_col",
    )

    def __init__(self, modulus: int):
        if modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic requires an odd modulus")
        self.modulus = modulus
        self.num_limbs = -(-modulus.bit_length() // LIMB_BITS)
        self.r = 1 << (LIMB_BITS * self.num_limbs)
        self.r_inv = pow(self.r, -1, modulus)
        self.n0_inv = np.uint64((-pow(modulus, -1, 1 << LIMB_BITS)) % (1 << LIMB_BITS))
        self.n_col = self._int_to_col(modulus)
        self.comp_n_col = self._int_to_col(self.r - modulus)
        self.one_mont_col = self._int_to_col(self.r % modulus)
        # R^2 (to enter the Montgomery domain) and plain 1 (to leave it).
        self.r2_col = self._int_to_col((self.r * self.r) % modulus)
        self.one_col = self._int_to_col(1)

    def _int_to_col(self, value: int) -> np.ndarray:
        limbs = [
            (value >> (LIMB_BITS * j)) & LIMB_MASK for j in range(self.num_limbs)
        ]
        return np.array(limbs, dtype=np.uint64).reshape(self.num_limbs, 1)

    # -- scalar conversions ----------------------------------------------------

    def to_mont_int(self, value: int) -> int:
        return (value * self.r) % self.modulus

    def from_mont_int(self, value: int) -> int:
        return (value * self.r_inv) % self.modulus

    # -- limb packing -----------------------------------------------------------

    def pack(self, mont_values: Sequence[int]) -> np.ndarray:
        """Montgomery-form integers -> (L, n) limb array."""
        arr = np.empty((self.num_limbs, len(mont_values)), dtype=np.uint64)
        for j in range(self.num_limbs):
            shift = LIMB_BITS * j
            arr[j] = [(v >> shift) & LIMB_MASK for v in mont_values]
        return arr

    def unpack(self, data: np.ndarray) -> list[int]:
        """(L, n) limb array -> Montgomery-form integers."""
        out = [0] * data.shape[1]
        rows = data.tolist()
        for j in range(self.num_limbs):
            shift = LIMB_BITS * j
            row = rows[j]
            for i in range(len(out)):
                out[i] += row[i] << shift
        return out

    # -- vector kernels ------------------------------------------------------------

    def _normalize(self, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Propagate lazy carries in place; returns (t, carry_out)."""
        carry = t[0] >> _U_SHIFT
        t[0] &= _U_MASK
        for j in range(1, t.shape[0]):
            t[j] += carry
            carry = t[j] >> _U_SHIFT
            t[j] &= _U_MASK
        return t, carry

    def _cond_sub_n(self, t: np.ndarray, carry_in: np.ndarray) -> np.ndarray:
        """Reduce a normalized value below ``2N`` into ``[0, N)``.

        ``carry_in`` is the overflow limb from normalization (0 or 1); the
        represented value is ``carry_in * R + t``.
        """
        d = t + self.comp_n_col
        d, carry = self._normalize(d)
        take = (carry | carry_in).astype(bool)
        for j in range(t.shape[0]):
            t[j] = np.where(take, d[j], t[j])
        return t

    def _mul_tile(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Montgomery product of one tile; ``b`` may be (L, 1) broadcast."""
        L = self.num_limbs
        n = a.shape[1]
        t = np.zeros((2 * L, n), dtype=np.uint64)
        for i in range(L):
            t[i : i + L] += a[i] * b
        n0 = self.n0_inv
        n_col = self.n_col
        for i in range(L):
            m = (t[i] * n0) & _U_MASK
            t[i : i + L] += m * n_col
            t[i + 1] += t[i] >> _U_SHIFT
        res = np.ascontiguousarray(t[L:])
        res, carry = self._normalize(res)
        return self._cond_sub_n(res, carry)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._chunked(self._mul_tile, a, b)

    def _add_tile(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        t = a + b
        t, carry = self._normalize(t)
        return self._cond_sub_n(t, carry)

    def _sub_tile(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # Borrow-chain subtraction: s = a_j + base - b_j - borrow in [1, 2^30).
        L = self.num_limbs
        base = np.uint64(1 << LIMB_BITS)
        one = np.uint64(1)
        t = np.empty_like(a, shape=(L, a.shape[1]))
        borrow = np.zeros(a.shape[1], dtype=np.uint64)
        for j in range(L):
            s = a[j] + base - (b[j] if b.shape[1] != 1 else b[j, 0]) - borrow
            t[j] = s & _U_MASK
            borrow = one - (s >> _U_SHIFT)
        # Where the final borrow fired the true value is t - base^L; adding N
        # (mod base^L) lands it back in [0, N).
        d = t + self.n_col
        d, _ = self._normalize(d)
        need = borrow.astype(bool)
        for j in range(L):
            t[j] = np.where(need, d[j], t[j])
        return t

    def _chunked(self, tile_fn, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = a.shape[1]
        if n <= CHUNK:
            return tile_fn(a, b)
        out = np.empty((self.num_limbs, n), dtype=np.uint64)
        broadcast = b.shape[1] == 1
        for s in range(0, n, CHUNK):
            e = min(n, s + CHUNK)
            out[:, s:e] = tile_fn(a[:, s:e], b if broadcast else b[:, s:e])
        return out

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._chunked(self._add_tile, a, b)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._chunked(self._sub_tile, a, b)

    def nonzero_mask(self, a: np.ndarray) -> np.ndarray:
        return a.any(axis=0)


class NumpyVectorBackend(VectorBackend):
    """Vectorized Montgomery backend (requires NumPy)."""

    name = "numpy"

    def __init__(self) -> None:
        self._contexts: dict[int, _MontgomeryLaneContext] = {}

    def _ctx(self, modulus: int) -> _MontgomeryLaneContext:
        ctx = self._contexts.get(modulus)
        if ctx is None:
            ctx = _MontgomeryLaneContext(modulus)
            self._contexts[modulus] = ctx
        return ctx

    # -- construction / conversion --------------------------------------------

    def from_ints(self, modulus: int, values: Sequence[int]) -> np.ndarray:
        ctx = self._ctx(modulus)
        packed = ctx.pack(list(values))
        # One vectorized multiply by R^2 converts the whole vector into
        # Montgomery form.
        return ctx.mul(packed, ctx.r2_col)

    def filled(self, modulus: int, value: int, length: int) -> np.ndarray:
        ctx = self._ctx(modulus)
        col = ctx._int_to_col(ctx.to_mont_int(value))
        return np.repeat(col, length, axis=1)

    def to_ints(self, modulus: int, data: np.ndarray) -> list[int]:
        ctx = self._ctx(modulus)
        # Multiplying by one in the Montgomery domain is a REDC: it maps
        # x*R back to x for the entire vector at once.
        plain = ctx.mul(data, ctx.one_col)
        return ctx.unpack(plain)

    def copy(self, modulus: int, data: np.ndarray) -> np.ndarray:
        return data.copy()

    # -- shape / element access ------------------------------------------------

    def length(self, data: np.ndarray) -> int:
        return data.shape[1]

    def getitem(self, modulus: int, data: np.ndarray, index: int) -> int:
        ctx = self._ctx(modulus)
        mont = 0
        for j in range(ctx.num_limbs - 1, -1, -1):
            mont = (mont << LIMB_BITS) | int(data[j, index])
        return ctx.from_mont_int(mont)

    def setitem(self, modulus: int, data: np.ndarray, index: int, value: int) -> None:
        ctx = self._ctx(modulus)
        mont = ctx.to_mont_int(value)
        for j in range(ctx.num_limbs):
            data[j, index] = (mont >> (LIMB_BITS * j)) & LIMB_MASK

    def slice(self, modulus: int, data: np.ndarray, start: int, stop: int) -> np.ndarray:
        # Explicit copy: a full-range slice of a contiguous array would
        # otherwise alias the source, making later setitem calls mutate it
        # (the python backend always returns an independent list).
        return data[:, start:stop].copy()

    def concat(self, modulus: int, parts: Sequence[np.ndarray]) -> np.ndarray:
        return np.concatenate(list(parts), axis=1)

    # -- elementwise arithmetic -------------------------------------------------

    def add(self, modulus: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._ctx(modulus).add(a, b)

    def sub(self, modulus: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._ctx(modulus).sub(a, b)

    def neg(self, modulus: int, a: np.ndarray) -> np.ndarray:
        ctx = self._ctx(modulus)
        zero = np.zeros((ctx.num_limbs, 1), dtype=np.uint64)
        out = ctx.sub(np.broadcast_to(zero, a.shape), a)
        # 0 - 0 must stay 0, which the borrow chain already guarantees.
        return out

    def mul(self, modulus: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._ctx(modulus).mul(a, b)

    # -- scalar broadcast --------------------------------------------------------

    def _scalar_col(self, modulus: int, scalar: int) -> np.ndarray:
        ctx = self._ctx(modulus)
        return ctx._int_to_col(ctx.to_mont_int(scalar))

    def scalar_mul(self, modulus: int, a: np.ndarray, scalar: int) -> np.ndarray:
        if scalar == 0:
            ctx = self._ctx(modulus)
            return np.zeros((ctx.num_limbs, a.shape[1]), dtype=np.uint64)
        if scalar == 1:
            return a.copy()
        return self._ctx(modulus).mul(a, self._scalar_col(modulus, scalar))

    def scalar_add(self, modulus: int, a: np.ndarray, scalar: int) -> np.ndarray:
        if scalar == 0:
            return a.copy()
        return self._ctx(modulus).add(a, self._scalar_col(modulus, scalar))

    def axpy(self, modulus: int, a: np.ndarray, scalar: int, x: np.ndarray) -> np.ndarray:
        ctx = self._ctx(modulus)
        if scalar == 0:
            return a.copy()
        if scalar == 1:
            return ctx.add(a, x)
        return ctx.add(a, ctx.mul(x, self._scalar_col(modulus, scalar)))

    # -- MLE-shaped operations ----------------------------------------------------

    def fold(self, modulus: int, a: np.ndarray, r: int) -> np.ndarray:
        ctx = self._ctx(modulus)
        # copy() rather than ascontiguousarray: the r in {0, 1} early
        # returns hand these to the caller, and a single-column slice can
        # alias the source.
        lo = a[:, 0::2].copy()
        hi = a[:, 1::2].copy()
        diff = ctx.sub(hi, lo)
        if r == 0:
            return lo
        if r == 1:
            return hi
        return ctx.add(lo, ctx.mul(diff, self._scalar_col(modulus, r)))

    def even_odd(self, modulus: int, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # copy() for the same aliasing reason as slice().
        return a[:, 0::2].copy(), a[:, 1::2].copy()

    # -- reductions ----------------------------------------------------------------

    def sum(self, modulus: int, a: np.ndarray) -> int:
        ctx = self._ctx(modulus)
        # The Montgomery map is linear: sum of forms == form of the sum, so
        # per-limb lane sums followed by one scalar conversion suffice.
        # Limbs stay below 2^29, so uint64 lane sums are exact up to 2^35 lanes.
        limb_sums = a.sum(axis=1, dtype=np.uint64).tolist()
        mont = 0
        for j, limb in enumerate(limb_sums):
            mont += int(limb) << (LIMB_BITS * j)
        return ctx.from_mont_int(mont % modulus)

    def dot(self, modulus: int, a: np.ndarray, b: np.ndarray) -> int:
        ctx = self._ctx(modulus)
        prod = ctx.mul(a, b)  # Montgomery form of a_i * b_i
        return self.sum(modulus, prod)

    # -- batch inversion -------------------------------------------------------------

    def inverse(self, modulus: int, a: np.ndarray) -> np.ndarray:
        ctx = self._ctx(modulus)
        n = a.shape[1]
        if n == 0:
            return a.copy()
        if not ctx.nonzero_mask(a).all():
            index = int(np.argmin(ctx.nonzero_mask(a)))
            raise ZeroDivisionError(f"batch inverse: element {index} is zero")
        # Pairwise product tree: log2(n) vectorized multiplies up, one scalar
        # inversion at the root, log2(n) multiplies down -- the same 3n-ish
        # multiplication budget as Montgomery batching, but SIMD-friendly.
        levels = [a]
        current = a
        while current.shape[1] > 1:
            if current.shape[1] % 2 == 1:
                current = np.concatenate([current, ctx.one_mont_col], axis=1)
                levels[-1] = current
            current = ctx.mul(
                np.ascontiguousarray(current[:, 0::2]),
                np.ascontiguousarray(current[:, 1::2]),
            )
            levels.append(current)
        root_mont = 0
        for j in range(ctx.num_limbs - 1, -1, -1):
            root_mont = (root_mont << LIMB_BITS) | int(levels[-1][j, 0])
        root = ctx.from_mont_int(root_mont)
        root_inv_mont = ctx.to_mont_int(pow(root, modulus - 2, modulus))
        inv = ctx._int_to_col(root_inv_mont)
        for level in reversed(levels[:-1]):
            even = np.ascontiguousarray(level[:, 0::2])
            odd = np.ascontiguousarray(level[:, 1::2])
            # A padded odd-width parent leaves one surplus inverse; drop it.
            inv = np.ascontiguousarray(inv[:, : even.shape[1]])
            inv_even = ctx.mul(inv, odd)
            inv_odd = ctx.mul(inv, even)
            nxt = np.empty((ctx.num_limbs, level.shape[1]), dtype=np.uint64)
            nxt[:, 0::2] = inv_even
            nxt[:, 1::2] = inv_odd
            inv = nxt
        return np.ascontiguousarray(inv[:, :n])

    # -- predicates -------------------------------------------------------------------

    def count_zeros_ones(self, modulus: int, a: np.ndarray) -> tuple[int, int]:
        ctx = self._ctx(modulus)
        nonzero = ctx.nonzero_mask(a)
        ones = (a == ctx.one_mont_col).all(axis=0)
        return int(a.shape[1] - nonzero.sum()), int(ones.sum())

    def is_zero(self, modulus: int, a: np.ndarray) -> bool:
        return not a.any()

    def equal(self, modulus: int, a: np.ndarray, b: np.ndarray) -> bool:
        # Both operands are canonical (< N, normalized limbs), so limbwise
        # equality is exact.
        return a.shape == b.shape and bool(np.array_equal(a, b))
