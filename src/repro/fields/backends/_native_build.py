"""cffi build script for the native Montgomery field kernel.

Compiles ``repro.fields.backends._native_kernel`` — a C extension
implementing whole-vector Montgomery arithmetic over the same ``(L, n)``
uint64 29-bit-limb layout as the NumPy backend: limb ``j`` of lane ``i``
lives at ``data[j * n + i]`` (row-major limb rows, little-endian limb
order), every limb normalized below ``2^29`` and every value canonical
(below ``N``) in Montgomery form.

The arithmetic schedule is a line-for-line port of the NumPy kernels
(:mod:`repro.fields.backends.numpy_backend`), which keeps the compiled
backends bit-identical by construction:

* CIOS-style interleaved Montgomery multiplication with lazy carries —
  29-bit limbs in 64-bit lanes mean a full schoolbook column (operand
  products plus the interleaved REDC additions, ``L <= 14`` for the
  BLS12-381 base field) stays below ``2^63`` and carries propagate once
  per multiply;
* borrow-chain subtraction with conditional ``+N``;
* batch inversion as a prefix-product sweep (one field exponentiation at
  the root, performed by the Python caller) — inverse *values* are unique,
  so any batching scheme matches the other backends byte for byte.

Two structural choices carry the speed:

* the hot kernels are *macro-instantiated* with the limb count as a
  compile-time constant for the two BLS12-381 fields (L=9 for the 255-bit
  scalar field, L=14 for the 381-bit base field), so the compiler fully
  unrolls the limb loops; any other modulus takes a generic runtime-L
  fallback;
* elementwise arithmetic runs *row-wise over cache-sized tiles* (the
  NumPy dataflow, minus the dispatch overhead).  Because limbs are 29-bit,
  every multiply in the schedule is 32x32->64 — the shape SSE/AVX
  ``pmuludq`` implements directly — and the row-wise inner loops
  autovectorize.

Build it in place (no new dependencies; cffi and a C compiler ship with
the toolchain image) with::

    python src/repro/fields/backends/_native_build.py

or via ``pip install -e .`` / ``python setup.py build_ext --inplace``
(the ``cffi_modules`` hook in ``setup.py``).  When the extension is
absent or fails to import, the backend registry simply skips ``native``
— nothing else in the repository depends on it.

cffi API-mode calls release the GIL for the duration of the C function,
so every whole-vector kernel below is a GIL-free region.
"""

from __future__ import annotations

try:
    from cffi import FFI
except ImportError:  # pragma: no cover - build script only runs with cffi
    FFI = None

CDEF = """
typedef struct {
    int limbs;
    uint64_t n0inv;
    uint64_t mod[16];
    uint64_t comp[16];
    uint64_t one_mont[16];
} repro_field;

void repro_mont_mul(uint64_t *out, const uint64_t *a, const uint64_t *b,
                    size_t n, const repro_field *f);
void repro_mont_mul_scalar(uint64_t *out, const uint64_t *a,
                           const uint64_t *s, size_t n,
                           const repro_field *f);
void repro_add(uint64_t *out, const uint64_t *a, const uint64_t *b,
               size_t n, const repro_field *f);
void repro_add_scalar(uint64_t *out, const uint64_t *a, const uint64_t *s,
                      size_t n, const repro_field *f);
void repro_sub(uint64_t *out, const uint64_t *a, const uint64_t *b,
               size_t n, const repro_field *f);
void repro_neg(uint64_t *out, const uint64_t *a, size_t n,
               const repro_field *f);
void repro_axpy(uint64_t *out, const uint64_t *a, const uint64_t *s,
                const uint64_t *x, size_t n, const repro_field *f);
void repro_fold(uint64_t *out, const uint64_t *a, const uint64_t *r,
                size_t half, const repro_field *f);
void repro_even_odd(uint64_t *even, uint64_t *odd, const uint64_t *a,
                    size_t n, const repro_field *f);
void repro_limb_sums(uint64_t *acc, const uint64_t *a, size_t n,
                     const repro_field *f);
void repro_dot(uint64_t *acc, const uint64_t *a, const uint64_t *b,
               size_t n, const repro_field *f);
int64_t repro_inv_prefix(uint64_t *prefix, uint64_t *total,
                         const uint64_t *a, size_t n,
                         const repro_field *f);
void repro_inv_finish(uint64_t *out, const uint64_t *a,
                      const uint64_t *total_inv, size_t n,
                      const repro_field *f);
void repro_count_zeros_ones(const uint64_t *a, size_t n,
                            const repro_field *f, size_t *zeros,
                            size_t *ones);
int repro_is_zero(const uint64_t *a, size_t n, const repro_field *f);
"""

C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <string.h>

#define LIMB_BITS 29
#define LIMB_MASK ((uint64_t)((1ULL << LIMB_BITS) - 1))
#define LIMB_BASE ((uint64_t)1 << LIMB_BITS)
#define MAX_LIMBS 16

/* Lanes per tile of the row-wise kernels: the (2L, TILE) multiply
 * accumulator of a 381-bit product stays within L2. */
#define TILE 256

typedef struct {
    int limbs;          /* L: limbs per element (ceil(bits / 29)) */
    uint64_t n0inv;     /* -N^-1 mod 2^29 */
    uint64_t mod[MAX_LIMBS];      /* N, 29-bit limbs, little-endian */
    uint64_t comp[MAX_LIMBS];     /* R - N (the conditional-subtract adder) */
    uint64_t one_mont[MAX_LIMBS]; /* R mod N (Montgomery form of 1) */
} repro_field;

/* ---- lane helpers -------------------------------------------------------
 * Layout: (L, n) row-major limb rows -- limb j of lane i at a[j*n + i].
 * These gather one element's limbs into a register-resident array for the
 * sequential kernels (the prefix-product inversion sweeps); elementwise
 * arithmetic uses the row-wise tile kernels below instead. */

static inline void lane_load(uint64_t *dst, const uint64_t *a, size_t i,
                             size_t n, int L) {
    for (int j = 0; j < L; j++) dst[j] = a[(size_t)j * n + i];
}

static inline void lane_store(uint64_t *out, const uint64_t *src, size_t i,
                              size_t n, int L) {
    for (int j = 0; j < L; j++) out[(size_t)j * n + i] = src[j];
}

static inline int lane_is_zero(const uint64_t *v, int L) {
    uint64_t any = 0;
    for (int j = 0; j < L; j++) any |= v[j];
    return any == 0;
}

/* Reduce a normalized value (carry * R + t, guaranteed < 2N) into [0, N). */
static inline void lane_cond_sub(uint64_t *t, const uint64_t *mod,
                                 uint64_t carry, int L) {
    int ge = carry != 0;
    if (!ge) {
        ge = 1; /* t == N also subtracts (canonical residues are < N) */
        for (int j = L - 1; j >= 0; j--) {
            if (t[j] != mod[j]) { ge = t[j] > mod[j]; break; }
        }
    }
    if (ge) {
        uint64_t borrow = 0;
        for (int j = 0; j < L; j++) {
            uint64_t v = t[j] + LIMB_BASE - mod[j] - borrow;
            t[j] = v & LIMB_MASK;
            borrow = 1 - (v >> LIMB_BITS);
        }
        /* A final borrow cancels against the carry limb (value < 2N). */
    }
}

/* One Montgomery product: the CIOS schedule of the NumPy _mul_tile kernel.
 * Schoolbook columns accumulate lazily (at most 2L products per column,
 * each < 2^58, so columns stay < 2^63), then one interleaved REDC pass and
 * a single normalization. */
static inline void mont_mul1(uint64_t *out, const uint64_t *a,
                             const uint64_t *b, const uint64_t *mod,
                             uint64_t n0inv, int L) {
    uint64_t t[2 * MAX_LIMBS];
    memset(t, 0, sizeof(uint64_t) * (size_t)(2 * L));
    for (int i = 0; i < L; i++) {
        uint64_t ai = a[i];
        for (int j = 0; j < L; j++) t[i + j] += ai * b[j];
    }
    for (int i = 0; i < L; i++) {
        uint64_t m = (t[i] * n0inv) & LIMB_MASK;
        for (int j = 0; j < L; j++) t[i + j] += m * mod[j];
        t[i + 1] += t[i] >> LIMB_BITS;
    }
    uint64_t carry = 0;
    for (int j = 0; j < L; j++) {
        uint64_t v = t[L + j] + carry;
        out[j] = v & LIMB_MASK;
        carry = v >> LIMB_BITS;
    }
    lane_cond_sub(out, mod, carry, L);
}

/* ---- row-wise tile kernels ----------------------------------------------
 * The NumPy dataflow in C: contiguous row operations over TILE-lane tiles,
 * every multiply a 32x32->64 (limbs < 2^29), so the inner k-loops
 * autovectorize to pmuludq/paddq.  Scratch tiles use a fixed TILE row
 * stride; source/destination rows use the caller's stride (the vector
 * length n).  Instantiated per limb count: LV is a literal 9 / 14 for the
 * two BLS12-381 fields (full unroll of the j-loops) and f->limbs in the
 * generic fallback. */

#define DEFINE_FIELD_KERNELS(SUF, LV)                                        \
/* Propagate lazy carries of an (L, TILE-stride) scratch tile in place. */   \
static void tnorm_##SUF(uint64_t *t, uint64_t *carry, size_t T,              \
                        const repro_field *f) {                              \
    const int L = (LV); (void)f;                                             \
    for (size_t k = 0; k < T; k++) {                                         \
        carry[k] = t[k] >> LIMB_BITS;                                        \
        t[k] &= LIMB_MASK;                                                   \
    }                                                                        \
    for (int j = 1; j < L; j++) {                                            \
        uint64_t *row = t + (size_t)j * TILE;                                \
        for (size_t k = 0; k < T; k++) {                                     \
            row[k] += carry[k];                                              \
            carry[k] = row[k] >> LIMB_BITS;                                  \
            row[k] &= LIMB_MASK;                                             \
        }                                                                    \
    }                                                                        \
}                                                                            \
/* Reduce a normalized tile below 2N into [0, N): add R-N, renormalize,     \
 * and keep the subtracted copy wherever it (or the carry-in) overflowed    \
 * R -- the NumPy _cond_sub_n schedule with branchless masks. */             \
static void tcondsub_##SUF(uint64_t *t, const uint64_t *carry_in, size_t T,  \
                           const repro_field *f) {                           \
    const int L = (LV);                                                      \
    uint64_t d[MAX_LIMBS * TILE], dc[TILE];                                  \
    for (int j = 0; j < L; j++) {                                            \
        uint64_t cj = f->comp[j];                                            \
        const uint64_t *tr = t + (size_t)j * TILE;                           \
        uint64_t *dr = d + (size_t)j * TILE;                                 \
        for (size_t k = 0; k < T; k++) dr[k] = tr[k] + cj;                   \
    }                                                                        \
    tnorm_##SUF(d, dc, T, f);                                                \
    for (size_t k = 0; k < T; k++)                                           \
        dc[k] = 0 - (uint64_t)((dc[k] | carry_in[k]) != 0);                  \
    for (int j = 0; j < L; j++) {                                            \
        uint64_t *tr = t + (size_t)j * TILE;                                 \
        const uint64_t *dr = d + (size_t)j * TILE;                           \
        for (size_t k = 0; k < T; k++)                                       \
            tr[k] = (dr[k] & dc[k]) | (tr[k] & ~dc[k]);                      \
    }                                                                        \
}                                                                            \
/* Montgomery-multiply one tile: schoolbook accumulation + interleaved      \
 * REDC into a (2L, TILE) scratch, then normalize / cond-sub the top half   \
 * and copy it to the strided output rows.  b is either a same-shape        \
 * vector (stride bs) or, with b_scalar, one element's L limbs.  Every      \
 * product is 32x32->64: a/b/m limbs < 2^29. */                             \
static void tmul_##SUF(uint64_t *out, size_t os, const uint64_t *a,          \
                       size_t as, const uint64_t *b, size_t bs,              \
                       int b_scalar, size_t T, const repro_field *f) {       \
    const int L = (LV);                                                      \
    uint64_t t[2 * MAX_LIMBS * TILE], m[TILE], carry[TILE];                  \
    memset(t, 0, sizeof(uint64_t) * (size_t)(2 * L) * TILE);                 \
    for (int i = 0; i < L; i++) {                                            \
        const uint64_t *ar = a + (size_t)i * as;                             \
        for (int j = 0; j < L; j++) {                                        \
            uint64_t *tr = t + (size_t)(i + j) * TILE;                       \
            if (b_scalar) {                                                  \
                uint32_t bj = (uint32_t)b[j];                                \
                for (size_t k = 0; k < T; k++)                               \
                    tr[k] += (uint64_t)(uint32_t)ar[k] * bj;                 \
            } else {                                                         \
                const uint64_t *br = b + (size_t)j * bs;                     \
                for (size_t k = 0; k < T; k++)                               \
                    tr[k] += (uint64_t)(uint32_t)ar[k] * (uint32_t)br[k];    \
            }                                                                \
        }                                                                    \
    }                                                                        \
    const uint32_t n0 = (uint32_t)f->n0inv;                                  \
    for (int i = 0; i < L; i++) {                                            \
        uint64_t *ti = t + (size_t)i * TILE;                                 \
        for (size_t k = 0; k < T; k++)                                       \
            m[k] = ((uint64_t)(uint32_t)ti[k] * n0) & LIMB_MASK;             \
        for (int j = 0; j < L; j++) {                                        \
            uint32_t nj = (uint32_t)f->mod[j];                               \
            uint64_t *tr = t + (size_t)(i + j) * TILE;                       \
            for (size_t k = 0; k < T; k++)                                   \
                tr[k] += (uint64_t)(uint32_t)m[k] * nj;                      \
        }                                                                    \
        uint64_t *tn = t + (size_t)(i + 1) * TILE;                           \
        for (size_t k = 0; k < T; k++) tn[k] += ti[k] >> LIMB_BITS;          \
    }                                                                        \
    uint64_t *res = t + (size_t)L * TILE;                                    \
    tnorm_##SUF(res, carry, T, f);                                           \
    tcondsub_##SUF(res, carry, T, f);                                        \
    for (int j = 0; j < L; j++)                                              \
        memcpy(out + (size_t)j * os, res + (size_t)j * TILE,                 \
               T * sizeof(uint64_t));                                        \
}                                                                            \
static void tadd_##SUF(uint64_t *out, size_t os, const uint64_t *a,          \
                       size_t as, const uint64_t *b, size_t bs,              \
                       int b_scalar, size_t T, const repro_field *f) {       \
    const int L = (LV);                                                      \
    uint64_t s[MAX_LIMBS * TILE], carry[TILE];                               \
    for (int j = 0; j < L; j++) {                                            \
        const uint64_t *ar = a + (size_t)j * as;                             \
        uint64_t *sr = s + (size_t)j * TILE;                                 \
        if (b_scalar) {                                                      \
            uint64_t bj = b[j];                                              \
            for (size_t k = 0; k < T; k++) sr[k] = ar[k] + bj;               \
        } else {                                                             \
            const uint64_t *br = b + (size_t)j * bs;                         \
            for (size_t k = 0; k < T; k++) sr[k] = ar[k] + br[k];            \
        }                                                                    \
    }                                                                        \
    tnorm_##SUF(s, carry, T, f);                                             \
    tcondsub_##SUF(s, carry, T, f);                                          \
    for (int j = 0; j < L; j++)                                              \
        memcpy(out + (size_t)j * os, s + (size_t)j * TILE,                   \
               T * sizeof(uint64_t));                                        \
}                                                                            \
/* Borrow-chain subtraction; where the final borrow fired the true value    \
 * is t - base^L and adding N (mod base^L) lands it back in [0, N). */      \
static void tsub_##SUF(uint64_t *out, size_t os, const uint64_t *a,          \
                       size_t as, int a_zero, const uint64_t *b, size_t bs,  \
                       size_t T, const repro_field *f) {                     \
    const int L = (LV);                                                      \
    uint64_t s[MAX_LIMBS * TILE], d[MAX_LIMBS * TILE];                       \
    uint64_t borrow[TILE], dc[TILE];                                         \
    memset(borrow, 0, T * sizeof(uint64_t));                                 \
    for (int j = 0; j < L; j++) {                                            \
        const uint64_t *ar = a + (size_t)j * as;                             \
        const uint64_t *br = b + (size_t)j * bs;                             \
        uint64_t *sr = s + (size_t)j * TILE;                                 \
        for (size_t k = 0; k < T; k++) {                                     \
            uint64_t v = (a_zero ? 0 : ar[k]) + LIMB_BASE - br[k]            \
                - borrow[k];                                                 \
            sr[k] = v & LIMB_MASK;                                           \
            borrow[k] = 1 - (v >> LIMB_BITS);                                \
        }                                                                    \
    }                                                                        \
    for (int j = 0; j < L; j++) {                                            \
        uint64_t nj = f->mod[j];                                             \
        const uint64_t *sr = s + (size_t)j * TILE;                           \
        uint64_t *dr = d + (size_t)j * TILE;                                 \
        for (size_t k = 0; k < T; k++) dr[k] = sr[k] + nj;                   \
    }                                                                        \
    tnorm_##SUF(d, dc, T, f);                                                \
    for (size_t k = 0; k < T; k++)                                           \
        borrow[k] = 0 - (uint64_t)(borrow[k] != 0);                          \
    for (int j = 0; j < L; j++) {                                            \
        uint64_t *sr = s + (size_t)j * TILE;                                 \
        const uint64_t *dr = d + (size_t)j * TILE;                           \
        for (size_t k = 0; k < T; k++)                                       \
            sr[k] = (dr[k] & borrow[k]) | (sr[k] & ~borrow[k]);              \
    }                                                                        \
    for (int j = 0; j < L; j++)                                              \
        memcpy(out + (size_t)j * os, s + (size_t)j * TILE,                   \
               T * sizeof(uint64_t));                                        \
}                                                                            \
/* ---- whole-vector entry points (tile loops) ---- */                       \
static void vmul_##SUF(uint64_t *out, const uint64_t *a, const uint64_t *b,  \
                       size_t n, const repro_field *f) {                     \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tmul_##SUF(out + s, n, a + s, n, b + s, n, 0, T, f);                 \
    }                                                                        \
}                                                                            \
static void vmuls_##SUF(uint64_t *out, const uint64_t *a,                    \
                        const uint64_t *sc, size_t n,                        \
                        const repro_field *f) {                              \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tmul_##SUF(out + s, n, a + s, n, sc, 0, 1, T, f);                    \
    }                                                                        \
}                                                                            \
static void vadd_##SUF(uint64_t *out, const uint64_t *a, const uint64_t *b,  \
                       size_t n, const repro_field *f) {                     \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tadd_##SUF(out + s, n, a + s, n, b + s, n, 0, T, f);                 \
    }                                                                        \
}                                                                            \
static void vadds_##SUF(uint64_t *out, const uint64_t *a,                    \
                        const uint64_t *sc, size_t n,                        \
                        const repro_field *f) {                              \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tadd_##SUF(out + s, n, a + s, n, sc, 0, 1, T, f);                    \
    }                                                                        \
}                                                                            \
static void vsub_##SUF(uint64_t *out, const uint64_t *a, const uint64_t *b,  \
                       size_t n, const repro_field *f) {                     \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tsub_##SUF(out + s, n, a + s, n, 0, b + s, n, T, f);                 \
    }                                                                        \
}                                                                            \
static void vneg_##SUF(uint64_t *out, const uint64_t *a, size_t n,           \
                       const repro_field *f) {                               \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        /* 0 - a: a_zero ignores the first operand rows */                   \
        tsub_##SUF(out + s, n, a + s, n, 1, a + s, n, T, f);                 \
    }                                                                        \
}                                                                            \
/* Fused a + s*x -- the MLE Combine / Construct N&D inner pattern. */        \
static void vaxpy_##SUF(uint64_t *out, const uint64_t *a,                    \
                        const uint64_t *sc, const uint64_t *x, size_t n,     \
                        const repro_field *f) {                              \
    uint64_t prod[MAX_LIMBS * TILE];                                         \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tmul_##SUF(prod, TILE, x + s, n, sc, 0, 1, T, f);                    \
        tadd_##SUF(out + s, n, a + s, n, prod, TILE, 0, T, f);               \
    }                                                                        \
}                                                                            \
/* MLE Update: out[i] = a[2i] + r * (a[2i+1] - a[2i]); `a` has 2*half       \
 * lanes (row stride 2*half), `out` has `half`: deinterleave a tile of      \
 * lo/hi pairs, then row-wise sub / broadcast-mul / add. */                 \
static void vfold_##SUF(uint64_t *out, const uint64_t *a,                    \
                        const uint64_t *r, size_t half,                      \
                        const repro_field *f) {                              \
    const int L = (LV);                                                      \
    uint64_t lo[MAX_LIMBS * TILE], hi[MAX_LIMBS * TILE];                     \
    uint64_t dm[MAX_LIMBS * TILE];                                           \
    size_t src_n = 2 * half;                                                 \
    for (size_t s = 0; s < half; s += TILE) {                                \
        size_t T = half - s < TILE ? half - s : TILE;                        \
        for (int j = 0; j < L; j++) {                                        \
            const uint64_t *ar = a + (size_t)j * src_n + 2 * s;              \
            uint64_t *lr = lo + (size_t)j * TILE;                            \
            uint64_t *hr = hi + (size_t)j * TILE;                            \
            for (size_t k = 0; k < T; k++) {                                 \
                lr[k] = ar[2 * k];                                           \
                hr[k] = ar[2 * k + 1];                                       \
            }                                                                \
        }                                                                    \
        tsub_##SUF(dm, TILE, hi, TILE, 0, lo, TILE, T, f);                   \
        tmul_##SUF(dm, TILE, dm, TILE, r, 0, 1, T, f);                       \
        tadd_##SUF(out + s, half, lo, TILE, dm, TILE, 0, T, f);              \
    }                                                                        \
}                                                                            \
/* acc[j] += limb j of every Montgomery product a[i]*b[i] -- the caller     \
 * assembles the big integer and applies one REDC + mod.  Limbs < 2^29,     \
 * so the uint64 accumulators are exact up to 2^35 lanes. */                \
static void vdot_##SUF(uint64_t *acc, const uint64_t *a, const uint64_t *b,  \
                       size_t n, const repro_field *f) {                     \
    const int L = (LV);                                                      \
    uint64_t prod[MAX_LIMBS * TILE];                                         \
    for (size_t s = 0; s < n; s += TILE) {                                   \
        size_t T = n - s < TILE ? n - s : TILE;                              \
        tmul_##SUF(prod, TILE, a + s, n, b + s, n, 0, T, f);                 \
        for (int j = 0; j < L; j++) {                                        \
            const uint64_t *pr = prod + (size_t)j * TILE;                    \
            uint64_t sum = 0;                                                \
            for (size_t k = 0; k < T; k++) sum += pr[k];                     \
            acc[j] += sum;                                                   \
        }                                                                    \
    }                                                                        \
}                                                                            \
/* Batch inversion, forward sweep: prefix[i] = a[0]*...*a[i-1] (with        \
 * prefix[0] = one_mont) and *total* the full product.  Sequential by       \
 * nature, so it runs on the lane kernels.  Returns the index of the        \
 * first zero lane (making the inverse undefined) or -1. */                 \
static int64_t vinvpre_##SUF(uint64_t *prefix, uint64_t *total,              \
                             const uint64_t *a, size_t n,                    \
                             const repro_field *f) {                         \
    const int L = (LV);                                                      \
    uint64_t run[MAX_LIMBS], la[MAX_LIMBS];                                  \
    memcpy(run, f->one_mont, sizeof(uint64_t) * (size_t)L);                  \
    for (size_t i = 0; i < n; i++) {                                         \
        lane_load(la, a, i, n, L);                                           \
        if (lane_is_zero(la, L)) return (int64_t)i;                          \
        lane_store(prefix, run, i, n, L);                                    \
        mont_mul1(run, run, la, f->mod, f->n0inv, L);                        \
    }                                                                        \
    memcpy(total, run, sizeof(uint64_t) * (size_t)L);                        \
    return -1;                                                               \
}                                                                            \
/* Backward sweep: with inv_run starting at (total product)^-1,             \
 * out[i] = prefix[i] * inv_run  is exactly a[i]^-1, then inv_run *= a[i].  \
 * `out` holds the prefixes on entry and the inverses on exit. */           \
static void vinvfin_##SUF(uint64_t *out, const uint64_t *a,                  \
                          const uint64_t *total_inv, size_t n,               \
                          const repro_field *f) {                            \
    const int L = (LV);                                                      \
    uint64_t inv_run[MAX_LIMBS], la[MAX_LIMBS], pre[MAX_LIMBS],              \
        res[MAX_LIMBS];                                                      \
    memcpy(inv_run, total_inv, sizeof(uint64_t) * (size_t)L);                \
    for (size_t i = n; i-- > 0;) {                                           \
        lane_load(pre, out, i, n, L);                                        \
        lane_load(la, a, i, n, L);                                           \
        mont_mul1(res, pre, inv_run, f->mod, f->n0inv, L);                   \
        lane_store(out, res, i, n, L);                                       \
        mont_mul1(inv_run, inv_run, la, f->mod, f->n0inv, L);                \
    }                                                                        \
}

DEFINE_FIELD_KERNELS(9, 9)          /* BLS12-381 Fr: 255-bit modulus */
DEFINE_FIELD_KERNELS(14, 14)        /* BLS12-381 Fq: 381-bit modulus */
DEFINE_FIELD_KERNELS(g, f->limbs)   /* any other modulus up to 16 limbs */

#define DISPATCH_L(FN, ...)                                                  \
    do {                                                                     \
        if (f->limbs == 9) FN##_9(__VA_ARGS__);                              \
        else if (f->limbs == 14) FN##_14(__VA_ARGS__);                       \
        else FN##_g(__VA_ARGS__);                                            \
    } while (0)

void repro_mont_mul(uint64_t *out, const uint64_t *a, const uint64_t *b,
                    size_t n, const repro_field *f) {
    DISPATCH_L(vmul, out, a, b, n, f);
}

void repro_mont_mul_scalar(uint64_t *out, const uint64_t *a,
                           const uint64_t *s, size_t n,
                           const repro_field *f) {
    DISPATCH_L(vmuls, out, a, s, n, f);
}

void repro_add(uint64_t *out, const uint64_t *a, const uint64_t *b,
               size_t n, const repro_field *f) {
    DISPATCH_L(vadd, out, a, b, n, f);
}

void repro_add_scalar(uint64_t *out, const uint64_t *a, const uint64_t *s,
                      size_t n, const repro_field *f) {
    DISPATCH_L(vadds, out, a, s, n, f);
}

void repro_sub(uint64_t *out, const uint64_t *a, const uint64_t *b,
               size_t n, const repro_field *f) {
    DISPATCH_L(vsub, out, a, b, n, f);
}

void repro_neg(uint64_t *out, const uint64_t *a, size_t n,
               const repro_field *f) {
    DISPATCH_L(vneg, out, a, n, f);
}

void repro_axpy(uint64_t *out, const uint64_t *a, const uint64_t *s,
                const uint64_t *x, size_t n, const repro_field *f) {
    DISPATCH_L(vaxpy, out, a, s, x, n, f);
}

void repro_fold(uint64_t *out, const uint64_t *a, const uint64_t *r,
                size_t half, const repro_field *f) {
    DISPATCH_L(vfold, out, a, r, half, f);
}

void repro_even_odd(uint64_t *even, uint64_t *odd, const uint64_t *a,
                    size_t n, const repro_field *f) {
    size_t ne = (n + 1) / 2, no = n / 2;
    for (int j = 0; j < f->limbs; j++) {
        const uint64_t *row = a + (size_t)j * n;
        uint64_t *er = even + (size_t)j * ne;
        uint64_t *orow = odd + (size_t)j * no;
        for (size_t i = 0; i < no; i++) {
            er[i] = row[2 * i];
            orow[i] = row[2 * i + 1];
        }
        if (ne > no) er[no] = row[2 * no];
    }
}

/* Per-limb lane sums (the Montgomery map is linear, so the sum of forms is
 * the form of the sum).  Limbs are < 2^29; exact up to 2^35 lanes. */
void repro_limb_sums(uint64_t *acc, const uint64_t *a, size_t n,
                     const repro_field *f) {
    for (int j = 0; j < f->limbs; j++) {
        const uint64_t *row = a + (size_t)j * n;
        uint64_t sum = 0;
        for (size_t i = 0; i < n; i++) sum += row[i];
        acc[j] = sum;
    }
}

void repro_dot(uint64_t *acc, const uint64_t *a, const uint64_t *b,
               size_t n, const repro_field *f) {
    DISPATCH_L(vdot, acc, a, b, n, f);
}

int64_t repro_inv_prefix(uint64_t *prefix, uint64_t *total,
                         const uint64_t *a, size_t n,
                         const repro_field *f) {
    if (f->limbs == 9) return vinvpre_9(prefix, total, a, n, f);
    if (f->limbs == 14) return vinvpre_14(prefix, total, a, n, f);
    return vinvpre_g(prefix, total, a, n, f);
}

void repro_inv_finish(uint64_t *out, const uint64_t *a,
                      const uint64_t *total_inv, size_t n,
                      const repro_field *f) {
    DISPATCH_L(vinvfin, out, a, total_inv, n, f);
}

void repro_count_zeros_ones(const uint64_t *a, size_t n,
                            const repro_field *f, size_t *zeros,
                            size_t *ones) {
    const int L = f->limbs;
    uint64_t la[MAX_LIMBS];
    size_t z = 0, o = 0;
    for (size_t i = 0; i < n; i++) {
        lane_load(la, a, i, n, L);
        if (lane_is_zero(la, L)) {
            z++;
            continue;
        }
        uint64_t diff = 0;
        for (int j = 0; j < L; j++) diff |= la[j] ^ f->one_mont[j];
        if (diff == 0) o++;
    }
    *zeros = z;
    *ones = o;
}

int repro_is_zero(const uint64_t *a, size_t n, const repro_field *f) {
    uint64_t any = 0;
    size_t total = (size_t)f->limbs * n;
    for (size_t k = 0; k < total; k++) any |= a[k];
    return any == 0;
}
"""


def compile_args() -> list[str]:
    """Optimization flags for the in-place build.

    The kernel is compiled for this machine only (never distributed), so
    ``-march=native`` is safe.  On x86-64 the row-wise tile loops want the
    single-uop ``vpmuludq`` 32x32->64 multiply; with AVX-512DQ enabled GCC
    prefers the microcoded ``vpmullq`` instead, so that ISA extension is
    switched off (measured ~15% on the 381-bit field here).
    """
    import platform
    import sys

    args = ["-O3"]
    if sys.platform.startswith("linux") and platform.machine() == "x86_64":
        args += ["-march=native", "-mno-avx512dq", "-mprefer-vector-width=512"]
    return args


def make_ffibuilder(extra_compile_args: list[str] | None = None):
    if FFI is None:  # pragma: no cover
        raise RuntimeError("building the native kernel requires cffi")
    builder = FFI()
    builder.cdef(CDEF)
    builder.set_source(
        "repro.fields.backends._native_kernel",
        C_SOURCE,
        extra_compile_args=(
            compile_args() if extra_compile_args is None else extra_compile_args
        ),
    )
    return builder


# ``setup.py`` consumes this via cffi_modules; building lazily keeps the
# module importable (for CDEF/C_SOURCE introspection) without cffi.
if FFI is not None:
    ffibuilder = make_ffibuilder()


if __name__ == "__main__":
    import pathlib

    # Compile in place so `src/repro/fields/backends/_native_kernel*.so`
    # is importable with the repo's PYTHONPATH=src layout.
    src_root = pathlib.Path(__file__).resolve().parents[3]
    try:
        make_ffibuilder().compile(tmpdir=str(src_root), verbose=True)
    except Exception:
        # Tuning flags can be rejected by unusual toolchains; a plain -O3
        # build is still far ahead of the interpreted backends.
        make_ffibuilder(["-O3"]).compile(tmpdir=str(src_root), verbose=True)
