"""Abstract interface every field-vector backend implements.

A backend owns the *storage representation* of a dense array of prime-field
elements and provides array-level arithmetic over it.  The representation is
opaque to callers: :class:`~repro.fields.vector.FieldVector` passes the
``data`` handle returned by one backend method into the next, and only
converts to/from Python integers at the edges (transcript absorption, MSM
digit extraction, tests).

All methods take the field ``modulus`` explicitly so a single backend
instance serves every prime field in the system (Fr for MLE/SumCheck
tables, Fq for curve-coordinate experiments).  Values crossing the
interface as "ints" are ordinary residues in ``[0, modulus)``; backends are
free to store something else internally (e.g. Montgomery-form limbs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence


class VectorBackend(ABC):
    """Array-level arithmetic over GF(p) for a pluggable storage format."""

    #: Registry key and human-readable identifier (e.g. ``"python"``).
    name: str = "abstract"

    # -- construction / conversion --------------------------------------------

    @abstractmethod
    def from_ints(self, modulus: int, values: Sequence[int]) -> Any:
        """Build backend data from residues (each already in ``[0, p)``).

        Ownership of a ``list`` input transfers to the backend (callers must
        hand over a list they will not mutate afterwards); other sequence
        types are copied as needed.
        """

    @abstractmethod
    def filled(self, modulus: int, value: int, length: int) -> Any:
        """A length-``length`` vector with every entry equal to ``value``."""

    @abstractmethod
    def to_ints(self, modulus: int, data: Any) -> list[int]:
        """Convert backend data back to a list of residues."""

    @abstractmethod
    def copy(self, modulus: int, data: Any) -> Any:
        """An independent copy (mutations via :meth:`setitem` must not alias)."""

    # -- shape / element access ------------------------------------------------

    @abstractmethod
    def length(self, data: Any) -> int:
        """Number of elements."""

    @abstractmethod
    def getitem(self, modulus: int, data: Any, index: int) -> int:
        """Residue at ``index`` (non-negative index, bounds already checked)."""

    @abstractmethod
    def setitem(self, modulus: int, data: Any, index: int, value: int) -> None:
        """In-place element store (``value`` already reduced)."""

    @abstractmethod
    def slice(self, modulus: int, data: Any, start: int, stop: int) -> Any:
        """Contiguous sub-vector ``[start, stop)`` as new backend data."""

    @abstractmethod
    def concat(self, modulus: int, parts: Sequence[Any]) -> Any:
        """Concatenate several data handles into one vector."""

    # -- elementwise arithmetic -------------------------------------------------

    @abstractmethod
    def add(self, modulus: int, a: Any, b: Any) -> Any:
        """Elementwise ``a + b``."""

    @abstractmethod
    def sub(self, modulus: int, a: Any, b: Any) -> Any:
        """Elementwise ``a - b``."""

    @abstractmethod
    def neg(self, modulus: int, a: Any) -> Any:
        """Elementwise ``-a``."""

    @abstractmethod
    def mul(self, modulus: int, a: Any, b: Any) -> Any:
        """Elementwise ``a * b`` (Hadamard product)."""

    # -- scalar broadcast --------------------------------------------------------

    @abstractmethod
    def scalar_mul(self, modulus: int, a: Any, scalar: int) -> Any:
        """``scalar * a`` for a single residue ``scalar``."""

    @abstractmethod
    def scalar_add(self, modulus: int, a: Any, scalar: int) -> Any:
        """``a + scalar`` broadcast."""

    @abstractmethod
    def axpy(self, modulus: int, a: Any, scalar: int, x: Any) -> Any:
        """Fused ``a + scalar * x`` (the MLE Combine / N&D inner pattern)."""

    # -- MLE-shaped operations ----------------------------------------------------

    @abstractmethod
    def fold(self, modulus: int, a: Any, r: int) -> Any:
        """MLE Update: ``out[i] = a[2i] + r * (a[2i+1] - a[2i])``.

        Halves the vector; ``a`` must have even length.  This is Equation (2)
        of the paper (zkSpeed's MLE Update unit) and the single hottest
        operation of the SumCheck prover.
        """

    @abstractmethod
    def even_odd(self, modulus: int, a: Any) -> tuple[Any, Any]:
        """Split into (even-index, odd-index) halves (SumCheck pairing)."""

    # -- reductions ----------------------------------------------------------------

    @abstractmethod
    def sum(self, modulus: int, a: Any) -> int:
        """Residue of the sum of all entries."""

    @abstractmethod
    def dot(self, modulus: int, a: Any, b: Any) -> int:
        """Residue of ``sum_i a[i] * b[i]``."""

    # -- batch inversion -------------------------------------------------------------

    @abstractmethod
    def inverse(self, modulus: int, a: Any) -> Any:
        """Elementwise multiplicative inverse via batched inversion.

        Raises ``ZeroDivisionError`` if any entry is zero (mirrors
        :func:`repro.fields.inversion.batch_inverse`).
        """

    # -- predicates -------------------------------------------------------------------

    @abstractmethod
    def count_zeros_ones(self, modulus: int, a: Any) -> tuple[int, int]:
        """``(#zeros, #ones)`` -- the Sparse-MSM classification counts."""

    def is_zero(self, modulus: int, a: Any) -> bool:
        """True when every entry is zero."""
        zeros, _ = self.count_zeros_ones(modulus, a)
        return zeros == self.length(a)

    def equal(self, modulus: int, a: Any, b: Any) -> bool:
        """Elementwise equality of two same-backend vectors."""
        return self.to_ints(modulus, a) == self.to_ints(modulus, b)
