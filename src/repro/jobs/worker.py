"""The job pump: an asyncio worker loop between the store and the engine.

One :class:`JobRunner` lives inside each :class:`~repro.service.ProofService`.
Its loop:

1. **claim** a batch of same-``(kind, structure)`` jobs from the
   :class:`~repro.jobs.store.JobStore` (lease-with-deadline);
2. **renew** the batch's leases on a side task every ``lease_s / 3`` while
   the engine works — a live worker never loses a lease to slowness, only
   to death;
3. **execute** the whole batch in one call on the service's single engine
   executor thread (``ProverEngine.execute_job_batch`` — prove batches go
   through ``prove_many`` exactly like the synchronous tier's batcher);
4. **commit** each outcome: artifact bytes into the content-addressed
   store, then the guarded ``complete`` / ``fail`` transition.  A worker
   that lost its lease mid-batch gets ``False`` back from the guard and
   *discards* its result — the re-leased attempt owns the job now, and
   since proofs are deterministic both attempts derived the same artifact
   digest anyway.

Crash windows, by construction: before ``complete`` commits, the job is
re-run after lease expiry / restart recovery (at-least-once, idempotent —
artifacts are content-addressed); after it, the job is durably ``done``.
There is no window where an accepted job can be lost.

``stop()`` is graceful: the loop stops claiming, finishes its in-flight
batch, and leaves everything still queued for the next process — pending
jobs surviving a drain (or a crash) is the tier's whole point.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import secrets

from repro.testing.faults import InjectedFault, fault_point

logger = logging.getLogger("repro.jobs")


class JobRunner:
    """Claims, executes, and commits durable jobs on an asyncio loop.

    ``execute(kind, payloads)`` is the blocking engine seam: it runs on
    ``executor`` (the service's one engine thread) and returns one
    ``(artifact_bytes | None, result_dict)`` per payload, or raises to
    fail the whole batch (payloads are validated at admission, so a raise
    is systemic, not per-job).
    """

    def __init__(
        self,
        store,
        artifacts,
        execute,
        *,
        executor,
        lease_s: float = 30.0,
        poll_s: float = 0.25,
        batch_size: int = 8,
        worker_id: str | None = None,
        metrics=None,
    ):
        self.store = store
        self.artifacts = artifacts
        self.execute = execute
        self.executor = executor
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.batch_size = batch_size
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"worker-{os.getpid()}-{secrets.token_hex(4)}"
        )
        self.metrics = metrics
        self._task: asyncio.Task | None = None
        self._stopping = False
        self._wake: asyncio.Event | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("runner already started")
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-job-runner"
        )

    def kick(self) -> None:
        """Wake the claim loop now (called after a submit — skips the poll)."""
        if self._wake is not None:
            self._wake.set()

    async def stop(self) -> None:
        """Stop claiming, finish the in-flight batch, return."""
        self._stopping = True
        self.kick()
        if self._task is not None:
            await self._task
            self._task = None

    # -- the loop -------------------------------------------------------------

    async def _run(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            try:
                batch = self.store.claim_batch(
                    self.worker_id, limit=self.batch_size, lease_s=self.lease_s
                )
            except Exception:
                logger.exception("job claim failed; backing off one poll")
                batch = []
            if not batch:
                self._wake.clear()
                if self._stopping:
                    break
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=self.poll_s)
                except (asyncio.TimeoutError, TimeoutError):
                    pass
                continue
            await self._run_batch(batch)

    def _execute_guarded(self, kind: str, payloads: list[dict]):
        """Engine-thread body: the ``batch-execute`` crash point lives here
        — *after* the claim, *before* any result exists — because that is
        the widest window a real worker death leaves open."""
        fault_point("batch-execute")
        return self.execute(kind, payloads)

    async def _renew_loop(self, job_ids: list[str]) -> None:
        interval = max(0.05, self.lease_s / 3.0)
        while True:
            await asyncio.sleep(interval)
            try:
                renewed = self.store.renew(job_ids, self.worker_id, self.lease_s)
            except InjectedFault:
                # A failed renewal is not fatal by itself: the lease just
                # runs out its current window.  Stop renewing and let the
                # completion guards decide who owns each job.
                logger.warning("lease renewal failed for %s", self.worker_id)
                return
            if renewed < len(job_ids):
                logger.warning(
                    "%s lost %d lease(s) mid-batch",
                    self.worker_id,
                    len(job_ids) - renewed,
                )

    async def _run_batch(self, batch: list[dict]) -> None:
        kind = batch[0]["kind"]
        job_ids = [job["id"] for job in batch]
        payloads = [job["payload"] for job in batch]
        loop = asyncio.get_running_loop()
        renewer = loop.create_task(self._renew_loop(job_ids))
        outcomes: list | None = None
        batch_error = ""
        try:
            outcomes = await loop.run_in_executor(
                self.executor, self._execute_guarded, kind, payloads
            )
        except Exception as exc:
            batch_error = f"{type(exc).__name__}: {exc}"
        finally:
            renewer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await renewer
        if outcomes is None:
            for job in batch:
                self._record_failure(job, batch_error)
            return
        for job, outcome in zip(batch, outcomes):
            self._commit(job, outcome)

    def _commit(self, job: dict, outcome) -> None:
        artifact_bytes, result = outcome
        try:
            digest = size = None
            deduped = False
            if artifact_bytes is not None:
                digest, size, deduped = self.artifacts.put(artifact_bytes)
            committed = self.store.complete(
                job["id"],
                self.worker_id,
                artifact_digest=digest,
                artifact_size=size,
                result=result,
            )
        except Exception as exc:
            self._record_failure(job, f"{type(exc).__name__}: {exc}")
            return
        if committed:
            if self.metrics is not None:
                self.metrics.job_completed(deduped)
        else:
            # Lease lost: the re-leased attempt owns this job.  The result
            # is discarded, not wrong — determinism means the winner
            # committed the same digest.
            logger.warning("discarding lease-lost result for job %s", job["id"])
            if self.metrics is not None:
                self.metrics.job_discarded()

    def _record_failure(self, job: dict, error: str) -> None:
        try:
            state = self.store.fail(job["id"], self.worker_id, error)
        except Exception:
            logger.exception("recording failure for job %s failed", job["id"])
            return
        logger.warning("job %s attempt failed (%s): %s", job["id"], state, error)
        if self.metrics is not None:
            if state == "lost":
                self.metrics.job_discarded()
            else:
                self.metrics.job_attempt_failed(state)
