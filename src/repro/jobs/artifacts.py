"""The content-addressed artifact store: proof bytes keyed by sha256.

Proofs are deterministic bytes — the same ``(scenario, num_vars, seed)``
always serializes identically (the repo's byte-identity tests enforce it
across field backends, worker counts, and now crash recovery) — so
content addressing gives deduplication for free: N identical jobs store
one blob, and a re-executed job after a crash *cannot* produce a second
artifact, it re-derives the same digest.

Writes are atomic (``tmp + fsync + rename`` into a two-level fan-out
directory), so a ``SIGKILL`` mid-write leaves either no artifact or a
complete one — never a truncated blob behind a committed digest.  Reads
stream in chunks for the ``GET /jobs/<id>/artifact`` chunked download.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Iterator

from repro.testing.faults import fault_point

#: Chunk size for streamed reads (matches one comfortable socket write).
CHUNK_BYTES = 64 * 1024


class ArtifactStore:
    """sha256-addressed immutable blobs under one root directory."""

    def __init__(self, root: str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        if len(digest) < 3 or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a hex digest: {digest!r}")
        return self.root / digest[:2] / digest

    def put(self, data: bytes) -> tuple[str, int, bool]:
        """Store ``data``; returns ``(digest, size, deduped)``.

        ``deduped`` is True when an identical blob was already present (the
        write is skipped entirely — content addressing makes "same digest"
        mean "same bytes").
        """
        digest = hashlib.sha256(data).hexdigest()
        path = self.path_for(digest)
        if path.exists():
            return digest, len(data), True
        fault_point("store-write")
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a crash before os.replace leaves only a tmp file
        # (swept opportunistically, never served); after it, a full blob.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        return digest, len(data), False

    def exists(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def size_of(self, digest: str) -> int:
        return self.path_for(digest).stat().st_size

    def get(self, digest: str) -> bytes:
        """The full blob (raises ``KeyError`` for an unknown digest)."""
        try:
            return self.path_for(digest).read_bytes()
        except FileNotFoundError:
            raise KeyError(digest) from None

    def open_chunks(self, digest: str, chunk_bytes: int = CHUNK_BYTES) -> Iterator[bytes]:
        """Stream one blob in bounded chunks (raises ``KeyError``)."""
        path = self.path_for(digest)
        if not path.exists():
            raise KeyError(digest)
        with path.open("rb") as handle:
            while True:
                chunk = handle.read(chunk_bytes)
                if not chunk:
                    return
                yield chunk

    def stats(self) -> dict:
        """Blob count and total bytes (a walk — cheap at served scales)."""
        count = 0
        total = 0
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for blob in shard.iterdir():
                if blob.name.startswith(".tmp-"):
                    continue
                count += 1
                total += blob.stat().st_size
        return {"count": count, "bytes": total}
