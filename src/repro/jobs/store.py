"""The persistent job queue: sqlite in WAL mode, leases, retries, dead-letter.

Design
------
One service process owns one store (the queue file lives under that
backend's ``--job-dir``), but nothing relies on that for safety: every
state transition is a single guarded ``UPDATE ... WHERE`` inside one
sqlite transaction, so a worker that lost its lease cannot complete or
fail a job out from under the worker that re-claimed it.

States move ``pending → running → done | failed`` — a ``failed`` job is
retryable and re-claims itself once its backoff ``not_before`` passes —
until attempts are exhausted, then ``dead`` (the dead-letter state — the
job is kept, inspectable, never re-run).  ``running`` is always qualified
by a lease: ``(lease_owner, lease_deadline)``.  A worker renews its lease
while a batch runs; a crashed worker stops renewing and its jobs become
claimable the moment the deadline passes.  At process start
:meth:`JobStore.recover_abandoned` short-circuits the wait — a freshly
opened store cannot have a live worker, so every ``running`` row is a
crash leftover and is re-queued (or dead-lettered) immediately.

WAL mode + ``synchronous=NORMAL`` makes every committed transaction
survive a ``SIGKILL`` of the process (the OS page cache persists); that is
the crash model the fault-injection tests enforce.  Timestamps are wall
clock (``time.time()``) — monotonicity across restarts matters more here
than resilience to clock steps, and lease windows are tens of seconds.
"""

from __future__ import annotations

import json
import random
import secrets
import sqlite3
import threading
import time

from repro.testing.faults import fault_point

JOB_STATES = ("pending", "running", "done", "failed", "dead")

#: Job kinds the tier executes (mirrors ``ProverEngine.execute_job_batch``).
JOB_KINDS = ("prove", "verify", "sweep")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    kind            TEXT NOT NULL,
    structure_key   TEXT NOT NULL,
    payload         TEXT NOT NULL,
    state           TEXT NOT NULL DEFAULT 'pending',
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    not_before      REAL NOT NULL DEFAULT 0,
    lease_owner     TEXT,
    leased_at       REAL,
    lease_deadline  REAL,
    created_at      REAL NOT NULL,
    updated_at      REAL NOT NULL,
    artifact_digest TEXT,
    artifact_size   INTEGER,
    result          TEXT,
    error           TEXT
);
CREATE INDEX IF NOT EXISTS jobs_claim ON jobs (state, not_before, created_at);
"""


def new_job_id(structure_key: str) -> str:
    """A fresh job id carrying its routing key: ``<structure_key>~<hex>``.

    Embedding the key is what lets the *stateless* cluster router route
    ``GET /jobs/<id>`` to the job's home backend by re-deriving the
    rendezvous key from the id alone — no shared job table at the router.
    """
    return f"{structure_key}~{secrets.token_hex(12)}"


def job_id_structure_key(job_id: str) -> str:
    """The structure key embedded in a job id (raises ``ValueError``)."""
    key, separator, suffix = job_id.rpartition("~")
    if not separator or not key or not suffix:
        raise ValueError(f"{job_id!r} is not a job id (structure_key~hex)")
    return key


def _row_to_dict(row: sqlite3.Row) -> dict:
    job = dict(row)
    job["payload"] = json.loads(job["payload"])
    if job.get("result"):
        job["result"] = json.loads(job["result"])
    return job


class JobStore:
    """The sqlite-backed persistent queue (thread-safe, one connection).

    ``backoff_base_s`` seeds the retry schedule: attempt ``n``'s retry
    waits ``base * 2^(n-1)`` seconds (capped at ``backoff_cap_s``) plus up
    to 25% jitter, so a fleet of failed jobs does not re-stampede the
    engine in lockstep.
    """

    def __init__(
        self,
        path: str,
        *,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 60.0,
    ):
        self.path = str(path)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0
        )
        self._connection.row_factory = sqlite3.Row
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        with self._connection:
            self._connection.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # -- intake ---------------------------------------------------------------

    def submit(
        self,
        kind: str,
        structure_key: str,
        payload: dict,
        *,
        max_attempts: int = 3,
        job_id: str | None = None,
    ) -> tuple[str, bool]:
        """Enqueue one job; returns ``(job_id, created)``.

        Passing an explicit ``job_id`` makes submission idempotent: a
        retried submit (client or router re-sending after a transport
        error) that raced a successful first attempt finds the existing
        row and returns ``created=False`` instead of double-enqueueing.
        """
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r} (use {JOB_KINDS})")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        job_id = job_id if job_id is not None else new_job_id(structure_key)
        now = time.time()
        fault_point("store-write")
        with self._lock, self._connection:
            cursor = self._connection.execute(
                """INSERT OR IGNORE INTO jobs
                   (id, kind, structure_key, payload, state, max_attempts,
                    created_at, updated_at)
                   VALUES (?, ?, ?, ?, 'pending', ?, ?, ?)""",
                (job_id, kind, structure_key, json.dumps(payload), max_attempts, now, now),
            )
            created = cursor.rowcount == 1
        return job_id, created

    # -- claiming -------------------------------------------------------------

    _ELIGIBLE = """(state IN ('pending', 'failed') AND not_before <= :now)
                   OR (state = 'running' AND lease_deadline < :now
                       AND attempts < max_attempts)"""

    def claim_batch(
        self,
        worker_id: str,
        *,
        limit: int = 1,
        lease_s: float = 30.0,
        now: float | None = None,
    ) -> list[dict]:
        """Atomically claim up to ``limit`` same-``(kind, structure)`` jobs.

        Eligible jobs are pending / retryable-failed (past any retry
        backoff) or running with an *expired* lease (their worker died
        without renewing).  The batch
        is homogeneous by construction — same kind, same structure key —
        because it feeds one ``prove_many``-style engine call.  Claiming
        increments ``attempts`` (attempts count *starts*, so a crash burns
        the attempt that crashed).  Expired jobs that are already out of
        attempts are dead-lettered here rather than re-claimed.
        """
        now = time.time() if now is None else now
        deadline = now + lease_s
        with self._lock, self._connection:
            # Reap: an expired lease on a job with no attempts left means
            # its last permitted attempt crashed — dead-letter, don't spin.
            self._connection.execute(
                f"""UPDATE jobs
                    SET state = 'dead', updated_at = :now,
                        error = COALESCE(error,
                                'lease expired after final attempt'),
                        lease_owner = NULL, lease_deadline = NULL
                    WHERE state = 'running' AND lease_deadline < :now
                      AND attempts >= max_attempts""",
                {"now": now},
            )
            head = self._connection.execute(
                f"""SELECT kind, structure_key FROM jobs
                    WHERE {self._ELIGIBLE}
                    ORDER BY created_at LIMIT 1""",
                {"now": now},
            ).fetchone()
            if head is None:
                return []
            rows = self._connection.execute(
                f"""SELECT id FROM jobs
                    WHERE ({self._ELIGIBLE})
                      AND kind = :kind AND structure_key = :key
                    ORDER BY created_at LIMIT :limit""",
                {
                    "now": now,
                    "kind": head["kind"],
                    "key": head["structure_key"],
                    "limit": max(1, limit),
                },
            ).fetchall()
            claimed_ids = [row["id"] for row in rows]
            for job_id in claimed_ids:
                self._connection.execute(
                    """UPDATE jobs
                       SET state = 'running', attempts = attempts + 1,
                           lease_owner = ?, leased_at = ?, lease_deadline = ?,
                           updated_at = ?
                       WHERE id = ?""",
                    (worker_id, now, deadline, now, job_id),
                )
            placeholders = ",".join("?" for _ in claimed_ids)
            claimed = self._connection.execute(
                f"SELECT * FROM jobs WHERE id IN ({placeholders})", claimed_ids
            ).fetchall()
        by_id = {row["id"]: _row_to_dict(row) for row in claimed}
        return [by_id[job_id] for job_id in claimed_ids]

    def renew(
        self,
        job_ids: list[str],
        worker_id: str,
        lease_s: float,
        *,
        now: float | None = None,
    ) -> int:
        """Extend the lease on still-owned running jobs; returns how many.

        A return below ``len(job_ids)`` tells the worker it lost (part of)
        its batch — completion for those jobs will no-op at the guard.
        """
        fault_point("lease-renew")
        now = time.time() if now is None else now
        if not job_ids:
            return 0
        placeholders = ",".join("?" for _ in job_ids)
        with self._lock, self._connection:
            cursor = self._connection.execute(
                f"""UPDATE jobs
                    SET lease_deadline = ?, updated_at = ?
                    WHERE id IN ({placeholders})
                      AND state = 'running' AND lease_owner = ?""",
                (now + lease_s, now, *job_ids, worker_id),
            )
            return cursor.rowcount

    # -- outcomes -------------------------------------------------------------

    def complete(
        self,
        job_id: str,
        worker_id: str,
        *,
        artifact_digest: str | None = None,
        artifact_size: int | None = None,
        result: dict | None = None,
    ) -> bool:
        """Commit one finished job; ``False`` if the lease was lost.

        The ``WHERE state='running' AND lease_owner=?`` guard is the whole
        correctness story for concurrent re-leasing: at most one worker's
        outcome lands, and a zombie worker (its lease expired, its jobs
        re-claimed) discovers that here instead of corrupting the row.
        """
        now = time.time()
        fault_point("store-write")
        with self._lock, self._connection:
            cursor = self._connection.execute(
                """UPDATE jobs
                   SET state = 'done', artifact_digest = ?, artifact_size = ?,
                       result = ?, updated_at = ?,
                       lease_owner = NULL, lease_deadline = NULL
                   WHERE id = ? AND state = 'running' AND lease_owner = ?""",
                (
                    artifact_digest,
                    artifact_size,
                    json.dumps(result) if result is not None else None,
                    now,
                    job_id,
                    worker_id,
                ),
            )
            return cursor.rowcount == 1

    def fail(self, job_id: str, worker_id: str, error: str) -> str:
        """Record one failed attempt; returns the job's new state.

        With attempts left the job re-queues behind an exponential-backoff
        ``not_before``; out of attempts it dead-letters.  Returns ``lost``
        when the lease guard fails (another worker owns the job now).
        """
        now = time.time()
        fault_point("store-write")
        with self._lock, self._connection:
            row = self._connection.execute(
                """SELECT attempts, max_attempts FROM jobs
                   WHERE id = ? AND state = 'running' AND lease_owner = ?""",
                (job_id, worker_id),
            ).fetchone()
            if row is None:
                return "lost"
            if row["attempts"] >= row["max_attempts"]:
                state, not_before = "dead", 0.0
            else:
                state = "failed"
                delay = min(
                    self.backoff_cap_s,
                    self.backoff_base_s * (2 ** (row["attempts"] - 1)),
                )
                not_before = now + delay * (1.0 + 0.25 * random.random())
            self._connection.execute(
                """UPDATE jobs
                   SET state = ?, not_before = ?, error = ?, updated_at = ?,
                       lease_owner = NULL, lease_deadline = NULL
                   WHERE id = ?""",
                (state, not_before, error, now, job_id),
            )
            return state

    def recover_abandoned(self) -> int:
        """Re-queue every ``running`` job immediately; returns the count.

        Called once when a service (re)opens its store: one process owns
        one store, so a just-opened store cannot have a live worker and
        every running row is a crash leftover.  Jobs out of attempts go to
        the dead-letter state instead of re-queueing.  Lease expiry remains
        the belt-and-suspenders path for in-process worker loss.
        """
        now = time.time()
        with self._lock, self._connection:
            self._connection.execute(
                """UPDATE jobs
                   SET state = 'dead', updated_at = ?,
                       error = COALESCE(error, 'worker crashed on final attempt'),
                       lease_owner = NULL, lease_deadline = NULL
                   WHERE state = 'running' AND attempts >= max_attempts""",
                (now,),
            )
            cursor = self._connection.execute(
                """UPDATE jobs
                   SET state = 'pending', not_before = 0, updated_at = ?,
                       lease_owner = NULL, lease_deadline = NULL
                   WHERE state = 'running'""",
                (now,),
            )
            return cursor.rowcount

    # -- reads ----------------------------------------------------------------

    def get(self, job_id: str) -> dict | None:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return _row_to_dict(row) if row is not None else None

    def stats(self, now: float | None = None) -> dict:
        """The queue-health block for ``/healthz`` and ``/metrics``.

        Everything an operator needs to see a stuck tier from the outside:
        depth (pending + running), per-state counts, dead-letter size, the
        age of the oldest live lease (a wedged worker shows up here long
        before its jobs dead-letter), how many jobs are waiting out a retry
        backoff, and total retries burned.
        """
        now = time.time() if now is None else now
        with self._lock:
            states = {
                row["state"]: row["n"]
                for row in self._connection.execute(
                    "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
                )
            }
            lease = self._connection.execute(
                """SELECT MIN(leased_at) AS oldest, COUNT(*) AS n
                   FROM jobs WHERE state = 'running'"""
            ).fetchone()
            backlog = self._connection.execute(
                """SELECT COUNT(*) AS n FROM jobs
                   WHERE state IN ('pending', 'failed') AND not_before > ?""",
                (now,),
            ).fetchone()
            retries = self._connection.execute(
                "SELECT COALESCE(SUM(attempts - 1), 0) AS n FROM jobs WHERE attempts > 1"
            ).fetchone()
        counts = {state: states.get(state, 0) for state in JOB_STATES}
        oldest = lease["oldest"]
        return {
            "states": counts,
            "queue_depth": counts["pending"] + counts["failed"] + counts["running"],
            "dead_letter": counts["dead"],
            "leases_active": lease["n"],
            "oldest_lease_age_s": max(0.0, now - oldest) if oldest else 0.0,
            "backoff_waiting": backlog["n"],
            "retries_total": retries["n"],
        }
