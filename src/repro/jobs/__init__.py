"""The durable job tier: crash-safe proof/verify/sweep work as *jobs*.

ROADMAP item 4 ("proofs as jobs, not requests") lands here.  Everything
the synchronous serving tiers lose on a ``kill -9`` — admitted requests,
in-flight batches, finished results — survives as rows in a sqlite-backed
:class:`~repro.jobs.store.JobStore` (WAL mode, lease-based claiming,
bounded retries with exponential backoff, a terminal dead-letter state)
plus content-addressed proof bytes in an
:class:`~repro.jobs.artifacts.ArtifactStore` (sha256-addressed files —
proofs are deterministic, so identical jobs dedup to one blob for free).

:class:`~repro.jobs.worker.JobRunner` is the pump: an asyncio loop inside
each :class:`~repro.service.ProofService` that claims batches of
same-structure jobs, executes them on the service's single engine thread
through :meth:`~repro.api.ProverEngine.execute_job_batch`, renews leases
while the batch runs, and commits results — guarded so a worker that lost
its lease mid-batch cannot clobber the re-leased attempt's outcome.

Failure semantics (also in the README's Jobs section): a crashed worker's
``running`` jobs are re-leased after the lease deadline (or instantly via
:meth:`~repro.jobs.store.JobStore.recover_abandoned` at restart, since one
service process owns one store); a job that keeps crashing its worker
dead-letters after ``max_attempts``; completed artifacts are immutable
content-addressed files that survive anything short of disk loss.
"""

from repro.jobs.artifacts import ArtifactStore
from repro.jobs.store import JOB_STATES, JobStore, job_id_structure_key, new_job_id
from repro.jobs.worker import JobRunner

__all__ = [
    "ArtifactStore",
    "JOB_STATES",
    "JobRunner",
    "JobStore",
    "job_id_structure_key",
    "new_job_id",
]
