"""Command-line interface: ``python -m repro <command>``.

Every command is a thin view over :class:`repro.api.ProverEngine`; the
engine-level flags (``--field-backend``, ``--workers``) are accepted
uniformly by all of them.

Commands
--------
``simulate``   Simulate the zkSpeed accelerator on a problem size or named
               scenario and print runtime, speedup over the CPU baseline,
               and breakdowns.
``dse``        Run a reduced design-space exploration and print the Pareto
               frontier for a problem size.
``prove``      Build a circuit (mock by default, or any registered
               scenario), generate a HyperPlonk proof, verify it, and
               report the serialized proof size.  ``--count N`` proves a
               batch via the engine's ``prove_many`` path.
``table1``     Print the Table 1 kernel-profile reproduction for a size.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Sequence

from repro.api import EngineConfig, ProverEngine, available_scenarios


def _engine_from_args(args: argparse.Namespace, **extra) -> ProverEngine:
    return ProverEngine(
        EngineConfig(
            field_backend=args.field_backend,
            workers=args.workers,
            srs_cache_dir=args.srs_cache_dir,
            **extra,
        )
    )


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(raw: str) -> int:
    value = int(raw)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _model_num_vars(args: argparse.Namespace) -> int | None:
    """Problem size for the model commands.

    ``--log-gates`` wins when given; otherwise a named scenario runs at its
    published Table 3 size (``None`` → the engine resolves it) and the
    plain synthetic workload keeps the historical 2^20 default.
    """
    if args.log_gates is not None:
        return args.log_gates
    return None if args.scenario else 20


def _cmd_simulate(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    chip = engine.chip(bandwidth_gbs=args.bandwidth)
    workload = engine.workload(args.scenario, num_vars=_model_num_vars(args))
    report = chip.simulate(workload)
    cpu = engine.cpu_baseline()
    print(f"configuration : {chip.config.describe()}")
    if args.scenario:
        print(f"scenario      : {workload.name}")
    print(f"problem size  : 2^{workload.num_vars} gates")
    print(f"runtime       : {report.total_runtime_ms:.2f} ms")
    print(f"CPU baseline  : {cpu.runtime_ms(workload.num_vars):.0f} ms")
    print(f"speedup       : {cpu.runtime_ms(workload.num_vars) / report.total_runtime_ms:.0f}x")
    print(f"total area    : {report.total_area_mm2:.1f} mm^2")
    print(f"total power   : {report.total_power_w:.1f} W")
    print("step breakdown:")
    for step in report.steps:
        bound = "memory" if step.is_memory_bound else "compute"
        print(
            f"  {step.name:<20s} {chip.tech.cycles_to_ms(step.total_cycles):8.2f} ms  ({bound}-bound)"
        )
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    explorer, points = engine.explore(
        args.scenario, num_vars=_model_num_vars(args), max_points=args.max_points
    )
    num_vars = explorer.workload.num_vars
    print(f"evaluated {len(points)} configurations at 2^{num_vars} gates")
    frontier = explorer.global_pareto(points)
    print("global Pareto frontier (runtime ms, area mm^2, config):")
    for point in frontier:
        print(
            f"  {point.runtime_ms:9.2f}  {point.area_mm2:8.1f}  {point.config.describe()}"
        )
    best = explorer.best_under_area(points, area_budget_mm2=args.area_budget)
    if best is not None:
        print(
            f"fastest under {args.area_budget:.0f} mm^2: {best.runtime_ms:.2f} ms "
            f"({explorer.speedup(best):.0f}x over CPU)"
        )
    return 0


def _cmd_prove(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args, srs_seed=args.seed)
    # Witness seeds derive from --seed exactly as the historical CLI did, so
    # the proof bytes for a given invocation are unchanged by the redesign.
    rng = random.Random(args.seed)
    witness_seeds = [rng.randrange(1 << 30) for _ in range(args.count)]

    start = time.perf_counter()
    if args.count == 1:
        artifacts = [
            engine.prove(args.scenario, num_vars=args.log_gates, seed=witness_seeds[0])
        ]
    else:
        artifacts = engine.prove_many(
            [
                {"scenario": args.scenario, "num_vars": args.log_gates, "seed": seed}
                for seed in witness_seeds
            ]
        )
    total_prove = time.perf_counter() - start

    ok = True
    for index, artifact in enumerate(artifacts):
        circuit_label = f"[{index}] " if args.count > 1 else ""
        print(
            f"{circuit_label}circuit: 2^{artifact.num_vars} gates "
            f"(scenario {artifact.scenario!r})"
        )
        setup_seconds = artifact.timings.get("setup_and_preprocess")
        if setup_seconds is not None:
            print(f"{circuit_label}setup + preprocess: {setup_seconds:.2f} s")
        print(f"{circuit_label}prove: {artifact.timings['prove']:.2f} s")
        print(f"{circuit_label}proof size: {artifact.size_bytes} bytes")
        start = time.perf_counter()
        accepted = engine.verify(artifact)
        ok = ok and accepted
        print(
            f"{circuit_label}verify: {time.perf_counter() - start:.3f} s -> "
            f"{'ACCEPT' if accepted else 'REJECT'}"
        )
    if args.count > 1:
        print(
            f"batch: {len(artifacts)} proofs in {total_prove:.2f} s "
            f"({engine.config.effective_workers()} worker(s)); "
            f"cache {engine.cache_stats.as_dict()}"
        )
    engine.close()
    return 0 if ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    profiles = engine.kernel_profiles(args.scenario, num_vars=_model_num_vars(args))
    print(f"{'kernel':<22s} {'modmuls (M)':>12s} {'in (MB)':>10s} {'out (MB)':>10s} {'AI':>7s}")
    for profile in profiles:
        print(
            f"{profile.name:<22s} {profile.modmuls / 1e6:>12.1f} "
            f"{profile.input_bytes / 1e6:>10.1f} {profile.output_bytes / 1e6:>10.1f} "
            f"{profile.arithmetic_intensity:>7.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="zkSpeed / HyperPlonk reproduction toolkit"
    )
    # Engine-level options shared by every command (previously these
    # silently no-opped on everything but `prove`).
    engine_options = argparse.ArgumentParser(add_help=False)
    engine_options.add_argument(
        "--field-backend",
        choices=("auto", "python", "numpy"),
        default="auto",
        help="field-vector backend for the prover hot paths (default: auto)",
    )
    engine_options.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="worker processes for the sharded prover: MSM windows and "
        "SumCheck rounds within one proof, whole proofs across a --count "
        "batch (0 = one per CPU, default: 1 = serial)",
    )
    engine_options.add_argument(
        "--srs-cache-dir",
        default=None,
        metavar="DIR",
        help="disk cache for the universal SRS, keyed by size and seed "
        "(default: no disk cache)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate",
        parents=[engine_options],
        help="simulate zkSpeed on a problem size or scenario",
    )
    simulate.add_argument(
        "--log-gates",
        type=_positive_int,
        default=None,
        help="problem size exponent (default: the scenario's published "
        "Table 3 size, or 20 for the synthetic workload)",
    )
    simulate.add_argument("--bandwidth", type=float, default=2048.0, help="GB/s")
    simulate.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default=None,
        help="named workload (default: synthetic sparsity at --log-gates)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    dse = subparsers.add_parser(
        "dse",
        parents=[engine_options],
        help="run a reduced design-space exploration",
    )
    dse.add_argument("--log-gates", type=_positive_int, default=None)
    dse.add_argument("--max-points", type=_positive_int, default=400)
    dse.add_argument("--area-budget", type=float, default=366.0)
    dse.add_argument("--scenario", choices=available_scenarios(), default=None)
    dse.set_defaults(func=_cmd_dse)

    prove = subparsers.add_parser(
        "prove",
        parents=[engine_options],
        help="prove and verify one or more circuits",
    )
    prove.add_argument("--log-gates", type=_positive_int, default=5)
    prove.add_argument("--seed", type=int, default=0)
    prove.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="mock",
        help="circuit generator to prove (default: mock)",
    )
    prove.add_argument(
        "--count",
        type=_positive_int,
        default=1,
        help="number of proofs to generate via the batch path (default: 1)",
    )
    prove.set_defaults(func=_cmd_prove)

    table1 = subparsers.add_parser(
        "table1",
        parents=[engine_options],
        help="print the Table 1 kernel profiles",
    )
    table1.add_argument("--log-gates", type=_positive_int, default=None)
    table1.add_argument("--scenario", choices=available_scenarios(), default=None)
    table1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
