"""Command-line interface: ``python -m repro <command>``.

Every command is a thin view over :class:`repro.api.ProverEngine`; the
engine-level flags (``--field-backend``, ``--workers``) are accepted
uniformly by all of them.

Commands
--------
``simulate``   Simulate the zkSpeed accelerator on a problem size or named
               scenario and print runtime, speedup over the CPU baseline,
               and breakdowns.
``dse``        Run a reduced design-space exploration and print the Pareto
               frontier for a problem size.
``sweep``      Run a distributed design-space sweep (``repro.dse``):
               locally over the engine's worker pool, or against a running
               ``repro serve`` / ``repro cluster`` with ``--url`` —
               incremental progress, online Pareto frontier.
``prove``      Build a circuit (mock by default, or any registered
               scenario), generate a HyperPlonk proof, verify it, and
               report the serialized proof size.  ``--count N`` proves a
               batch via the engine's ``prove_many`` path.
``table1``     Print the Table 1 kernel-profile reproduction for a size.
``serve``      Run the asyncio proof-serving subsystem: a long-lived
               engine behind ``POST /prove`` / ``POST /verify`` with
               dynamic batching and backpressure (``repro.service``),
               plus the durable job tier (``POST /jobs``) — point
               ``--job-dir`` at persistent storage to make accepted jobs
               survive crashes and restarts.
``chaos``      Run ``serve`` with fault-injection rules armed
               (``repro.testing.faults``): crash or error the process at
               named seams (``batch-execute``, ``store-write``, ...) to
               demonstrate — or test — durable-job crash recovery.
``cluster``    Run the sharded serving tier (``repro.cluster``): a router
               over N backend ``repro serve`` processes — spawned as
               children (``--spawn``) or attached (``--backends``) — with
               structure-affine routing and health-checked failover.
``submit``     Submit prove requests to a running ``repro serve`` or
               ``repro cluster`` from a script, verify the returned
               proofs, and print latencies.  ``--simulate`` submits
               accelerator simulations instead, cycling design points
               through ``POST /simulate``.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import time
from typing import Sequence

from repro.api import EngineConfig, ProverEngine, available_scenarios


def _engine_from_args(args: argparse.Namespace, **extra) -> ProverEngine:
    return ProverEngine(
        EngineConfig(
            field_backend=args.field_backend,
            workers=args.workers,
            srs_cache_dir=args.srs_cache_dir,
            srs_source=args.srs_source,
            **extra,
        )
    )


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(raw: str) -> int:
    value = int(raw)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _model_num_vars(args: argparse.Namespace) -> int | None:
    """Problem size for the model commands.

    ``--log-gates`` wins when given; otherwise a named scenario runs at its
    published Table 3 size (``None`` → the engine resolves it) and the
    plain synthetic workload keeps the historical 2^20 default.
    """
    if args.log_gates is not None:
        return args.log_gates
    return None if args.scenario else 20


def _cmd_simulate(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    chip = engine.chip(bandwidth_gbs=args.bandwidth)
    workload = engine.workload(args.scenario, num_vars=_model_num_vars(args))
    report = chip.simulate(workload)
    cpu = engine.cpu_baseline()
    print(f"configuration : {chip.config.describe()}")
    if args.scenario:
        print(f"scenario      : {workload.name}")
    print(f"problem size  : 2^{workload.num_vars} gates")
    print(f"runtime       : {report.total_runtime_ms:.2f} ms")
    print(f"CPU baseline  : {cpu.runtime_ms(workload.num_vars):.0f} ms")
    print(f"speedup       : {cpu.runtime_ms(workload.num_vars) / report.total_runtime_ms:.0f}x")
    print(f"total area    : {report.total_area_mm2:.1f} mm^2")
    print(f"total power   : {report.total_power_w:.1f} W")
    print("step breakdown:")
    for step in report.steps:
        bound = "memory" if step.is_memory_bound else "compute"
        print(
            f"  {step.name:<20s} {chip.tech.cycles_to_ms(step.total_cycles):8.2f} ms  ({bound}-bound)"
        )
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    explorer, points = engine.explore(
        args.scenario, num_vars=_model_num_vars(args), max_points=args.max_points
    )
    num_vars = explorer.workload.num_vars
    print(f"evaluated {len(points)} configurations at 2^{num_vars} gates")
    frontier = explorer.global_pareto(points)
    print("global Pareto frontier (runtime ms, area mm^2, config):")
    for point in frontier:
        print(
            f"  {point.runtime_ms:9.2f}  {point.area_mm2:8.1f}  {point.config.describe()}"
        )
    best = explorer.best_under_area(points, area_budget_mm2=args.area_budget)
    if best is not None:
        print(
            f"fastest under {args.area_budget:.0f} mm^2: {best.runtime_ms:.2f} ms "
            f"({explorer.speedup(best):.0f}x over CPU)"
        )
    return 0


def _parse_override(raw: str) -> tuple[str, tuple]:
    """``knob=v1,v2`` → ``(knob, (v1, v2))`` with numeric value coercion."""
    knob, separator, values = raw.partition("=")
    if not separator or not values:
        raise argparse.ArgumentTypeError(
            f"override must look like knob=value,value — got {raw!r}"
        )

    def coerce(text: str):
        for parse in (int, float):
            try:
                return parse(text)
            except ValueError:
                continue
        return text

    return knob, tuple(coerce(value) for value in values.split(","))


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.core.config import ZkSpeedConfig
    from repro.dse import SweepPlan

    overrides = dict(args.override) if args.override else None
    try:
        plan = SweepPlan(
            scenario=args.scenario,
            num_vars=args.log_gates,
            overrides=overrides,
            max_points=args.max_points,
        )
    except (ValueError, KeyError) as exc:
        print(f"bad sweep plan: {exc}", file=sys.stderr)
        return 2
    print(f"sweep plan: {plan.describe()}")

    def progress(done: int, total: int, pareto_size: int) -> None:
        print(
            f"  {done}/{total} points, frontier size {pareto_size}",
            file=sys.stderr,
            flush=True,
        )

    if args.url:
        from repro.service import ServiceClient

        def on_event(event: dict) -> None:
            kind = event.get("event")
            if kind == "progress":
                progress(event["done"], event["total"], event["pareto_size"])
            elif kind == "shard":
                print(
                    f"  shard {event['index'] + 1}/{event['count']} done on "
                    f"{event['served_by']} ({event['points']} points)",
                    file=sys.stderr,
                    flush=True,
                )

        from repro.service.client import TruncatedStream

        try:
            with ServiceClient.from_url(args.url, timeout=args.timeout) as client:
                result = client.sweep(
                    scenario=args.scenario,
                    num_vars=args.log_gates,
                    overrides={k: list(v) for k, v in overrides.items()}
                    if overrides
                    else None,
                    max_points=args.max_points,
                    stream=True,
                    on_event=on_event,
                )
        except TruncatedStream as exc:
            # A partial frontier is NOT a frontier: dominated points may
            # simply not have met their dominators yet.  Fail loudly
            # instead of printing a silently wrong result.
            print(
                f"sweep stream truncated after {exc.partial} event(s): the "
                "server died (or was restarted) mid-stream, so the partial "
                "frontier is unusable.",
                file=sys.stderr,
            )
            print(
                "resume: re-run this exact command once the service is "
                "healthy again (sweeps are deterministic and shard results "
                "are memoized server-side), or submit it as a durable job "
                "that survives restarts: "
                "POST /jobs {\"kind\": \"sweep\", ...}.",
                file=sys.stderr,
            )
            return 3
        mode = result["mode"]
        total = result["total_points"]
        elapsed = result["elapsed_s"]
        rate = result["points_per_second"]
        pareto = result["pareto"]
    else:
        engine = _engine_from_args(args)
        result_obj = engine.sweep(plan, on_progress=progress)
        engine.close()
        mode = result_obj.mode
        total = len(result_obj.points)
        elapsed = result_obj.elapsed_s
        rate = result_obj.points_per_second
        pareto = result_obj.pareto_points
        result = result_obj.to_wire(include_points=args.output is not None)

    print(
        f"evaluated {total} configurations in {elapsed:.2f} s "
        f"({rate:.0f} points/s, mode {mode})"
    )
    print("global Pareto frontier (runtime ms, area mm^2, config):")
    for point in pareto:
        config = ZkSpeedConfig(**point["config"])
        print(
            f"  {point['runtime_ms']:9.2f}  {point['area_mm2']:8.1f}  "
            f"{config.describe()}"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_prove(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args, srs_seed=args.seed)
    # Witness seeds derive from --seed exactly as the historical CLI did, so
    # the proof bytes for a given invocation are unchanged by the redesign.
    rng = random.Random(args.seed)
    witness_seeds = [rng.randrange(1 << 30) for _ in range(args.count)]

    start = time.perf_counter()
    if args.count == 1:
        artifacts = [
            engine.prove(args.scenario, num_vars=args.log_gates, seed=witness_seeds[0])
        ]
    else:
        artifacts = engine.prove_many(
            [
                {"scenario": args.scenario, "num_vars": args.log_gates, "seed": seed}
                for seed in witness_seeds
            ]
        )
    total_prove = time.perf_counter() - start

    ok = True
    for index, artifact in enumerate(artifacts):
        circuit_label = f"[{index}] " if args.count > 1 else ""
        print(
            f"{circuit_label}circuit: 2^{artifact.num_vars} gates "
            f"(scenario {artifact.scenario!r})"
        )
        setup_seconds = artifact.timings.get("setup_and_preprocess")
        if setup_seconds is not None:
            print(f"{circuit_label}setup + preprocess: {setup_seconds:.2f} s")
        print(f"{circuit_label}prove: {artifact.timings['prove']:.2f} s")
        print(f"{circuit_label}proof size: {artifact.size_bytes} bytes")
        start = time.perf_counter()
        accepted = engine.verify(artifact)
        ok = ok and accepted
        print(
            f"{circuit_label}verify: {time.perf_counter() - start:.3f} s -> "
            f"{'ACCEPT' if accepted else 'REJECT'}"
        )
    if args.count > 1:
        print(
            f"batch: {len(artifacts)} proofs in {total_prove:.2f} s "
            f"({engine.config.effective_workers()} worker(s)); "
            f"cache {engine.cache_stats.as_dict()}"
        )
    engine.close()
    return 0 if ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    profiles = engine.kernel_profiles(args.scenario, num_vars=_model_num_vars(args))
    print(f"{'kernel':<22s} {'modmuls (M)':>12s} {'in (MB)':>10s} {'out (MB)':>10s} {'AI':>7s}")
    for profile in profiles:
        print(
            f"{profile.name:<22s} {profile.modmuls / 1e6:>12.1f} "
            f"{profile.input_bytes / 1e6:>10.1f} {profile.output_bytes / 1e6:>10.1f} "
            f"{profile.arithmetic_intensity:>7.2f}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so `repro simulate` and friends never pay for the
    # service stack.
    from repro.service import ProofService, ServiceConfig

    service = ProofService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            job_dir=args.job_dir,
            job_lease_s=args.job_lease,
            job_max_attempts=args.job_attempts,
            job_queue_limit=args.job_queue_limit,
        ),
        engine_config=EngineConfig(
            field_backend=args.field_backend,
            workers=args.workers,
            srs_cache_dir=args.srs_cache_dir,
            srs_source=args.srs_source,
        ),
    )

    def announce(svc: ProofService) -> None:
        print(
            f"serving on http://{svc.config.host}:{svc.port} "
            f"(window {svc.config.batch_window_ms:g} ms, "
            f"max batch {svc.config.max_batch}, "
            f"queue bound {svc.config.max_queue}, "
            f"{svc.engine.config.effective_workers()} worker(s)); "
            f"Ctrl-C drains and exits",
            flush=True,
        )

    asyncio.run(service.serve_forever(on_ready=announce))
    print("drained; bye")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """``repro serve`` with fault-injection rules armed.

    The rules land in ``REPRO_FAULTS`` (the same spec the tests use), so
    they also survive into any child process this one spawns.  A ``kill``
    rule SIGKILLs the server at the seam — restart it with the same
    ``--job-dir`` to watch every accepted job recover.
    """
    import os

    from repro.testing.faults import parse_fault_spec

    spec = ";".join(args.fault)
    try:
        rules = parse_fault_spec(spec)
    except ValueError as exc:
        print(f"bad --fault spec: {exc}", file=sys.stderr)
        return 2
    os.environ["REPRO_FAULTS"] = spec
    print(
        "chaos mode: "
        + "; ".join(
            f"{rule.point} -> {rule.action}"
            + (f" after {rule.after}" if rule.after else "")
            + (f" x{rule.times}" if rule.times is not None else "")
            for rule in rules
        ),
        flush=True,
    )
    return _cmd_serve(args)


def _cmd_cluster(args: argparse.Namespace) -> int:
    # Imported here so the model commands never pay for the serving stack.
    from repro.cluster import ClusterRouter, RouterConfig, parse_backend_list

    if bool(args.spawn) == bool(args.backends):
        print("pass exactly one of --spawn N or --backends host:port,...",
              file=sys.stderr)
        return 2

    config = RouterConfig(
        host=args.host,
        port=args.port,
        health_interval_s=args.health_interval,
        fail_threshold=args.fail_threshold,
        retry_limit=args.retry_limit,
        pool_size=args.pool_size,
        request_timeout_s=args.timeout,
    )
    if args.spawn:
        # Children inherit the engine/batcher flags; each resolves its own
        # ephemeral port and the router parses the announcement.
        spawn_args = [
            "--field-backend", args.field_backend,
            "--workers", str(args.workers),
            "--batch-window-ms", str(args.batch_window_ms),
            "--max-batch", str(args.max_batch),
            "--max-queue", str(args.max_queue),
        ]
        if args.srs_cache_dir is not None:
            spawn_args += ["--srs-cache-dir", args.srs_cache_dir]
        if args.srs_source is not None:
            spawn_args += ["--srs-source", args.srs_source]
        per_backend_args = None
        if args.job_dir is not None:
            # One durable queue per child: sqlite leases assume one owning
            # process, and per-child directories let a restarted child
            # recover exactly its own jobs.
            import os

            per_backend_args = [
                ["--job-dir", os.path.join(args.job_dir, f"backend-{index}")]
                for index in range(args.spawn)
            ]
        router = ClusterRouter(
            config,
            spawn=args.spawn,
            spawn_args=spawn_args,
            spawn_per_backend_args=per_backend_args,
        )
    else:
        if args.job_dir is not None:
            print(
                "--job-dir only applies to spawned children; attached "
                "backends own their job directories",
                file=sys.stderr,
            )
            return 2
        attached = [
            f"{host}:{port}" for host, port in parse_backend_list(args.backends)
        ]
        router = ClusterRouter(config, backends=attached)

    def announce(rtr: ClusterRouter) -> None:
        print(
            f"routing on http://{rtr.config.host}:{rtr.port} over "
            f"{len(rtr.backend_ids)} backend(s): {', '.join(rtr.backend_ids)} "
            f"({'spawned' if args.spawn else 'attached'}; "
            f"retry limit {rtr.config.retry_limit}, "
            f"health every {rtr.config.health_interval_s:g} s); "
            f"Ctrl-C drains the whole tree and exits",
            flush=True,
        )

    asyncio.run(router.serve_forever(on_ready=announce))
    print("cluster drained; bye")
    return 0


def _retrying(call, retries: int):
    """Run ``call``, retrying 429/503 answers up to ``retries`` times.

    The server's ``Retry-After`` estimate wins when present; otherwise a
    jittered exponential backoff paces the retries.
    """
    from repro.service.client import ServiceUnavailable, backoff_delay

    attempt = 0
    while True:
        try:
            return call()
        except ServiceUnavailable as exc:
            if attempt >= retries:
                raise
            delay = exc.retry_after if exc.retry_after else backoff_delay(attempt)
            time.sleep(delay)
            attempt += 1


def _cmd_submit(args: argparse.Namespace) -> int:
    import concurrent.futures

    from repro.service import ServiceClient

    # Witness seeds derive from --seed exactly like `repro prove --count`,
    # so a submit batch reproduces the proofs a local batch would.
    rng = random.Random(args.seed)
    witness_seeds = [rng.randrange(1 << 30) for _ in range(args.count)]
    concurrency = min(args.concurrency, args.count)

    if args.jobs and args.simulate:
        print("--jobs supports prove requests only, not --simulate",
              file=sys.stderr)
        return 2

    if args.simulate:
        # Distinct design points per request (bandwidth cycles through the
        # Table 2 values), so a submit batch exercises both the memoized
        # and the cold path of POST /simulate.
        from repro.core.config import DESIGN_SPACE

        bandwidths = list(DESIGN_SPACE["bandwidth_gbs"])

        def one(index: int) -> tuple[int, dict, float]:
            with ServiceClient.from_url(args.url, timeout=args.timeout) as client:
                start = time.perf_counter()
                result = _retrying(
                    lambda: client.simulate(
                        args.scenario,
                        num_vars=args.log_gates,
                        bandwidth_gbs=bandwidths[index % len(bandwidths)],
                    ),
                    args.retries,
                )
                return index, result, time.perf_counter() - start

        requests = list(range(args.count))
        unit = "simulations"
    elif args.jobs:

        def one(seed: int) -> tuple[int, dict, float]:
            with ServiceClient.from_url(args.url, timeout=args.timeout) as client:
                start = time.perf_counter()
                ack = _retrying(
                    lambda: client.submit_job(
                        {
                            "kind": "prove",
                            "scenario": args.scenario,
                            "num_vars": args.log_gates
                            if args.log_gates is not None
                            else 5,
                            "seed": seed,
                        }
                    ),
                    args.retries,
                )
                record = client.wait_for_job(ack["id"], timeout=args.timeout)
                if record["state"] != "done":
                    raise RuntimeError(
                        f"job {ack['id']} ended {record['state']}: "
                        f"{record.get('error')}"
                    )
                blob = _retrying(
                    lambda: client.job_artifact(ack["id"]), args.retries
                )
                result = {
                    "job_id": ack["id"],
                    "state": record["state"],
                    "attempts": record["attempts"],
                    "artifact_bytes": len(blob),
                    "digest": (record.get("artifact") or {}).get("digest", ""),
                }
                return seed, result, time.perf_counter() - start

        requests = witness_seeds
        unit = "jobs"
    else:

        def one(seed: int) -> tuple[int, dict, float]:
            with ServiceClient.from_url(args.url, timeout=args.timeout) as client:
                start = time.perf_counter()
                result = _retrying(
                    lambda: client.prove(
                        args.scenario,
                        num_vars=args.log_gates if args.log_gates is not None else 5,
                        seed=seed,
                    ),
                    args.retries,
                )
                latency = time.perf_counter() - start
                if not args.no_verify and not client.verify(result):
                    raise RuntimeError(f"proof for seed {seed} rejected by /verify")
                return seed, result, latency

        requests = witness_seeds
        unit = "proofs"

    started = time.perf_counter()
    failures = 0
    latencies: list[float] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=concurrency) as pool:
        for future in [pool.submit(one, request) for request in requests]:
            try:
                key, result, latency = future.result()
            except Exception as exc:
                failures += 1
                print(f"request failed: {exc}")
                continue
            latencies.append(latency)
            if args.simulate:
                served = result.get("served_by")
                print(
                    f"[{key}] 2^{result['num_vars']} {result['scenario']}: "
                    f"{result['runtime_ms']:.2f} ms modeled, "
                    f"{result['area_mm2']:.1f} mm^2, "
                    f"{'cache hit' if result['cached'] else 'cold'}"
                    + (f", served by {served}" if served else "")
                    + f", {latency:.3f} s"
                )
            elif args.jobs:
                print(
                    f"seed {key}: job {result['job_id']} done in "
                    f"{result['attempts']} attempt(s), "
                    f"{result['artifact_bytes']} artifact bytes "
                    f"({result['digest'][:12]}), {latency:.3f} s"
                )
            else:
                print(
                    f"seed {key}: 2^{result['num_vars']} proof, "
                    f"{result['proof_size_bytes']} bytes, "
                    f"batch of {result['batch_size']}, {latency:.3f} s"
                    + ("" if args.no_verify else " -> ACCEPT")
                )
    wall = time.perf_counter() - started
    if latencies:
        ordered = sorted(latencies)
        print(
            f"{len(latencies)}/{args.count} ok in {wall:.2f} s "
            f"({len(latencies) / wall:.2f} {unit}/s, {concurrency} client(s)); "
            f"latency p50 {ordered[len(ordered) // 2]:.3f} s "
            f"max {ordered[-1]:.3f} s"
        )
    return 0 if not failures else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="zkSpeed / HyperPlonk reproduction toolkit"
    )
    # Engine-level options shared by every command (previously these
    # silently no-opped on everything but `prove`).
    engine_options = argparse.ArgumentParser(add_help=False)
    engine_options.add_argument(
        "--field-backend",
        choices=("auto", "python", "numpy", "native"),
        default="auto",
        help="field-vector backend for the prover hot paths (default: auto)",
    )
    engine_options.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="worker processes for the sharded prover: MSM windows and "
        "SumCheck rounds within one proof, whole proofs across a --count "
        "batch (0 = one per CPU, default: 1 = serial)",
    )
    engine_options.add_argument(
        "--srs-cache-dir",
        default=None,
        metavar="DIR",
        help="disk cache for the universal SRS, keyed by size and seed "
        "(default: no disk cache)",
    )
    engine_options.add_argument(
        "--srs-source",
        default=None,
        metavar="PTAU",
        help="powers-of-tau ceremony file to derive the SRS from "
        "(parsed and subgroup-checked; default: seeded synthetic setup)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate",
        parents=[engine_options],
        help="simulate zkSpeed on a problem size or scenario",
    )
    simulate.add_argument(
        "--log-gates",
        type=_positive_int,
        default=None,
        help="problem size exponent (default: the scenario's published "
        "Table 3 size, or 20 for the synthetic workload)",
    )
    simulate.add_argument("--bandwidth", type=float, default=2048.0, help="GB/s")
    simulate.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default=None,
        help="named workload (default: synthetic sparsity at --log-gates)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    dse = subparsers.add_parser(
        "dse",
        parents=[engine_options],
        help="run a reduced design-space exploration",
    )
    dse.add_argument("--log-gates", type=_positive_int, default=None)
    dse.add_argument("--max-points", type=_positive_int, default=400)
    dse.add_argument("--area-budget", type=float, default=366.0)
    dse.add_argument("--scenario", choices=available_scenarios(), default=None)
    dse.set_defaults(func=_cmd_dse)

    sweep = subparsers.add_parser(
        "sweep",
        parents=[engine_options],
        help="run a distributed design-space sweep (local workers or --url)",
    )
    sweep.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default=None,
        help="named workload (default: synthetic sparsity at --log-gates)",
    )
    sweep.add_argument(
        "--log-gates",
        type=_positive_int,
        default=None,
        help="problem size exponent (default: the scenario's published "
        "Table 3 size; required without --scenario)",
    )
    sweep.add_argument(
        "--max-points",
        type=_positive_int,
        default=500,
        help="stride-decimate the Table 2 grid to at most this many design "
        "points (default: 500)",
    )
    sweep.add_argument(
        "--override",
        type=_parse_override,
        action="append",
        metavar="KNOB=V1,V2",
        help="restrict one design-space knob to the given values "
        "(repeatable, e.g. --override sumcheck_pes=2,4)",
    )
    sweep.add_argument(
        "--url",
        default=None,
        help="run the sweep on a running `repro serve` / `repro cluster` "
        "instead of in-process (streamed, sharded across a cluster)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-request HTTP timeout for --url sweeps (default: 600)",
    )
    sweep.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the full sweep result (all points) as JSON",
    )
    sweep.set_defaults(func=_cmd_sweep)

    prove = subparsers.add_parser(
        "prove",
        parents=[engine_options],
        help="prove and verify one or more circuits",
    )
    prove.add_argument("--log-gates", type=_positive_int, default=5)
    prove.add_argument("--seed", type=int, default=0)
    prove.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="mock",
        help="circuit generator to prove (default: mock)",
    )
    prove.add_argument(
        "--count",
        type=_positive_int,
        default=1,
        help="number of proofs to generate via the batch path (default: 1)",
    )
    prove.set_defaults(func=_cmd_prove)

    table1 = subparsers.add_parser(
        "table1",
        parents=[engine_options],
        help="print the Table 1 kernel profiles",
    )
    table1.add_argument("--log-gates", type=_positive_int, default=None)
    table1.add_argument("--scenario", choices=available_scenarios(), default=None)
    table1.set_defaults(func=_cmd_table1)

    def add_serve_arguments(target: argparse.ArgumentParser) -> None:
        target.add_argument("--host", default="127.0.0.1", help="bind address")
        target.add_argument(
            "--port",
            type=_nonnegative_int,
            default=8000,
            help="bind port (0 = ephemeral; the resolved port is printed)",
        )
        target.add_argument(
            "--batch-window-ms",
            type=float,
            default=25.0,
            help="how long the first queued request waits for concurrent "
            "company before prove_many runs (default: 25 ms)",
        )
        target.add_argument(
            "--max-batch",
            type=_positive_int,
            default=16,
            help="largest coalesced prove_many batch (default: 16)",
        )
        target.add_argument(
            "--max-queue",
            type=_positive_int,
            default=64,
            help="queued-request bound before 503 backpressure (default: 64)",
        )
        target.add_argument(
            "--job-dir",
            default=None,
            metavar="DIR",
            help="durable job-tier directory (sqlite queue + artifact store); "
            "default: a throwaway temp dir, so jobs do NOT survive restarts",
        )
        target.add_argument(
            "--job-lease",
            type=float,
            default=30.0,
            metavar="SECONDS",
            help="worker lease on a claimed job before it becomes "
            "re-claimable (default: 30)",
        )
        target.add_argument(
            "--job-attempts",
            type=_positive_int,
            default=3,
            help="attempts before a job is dead-lettered (default: 3)",
        )
        target.add_argument(
            "--job-queue-limit",
            type=_positive_int,
            default=256,
            help="pending-job bound before POST /jobs answers 429 "
            "(default: 256)",
        )

    serve = subparsers.add_parser(
        "serve",
        parents=[engine_options],
        help="run the batching proof-serving subsystem over HTTP",
    )
    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    chaos = subparsers.add_parser(
        "chaos",
        parents=[engine_options],
        help="run `serve` with fault-injection rules armed",
    )
    add_serve_arguments(chaos)
    chaos.add_argument(
        "--fault",
        action="append",
        required=True,
        metavar="POINT:ACTION[:k=v...]",
        help="fault rule, repeatable — e.g. batch-execute:kill:after=2 or "
        "store-write:error:times=1 (points: store-write, lease-renew, "
        "batch-execute, socket-write; actions: error, kill, delay)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    cluster = subparsers.add_parser(
        "cluster",
        parents=[engine_options],
        help="run the sharded serving tier over N proving backends",
    )
    cluster.add_argument("--host", default="127.0.0.1", help="router bind address")
    cluster.add_argument(
        "--port",
        type=_nonnegative_int,
        default=8100,
        help="router bind port (0 = ephemeral; the resolved port is printed)",
    )
    cluster.add_argument(
        "--spawn",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="fork N `repro serve` children on ephemeral ports (engine and "
        "batcher flags are forwarded to them)",
    )
    cluster.add_argument(
        "--backends",
        default=None,
        metavar="HOST:PORT,...",
        help="attach externally started `repro serve` backends instead of "
        "spawning children",
    )
    cluster.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="period of the background healthz probe loop (default: 2)",
    )
    cluster.add_argument(
        "--fail-threshold",
        type=_positive_int,
        default=2,
        help="consecutive probe failures before a backend leaves rotation "
        "(default: 2; a failed forward marks it down immediately)",
    )
    cluster.add_argument(
        "--retry-limit",
        type=_nonnegative_int,
        default=2,
        help="bounded failover attempts after a backend transport failure "
        "(default: 2; requests are idempotent so retries are safe)",
    )
    cluster.add_argument(
        "--pool-size",
        type=_positive_int,
        default=8,
        help="keep-alive connections per backend (default: 8)",
    )
    cluster.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-forwarded-request timeout in seconds (default: 600)",
    )
    # Batcher knobs forwarded to spawned children (ignored with --backends).
    cluster.add_argument(
        "--batch-window-ms",
        type=float,
        default=25.0,
        help="spawned children's coalescing window (default: 25 ms)",
    )
    cluster.add_argument(
        "--max-batch",
        type=_positive_int,
        default=16,
        help="spawned children's largest coalesced batch (default: 16)",
    )
    cluster.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        help="spawned children's queue bound (default: 64)",
    )
    cluster.add_argument(
        "--job-dir",
        default=None,
        metavar="DIR",
        help="root directory for the spawned children's durable job tiers "
        "(child N gets DIR/backend-N); spawn-only",
    )
    cluster.set_defaults(func=_cmd_cluster)

    submit = subparsers.add_parser(
        "submit",
        help="submit prove requests to a running `repro serve` or `repro cluster`",
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8000",
        help="service address (default: http://127.0.0.1:8000)",
    )
    submit.add_argument(
        "--scenario",
        choices=available_scenarios(),
        default="mock",
        help="circuit generator to request (default: mock)",
    )
    submit.add_argument(
        "--log-gates",
        type=_positive_int,
        default=None,
        help="problem size exponent (default: 5 for prove requests, the "
        "scenario's published size for --simulate)",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--simulate",
        action="store_true",
        help="submit accelerator simulations (POST /simulate) instead of "
        "prove requests, cycling bandwidth across the Table 2 values",
    )
    submit.add_argument(
        "--count",
        type=_positive_int,
        default=1,
        help="number of prove requests to submit (default: 1)",
    )
    submit.add_argument(
        "--concurrency",
        type=_positive_int,
        default=4,
        help="client threads submitting concurrently, so the server's "
        "batcher has something to coalesce (default: 4)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request HTTP timeout in seconds (default: 300)",
    )
    submit.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the POST /verify round-trip per returned proof",
    )
    submit.add_argument(
        "--jobs",
        action="store_true",
        help="submit through the durable job tier (POST /jobs) instead of "
        "the synchronous prove path: enqueue, poll to completion, then "
        "download and size the proof artifact",
    )
    submit.add_argument(
        "--retries",
        type=_nonnegative_int,
        default=3,
        help="retries per request on 429/503, honoring the server's "
        "Retry-After header (default: 3)",
    )
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
