"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``   Simulate the zkSpeed accelerator on a problem size and print
               runtime, speedup over the CPU baseline, and breakdowns.
``dse``        Run a reduced design-space exploration and print the Pareto
               frontier for a problem size.
``prove``      Build a small demo circuit, generate a HyperPlonk proof,
               verify it, and report the serialized proof size.
``table1``     Print the Table 1 kernel-profile reproduction for a size.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Sequence

from repro.core import (
    CpuBaseline,
    DesignSpaceExplorer,
    WorkloadModel,
    ZkSpeedChip,
    ZkSpeedConfig,
    protocol_operation_counts,
)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = ZkSpeedConfig.paper_default().with_bandwidth(args.bandwidth)
    chip = ZkSpeedChip(config)
    workload = WorkloadModel(num_vars=args.log_gates)
    report = chip.simulate(workload)
    cpu = CpuBaseline()
    print(f"configuration : {config.describe()}")
    print(f"problem size  : 2^{args.log_gates} gates")
    print(f"runtime       : {report.total_runtime_ms:.2f} ms")
    print(f"CPU baseline  : {cpu.runtime_ms(args.log_gates):.0f} ms")
    print(f"speedup       : {cpu.runtime_ms(args.log_gates) / report.total_runtime_ms:.0f}x")
    print(f"total area    : {report.total_area_mm2:.1f} mm^2")
    print(f"total power   : {report.total_power_w:.1f} W")
    print("step breakdown:")
    for step in report.steps:
        bound = "memory" if step.is_memory_bound else "compute"
        print(
            f"  {step.name:<20s} {chip.tech.cycles_to_ms(step.total_cycles):8.2f} ms  ({bound}-bound)"
        )
    return 0


def _cmd_dse(args: argparse.Namespace) -> int:
    workload = WorkloadModel(num_vars=args.log_gates)
    explorer = DesignSpaceExplorer(workload)
    points = explorer.sweep(max_points=args.max_points)
    print(f"evaluated {len(points)} configurations at 2^{args.log_gates} gates")
    frontier = explorer.global_pareto(points)
    print("global Pareto frontier (runtime ms, area mm^2, config):")
    for point in frontier:
        print(
            f"  {point.runtime_ms:9.2f}  {point.area_mm2:8.1f}  {point.config.describe()}"
        )
    best = explorer.best_under_area(points, area_budget_mm2=args.area_budget)
    if best is not None:
        print(
            f"fastest under {args.area_budget:.0f} mm^2: {best.runtime_ms:.2f} ms "
            f"({explorer.speedup(best):.0f}x over CPU)"
        )
    return 0


def _cmd_prove(args: argparse.Namespace) -> int:
    from repro.circuits import mock_circuit
    from repro.fields import set_default_backend
    from repro.pcs import setup
    from repro.protocol import preprocess, prove, proof_size_bytes, verify

    if args.field_backend != "auto":
        try:
            set_default_backend(args.field_backend)
        except KeyError:
            # e.g. --field-backend numpy on an install without NumPy: degrade
            # to the default policy resolution (REPRO_FIELD_BACKEND or auto),
            # like a direct env-var request for a missing backend would.
            from repro.fields.backends import default_policy

            print(
                f"warning: backend {args.field_backend!r} unavailable, "
                f"using default backend policy ({default_policy()!r})"
            )
    rng = random.Random(args.seed)
    circuit = mock_circuit(args.log_gates, seed=rng.randrange(1 << 30))
    print(f"circuit: 2^{circuit.num_vars} gates ({circuit.num_real_gates} real)")
    start = time.perf_counter()
    srs = setup(circuit.num_vars, seed=args.seed)
    pk, vk = preprocess(circuit, srs)
    print(f"setup + preprocess: {time.perf_counter() - start:.2f} s")
    start = time.perf_counter()
    proof = prove(pk)
    print(f"prove: {time.perf_counter() - start:.2f} s")
    print(f"proof size: {proof_size_bytes(proof)} bytes")
    start = time.perf_counter()
    ok = verify(vk, proof)
    print(f"verify: {time.perf_counter() - start:.3f} s -> {'ACCEPT' if ok else 'REJECT'}")
    return 0 if ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    profiles = protocol_operation_counts(WorkloadModel(num_vars=args.log_gates))
    print(f"{'kernel':<22s} {'modmuls (M)':>12s} {'in (MB)':>10s} {'out (MB)':>10s} {'AI':>7s}")
    for profile in profiles:
        print(
            f"{profile.name:<22s} {profile.modmuls / 1e6:>12.1f} "
            f"{profile.input_bytes / 1e6:>10.1f} {profile.output_bytes / 1e6:>10.1f} "
            f"{profile.arithmetic_intensity:>7.2f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="zkSpeed / HyperPlonk reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="simulate zkSpeed on a problem size")
    simulate.add_argument("--log-gates", type=int, default=20)
    simulate.add_argument("--bandwidth", type=float, default=2048.0, help="GB/s")
    simulate.set_defaults(func=_cmd_simulate)

    dse = subparsers.add_parser("dse", help="run a reduced design-space exploration")
    dse.add_argument("--log-gates", type=int, default=20)
    dse.add_argument("--max-points", type=int, default=400)
    dse.add_argument("--area-budget", type=float, default=366.0)
    dse.set_defaults(func=_cmd_dse)

    prove = subparsers.add_parser("prove", help="prove and verify a demo circuit")
    prove.add_argument("--log-gates", type=int, default=5)
    prove.add_argument("--seed", type=int, default=0)
    prove.add_argument(
        "--field-backend",
        choices=("auto", "python", "numpy"),
        default="auto",
        help="field-vector backend for the prover hot paths (default: auto)",
    )
    prove.set_defaults(func=_cmd_prove)

    table1 = subparsers.add_parser("table1", help="print the Table 1 kernel profiles")
    table1.add_argument("--log-gates", type=int, default=20)
    table1.set_defaults(func=_cmd_table1)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
