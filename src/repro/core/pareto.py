"""Pareto-frontier extraction for the design-space exploration."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def pareto_frontier(
    points: Sequence[T],
    cost_x: Callable[[T], float],
    cost_y: Callable[[T], float],
) -> list[T]:
    """Return the Pareto-optimal subset minimizing both cost functions.

    A point is Pareto-optimal if no other point is at least as good in both
    dimensions and strictly better in at least one.  The result is sorted by
    ``cost_x`` ascending (and therefore ``cost_y`` descending).
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (cost_x(p), cost_y(p)))
    frontier: list[T] = []
    best_y = float("inf")
    for point in ordered:
        y = cost_y(point)
        if y < best_y:
            frontier.append(point)
            best_y = y
    return frontier


def dominates(
    a: T, b: T, cost_x: Callable[[T], float], cost_y: Callable[[T], float]
) -> bool:
    """True if ``a`` dominates ``b`` (no worse in both costs, better in one)."""
    ax, ay = cost_x(a), cost_y(a)
    bx, by = cost_x(b), cost_y(b)
    return ax <= bx and ay <= by and (ax < bx or ay < by)
