"""Pareto-frontier extraction for the design-space exploration.

Two views of the same minimization frontier over ``(cost_x, cost_y)``:

- :func:`pareto_frontier` — the batch form: all points known up front
  (the seed's Figure 9 path);
- :class:`OnlineParetoFront` — the streaming form: points arrive one at a
  time, in any order, from any number of sweep shards, and the frontier is
  maintained incrementally.  The distributed sweep runner updates one of
  these as results land so the frontier is observable *during* a sweep.

The two agree exactly: feeding the same points to either (in any order)
yields the same frontier, including which representative survives a cost
tie — see :meth:`OnlineParetoFront.add` for the deterministic tie rule.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def pareto_frontier(
    points: Sequence[T],
    cost_x: Callable[[T], float],
    cost_y: Callable[[T], float],
) -> list[T]:
    """Return the Pareto-optimal subset minimizing both cost functions.

    A point is Pareto-optimal if no other point is at least as good in both
    dimensions and strictly better in at least one.  The result is sorted by
    ``cost_x`` ascending (and therefore ``cost_y`` descending).
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (cost_x(p), cost_y(p)))
    frontier: list[T] = []
    best_y = float("inf")
    for point in ordered:
        y = cost_y(point)
        if y < best_y:
            frontier.append(point)
            best_y = y
    return frontier


def dominates(
    a: T, b: T, cost_x: Callable[[T], float], cost_y: Callable[[T], float]
) -> bool:
    """True if ``a`` dominates ``b`` (no worse in both costs, better in one)."""
    ax, ay = cost_x(a), cost_y(a)
    bx, by = cost_x(b), cost_y(b)
    return ax <= bx and ay <= by and (ax < bx or ay < by)


class OnlineParetoFront:
    """An incrementally maintained Pareto frontier (minimizing both costs).

    The frontier is kept sorted by ``cost_x`` ascending, which on a strict
    frontier means ``cost_y`` strictly descending — so membership tests and
    evictions are one :mod:`bisect` probe plus a contiguous slice, O(log n)
    amortized per :meth:`add` rather than a full rescan.

    Determinism under ties: among points with *identical* costs the one
    with the smallest ``order`` wins.  ``order`` defaults to insertion
    sequence; a distributed sweep passes each design point's global index
    instead, which makes the surviving frontier — items included, not just
    cost pairs — independent of the order shards happen to complete in.
    This matches :func:`pareto_frontier` exactly: ``sorted`` is stable, so
    the batch form also keeps the first-in-input-order point of a tied
    cost pair.
    """

    def __init__(
        self,
        cost_x: Callable[[T], float] | None = None,
        cost_y: Callable[[T], float] | None = None,
    ):
        self._cost_x = cost_x if cost_x is not None else lambda p: p[0]
        self._cost_y = cost_y if cost_y is not None else lambda p: p[1]
        #: Sorted cost pairs, mirrored by ``_entries``; kept separate so
        #: bisect never has to compare (possibly uncomparable) items.
        self._keys: list[tuple[float, float]] = []
        self._entries: list[tuple[int, T]] = []  # (order, item) per key
        self._counter = 0

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def points(self) -> list[T]:
        """Frontier items, sorted by ``cost_x`` ascending."""
        return [item for _, item in self._entries]

    def costs(self) -> list[tuple[float, float]]:
        """The frontier's ``(cost_x, cost_y)`` pairs, sorted by ``cost_x``."""
        return list(self._keys)

    def add(self, item: T, order: int | None = None) -> bool:
        """Offer one point; returns True if the frontier changed.

        Rejected when an existing point is at least as good in both costs
        (ties included — except an *exactly* tied cost pair, where the
        smaller ``order`` survives); otherwise every now-dominated point is
        evicted and the new point inserted.
        """
        x, y = self._cost_x(item), self._cost_y(item)
        if order is None:
            order = self._counter
        self._counter += 1
        keys = self._keys
        position = bisect.bisect_left(keys, (x, y))
        if position < len(keys) and keys[position] == (x, y):
            if order < self._entries[position][0]:
                self._entries[position] = (order, item)
                return True
            return False
        # The predecessor is the largest key < (x, y); it dominates the
        # candidate iff its y is also no worse.  Nothing further left can
        # dominate if it doesn't: y grows strictly leftward.
        if position > 0 and keys[position - 1][1] <= y:
            return False
        # Successors have larger x; those with y >= y are now dominated and
        # form a contiguous run (y shrinks strictly rightward).
        end = position
        while end < len(keys) and keys[end][1] >= y:
            end += 1
        del keys[position:end]
        del self._entries[position:end]
        keys.insert(position, (x, y))
        self._entries.insert(position, (order, item))
        return True

    def add_many(self, items: Iterable[T]) -> int:
        """Offer a batch (insertion-sequence orders); returns changes made."""
        return sum(1 for item in items if self.add(item))

    def merge(self, other: "OnlineParetoFront") -> int:
        """Fold another frontier in, preserving its per-item orders."""
        changed = 0
        for (order, item) in list(other._entries):
            if self.add(item, order=order):
                changed += 1
        return changed
