"""SumCheck unit model (Section 4.1).

The unified SumCheck PE handles the three HyperPlonk SumCheck flavours
(ZeroCheck, PermCheck, OpenCheck).  Each PE is fully pipelined and retires
one boolean-hypercube instance per cycle; multiple PEs process disjoint
instances in parallel.  With resource sharing a PE provisions 94 modular
multipliers (184 without sharing -- the 48.9% area saving quoted in
Section 4.1.4).

Because the MLE tables grow to full 255-bit values after the first update,
SumCheck is streamed from HBM (Section 4.1.2): every round reads the current
tables and the MLE Update unit writes back half-sized tables, so the unit's
runtime is the max of its compute time and its streaming time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.units.base import UnitModel


@dataclass(frozen=True)
class SumcheckInstanceShape:
    """Shape of one SumCheck instance: which polynomial is being summed."""

    name: str
    num_mles: int
    """Distinct MLE tables referenced by the polynomial (including eq)."""
    max_degree: int
    """Maximum per-variable degree (determines evaluation points per round)."""
    streamed_mles: int
    """MLE tables streamed from HBM each round (rest live in on-chip SRAM)."""
    interpolation_modmuls: int
    """Fixed per-round barycentric-interpolation cost (Section 4.1.1)."""


#: The three HyperPlonk SumCheck instances (Equations 3-5).
ZEROCHECK_SHAPE = SumcheckInstanceShape(
    name="zerocheck", num_mles=9, max_degree=4, streamed_mles=9, interpolation_modmuls=23
)
PERMCHECK_SHAPE = SumcheckInstanceShape(
    name="permcheck", num_mles=13, max_degree=5, streamed_mles=13, interpolation_modmuls=46
)
OPENCHECK_SHAPE = SumcheckInstanceShape(
    name="opencheck", num_mles=12, max_degree=2, streamed_mles=12, interpolation_modmuls=12
)


@dataclass
class SumcheckExecution:
    """Cycle/traffic breakdown of a full multi-round SumCheck."""

    compute_cycles: float
    update_modmuls: float
    bytes_read: float
    bytes_written: float


class SumcheckUnitModel(UnitModel):
    """Cycle and area model of the SumCheck unit."""

    name = "sumcheck"

    def area_mm2(self) -> float:
        modmuls = (
            self.tech.sumcheck_pe_modmuls
            if self.config.share_sumcheck_multipliers
            else self.tech.sumcheck_pe_modmuls_unshared
        )
        per_pe = modmuls * self.tech.modmul_area_mm2_255
        return self.config.sumcheck_pes * per_pe

    def power_density(self) -> float:
        return self.tech.power_density_sumcheck

    # -- cycle model ------------------------------------------------------------------

    def run(
        self,
        num_vars: int,
        shape: SumcheckInstanceShape,
        first_round_on_chip: bool = False,
    ) -> SumcheckExecution:
        """Model a full ``num_vars``-round SumCheck of the given shape.

        ``first_round_on_chip`` marks instances whose round-1 inputs are the
        compressed input MLEs held in global SRAM (the Gate-Identity
        ZeroCheck), which removes the largest round's read traffic.
        """
        pes = self.config.sumcheck_pes
        compute = 0.0
        bytes_read = 0.0
        bytes_written = 0.0
        update_modmuls = 0.0
        field_bytes = self.tech.field_bytes
        for round_index in range(num_vars):
            instances = 1 << (num_vars - round_index - 1)
            # One instance per cycle per PE, plus pipeline drain and the fixed
            # interpolation cost at the end of the round.
            compute += instances / pes + self.tech.padd_pipeline_latency / 8
            compute += shape.interpolation_modmuls
            table_entries = 1 << (num_vars - round_index)
            if round_index == 0 and first_round_on_chip:
                round_read = 0.0
            else:
                round_read = shape.streamed_mles * table_entries * field_bytes
            bytes_read += round_read
            # MLE Update writes back the halved tables (read again next round).
            updated_entries = shape.num_mles * (table_entries // 2)
            update_modmuls += updated_entries
            if round_index != num_vars - 1:
                bytes_written += shape.streamed_mles * (table_entries // 2) * field_bytes
        return SumcheckExecution(
            compute_cycles=compute,
            update_modmuls=update_modmuls,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        )

    def modmuls_per_instance(self, shape: SumcheckInstanceShape) -> int:
        """Active modular multipliers needed for one instance of ``shape``.

        Used to check that the unified 94-multiplier PE covers each flavour
        and to quantify the resource-sharing saving.
        """
        # Each term needs (degree - 1) multiplications per evaluation point at
        # (max_degree + 1) points; extensions are additions and are free.
        per_term = {
            "zerocheck": [3, 3, 4, 3, 2],
            "permcheck": [2, 3, 5, 4],
            "opencheck": [2, 2, 2, 2, 2, 2],
        }[shape.name]
        points = shape.max_degree + 1
        return sum((degree - 1) * points for degree in per_term)
