"""MSM unit model (Section 4.2).

The MSM unit executes Pippenger's algorithm with ``msm_cores`` cores, each
holding ``msm_pes_per_core`` processing elements built around a fully
pipelined point adder (PADD, 1 operation/cycle, ~85-cycle latency).  The
model covers:

* the bucket-accumulation phase (one PADD per point-window pair, spread
  over all PEs);
* the bucket-aggregation phase, with both the serial SZKP scheme and the
  grouped scheme zkSpeed adopts (Figure 5 / Section 4.2.2);
* the Sparse-MSM flow used by witness commitments: 1-valued scalars are
  reduced with a PADD tree, zero scalars are skipped (Section 4.2 / 3.3.1);
* the Polynomial-Opening sequence of MSMs of halving size, whose runtime is
  dominated by fixed per-MSM latency once the sizes become small -- the
  reason the improved aggregation matters;
* off-chip traffic: only (X, Y) coordinates are fetched (Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.units.base import UnitModel


def bucket_aggregation_cycles(
    window_bits: int,
    scheme: str = "grouped",
    group_size: int = 16,
    padd_latency: int = 85,
) -> float:
    """Cycles to aggregate one window's buckets into the window sum.

    The serial (SZKP) scheme performs ``2 * (2^W - 1)`` dependent PADDs, each
    paying the full pipeline latency.  The grouped scheme (adopted from
    PriorMSM) computes group partial sums whose chains interleave in the
    pipeline, leaving only ``2 * group_size`` dependent steps on the critical
    path plus the cross-group combination.
    """
    num_buckets = (1 << window_bits) - 1
    if scheme == "serial":
        return 2.0 * num_buckets * padd_latency
    if scheme != "grouped":
        raise ValueError(f"unknown aggregation scheme {scheme!r}")
    num_groups = -(-num_buckets // group_size)
    pipelined_work = 2.0 * num_buckets            # PADDs issued back-to-back
    critical_chain = 2.0 * group_size + 2 * padd_latency
    cross_group = num_groups * 2.0 + padd_latency
    return pipelined_work + critical_chain + cross_group


@dataclass
class MsmExecution:
    """Cycle/traffic breakdown of one MSM execution."""

    bucket_cycles: float
    aggregation_cycles: float
    window_combine_cycles: float
    fixed_latency_cycles: float
    bytes_read: float

    @property
    def total_cycles(self) -> float:
        return (
            self.bucket_cycles
            + self.aggregation_cycles
            + self.window_combine_cycles
            + self.fixed_latency_cycles
        )


class MsmUnitModel(UnitModel):
    """Cycle and area model of the MSM unit."""

    name = "msm"

    def __init__(
        self, config: ZkSpeedConfig, technology: TechnologyModel = DEFAULT_TECHNOLOGY
    ):
        super().__init__(config, technology)
        self.scalar_bits = 255

    # -- geometry -----------------------------------------------------------------

    @property
    def total_pes(self) -> int:
        return self.config.total_msm_pes

    @property
    def num_windows(self) -> int:
        return -(-self.scalar_bits // self.config.msm_window_bits)

    # -- area / power -----------------------------------------------------------------

    def area_mm2(self) -> float:
        pe_area = self.tech.msm_pe_area_mm2
        # Bucket storage: each PE keeps 2^W - 1 bucket accumulators in
        # projective coordinates; the SRAM for staged points is accounted in
        # the memory model (points_per_pe) and in chip.py.
        bucket_registers_mm2 = (
            ((1 << self.config.msm_window_bits) - 1)
            * self.tech.point_bytes_projective
            / 1e6
            * self.tech.sram_mm2_per_mb
        )
        per_pe = pe_area + bucket_registers_mm2
        return (
            self.config.msm_cores
            * (self.config.msm_pes_per_core * per_pe + self.tech.msm_core_overhead_mm2)
        )

    def power_density(self) -> float:
        return self.tech.power_density_msm

    def local_sram_mb(self) -> float:
        """Point-staging SRAM: three 381-bit banks per PE (Section 4.2.1)."""
        return (
            self.total_pes
            * self.config.msm_points_per_pe
            * 3
            * self.tech.point_coord_bytes
            / 1e6
        )

    # -- cycle models ------------------------------------------------------------------

    def _aggregation_cycles_all_windows(self) -> float:
        per_window = bucket_aggregation_cycles(
            self.config.msm_window_bits,
            scheme=self.config.bucket_aggregation,
            group_size=self.config.bucket_aggregation_group,
            padd_latency=self.tech.padd_pipeline_latency,
        )
        # Windows are aggregated by the PEs in parallel (each PE owns a
        # subset of windows); at least one serial pass remains per core.
        parallel = max(1, min(self.total_pes, self.num_windows))
        return per_window * self.num_windows / parallel

    def dense_msm(self, num_points: int, scalars_on_chip: bool = False) -> MsmExecution:
        """A dense (full-width scalar) MSM of ``num_points`` points."""
        if num_points <= 0:
            return MsmExecution(0.0, 0.0, 0.0, 0.0, 0.0)
        bucket = num_points * self.num_windows / self.total_pes
        aggregation = self._aggregation_cycles_all_windows()
        window_combine = self.scalar_bits + self.num_windows * self.tech.padd_pipeline_latency
        fixed = 2.0 * self.tech.padd_pipeline_latency
        bytes_read = num_points * (
            self.tech.point_bytes_affine + (0 if scalars_on_chip else self.tech.field_bytes)
        )
        return MsmExecution(bucket, aggregation, window_combine, fixed, bytes_read)

    def sparse_msm(
        self,
        num_points: int,
        dense_fraction: float,
        one_fraction: float,
    ) -> MsmExecution:
        """A Sparse MSM (witness commitment): tree for ones, Pippenger for dense."""
        num_ones = int(one_fraction * num_points)
        num_dense = int(dense_fraction * num_points)
        # Tree reduction of 1-valued points: fully pipelined PADDs across PEs,
        # plus the log-depth drain of the final levels.
        tree_cycles = num_ones / self.total_pes + max(
            0, num_ones.bit_length()
        ) * self.tech.padd_pipeline_latency
        dense_exec = self.dense_msm(num_dense)
        bytes_read = (
            (num_ones + num_dense) * self.tech.point_bytes_affine
            + num_dense * self.tech.field_bytes
        )
        return MsmExecution(
            bucket_cycles=dense_exec.bucket_cycles + tree_cycles,
            aggregation_cycles=dense_exec.aggregation_cycles,
            window_combine_cycles=dense_exec.window_combine_cycles,
            fixed_latency_cycles=dense_exec.fixed_latency_cycles,
            bytes_read=bytes_read,
        )

    def polynomial_opening_msms(self, num_vars: int) -> MsmExecution:
        """The halving sequence of MSMs in the Polynomial Opening step.

        For a problem of 2^mu gates the prover commits quotient polynomials
        of sizes 2^(mu-1), 2^(mu-2), ..., 1.  The executions are serialized
        (each quotient depends on the previous reduction), so small MSMs are
        dominated by the fixed aggregation/pipeline latency -- the bottleneck
        the grouped aggregation scheme addresses.
        """
        total = MsmExecution(0.0, 0.0, 0.0, 0.0, 0.0)
        for k in range(1, num_vars + 1):
            size = 1 << (num_vars - k)
            execution = self.dense_msm(size, scalars_on_chip=False)
            total = MsmExecution(
                total.bucket_cycles + execution.bucket_cycles,
                total.aggregation_cycles + execution.aggregation_cycles,
                total.window_combine_cycles + execution.window_combine_cycles,
                total.fixed_latency_cycles + execution.fixed_latency_cycles,
                total.bytes_read + execution.bytes_read,
            )
        return total

    # -- operation counting (for cross-validation against the functional MSM) -------------

    def expected_bucket_padds(self, num_points: int, nonzero_digit_fraction: float = 1.0) -> float:
        """Expected PADDs in the bucket phase (digit = 0 contributes nothing)."""
        return num_points * self.num_windows * nonzero_digit_fraction
