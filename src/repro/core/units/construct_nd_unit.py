"""Construct N&D unit model (Section 4.4.1).

The Construct N&D stage builds the six intermediate MLEs N_1..3 / D_1..3
from the witness and permutation MLEs held in on-chip SRAM plus two SHA3
challenges (beta, gamma), writes them off-chip for the later PermCheck, and
streams the element-wise products N = N1*N2*N3 and D = D1*D2*D3 into the
FracMLE unit.  The datapath is a handful of modular multipliers and adders
processing one gate per cycle.
"""

from __future__ import annotations

from repro.core.units.base import UnitModel


class ConstructNdUnitModel(UnitModel):
    """Cycle and area model of the Construct N&D unit."""

    name = "construct_nd"

    def area_mm2(self) -> float:
        return self.tech.construct_nd_area_mm2

    def cycles(self, num_vars: int) -> float:
        """One gate per cycle, plus pipeline fill."""
        return (1 << num_vars) + self.tech.modmul_latency_cycles * 4

    def modmuls(self, num_vars: int) -> float:
        """Per gate: 2 multiplications per column (beta*id, beta*sigma) plus
        the two 3-way products feeding FracMLE (~10 total)."""
        return self.tech.construct_nd_modmuls * (1 << num_vars)

    def bytes_read(self, num_vars: int, mle_compression: bool = True) -> float:
        """Sigma tables are streamed from HBM unless compressed on-chip copies exist."""
        sigma_bytes = 3 * (1 << num_vars) * self.tech.field_bytes
        if mle_compression:
            # Witness tables come from compressed on-chip SRAM; sigmas are
            # read once from HBM.
            return sigma_bytes * 0.2
        return sigma_bytes + 3 * (1 << num_vars) * self.tech.field_bytes

    def bytes_written(self, num_vars: int) -> float:
        """The six intermediate MLEs plus N and D are written off-chip."""
        return 8 * (1 << num_vars) * self.tech.field_bytes
