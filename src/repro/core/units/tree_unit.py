"""Multifunction Tree Unit (MTU) model (Section 4.3).

The MTU supports three binary-tree compute patterns (Figure 3):

* **Build MLE** (forward tree) -- constructs the eq(r, .) table from the mu
  round challenges with 2^(mu+1) - 4 multiplications;
* **MLE Evaluate** (inverse tree) -- folds a 2^mu table down to one value;
* **Product MLE** -- emits every internal level of the product tree (the
  2^mu - 1 partial products the Wiring Identity commits to).

The hardware instantiates ``multifunction_tree_pes`` tree PEs plus an
accumulator PE that processes the tree levels beyond the physical tree in
depth-first order (the hybrid DFS/BFS traversal of Section 4.3.2), keeping
PE utilization above 99% and avoiding the need to buffer whole tree levels.
Throughput is therefore ~``p`` input elements per cycle.
"""

from __future__ import annotations

from repro.core.units.base import UnitModel


class MultifunctionTreeModel(UnitModel):
    """Cycle and area model of the Multifunction Tree unit."""

    name = "multifunction_tree"

    @property
    def num_pes(self) -> int:
        return self.config.multifunction_tree_pes

    def area_mm2(self) -> float:
        # Table 5 reports 12.28 mm^2 for the shared 8-PE unit; scale linearly
        # in PE count.  Without multi-function sharing, dedicated units for
        # Build MLE / MLE Evaluate / Product MLE would each need their own
        # tree (the 41.6% saving quoted in Section 4.3.3).
        base = self.tech.multifunction_tree_area_mm2 * (
            self.num_pes / self.tech.multifunction_tree_pes
        )
        if self.config.share_multifunction_tree:
            return base
        return base / (1.0 - 0.416)

    def power_density(self) -> float:
        return self.tech.power_density_tree

    # -- cycle models ------------------------------------------------------------------

    def _streamed_tree_cycles(self, num_leaves: int) -> float:
        """Cycles to stream ``num_leaves`` elements through the tree at p/cycle."""
        if num_leaves <= 0:
            return 0.0
        drain = 2 * (max(1, num_leaves.bit_length()))  # accumulator DFS drain
        return num_leaves / self.num_pes + drain + self.tech.modmul_latency_cycles

    def build_mle_cycles(self, num_vars: int) -> float:
        """Build MLE: produce the 2^mu-entry eq table (forward tree)."""
        return self._streamed_tree_cycles(1 << num_vars)

    def build_mle_modmuls(self, num_vars: int) -> int:
        """2^(mu+1) - 4 multiplications (the tree-structured construction)."""
        if num_vars < 1:
            return 0
        return (1 << (num_vars + 1)) - 4

    def mle_evaluate_cycles(
        self, num_vars: int, num_evaluations: int = 1, num_tables: int | None = None
    ) -> float:
        """MLE Evaluate: fold tables of 2^mu entries down to point evaluations.

        Evaluations of the *same* table at several query points share one
        streaming pass (the tree folds against each point's weights in
        parallel columns), so the cycle count scales with the number of
        distinct tables when ``num_tables`` is given, and with the number of
        evaluations otherwise.
        """
        passes = num_tables if num_tables is not None else num_evaluations
        return passes * self._streamed_tree_cycles(1 << num_vars)

    def product_mle_cycles(self, num_vars: int) -> float:
        """Product MLE: one pass emitting all 2^mu - 1 internal products."""
        return self._streamed_tree_cycles(1 << num_vars)

    def batch_inversion_tree_cycles(self, batch_size: int) -> float:
        """Partial-product tree pass for one FracMLE inversion batch."""
        depth = max(1, (batch_size - 1).bit_length())
        return depth * self.tech.modmul_latency_cycles + batch_size / self.num_pes

    # -- traversal comparison (ablation of the hybrid DFS/BFS schedule) -----------------

    def bfs_intermediate_storage_bytes(self, num_vars: int) -> float:
        """On-chip storage a pure BFS traversal would need (half a level)."""
        return (1 << max(0, num_vars - 1)) * self.tech.field_bytes

    def hybrid_intermediate_storage_bytes(self, num_vars: int) -> float:
        """Storage needed by the hybrid DFS/BFS traversal: one entry per level."""
        return num_vars * self.tech.field_bytes * 2
