"""Common interface for zkSpeed unit models.

Each unit model exposes:

* ``area_mm2()``   -- post-scaling (7 nm) silicon area,
* ``power_w()``    -- average power when active (area x calibrated density),
* cycle-count methods specific to the unit's operations.

The full-chip model (:mod:`repro.core.chip`) aggregates unit reports into the
area/power breakdowns of Table 5 and the utilization analysis of Figure 13.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.config import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel


@dataclass
class UnitReport:
    """Area / power / activity summary for one unit."""

    name: str
    area_mm2: float
    power_w: float
    busy_cycles: float = 0.0

    def utilization(self, total_cycles: float) -> float:
        """Fraction of the run during which the unit was busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)


class UnitModel(ABC):
    """Base class for unit models: binds a design config and technology."""

    name: str = "unit"

    def __init__(
        self, config: ZkSpeedConfig, technology: TechnologyModel = DEFAULT_TECHNOLOGY
    ):
        self.config = config
        self.tech = technology

    @abstractmethod
    def area_mm2(self) -> float:
        """Silicon area of the unit at the 7 nm target node."""

    def power_w(self) -> float:
        """Average active power (area times the calibrated power density)."""
        return self.area_mm2() * self.power_density()

    def power_density(self) -> float:
        return self.tech.power_density_compute

    def report(self, busy_cycles: float = 0.0) -> UnitReport:
        return UnitReport(
            name=self.name,
            area_mm2=self.area_mm2(),
            power_w=self.power_w(),
            busy_cycles=busy_cycles,
        )
