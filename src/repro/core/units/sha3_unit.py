"""SHA3 unit model (Section 3.3.6).

The SHA3 unit maintains the Fiat-Shamir transcript: it absorbs commitments
and SumCheck round messages and squeezes challenges.  It is tiny
(5888 um^2) and rarely the bottleneck, but accelerating it matters because
it sits between every pair of protocol steps (Amdahl's-law argument in
Section 7.3.1: unaccelerated it would cap the speedup).
"""

from __future__ import annotations

from repro.core.units.base import UnitModel


class Sha3UnitModel(UnitModel):
    """Cycle and area model of the SHA3 (Keccak) unit."""

    name = "sha3"

    def area_mm2(self) -> float:
        return self.tech.sha3_area_mm2

    def invocation_cycles(self) -> int:
        """One Keccak-f permutation: 24 rounds, one round per cycle."""
        return self.tech.sha3_latency_cycles

    def transcript_cycles(self, num_vars: int) -> float:
        """Total SHA3 cycles for one proof's transcript.

        The transcript absorbs a constant number of commitments plus O(mu)
        SumCheck round messages per SumCheck instance and squeezes O(mu)
        challenges; ~20 invocations per round across the three SumChecks
        plus ~50 fixed invocations.
        """
        invocations = 50 + 20 * num_vars
        return invocations * self.invocation_cycles()
