"""Cycle / area / power models of the eight zkSpeed accelerator units."""

from repro.core.units.base import UnitModel, UnitReport
from repro.core.units.msm_unit import MsmUnitModel, bucket_aggregation_cycles
from repro.core.units.sumcheck_unit import SumcheckUnitModel, SumcheckInstanceShape
from repro.core.units.mle_update_unit import MleUpdateUnitModel
from repro.core.units.tree_unit import MultifunctionTreeModel
from repro.core.units.fracmle_unit import FracMleUnitModel, batch_inversion_tradeoff
from repro.core.units.construct_nd_unit import ConstructNdUnitModel
from repro.core.units.mle_combine_unit import MleCombineUnitModel
from repro.core.units.sha3_unit import Sha3UnitModel

__all__ = [
    "UnitModel",
    "UnitReport",
    "MsmUnitModel",
    "bucket_aggregation_cycles",
    "SumcheckUnitModel",
    "SumcheckInstanceShape",
    "MleUpdateUnitModel",
    "MultifunctionTreeModel",
    "FracMleUnitModel",
    "batch_inversion_tradeoff",
    "ConstructNdUnitModel",
    "MleCombineUnitModel",
    "Sha3UnitModel",
]
