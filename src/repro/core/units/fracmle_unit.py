"""FracMLE unit model (Section 4.4): batched modular inversion.

The Fraction MLE requires a modular inverse per table entry.  zkSpeed uses
the constant-time BEEA (509-cycle latency for 255-bit operands) combined
with Montgomery batching: a batch of ``b`` elements is reduced with a
multiplier tree (O(log2 b) levels), a single BEEA inversion of the batch
product, and a backward sweep of multiplications.  Multiple batched-inverse
units run round-robin so the unit as a whole accepts one element per cycle.

``batch_inversion_tradeoff`` reproduces the Figure 8 study: the latency
imbalance between the partial-product chain (O(b)) and the tree+inversion
path (O(log b) + 509) and the total area, both minimized at b = 64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.units.base import UnitModel

#: Area of one batched-inverse unit (BEEA datapath plus sequencing), fitted
#: so that the Figure 8 area curve peaks near ~80 mm^2 at b = 2 (256 units)
#: and the b = 64 design lands near the Table 5 FracMLE footprint.
BATCHED_INVERSE_UNIT_AREA_MM2 = 0.30
#: SRAM for buffering one batch's partial products, per unit, per element.
PARTIAL_PRODUCT_BUFFER_BYTES = 32


@dataclass
class BatchInversionDesign:
    """Derived properties of a batched-inversion design point (Figure 8)."""

    batch_size: int
    partial_product_latency: float
    tree_and_inversion_latency: float
    num_inverse_units: int
    area_mm2: float

    @property
    def latency_imbalance(self) -> float:
        return abs(self.partial_product_latency - self.tree_and_inversion_latency)

    @property
    def batch_latency(self) -> float:
        return max(self.partial_product_latency, self.tree_and_inversion_latency)


def batch_inversion_tradeoff(
    batch_size: int, technology: TechnologyModel = DEFAULT_TECHNOLOGY
) -> BatchInversionDesign:
    """Latency-imbalance and area of a FracMLE design with the given batch size."""
    if batch_size < 2:
        raise ValueError("batch_size must be at least 2")
    mul_latency = technology.modmul_latency_cycles
    partial_products = batch_size * mul_latency
    depth = (batch_size - 1).bit_length()
    tree_and_inverse = depth * mul_latency + technology.modinv_latency_cycles
    # Enough units to hide one batch latency while accepting 1 element/cycle.
    units = max(1, -(-int(max(partial_products, tree_and_inverse) + batch_size) // batch_size))
    sram_mm2 = (
        units
        * batch_size
        * PARTIAL_PRODUCT_BUFFER_BYTES
        / 1e6
        * technology.sram_mm2_per_mb
    )
    tree_mm2 = depth * technology.modmul_area_mm2_255
    area = units * BATCHED_INVERSE_UNIT_AREA_MM2 + tree_mm2 + sram_mm2
    return BatchInversionDesign(
        batch_size=batch_size,
        partial_product_latency=partial_products,
        tree_and_inversion_latency=tree_and_inverse,
        num_inverse_units=units,
        area_mm2=area,
    )


class FracMleUnitModel(UnitModel):
    """Cycle and area model of the FracMLE unit."""

    name = "fracmle"

    def area_mm2(self) -> float:
        # The shared design (multiplier tree reused across batched-inverse
        # units, Section 4.4.3) lands at the Table 5 footprint per PE.
        return self.config.fracmle_pes * self.tech.fracmle_area_mm2_per_pe

    def design(self) -> BatchInversionDesign:
        return batch_inversion_tradeoff(self.config.fracmle_batch_size, self.tech)

    def fraction_mle_cycles(self, num_vars: int) -> float:
        """Cycles to produce the 2^mu-entry Fraction MLE.

        With enough batched-inverse units the unit is a pipeline of depth
        b * k accepting one element per cycle per PE.
        """
        n = 1 << num_vars
        design = self.design()
        pipeline_fill = design.batch_latency + self.config.fracmle_batch_size
        return n / self.config.fracmle_pes + pipeline_fill

    def inversions(self, num_vars: int) -> int:
        """Number of batched BEEA inversions performed."""
        return -(-(1 << num_vars) // self.config.fracmle_batch_size)

    def bytes_written(self, num_vars: int) -> float:
        """The Fraction MLE is written off-chip for the PermCheck."""
        return (1 << num_vars) * self.tech.field_bytes
