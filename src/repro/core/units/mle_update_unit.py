"""MLE Update unit model (Section 4.1.3).

Between SumCheck rounds every MLE table is folded with the verifier's
challenge:  t'[i] = (t[2i+1] - t[2i]) * r + t[2i]  -- one modular
multiplication per updated entry.  The unit provisions ``mle_update_pes``
PEs with ``mle_update_modmuls_per_pe`` multipliers each; PEs handle distinct
MLE tables independently and the whole unit runs concurrently with the
SumCheck PEs (the round time is the max of the two).
"""

from __future__ import annotations

from repro.core.units.base import UnitModel


class MleUpdateUnitModel(UnitModel):
    """Cycle and area model of the MLE Update unit."""

    name = "mle_update"

    @property
    def throughput_updates_per_cycle(self) -> int:
        return self.config.mle_update_pes * self.config.mle_update_modmuls_per_pe

    def area_mm2(self) -> float:
        return (
            self.config.mle_update_pes
            * self.config.mle_update_modmuls_per_pe
            * self.tech.mle_update_modmul_area_mm2
        )

    def cycles_for_updates(self, num_updates: float) -> float:
        """Cycles to apply ``num_updates`` table-entry updates."""
        if num_updates <= 0:
            return 0.0
        return num_updates / self.throughput_updates_per_cycle + self.tech.modmul_latency_cycles
