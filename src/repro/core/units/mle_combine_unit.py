"""MLE Combine unit model (Section 4.5).

The Polynomial Opening step forms several linear combinations of MLEs: the
per-query-point LC MLEs before OpenCheck and the final combined MLE g'
before the shrinking MSMs.  Because OpenCheck and the MSMs execute in
series, the two combine passes can share multipliers: 72 modmuls with
sharing versus 122 without (a 41% area saving, Section 4.5).
"""

from __future__ import annotations

from repro.core.units.base import UnitModel


class MleCombineUnitModel(UnitModel):
    """Cycle and area model of the MLE Combine unit."""

    name = "mle_combine"

    @property
    def num_modmuls(self) -> int:
        if self.config.share_mle_combine_multipliers:
            return self.tech.mle_combine_modmuls_shared
        return self.tech.mle_combine_modmuls_unshared

    def area_mm2(self) -> float:
        return self.num_modmuls * self.tech.modmul_area_mm2_255

    def combine_cycles(self, num_vars: int, num_input_mles: int) -> float:
        """Cycles to form linear combinations touching ``num_input_mles`` tables.

        Each input-table entry costs one multiply-accumulate; the unit's
        modmuls process them in parallel.
        """
        total_macs = num_input_mles * (1 << num_vars)
        return total_macs / self.num_modmuls + self.tech.modmul_latency_cycles

    def bytes_read(self, num_vars: int, num_offchip_mles: int) -> float:
        return num_offchip_mles * (1 << num_vars) * self.tech.field_bytes

    def bytes_written(self, num_vars: int, num_output_mles: int) -> float:
        return num_output_mles * (1 << num_vars) * self.tech.field_bytes
