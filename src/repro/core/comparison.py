"""Cross-accelerator comparison (Table 4).

Table 4 compares zkSpeed with NoCap (Spartan+Orion, vector processor) and
SZKP+ (Groth16, iso-area with zkSpeed's MSM improvements) at 2^24
constraints/gates.  The NoCap and SZKP+ columns are published results from
their respective papers (scaled to 7 nm by the zkSpeed authors); we encode
them as reference constants and generate the zkSpeed column from our own
models (chip runtime, proof size from the protocol implementation, CPU
baseline from the calibrated model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chip import ZkSpeedChip
from repro.core.config import ZkSpeedConfig
from repro.core.cpu_baseline import CpuBaseline
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.workload_model import WorkloadModel


@dataclass(frozen=True)
class AcceleratorSummary:
    """One column of Table 4."""

    name: str
    protocol: str
    main_kernels: str
    encoding: str
    proof_size_kb: float
    setup: str
    prime: str
    bit_width: str
    cpu_prover_s: float
    hw_prover_ms: float
    verifier_ms: float
    chip_area_mm2: float
    num_modmuls: int
    power_w: float


#: Published columns for the prior accelerators (Table 4 of the paper).
ACCELERATOR_COMPARISON: dict[str, AcceleratorSummary] = {
    "NoCap": AcceleratorSummary(
        name="NoCap",
        protocol="Spartan+Orion",
        main_kernels="NTT & SumCheck",
        encoding="R1CS",
        proof_size_kb=8100.0,
        setup="none",
        prime="fixed",
        bit_width="64",
        cpu_prover_s=94.2,
        hw_prover_ms=151.3,
        verifier_ms=134.0,
        chip_area_mm2=38.73,
        num_modmuls=2432,
        power_w=62.0,
    ),
    "SZKP+": AcceleratorSummary(
        name="SZKP+",
        protocol="Groth16",
        main_kernels="NTT & MSM",
        encoding="R1CS",
        proof_size_kb=0.18,
        setup="circuit-specific",
        prime="arbitrary",
        bit_width="255b/381b",
        cpu_prover_s=51.18,
        hw_prover_ms=28.43,
        verifier_ms=4.2,
        chip_area_mm2=353.2,
        num_modmuls=1720,
        power_w=220.0,
    ),
}

#: zkSpeed column as published, for reference/validation.
PAPER_ZKSPEED_COLUMN = AcceleratorSummary(
    name="zkSpeed (paper)",
    protocol="HyperPlonk",
    main_kernels="SumCheck & MSM",
    encoding="Plonk",
    proof_size_kb=5.09,
    setup="universal",
    prime="arbitrary",
    bit_width="255b/381b",
    cpu_prover_s=145.5,
    hw_prover_ms=171.61,
    verifier_ms=26.0,
    chip_area_mm2=366.46,
    num_modmuls=1206,
    power_w=170.88,
)


def zkspeed_modmul_count(config: ZkSpeedConfig, technology: TechnologyModel = DEFAULT_TECHNOLOGY) -> int:
    """Total modular multipliers provisioned across the chip."""
    padd_muls = config.total_msm_pes * technology.padd_modmuls
    sumcheck_muls = config.sumcheck_pes * (
        technology.sumcheck_pe_modmuls
        if config.share_sumcheck_multipliers
        else technology.sumcheck_pe_modmuls_unshared
    )
    update_muls = config.mle_update_pes * config.mle_update_modmuls_per_pe
    combine_muls = (
        technology.mle_combine_modmuls_shared
        if config.share_mle_combine_multipliers
        else technology.mle_combine_modmuls_unshared
    )
    tree_muls = config.multifunction_tree_pes * 2
    other = technology.construct_nd_modmuls + 8 * config.fracmle_pes
    return padd_muls + sumcheck_muls + update_muls + combine_muls + tree_muls + other


def zkspeed_summary(
    config: ZkSpeedConfig | None = None,
    num_vars: int = 24,
    proof_size_kb: float | None = None,
    technology: TechnologyModel = DEFAULT_TECHNOLOGY,
) -> AcceleratorSummary:
    """Build the zkSpeed column of Table 4 from our models."""
    config = config or ZkSpeedConfig.paper_default()
    chip = ZkSpeedChip(config, technology)
    workload = WorkloadModel(num_vars=num_vars, name=f"2^{num_vars} gates")
    report = chip.simulate(workload)
    cpu = CpuBaseline()
    return AcceleratorSummary(
        name="zkSpeed (this repo)",
        protocol="HyperPlonk",
        main_kernels="SumCheck & MSM",
        encoding="Plonk",
        proof_size_kb=proof_size_kb if proof_size_kb is not None else 5.09,
        setup="universal",
        prime="arbitrary",
        bit_width="255b/381b",
        cpu_prover_s=cpu.runtime_ms(num_vars) / 1000.0,
        hw_prover_ms=report.total_runtime_ms,
        verifier_ms=26.0,
        chip_area_mm2=report.total_area_mm2,
        num_modmuls=zkspeed_modmul_count(config, technology),
        power_w=report.total_power_w,
    )


def accelerator_comparison_table(
    config: ZkSpeedConfig | None = None, num_vars: int = 24
) -> dict[str, AcceleratorSummary]:
    """The full Table 4: published prior-work columns plus our zkSpeed column."""
    table = dict(ACCELERATOR_COMPARISON)
    table["zkSpeed"] = zkspeed_summary(config, num_vars=num_vars)
    return table
