"""Protocol-step scheduler: maps HyperPlonk onto the zkSpeed units.

The scheduler computes, for each of the four serialized protocol phases
(Figure 2), the compute time on every involved unit, the off-chip traffic,
and the phase latency as the maximum of compute and memory time (streams are
overlapped with computation whenever possible, Section 5).  Pipelined
producer/consumer chains inside the Wiring Identity (Construct N&D ->
FracMLE -> ProdMLE -> MSM) are modelled as rate-matched pipelines whose
latency is set by the slowest stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ZkSpeedConfig
from repro.core.memory import MemoryModel
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.units.construct_nd_unit import ConstructNdUnitModel
from repro.core.units.fracmle_unit import FracMleUnitModel
from repro.core.units.mle_combine_unit import MleCombineUnitModel
from repro.core.units.mle_update_unit import MleUpdateUnitModel
from repro.core.units.msm_unit import MsmUnitModel
from repro.core.units.sha3_unit import Sha3UnitModel
from repro.core.units.sumcheck_unit import (
    OPENCHECK_SHAPE,
    PERMCHECK_SHAPE,
    SumcheckUnitModel,
    ZEROCHECK_SHAPE,
)
from repro.core.units.tree_unit import MultifunctionTreeModel
from repro.core.workload_model import WorkloadModel


@dataclass
class Phase:
    """A sub-phase whose streaming is overlapped with its own compute only."""

    name: str
    compute_cycles: float
    memory_bytes: float

    def memory_cycles(self, bandwidth_bytes_per_cycle: float) -> float:
        if self.memory_bytes <= 0:
            return 0.0
        return self.memory_bytes / bandwidth_bytes_per_cycle

    def latency(self, bandwidth_bytes_per_cycle: float) -> float:
        return max(self.compute_cycles, self.memory_cycles(bandwidth_bytes_per_cycle))


@dataclass
class StepTiming:
    """Latency and activity of one protocol step.

    A step consists of one or more sequential sub-phases; within each
    sub-phase off-chip streaming overlaps with computation, but a
    memory-bound sub-phase cannot hide behind a compute-bound one that runs
    before or after it (e.g. the PermCheck rounds do not overlap with the
    phi/pi commitment MSMs).
    """

    name: str
    phases: list[Phase]
    bandwidth_bytes_per_cycle: float
    unit_busy_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def compute_cycles(self) -> float:
        return sum(p.compute_cycles for p in self.phases)

    @property
    def memory_bytes(self) -> float:
        return sum(p.memory_bytes for p in self.phases)

    @property
    def memory_cycles(self) -> float:
        return sum(p.memory_cycles(self.bandwidth_bytes_per_cycle) for p in self.phases)

    @property
    def total_cycles(self) -> float:
        """Step latency: the sum of per-phase latencies."""
        return sum(p.latency(self.bandwidth_bytes_per_cycle) for p in self.phases)

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles


class ProtocolScheduler:
    """Computes per-phase timings for a configuration and workload."""

    def __init__(
        self, config: ZkSpeedConfig, technology: TechnologyModel = DEFAULT_TECHNOLOGY
    ):
        self.config = config
        self.tech = technology
        self.msm = MsmUnitModel(config, technology)
        self.sumcheck = SumcheckUnitModel(config, technology)
        self.mle_update = MleUpdateUnitModel(config, technology)
        self.tree = MultifunctionTreeModel(config, technology)
        self.fracmle = FracMleUnitModel(config, technology)
        self.construct_nd = ConstructNdUnitModel(config, technology)
        self.mle_combine = MleCombineUnitModel(config, technology)
        self.sha3 = Sha3UnitModel(config, technology)
        self.memory = MemoryModel(config, technology)

    # -- individual phases -----------------------------------------------------------

    @property
    def _bandwidth(self) -> float:
        return self.config.bandwidth_bytes_per_cycle

    def witness_commit_step(self, workload: WorkloadModel) -> StepTiming:
        """Three Sparse MSMs, executed in series (they are on the critical path)."""
        n = workload.num_gates
        phases = []
        compute = 0.0
        for index in range(3):
            execution = self.msm.sparse_msm(
                n, workload.dense_fraction, workload.one_fraction
            )
            phases.append(
                Phase(f"sparse_msm_w{index + 1}", execution.total_cycles, execution.bytes_read)
            )
            compute += execution.total_cycles
        return StepTiming(
            name="witness_commits",
            phases=phases,
            bandwidth_bytes_per_cycle=self._bandwidth,
            unit_busy_cycles={"msm": compute, "sha3": 3 * self.sha3.invocation_cycles()},
        )

    def _zerocheck_like_step(
        self, name: str, num_vars: int, shape, first_round_on_chip: bool
    ) -> StepTiming:
        build = self.tree.build_mle_cycles(num_vars)
        execution = self.sumcheck.run(num_vars, shape, first_round_on_chip=first_round_on_chip)
        update_cycles = self.mle_update.cycles_for_updates(execution.update_modmuls)
        # SumCheck and MLE Update run concurrently on a round-by-round basis.
        rounds_compute = max(execution.compute_cycles, update_cycles)
        phases = [
            Phase("build_mle", build, 0.0),
            Phase("sumcheck_rounds", rounds_compute, execution.bytes_read + execution.bytes_written),
        ]
        return StepTiming(
            name=name,
            phases=phases,
            bandwidth_bytes_per_cycle=self._bandwidth,
            unit_busy_cycles={
                "multifunction_tree": build,
                "sumcheck": execution.compute_cycles,
                "mle_update": update_cycles,
                "sha3": (num_vars + 2) * self.sha3.invocation_cycles(),
            },
        )

    def gate_identity_step(self, workload: WorkloadModel) -> StepTiming:
        """Build MLE + ZeroCheck over the gate constraint (Equation 3)."""
        return self._zerocheck_like_step(
            "gate_identity",
            workload.num_vars,
            ZEROCHECK_SHAPE,
            first_round_on_chip=self.config.store_input_mles_on_chip,
        )

    def wire_identity_step(self, workload: WorkloadModel) -> StepTiming:
        """Construct N&D -> FracMLE -> ProdMLE -> MSMs, then the PermCheck."""
        num_vars = workload.num_vars
        n = workload.num_gates

        # Pipelined production of phi / pi overlapped with the phi commitment
        # MSM (Section 5: at most 4 bus channels active, units rate-matched).
        construct_cycles = self.construct_nd.cycles(num_vars)
        frac_cycles = self.fracmle.fraction_mle_cycles(num_vars)
        prod_cycles = self.tree.product_mle_cycles(num_vars)
        msm_phi = self.msm.dense_msm(n, scalars_on_chip=True)
        pipeline_cycles = max(
            construct_cycles, frac_cycles, prod_cycles, msm_phi.total_cycles
        )
        # The pi commitment waits for the product tree to finish.
        msm_pi = self.msm.dense_msm(n, scalars_on_chip=True)
        pipeline_cycles += msm_pi.total_cycles

        permcheck = self.sumcheck.run(num_vars, PERMCHECK_SHAPE, first_round_on_chip=False)
        update_cycles = self.mle_update.cycles_for_updates(permcheck.update_modmuls)
        permcheck_rounds_compute = max(permcheck.compute_cycles, update_cycles)

        pipeline_traffic = (
            self.construct_nd.bytes_read(num_vars, self.config.mle_compression)
            + self.construct_nd.bytes_written(num_vars)
            + self.fracmle.bytes_written(num_vars)
            + n * self.tech.field_bytes  # product MLE written off-chip
            + msm_phi.bytes_read
            + msm_pi.bytes_read
        )
        phases = [
            Phase("construct_frac_prod_commit", pipeline_cycles, pipeline_traffic),
            Phase("permcheck_build_mle", self.tree.build_mle_cycles(num_vars), 0.0),
            Phase(
                "permcheck_rounds",
                permcheck_rounds_compute,
                permcheck.bytes_read + permcheck.bytes_written,
            ),
        ]
        return StepTiming(
            name="wire_identity",
            phases=phases,
            bandwidth_bytes_per_cycle=self._bandwidth,
            unit_busy_cycles={
                "construct_nd": construct_cycles,
                "fracmle": frac_cycles,
                "multifunction_tree": prod_cycles + self.tree.build_mle_cycles(num_vars),
                "msm": msm_phi.total_cycles + msm_pi.total_cycles,
                "sumcheck": permcheck.compute_cycles,
                "mle_update": update_cycles,
                "sha3": (num_vars + 4) * self.sha3.invocation_cycles(),
            },
        )

    def batch_evaluation_step(self, workload: WorkloadModel) -> StepTiming:
        """22 MLE evaluations on the Multifunction Tree unit."""
        num_vars = workload.num_vars
        num_evaluations = 22
        # The 22 evaluations touch 13 distinct polynomials; evaluations of the
        # same polynomial at different points share one streaming pass.
        compute = self.tree.mle_evaluate_cycles(num_vars, num_evaluations, num_tables=13)
        # Only phi, pi (and working copies) come from off-chip; the reused
        # input MLEs are read from the compressed global SRAM.
        offchip_tables = 2.3 if self.config.store_input_mles_on_chip else 13.0
        traffic = offchip_tables * workload.num_gates * self.tech.field_bytes
        return StepTiming(
            name="batch_evaluations",
            phases=[Phase("mle_evaluate", compute, traffic)],
            bandwidth_bytes_per_cycle=self._bandwidth,
            unit_busy_cycles={
                "multifunction_tree": compute,
                "sha3": 22 * self.sha3.invocation_cycles(),
            },
        )

    def polynomial_opening_step(self, workload: WorkloadModel) -> StepTiming:
        """MLE Combine, OpenCheck, the final combination, and the halving MSMs."""
        num_vars = workload.num_vars
        n = workload.num_gates

        combine1 = self.mle_combine.combine_cycles(num_vars, num_input_mles=21)
        build_eqs = 6 * self.tree.build_mle_cycles(num_vars)
        opencheck = self.sumcheck.run(num_vars, OPENCHECK_SHAPE, first_round_on_chip=False)
        update_cycles = self.mle_update.cycles_for_updates(opencheck.update_modmuls)
        opencheck_compute = max(opencheck.compute_cycles, update_cycles)
        combine2 = self.mle_combine.combine_cycles(num_vars, num_input_mles=6)
        msm_open = self.msm.polynomial_opening_msms(num_vars)

        offchip_inputs = 2.3 if self.config.store_input_mles_on_chip else 13.0
        combine1_traffic = self.mle_combine.bytes_read(
            num_vars, num_offchip_mles=offchip_inputs
        ) + self.mle_combine.bytes_written(num_vars, num_output_mles=6)
        combine2_traffic = (
            self.mle_combine.bytes_read(num_vars, num_offchip_mles=6)
            + n * self.tech.field_bytes
        )
        phases = [
            Phase("mle_combine_and_eq", combine1 + build_eqs, combine1_traffic),
            Phase(
                "opencheck_rounds",
                opencheck_compute,
                opencheck.bytes_read + opencheck.bytes_written,
            ),
            Phase("final_combine", combine2, combine2_traffic),
            Phase("opening_msms", msm_open.total_cycles, msm_open.bytes_read),
        ]
        return StepTiming(
            name="poly_open",
            phases=phases,
            bandwidth_bytes_per_cycle=self._bandwidth,
            unit_busy_cycles={
                "mle_combine": combine1 + combine2,
                "multifunction_tree": build_eqs,
                "sumcheck": opencheck.compute_cycles,
                "mle_update": update_cycles,
                "msm": msm_open.total_cycles,
                "sha3": (num_vars + 20) * self.sha3.invocation_cycles(),
            },
        )

    # -- full schedule -----------------------------------------------------------------

    def schedule(self, workload: WorkloadModel) -> list[StepTiming]:
        """All protocol phases in execution order (they serialize via SHA3)."""
        return [
            self.witness_commit_step(workload),
            self.gate_identity_step(workload),
            self.wire_identity_step(workload),
            self.batch_evaluation_step(workload),
            self.polynomial_opening_step(workload),
        ]
