"""Workload description for the architectural model.

The architectural model does not execute field arithmetic; it needs only the
*shape* of the workload: the problem size ``2^num_vars`` and the witness
scalar sparsity statistics that drive the Sparse-MSM step (Section 6.2: the
paper assumes a pessimistic 10% dense / 45% ones / 45% zeros split).  A
workload can also be constructed directly from a functional
:class:`~repro.circuits.builder.Circuit` so that small end-to-end runs and
the analytical model stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadModel:
    """Problem size plus witness sparsity statistics."""

    num_vars: int
    dense_fraction: float = 0.10
    one_fraction: float = 0.45
    zero_fraction: float = 0.45
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_vars < 1:
            raise ValueError("num_vars must be at least 1")
        total = self.dense_fraction + self.one_fraction + self.zero_fraction
        if not 0.999 <= total <= 1.001:
            raise ValueError("sparsity fractions must sum to 1")
        for fraction in (self.dense_fraction, self.one_fraction, self.zero_fraction):
            if fraction < 0:
                raise ValueError("sparsity fractions must be non-negative")

    @property
    def num_gates(self) -> int:
        return 1 << self.num_vars

    @property
    def dense_witness_scalars(self) -> int:
        return int(round(self.dense_fraction * self.num_gates))

    @property
    def one_witness_scalars(self) -> int:
        return int(round(self.one_fraction * self.num_gates))

    @classmethod
    def from_circuit(cls, circuit, name: str | None = None) -> "WorkloadModel":
        """Derive a workload model from a compiled functional circuit."""
        sparsity = circuit.witness_sparsity()
        return cls(
            num_vars=circuit.num_vars,
            dense_fraction=sparsity["dense_fraction"],
            one_fraction=sparsity["one_fraction"],
            zero_fraction=sparsity["zero_fraction"],
            name=name or circuit.name,
        )

    @classmethod
    def paper_table3(cls) -> list["WorkloadModel"]:
        """The five Table 3 workloads at their published problem sizes."""
        specs = [
            ("Zcash", 17),
            ("Auction", 20),
            ("2^12 Rescue-Hash Invocations", 21),
            ("Zexe's Recursive Circuit", 22),
            ("Rollup of 10 Pvt Tx", 23),
        ]
        return [cls(num_vars=size, name=name) for name, size in specs]
