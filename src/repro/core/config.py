"""zkSpeed design configuration and the Table 2 design space.

A :class:`ZkSpeedConfig` captures every knob the paper's design-space
exploration sweeps (Table 2): MSM cores / PEs / window size / points per PE,
FracMLE PEs, SumCheck PEs, MLE-Update PEs and modmuls per PE, and the
off-chip memory bandwidth.  ``enumerate_design_space`` yields the full cross
product (or a decimated subset for quick sweeps).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Sequence


@dataclass(frozen=True)
class ZkSpeedConfig:
    """One zkSpeed design point."""

    msm_cores: int = 1
    msm_pes_per_core: int = 16
    msm_window_bits: int = 9
    msm_points_per_pe: int = 2048
    fracmle_pes: int = 1
    sumcheck_pes: int = 2
    mle_update_pes: int = 11
    mle_update_modmuls_per_pe: int = 4
    bandwidth_gbs: float = 2048.0
    # Non-swept architectural choices (paper defaults / ablation flags).
    bucket_aggregation: str = "grouped"        # "grouped" (zkSpeed) or "serial" (SZKP)
    bucket_aggregation_group: int = 16
    fracmle_batch_size: int = 64
    mle_compression: bool = True               # on-chip MLE compression (Section 4.6)
    share_sumcheck_multipliers: bool = True    # 94 vs 184 modmuls per PE
    share_mle_combine_multipliers: bool = True  # 72 vs 122 modmuls
    share_multifunction_tree: bool = True      # one MTU vs dedicated units
    multifunction_tree_pes: int = 8
    store_input_mles_on_chip: bool = True

    def __post_init__(self) -> None:
        if self.msm_cores < 1 or self.msm_pes_per_core < 1:
            raise ValueError("MSM cores and PEs must be positive")
        if not 1 <= self.msm_window_bits <= 16:
            raise ValueError("MSM window size out of range")
        if self.sumcheck_pes < 1 or self.mle_update_pes < 1:
            raise ValueError("SumCheck / MLE-Update PE counts must be positive")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        if self.bucket_aggregation not in ("grouped", "serial"):
            raise ValueError("bucket_aggregation must be 'grouped' or 'serial'")

    @property
    def total_msm_pes(self) -> int:
        return self.msm_cores * self.msm_pes_per_core

    @property
    def bandwidth_bytes_per_cycle(self) -> float:
        """Off-chip bytes deliverable per 1 GHz cycle."""
        return self.bandwidth_gbs  # GB/s at 1 GHz == bytes per cycle

    @classmethod
    def paper_default(cls) -> "ZkSpeedConfig":
        """The highlighted design of Table 5 / Section 7.4.

        One MSM unit with 9-bit windows, 16 PEs and 2048 points per PE,
        1 FracMLE PE, 2 SumCheck PEs, 11 MLE-Update PEs with 4 modmuls each,
        and 2 TB/s of HBM3 bandwidth.
        """
        return cls()

    def with_bandwidth(self, bandwidth_gbs: float) -> "ZkSpeedConfig":
        return replace(self, bandwidth_gbs=bandwidth_gbs)

    def describe(self) -> str:
        return (
            f"MSM {self.msm_cores}x{self.msm_pes_per_core}PE W{self.msm_window_bits} "
            f"{self.msm_points_per_pe}pts | SumCheck {self.sumcheck_pes}PE | "
            f"MLEUpd {self.mle_update_pes}x{self.mle_update_modmuls_per_pe} | "
            f"FracMLE {self.fracmle_pes} | {self.bandwidth_gbs:.0f} GB/s"
        )


#: Field names of :class:`ZkSpeedConfig`, in declaration order — the
#: canonical key set for wire/serialized chip configurations.
CONFIG_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ZkSpeedConfig)
)


def config_to_dict(config: ZkSpeedConfig) -> dict:
    """A JSON-serializable view of one design point (round-trips exactly)."""
    return dataclasses.asdict(config)


def config_from_dict(data: Mapping) -> ZkSpeedConfig:
    """Rebuild a :class:`ZkSpeedConfig` from :func:`config_to_dict` output.

    Raises ``ValueError`` — never ``TypeError`` — on unknown fields, wrong
    types or out-of-range values, so wire-level validators can treat every
    bad chip configuration uniformly.
    """
    if not isinstance(data, Mapping):
        raise ValueError("chip config must be a mapping of field values")
    unknown = sorted(set(data) - set(CONFIG_FIELDS))
    if unknown:
        raise ValueError(f"unknown chip-config field(s): {', '.join(unknown)}")
    try:
        return ZkSpeedConfig(**dict(data))
    except TypeError as exc:
        raise ValueError(f"bad chip config: {exc}") from None


def config_fingerprint(config: ZkSpeedConfig) -> str:
    """A short stable content hash of a design point.

    Mirrors the circuit-structure fingerprints the engine keys its SRS and
    proving-key caches by: the simulation cache, sweep results and the
    Pareto identity tests all name configurations by this digest instead of
    comparing nine-field dataclasses.
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


#: The design space of Table 2.
DESIGN_SPACE: dict[str, Sequence] = {
    "msm_cores": (1, 2),
    "msm_pes_per_core": (1, 2, 4, 8, 16),
    "msm_window_bits": (7, 8, 9, 10),
    "msm_points_per_pe": (1024, 2048, 4096, 8192, 16384),
    "fracmle_pes": (1, 2, 4),
    "sumcheck_pes": (1, 2, 4, 8, 16),
    "mle_update_pes": tuple(range(1, 12)),
    "mle_update_modmuls_per_pe": (1, 2, 4, 8, 16),
    "bandwidth_gbs": (64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0),
}


def design_space_size(overrides: Mapping[str, Sequence] | None = None) -> int:
    """Cross-product size of the (optionally restricted) design space.

    Computed without materializing any combination, so wire validators can
    bound a requested sweep before :func:`enumerate_design_space` commits
    memory to it.  Raises ``KeyError`` on unknown knobs (same contract as
    enumeration) and ``ValueError`` on an empty value list.
    """
    space = dict(DESIGN_SPACE)
    if overrides:
        for key, values in overrides.items():
            if key not in space:
                raise KeyError(f"unknown design-space knob {key!r}")
            space[key] = tuple(values)
    size = 1
    for key, values in space.items():
        if not values:
            raise ValueError(f"design-space knob {key!r} has no values")
        size *= len(values)
    return size


def enumerate_design_space(
    overrides: dict[str, Sequence] | None = None,
    max_points: int | None = None,
) -> Iterator[ZkSpeedConfig]:
    """Yield configurations from the (optionally restricted) design space.

    ``overrides`` replaces the swept values of individual knobs; ``max_points``
    decimates the cross product with a deterministic stride so that quick
    sweeps remain representative of the full space.
    """
    space = dict(DESIGN_SPACE)
    if overrides:
        for key, values in overrides.items():
            if key not in space:
                raise KeyError(f"unknown design-space knob {key!r}")
            space[key] = tuple(values)
    keys = list(space)
    combos = list(itertools.product(*(space[k] for k in keys)))
    stride = 1
    if max_points is not None and len(combos) > max_points:
        stride = -(-len(combos) // max_points)
    for index, combo in enumerate(combos):
        if index % stride:
            continue
        yield ZkSpeedConfig(**dict(zip(keys, combo)))
