"""The zkSpeed architectural model (the paper's primary contribution).

This package models the zkSpeed accelerator at the level the paper evaluates
it: per-unit cycle/area/power models (Section 4), a protocol-step scheduler
that maps HyperPlonk onto the units under a bandwidth constraint (Section 5),
a CPU baseline calibrated to the paper's measurements, and a design-space
exploration / Pareto analysis driver (Section 7).

Typical use::

    from repro.core import ZkSpeedConfig, ZkSpeedChip, WorkloadModel

    config = ZkSpeedConfig.paper_default()
    chip = ZkSpeedChip(config)
    report = chip.simulate(WorkloadModel(num_vars=20))
    print(report.total_runtime_ms, chip.total_area_mm2())
"""

from repro.core.config import (
    CONFIG_FIELDS,
    DESIGN_SPACE,
    ZkSpeedConfig,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    design_space_size,
    enumerate_design_space,
)
from repro.core.technology import TechnologyModel
from repro.core.workload_model import WorkloadModel
from repro.core.opcounts import KernelProfile, protocol_operation_counts
from repro.core.chip import ZkSpeedChip, SimulationReport, StepTiming
from repro.core.cpu_baseline import CpuBaseline
from repro.core.dse import DesignSpaceExplorer, DesignPoint
from repro.core.pareto import OnlineParetoFront, dominates, pareto_frontier
from repro.core.comparison import ACCELERATOR_COMPARISON, accelerator_comparison_table

__all__ = [
    "ZkSpeedConfig",
    "CONFIG_FIELDS",
    "DESIGN_SPACE",
    "config_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "design_space_size",
    "enumerate_design_space",
    "TechnologyModel",
    "WorkloadModel",
    "KernelProfile",
    "protocol_operation_counts",
    "ZkSpeedChip",
    "SimulationReport",
    "StepTiming",
    "CpuBaseline",
    "DesignSpaceExplorer",
    "DesignPoint",
    "OnlineParetoFront",
    "dominates",
    "pareto_frontier",
    "ACCELERATOR_COMPARISON",
    "accelerator_comparison_table",
]
