"""CPU baseline model (AMD EPYC 7502, 32 cores).

The paper's baseline is the reference HyperPlonk CPU implementation running
on an AMD EPYC 7502 (296 mm^2 total die).  We do not have that testbed, so
the baseline is a calibrated model anchored to the paper's published
measurements: total proving times for 2^17..2^24 gates (Table 3 and
Table 4) and the per-kernel runtime fractions of Figure 12a.  Between
anchors the model interpolates the per-gate cost; beyond them it
extrapolates at the asymptotic (linear, O(n)) rate -- HyperPlonk's headline
complexity.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Published CPU proving times in milliseconds, keyed by log2(problem size).
PAPER_CPU_RUNTIME_MS: dict[int, float] = {
    17: 1429.0,
    20: 8619.0,
    21: 18637.0,
    22: 37469.0,
    23: 74052.0,
    24: 145500.0,
}

#: Figure 12a: CPU runtime fractions by kernel at 2^20 gates.
PAPER_CPU_KERNEL_FRACTIONS: dict[str, float] = {
    "Sparse MSMs": 0.088,
    "Gate Identity": 0.056,
    "Create PermCheck MLEs": 0.012,
    "PermCheck Dense MSMs": 0.436,
    "PermCheck": 0.062,
    "Batch Evals": 0.025,
    "MLE Combine": 0.033,
    "OpenCheck": 0.041,
    "Poly Open Dense MSMs": 0.246,
}

#: Mapping from CPU kernels to the zkSpeed protocol steps (Figure 12b).
CPU_KERNEL_TO_STEP: dict[str, str] = {
    "Sparse MSMs": "witness_commits",
    "Gate Identity": "gate_identity",
    "Create PermCheck MLEs": "wire_identity",
    "PermCheck Dense MSMs": "wire_identity",
    "PermCheck": "wire_identity",
    "Batch Evals": "batch_evaluations",
    "MLE Combine": "poly_open",
    "OpenCheck": "poly_open",
    "Poly Open Dense MSMs": "poly_open",
}

#: Mapping from CPU kernels to the Figure 14 speedup categories.
CPU_KERNEL_TO_FIG14: dict[str, str] = {
    "Sparse MSMs": "Witness MSMs",
    "PermCheck Dense MSMs": "Wiring MSMs",
    "Poly Open Dense MSMs": "PolyOpen MSMs",
    "Gate Identity": "Zerocheck",
    "PermCheck": "Permcheck",
    "OpenCheck": "Opencheck",
}


@dataclass
class CpuBaseline:
    """Calibrated CPU proving-time model."""

    die_area_mm2: float = 296.0
    name: str = "AMD EPYC 7502 (32 cores)"

    def runtime_ms(self, num_vars: int) -> float:
        """Total CPU proving time for a 2^num_vars-gate problem."""
        anchors = PAPER_CPU_RUNTIME_MS
        if num_vars in anchors:
            return anchors[num_vars]
        known = sorted(anchors)
        lo, hi = known[0], known[-1]
        if num_vars < lo:
            # Below the smallest anchor, scale at the small-size per-gate rate
            # (fixed overheads keep it from shrinking perfectly linearly).
            per_gate = anchors[lo] / (1 << lo)
            return per_gate * (1 << num_vars) * 1.15
        if num_vars > hi:
            per_gate = anchors[hi] / (1 << hi)
            return per_gate * (1 << num_vars)
        lower = max(k for k in known if k < num_vars)
        upper = min(k for k in known if k > num_vars)
        # Interpolate the per-gate cost linearly in log-size.
        per_gate_lower = anchors[lower] / (1 << lower)
        per_gate_upper = anchors[upper] / (1 << upper)
        t = (num_vars - lower) / (upper - lower)
        per_gate = per_gate_lower + t * (per_gate_upper - per_gate_lower)
        return per_gate * (1 << num_vars)

    def kernel_breakdown_ms(self, num_vars: int) -> dict[str, float]:
        """Per-kernel CPU runtimes (fractions of Figure 12a applied to the total)."""
        total = self.runtime_ms(num_vars)
        return {
            kernel: fraction * total
            for kernel, fraction in PAPER_CPU_KERNEL_FRACTIONS.items()
        }

    def step_breakdown_ms(self, num_vars: int) -> dict[str, float]:
        """CPU runtime aggregated to the zkSpeed protocol steps."""
        breakdown: dict[str, float] = {}
        for kernel, runtime in self.kernel_breakdown_ms(num_vars).items():
            step = CPU_KERNEL_TO_STEP[kernel]
            breakdown[step] = breakdown.get(step, 0.0) + runtime
        return breakdown

    def figure14_breakdown_ms(self, num_vars: int) -> dict[str, float]:
        """CPU runtime aggregated to the Figure 14 kernel categories."""
        breakdown: dict[str, float] = {}
        for kernel, runtime in self.kernel_breakdown_ms(num_vars).items():
            category = CPU_KERNEL_TO_FIG14.get(kernel)
            if category is not None:
                breakdown[category] = breakdown.get(category, 0.0) + runtime
        return breakdown
