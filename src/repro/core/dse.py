"""Design-space exploration (Section 7.1).

The explorer sweeps the Table 2 design space (optionally restricted or
decimated), simulates every configuration on a target workload, and extracts
per-bandwidth and global Pareto frontiers over (area, runtime) -- the data
behind Figure 9 -- as well as iso-area design selection (Figure 14) and the
labelled Pareto points A-D used in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.chip import SimulationReport, ZkSpeedChip
from repro.core.config import DESIGN_SPACE, ZkSpeedConfig, enumerate_design_space
from repro.core.cpu_baseline import CpuBaseline
from repro.core.pareto import pareto_frontier
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.workload_model import WorkloadModel


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    config: ZkSpeedConfig
    runtime_ms: float
    area_mm2: float
    compute_area_mm2: float
    report: SimulationReport

    @property
    def bandwidth_gbs(self) -> float:
        return self.config.bandwidth_gbs

    def speedup_over(self, cpu_runtime_ms: float) -> float:
        if self.runtime_ms <= 0:
            return float("inf")
        return cpu_runtime_ms / self.runtime_ms


class DesignSpaceExplorer:
    """Sweeps configurations and extracts Pareto-optimal designs."""

    def __init__(
        self,
        workload: WorkloadModel,
        technology: TechnologyModel = DEFAULT_TECHNOLOGY,
        cpu: CpuBaseline | None = None,
    ):
        self.workload = workload
        self.tech = technology
        self.cpu = cpu or CpuBaseline()

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, config: ZkSpeedConfig) -> DesignPoint:
        chip = ZkSpeedChip(config, self.tech)
        report = chip.simulate(self.workload)
        return DesignPoint(
            config=config,
            runtime_ms=report.total_runtime_ms,
            area_mm2=report.total_area_mm2,
            compute_area_mm2=report.compute_area_mm2,
            report=report,
        )

    def sweep(
        self,
        configs: Iterable[ZkSpeedConfig] | None = None,
        overrides: dict | None = None,
        max_points: int | None = 2000,
    ) -> list[DesignPoint]:
        """Evaluate a set of configurations (default: decimated Table 2 space)."""
        if configs is None:
            configs = enumerate_design_space(overrides=overrides, max_points=max_points)
        return [self.evaluate(config) for config in configs]

    # -- Pareto analysis ---------------------------------------------------------------

    @staticmethod
    def pareto(points: Sequence[DesignPoint]) -> list[DesignPoint]:
        """Pareto frontier minimizing runtime and area."""
        return pareto_frontier(
            points, cost_x=lambda p: p.runtime_ms, cost_y=lambda p: p.area_mm2
        )

    def per_bandwidth_pareto(
        self, points: Sequence[DesignPoint]
    ) -> dict[float, list[DesignPoint]]:
        """Figure 9: one Pareto curve per bandwidth setting."""
        by_bandwidth: dict[float, list[DesignPoint]] = {}
        for point in points:
            by_bandwidth.setdefault(point.bandwidth_gbs, []).append(point)
        return {bw: self.pareto(pts) for bw, pts in sorted(by_bandwidth.items())}

    def global_pareto(self, points: Sequence[DesignPoint]) -> list[DesignPoint]:
        """The global Pareto curve assembled from all bandwidths."""
        return self.pareto(points)

    # -- design selection --------------------------------------------------------------

    def best_under_area(
        self, points: Sequence[DesignPoint], area_budget_mm2: float, use_compute_area: bool = False
    ) -> DesignPoint | None:
        """Fastest design whose area fits the budget (iso-area selection)."""
        if use_compute_area:
            eligible = [p for p in points if p.compute_area_mm2 <= area_budget_mm2]
        else:
            eligible = [p for p in points if p.area_mm2 <= area_budget_mm2]
        if not eligible:
            return None
        return min(eligible, key=lambda p: p.runtime_ms)

    def fastest_per_bandwidth(
        self, points: Sequence[DesignPoint]
    ) -> dict[float, DesignPoint]:
        """The highest-performance Pareto point for each bandwidth (Figure 10 A-D)."""
        result: dict[float, DesignPoint] = {}
        for bandwidth, pareto_points in self.per_bandwidth_pareto(points).items():
            if pareto_points:
                result[bandwidth] = min(pareto_points, key=lambda p: p.runtime_ms)
        return result

    def speedup(self, point: DesignPoint) -> float:
        return point.speedup_over(self.cpu.runtime_ms(self.workload.num_vars))
