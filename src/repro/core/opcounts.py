"""Analytical kernel profiles (reproduction of Table 1).

Table 1 of the paper profiles the reference CPU implementation at 2^20 gates
and reports, for the twelve most arithmetic-intense kernels, the number of
modular multiplications, the input/output data volumes, and the resulting
arithmetic intensity (modmuls per byte).  This module reproduces that table
for any problem size.

Modelling approach
------------------
Every kernel in the table is O(n) in the number of gates, so each profile is
expressed as *per-gate* constants.  The per-gate modmul constants are derived
from the protocol structure (and, where the reference implementation's exact
constants matter -- chiefly the MSM kernels, whose per-point cost depends on
the CPU library's window/addition formulas -- calibrated to the paper's
published 2^20 profile; see the per-kernel comments).  The byte counts are
computed from first principles: 32-byte field elements, 64-byte affine
points (only X/Y are fetched, Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workload_model import WorkloadModel

FIELD_BYTES = 32
POINT_BYTES = 64  # affine (X, Y) fetch


@dataclass(frozen=True)
class KernelProfile:
    """One row of the Table 1 reproduction."""

    name: str
    modmuls: float
    input_bytes: float
    output_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.input_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Modmuls per byte of off-chip traffic."""
        if self.total_bytes == 0:
            return float("inf")
        return self.modmuls / self.total_bytes

    def as_row(self) -> dict[str, float | str]:
        return {
            "kernel": self.name,
            "modmuls_millions": self.modmuls / 1e6,
            "input_mb": self.input_bytes / 1e6,
            "output_mb": self.output_bytes / 1e6,
            "arithmetic_intensity": self.arithmetic_intensity,
        }


# Per-point modmul cost of the reference CPU MSM (Pippenger in the arkworks
# backend).  Calibrated to the paper's 2^20 profile: 2290e6 modmuls for the
# two dense Wire-Identity MSMs of 2^20 points each => ~1092 modmuls/point.
CPU_MSM_MODMULS_PER_POINT = 1092.0
# Sparse witness MSMs: the CPU handles 1-valued scalars poorly (serial point
# additions) and full-width scalars at the dense cost; calibrated so that the
# three witness MSMs at 10% dense / 45% ones reproduce the published 1370e6.
CPU_SPARSE_ONE_MODMULS_PER_POINT = 725.0

# Per-gate modmul constants of the remaining kernels, derived from the
# SumCheck/streaming structure (Sections 3.3 and 4.1): a boolean-hypercube
# instance of the gate-identity ZeroCheck costs ~74 modmuls, of the
# higher-degree PermCheck ~90, of the degree-2 OpenCheck ~30; each MLE-table
# entry updated between rounds costs 1 modmul; each of the 22 batch
# evaluations costs 1 modmul per entry; the 6 linear-combination MLEs cost
# ~18 modmuls per gate; Construct N&D ~10; the product tree 1; the fraction
# MLE ~5 (batched inversion amortized over 64 elements plus the N*D^-1
# multiply).
ZEROCHECK_MODMULS_PER_GATE = 74.0
PERMCHECK_MODMULS_PER_GATE = 90.0
OPENCHECK_MODMULS_PER_GATE = 30.0
MLE_UPDATE_MODMULS_PER_GATE = 32.0
BATCH_EVAL_MODMULS_PER_GATE = 22.0
LINEAR_COMBINE_MODMULS_PER_GATE = 18.0
CONSTRUCT_ND_MODMULS_PER_GATE = 10.0
PRODUCT_MLE_MODMULS_PER_GATE = 1.0
FRACTION_MLE_MODMULS_PER_GATE = 5.0


def protocol_operation_counts(workload: WorkloadModel) -> list[KernelProfile]:
    """Compute the Table 1 kernel profiles for a workload.

    Returns the kernels sorted by arithmetic intensity (descending), matching
    the presentation order of the paper's table.
    """
    n = workload.num_gates
    dense = workload.dense_fraction
    ones = workload.one_fraction
    nonzero = dense + ones

    profiles = [
        KernelProfile(
            name="Poly Open MSMs",
            # One MSM per SumCheck round with halving sizes: ~n points total.
            modmuls=CPU_MSM_MODMULS_PER_POINT * n,
            input_bytes=n * (POINT_BYTES + FIELD_BYTES) * 1.25,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="Wire Identity MSMs",
            # Two dense MSMs (phi and pi commitments).
            modmuls=2 * CPU_MSM_MODMULS_PER_POINT * n,
            input_bytes=2 * n * (POINT_BYTES + FIELD_BYTES) * 1.25,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="Witness MSMs",
            # Three sparse MSMs: dense scalars at full Pippenger cost, ones at
            # the CPU's serial point-addition cost, zeros skipped.
            modmuls=3
            * n
            * (dense * CPU_MSM_MODMULS_PER_POINT + ones * CPU_SPARSE_ONE_MODMULS_PER_POINT),
            input_bytes=3 * n * (nonzero * POINT_BYTES + dense * FIELD_BYTES) * 1.45,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="Batch Evaluations",
            modmuls=BATCH_EVAL_MODMULS_PER_GATE * n,
            # Only phi, pi and a few working tables come from off-chip; the
            # compressed input MLEs are read from on-chip SRAM.
            input_bytes=2.3 * n * FIELD_BYTES,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="ZeroCheck Rounds",
            modmuls=ZEROCHECK_MODMULS_PER_GATE * n,
            # Rounds >= 2 stream the 9 updated MLE tables (sum of halving
            # sizes ~ 9n entries) plus the eq table.
            input_bytes=10.4 * n * FIELD_BYTES,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="Fraction MLE",
            modmuls=FRACTION_MLE_MODMULS_PER_GATE * n,
            input_bytes=0.0,
            output_bytes=n * FIELD_BYTES,
        ),
        KernelProfile(
            name="PermCheck Rounds",
            modmuls=PERMCHECK_MODMULS_PER_GATE * n,
            # 13 MLEs streamed over the rounds plus the numerator/denominator
            # working set.
            input_bytes=21.9 * n * FIELD_BYTES,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="Linear Combine",
            modmuls=LINEAR_COMBINE_MODMULS_PER_GATE * n,
            input_bytes=2.3 * n * FIELD_BYTES,
            output_bytes=6 * n * FIELD_BYTES,
        ),
        KernelProfile(
            name="OpenCheck Rounds",
            modmuls=OPENCHECK_MODMULS_PER_GATE * n,
            # 12 combined MLEs (6 LC MLEs + 6 eq MLEs) streamed over the rounds.
            input_bytes=23.9 * n * FIELD_BYTES,
            output_bytes=0.0,
        ),
        KernelProfile(
            name="Construct N & D",
            modmuls=CONSTRUCT_ND_MODMULS_PER_GATE * n,
            # Reads the (compressed) sigma tables, writes 6 intermediate MLEs
            # plus N and D.
            input_bytes=0.57 * n * FIELD_BYTES,
            output_bytes=7.6 * n * FIELD_BYTES,
        ),
        KernelProfile(
            name="Product MLE",
            modmuls=PRODUCT_MLE_MODMULS_PER_GATE * n,
            input_bytes=0.0,
            output_bytes=n * FIELD_BYTES,
        ),
        KernelProfile(
            name="All MLE Updates",
            modmuls=MLE_UPDATE_MODMULS_PER_GATE * n,
            # Each update reads a pair of entries and writes one.
            input_bytes=53.6 * n * FIELD_BYTES,
            output_bytes=26.8 * n * FIELD_BYTES,
        ),
    ]
    return sorted(profiles, key=lambda p: p.arithmetic_intensity, reverse=True)


#: The paper's published Table 1 values (at 2^20 gates), for comparison in
#: benchmarks and EXPERIMENTS.md.  Units: millions of modmuls, MB, MB.
PAPER_TABLE1 = {
    "Poly Open MSMs": (1160.0, 127.0, 0.0),
    "Wire Identity MSMs": (2290.0, 254.0, 0.0),
    "Witness MSMs": (1370.0, 167.0, 0.0),
    "Batch Evaluations": (23.1, 77.5, 0.0),
    "ZeroCheck Rounds": (77.6, 332.0, 0.0),
    "Fraction MLE": (5.19, 0.0, 31.9),
    "PermCheck Rounds": (94.4, 701.0, 0.0),
    "Linear Combine": (18.9, 77.5, 191.0),
    "OpenCheck Rounds": (31.5, 765.0, 0.0),
    "Construct N & D": (10.5, 18.2, 255.0),
    "Product MLE": (1.05, 0.0, 31.9),
    "All MLE Updates": (33.6, 1800.0, 900.0),
}
