"""On-chip memory and HBM model (Sections 4.6 and 5).

zkSpeed keeps the (reused) input MLEs in a highly banked global SRAM, with a
compression scheme that packs the binary control MLEs and the mostly-0/1
witness and constant MLEs (10-11x storage saving); everything else streams
through HBM.  This module sizes the global SRAM, the unit-local SRAMs and
the HBM PHYs for a given configuration and problem size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.units.msm_unit import MsmUnitModel


@dataclass
class MemoryPlan:
    """Sizing of the memory system for one (config, problem size) pair."""

    global_sram_mb: float
    msm_local_sram_mb: float
    fracmle_sram_mb: float
    staging_buffers_mb: float
    phy_kind: str
    phy_count: int
    phy_area_mm2: float
    compression_ratio: float

    @property
    def total_sram_mb(self) -> float:
        return (
            self.global_sram_mb
            + self.msm_local_sram_mb
            + self.fracmle_sram_mb
            + self.staging_buffers_mb
        )


class MemoryModel:
    """Sizes SRAM and HBM PHYs and prices their area and power."""

    def __init__(
        self, config: ZkSpeedConfig, technology: TechnologyModel = DEFAULT_TECHNOLOGY
    ):
        self.config = config
        self.tech = technology

    # -- global SRAM ------------------------------------------------------------------

    def input_mle_storage_mb(self, num_vars: int) -> tuple[float, float]:
        """(uncompressed, compressed) storage for the 8 reused input MLEs.

        Uncompressed: 8 tables of 2^mu 255-bit entries.  Compressed
        (Section 4.6): the four binary control MLEs are bit-packed; q_c and
        the witnesses keep ~10% full-width entries plus a 1-bit flag per
        entry, via address-translation lookups.
        """
        n = 1 << num_vars
        field_bytes = self.tech.field_bytes
        uncompressed = 8 * n * field_bytes / 1e6
        binary_packed = 4 * n / 8 / 1e6  # qL, qR, qM, qO as single bits
        # qC, w1, w2, w3: ~10% full-width entries, the rest stored as short
        # (flag + small-value) records, plus the address-translation tables --
        # a 10-11x saving overall, as quoted in Section 4.6.
        mixed = 4 * n * (0.10 * field_bytes + 0.90 * 2 + 0.4) / 1e6
        compressed = binary_packed + mixed
        return uncompressed, compressed

    def plan(self, num_vars: int) -> MemoryPlan:
        uncompressed, compressed = self.input_mle_storage_mb(num_vars)
        if not self.config.store_input_mles_on_chip:
            global_sram = 0.5  # small working buffers only
            compression_ratio = 1.0
        elif self.config.mle_compression:
            global_sram = compressed
            compression_ratio = uncompressed / compressed
        else:
            global_sram = uncompressed
            compression_ratio = 1.0

        msm_sram = MsmUnitModel(self.config, self.tech).local_sram_mb()
        fracmle_sram = (
            self.config.fracmle_pes
            * self.config.fracmle_batch_size
            * 16
            * self.tech.field_bytes
            / 1e6
        )
        staging = 2.0  # double-buffering for streamed SumCheck tables
        phy_kind, phy_count, phy_area = self.tech.hbm_phy_plan(self.config.bandwidth_gbs)
        return MemoryPlan(
            global_sram_mb=global_sram,
            msm_local_sram_mb=msm_sram,
            fracmle_sram_mb=fracmle_sram,
            staging_buffers_mb=staging,
            phy_kind=phy_kind,
            phy_count=phy_count,
            phy_area_mm2=phy_area,
            compression_ratio=compression_ratio,
        )

    # -- area / power -------------------------------------------------------------------

    def sram_area_mm2(self, num_vars: int) -> float:
        return self.plan(num_vars).total_sram_mb * self.tech.sram_mm2_per_mb

    def phy_area_mm2(self) -> float:
        _, _, area = self.tech.hbm_phy_plan(self.config.bandwidth_gbs)
        return area

    def sram_power_w(self, num_vars: int) -> float:
        return self.sram_area_mm2(num_vars) * self.tech.power_density_sram

    def phy_power_w(self) -> float:
        return self.phy_area_mm2() * self.tech.power_density_hbm_phy

    # -- bandwidth helpers -----------------------------------------------------------------

    def memory_cycles(self, num_bytes: float) -> float:
        """Cycles needed to move ``num_bytes`` over the off-chip interface."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.config.bandwidth_bytes_per_cycle
