"""Technology model: area, power and delay constants.

The paper synthesizes its units with Catapult HLS + Design Compiler at TSMC
22 nm, generates SRAM with a memory compiler, and scales to 7 nm with the
factors 3.6x (area), 3.3x (power) and 1.7x (delay) from prior work; all
accelerators are clocked at 1 GHz (Section 6.1).  We do not have the
synthesis flow, so this module encodes the *published* post-scaling numbers
(Table 4, Table 5 and the per-unit figures quoted in Section 4) as the
technology model's constants, and exposes the scaling factors so the 22 nm
numbers can be recovered.

Calibrated constants (documented per DESIGN.md's substitution table):

* 255-bit modular multiplier: 0.133 mm^2;  381-bit: 0.314 mm^2  (Table 4).
* SumCheck PE: 94 modmuls  -> 12.48 mm^2 (Table 5 / Section 4.1.4).
* PADD: 12 modmuls per mixed addition, ~85-cycle pipeline latency, 1 op/cycle.
* HBM2 PHY: 14.9 mm^2 per 512 GB/s;  HBM3 PHY: 29.6 mm^2 per 1 TB/s.
* SRAM density and per-unit power densities are fitted so the highlighted
  366 mm^2 / 170.9 W design reproduces Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyModel:
    """Area / power / timing constants for the 7 nm target node."""

    # -- clocking ---------------------------------------------------------------
    clock_ghz: float = 1.0

    # -- scaling from the 22 nm synthesis node (Section 6.1) ---------------------
    area_scale_22_to_7: float = 3.6
    power_scale_22_to_7: float = 3.3
    delay_scale_22_to_7: float = 1.7

    # -- modular arithmetic ------------------------------------------------------
    modmul_area_mm2_255: float = 0.133
    modmul_area_mm2_381: float = 0.314
    modmul_latency_cycles: int = 9
    modadd_area_mm2_255: float = 0.004
    modinv_latency_cycles: int = 509  # constant-time BEEA, 2*255 - 1

    # -- point addition (MSM PADD) --------------------------------------------------
    padd_modmuls: int = 12
    padd_pipeline_latency: int = 85
    padd_area_mm2: float = 3.8  # ~12 x 381-bit modmuls plus control

    # -- unit-level calibration (Table 5) ---------------------------------------------
    sumcheck_pe_modmuls: int = 94
    sumcheck_pe_modmuls_unshared: int = 184
    sumcheck_pe_area_mm2: float = 12.48
    mle_update_modmul_area_mm2: float = 0.133
    mle_combine_modmuls_shared: int = 72
    mle_combine_modmuls_unshared: int = 122
    mle_combine_area_mm2: float = 9.56
    multifunction_tree_area_mm2: float = 12.28
    multifunction_tree_pes: int = 8
    construct_nd_area_mm2: float = 1.35
    construct_nd_modmuls: int = 10
    fracmle_area_mm2_per_pe: float = 1.92
    sha3_area_mm2: float = 0.0059
    sha3_latency_cycles: int = 24
    misc_area_mm2: float = 1.98

    # -- MSM unit calibration ---------------------------------------------------------
    msm_pe_area_mm2: float = 6.60  # Table 5: 105.64 mm^2 / 16 PEs (PADD + buffers)
    msm_core_overhead_mm2: float = 0.5

    # -- memory ------------------------------------------------------------------------
    sram_mm2_per_mb: float = 0.78
    hbm2_phy_area_mm2: float = 14.9
    hbm2_phy_bandwidth_gbs: float = 512.0
    hbm3_phy_area_mm2: float = 29.6
    hbm3_phy_bandwidth_gbs: float = 1024.0
    ddr_phy_area_mm2: float = 5.0
    ddr_max_bandwidth_gbs: float = 256.0

    # -- power densities (W per mm^2), fitted to Table 5 ----------------------------------
    power_density_msm: float = 0.721       # 76.19 W / 105.64 mm^2
    power_density_sumcheck: float = 0.216  # 5.38 / 24.96
    power_density_compute: float = 0.20    # small arithmetic units
    power_density_tree: float = 0.339      # 4.16 / 12.28
    power_density_sram: float = 0.136      # 19.60 / 143.73
    power_density_hbm_phy: float = 1.074   # 63.60 / 59.20

    # -- datatype widths (bytes) -------------------------------------------------------------
    field_bytes: int = 32   # 255-bit MLE entries, stored in 32-byte words
    point_coord_bytes: int = 48  # 381-bit coordinates
    point_bytes_affine: int = 96
    point_bytes_projective: int = 144

    # -- derived helpers -----------------------------------------------------------------------

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count into milliseconds at the target clock."""
        return cycles * self.cycle_time_ns * 1e-6

    def hbm_phy_plan(self, bandwidth_gbs: float) -> tuple[str, int, float]:
        """Pick the memory-PHY technology for a bandwidth target.

        Returns (phy kind, number of PHYs, total PHY area).  Bandwidths at or
        below DDR5 rates need no HBM PHY (a small DDR PHY is charged); 512
        GB/s maps to HBM2, and above that HBM3 PHYs are provisioned at 1 TB/s
        each -- matching the PHY accounting in Section 7.1.
        """
        if bandwidth_gbs <= self.ddr_max_bandwidth_gbs:
            return ("ddr", 1, self.ddr_phy_area_mm2)
        if bandwidth_gbs <= self.hbm2_phy_bandwidth_gbs:
            return ("hbm2", 1, self.hbm2_phy_area_mm2)
        count = max(1, round(bandwidth_gbs / self.hbm3_phy_bandwidth_gbs))
        return ("hbm3", count, count * self.hbm3_phy_area_mm2)

    def to_22nm_area(self, area_mm2_7nm: float) -> float:
        """Recover the pre-scaling 22 nm area of a block."""
        return area_mm2_7nm * self.area_scale_22_to_7


#: The default technology model used throughout the package.
DEFAULT_TECHNOLOGY = TechnologyModel()
