"""Jellyfish (high-arity gate) extension study.

Section 8 of the paper discusses Jellyfish, a HyperPlonk variant whose gates
have higher fan-in (arity) and higher-degree constraints.  Iso-application,
raising the arity *increases the number of MLE tables* (more wire and
selector columns) but *decreases each table's size super-proportionally*
(fewer gates are needed), so the total MLE footprint shrinks and the
runtime/bandwidth picture changes.  The paper leaves hardware support as
future work; this module provides the analytical exploration of that
tradeoff on top of the existing zkSpeed model.

Model: a baseline circuit with ``2^mu`` arity-2 gates is re-encoded with
arity-``a`` gates.  Each high-arity gate absorbs roughly ``a - 1`` binary
operations, so the gate count shrinks by ``~(a - 1)``; the witness columns
grow from 3 to ``a + 1`` and the selector columns grow linearly in ``a``;
the SumCheck constraint degree grows with the gate degree, increasing the
per-round evaluation count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.chip import ZkSpeedChip
from repro.core.config import ZkSpeedConfig
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.units.sumcheck_unit import SumcheckInstanceShape
from repro.core.workload_model import WorkloadModel


@dataclass(frozen=True)
class JellyfishEncoding:
    """Re-encoding of a baseline (arity-2) circuit with arity-``a`` gates."""

    baseline_num_vars: int
    arity: int
    gate_degree: int = 3

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise ValueError("arity must be at least 2")
        if self.gate_degree < 2:
            raise ValueError("gate_degree must be at least 2")

    @property
    def num_vars(self) -> int:
        """Problem size after re-encoding (each gate absorbs ~arity-1 ops)."""
        shrink = max(1, self.arity - 1)
        reduced = self.baseline_num_vars - int(round(math.log2(shrink)))
        return max(4, reduced)

    @property
    def witness_columns(self) -> int:
        return self.arity + 1

    @property
    def selector_columns(self) -> int:
        # One selector per input port, one multiplicative selector per degree
        # step, an output selector and a constant.
        return self.arity + self.gate_degree + 1

    @property
    def num_mle_tables(self) -> int:
        """Committed tables: selectors + witnesses + sigma columns + phi + pi."""
        return self.selector_columns + 2 * self.witness_columns + 2

    @property
    def total_table_entries(self) -> int:
        """Total MLE entries across all committed tables."""
        return self.num_mle_tables * (1 << self.num_vars)

    def sumcheck_shape(self) -> SumcheckInstanceShape:
        """The gate-identity SumCheck shape for this encoding."""
        return SumcheckInstanceShape(
            name="zerocheck",
            num_mles=self.selector_columns + self.witness_columns + 1,
            max_degree=self.gate_degree + 1,
            streamed_mles=self.selector_columns + self.witness_columns + 1,
            interpolation_modmuls=23 + 6 * (self.gate_degree - 2),
        )


@dataclass
class JellyfishEstimate:
    """Runtime / footprint comparison of an encoding against the arity-2 baseline."""

    encoding: JellyfishEncoding
    baseline_runtime_ms: float
    jellyfish_runtime_ms: float
    baseline_table_entries: int
    jellyfish_table_entries: int

    @property
    def runtime_ratio(self) -> float:
        return self.jellyfish_runtime_ms / self.baseline_runtime_ms

    @property
    def footprint_ratio(self) -> float:
        return self.jellyfish_table_entries / self.baseline_table_entries


def estimate_jellyfish(
    encoding: JellyfishEncoding,
    config: ZkSpeedConfig | None = None,
    technology: TechnologyModel = DEFAULT_TECHNOLOGY,
) -> JellyfishEstimate:
    """Estimate the effect of a high-arity encoding on zkSpeed's runtime.

    The accelerator model is evaluated at the reduced problem size, with the
    MSM/commitment work scaled by the change in committed-table volume and
    the SumCheck work scaled by the change in per-instance cost (more MLEs
    and a higher constraint degree per instance, but fewer instances).
    """
    config = config or ZkSpeedConfig.paper_default()
    chip = ZkSpeedChip(config, technology)

    baseline_workload = WorkloadModel(num_vars=encoding.baseline_num_vars)
    baseline_report = chip.simulate(baseline_workload)
    baseline_tables = 13 * (1 << encoding.baseline_num_vars)

    reduced_report = chip.simulate(WorkloadModel(num_vars=encoding.num_vars))
    # Scale the reduced-size runtime by the relative growth in committed data
    # (MSM/commit traffic) and in SumCheck instance cost.
    table_scale = encoding.num_mle_tables / 13
    degree_scale = (encoding.gate_degree + 2) / 6  # evaluation points per round
    scale = 0.5 * table_scale + 0.5 * degree_scale
    jellyfish_runtime = reduced_report.total_runtime_ms * scale

    return JellyfishEstimate(
        encoding=encoding,
        baseline_runtime_ms=baseline_report.total_runtime_ms,
        jellyfish_runtime_ms=jellyfish_runtime,
        baseline_table_entries=baseline_tables,
        jellyfish_table_entries=encoding.total_table_entries,
    )


def arity_sweep(
    baseline_num_vars: int = 20,
    arities: tuple[int, ...] = (2, 3, 4, 6, 8),
    gate_degree: int = 3,
    config: ZkSpeedConfig | None = None,
) -> list[JellyfishEstimate]:
    """Sweep gate arity and return the runtime/footprint estimates."""
    estimates = []
    for arity in arities:
        encoding = JellyfishEncoding(
            baseline_num_vars=baseline_num_vars, arity=arity, gate_degree=gate_degree
        )
        estimates.append(estimate_jellyfish(encoding, config=config))
    return estimates
