"""Full-chip model: area, power, runtime and utilization.

:class:`ZkSpeedChip` aggregates the unit models, the memory system and the
protocol scheduler into the quantities the paper reports: total runtime per
workload (Table 3), area and power breakdowns (Table 5, Figure 10), unit
utilization (Figure 13), and step-level runtime breakdowns (Figure 12b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ZkSpeedConfig
from repro.core.memory import MemoryModel, MemoryPlan
from repro.core.scheduler import ProtocolScheduler, StepTiming
from repro.core.technology import DEFAULT_TECHNOLOGY, TechnologyModel
from repro.core.workload_model import WorkloadModel

#: Display names matching the paper's area-breakdown legend (Figure 10).
UNIT_DISPLAY_NAMES = {
    "msm": "MSM Unit",
    "sumcheck": "SumCheck",
    "mle_update": "MLE Update",
    "multifunction_tree": "Multifunction Tree",
    "construct_nd": "Construct N&D",
    "fracmle": "FracMLE",
    "mle_combine": "MLE Combine",
    "sha3": "SHA3",
}


@dataclass
class SimulationReport:
    """Result of simulating one workload on one configuration."""

    config: ZkSpeedConfig
    workload: WorkloadModel
    steps: list[StepTiming]
    total_cycles: float
    total_runtime_ms: float
    area_breakdown_mm2: dict[str, float]
    power_breakdown_w: dict[str, float]
    utilization: dict[str, float]
    memory_plan: MemoryPlan

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_breakdown_mm2.values())

    @property
    def total_power_w(self) -> float:
        return sum(self.power_breakdown_w.values())

    @property
    def compute_area_mm2(self) -> float:
        """Area excluding SRAM and PHYs (the iso-compute-area comparison basis)."""
        excluded = {"SRAM", "HBM PHY"}
        return sum(v for k, v in self.area_breakdown_mm2.items() if k not in excluded)

    def step_runtime_ms(self, technology: TechnologyModel = DEFAULT_TECHNOLOGY) -> dict[str, float]:
        return {s.name: technology.cycles_to_ms(s.total_cycles) for s in self.steps}

    def step_fractions(self) -> dict[str, float]:
        total = sum(s.total_cycles for s in self.steps)
        if total == 0:
            return {s.name: 0.0 for s in self.steps}
        return {s.name: s.total_cycles / total for s in self.steps}


class ZkSpeedChip:
    """A zkSpeed chip instance: one configuration bound to a technology model."""

    def __init__(
        self, config: ZkSpeedConfig, technology: TechnologyModel = DEFAULT_TECHNOLOGY
    ):
        self.config = config
        self.tech = technology
        self.scheduler = ProtocolScheduler(config, technology)
        self.memory = MemoryModel(config, technology)

    # -- area ----------------------------------------------------------------------

    def unit_area_breakdown_mm2(self) -> dict[str, float]:
        s = self.scheduler
        return {
            "MSM Unit": s.msm.area_mm2(),
            "SumCheck": s.sumcheck.area_mm2(),
            "MLE Update": s.mle_update.area_mm2(),
            "Multifunction Tree": s.tree.area_mm2(),
            "Construct N&D": s.construct_nd.area_mm2(),
            "FracMLE": s.fracmle.area_mm2(),
            "MLE Combine": s.mle_combine.area_mm2(),
            "SHA3": s.sha3.area_mm2(),
            "Interconnect/Misc": self.tech.misc_area_mm2,
        }

    def area_breakdown_mm2(self, num_vars: int) -> dict[str, float]:
        breakdown = self.unit_area_breakdown_mm2()
        breakdown["SRAM"] = self.memory.sram_area_mm2(num_vars)
        breakdown["HBM PHY"] = self.memory.phy_area_mm2()
        return breakdown

    def total_area_mm2(self, num_vars: int = 20) -> float:
        return sum(self.area_breakdown_mm2(num_vars).values())

    def compute_area_mm2(self) -> float:
        return sum(self.unit_area_breakdown_mm2().values())

    # -- power -----------------------------------------------------------------------

    def power_breakdown_w(self, num_vars: int, utilization: dict[str, float] | None = None) -> dict[str, float]:
        """Average power; unit power is scaled by utilization when provided."""
        s = self.scheduler
        units = {
            "MSM Unit": s.msm,
            "SumCheck": s.sumcheck,
            "MLE Update": s.mle_update,
            "Multifunction Tree": s.tree,
            "Construct N&D": s.construct_nd,
            "FracMLE": s.fracmle,
            "MLE Combine": s.mle_combine,
            "SHA3": s.sha3,
        }
        breakdown: dict[str, float] = {}
        for display_name, unit in units.items():
            activity = 1.0
            if utilization is not None:
                activity = 0.1 + 0.9 * utilization.get(unit.name, 0.0)
            breakdown[display_name] = unit.power_w() * activity
        breakdown["Interconnect/Misc"] = self.tech.misc_area_mm2 * self.tech.power_density_compute
        breakdown["SRAM"] = self.memory.sram_power_w(num_vars)
        breakdown["HBM PHY"] = self.memory.phy_power_w()
        return breakdown

    # -- simulation ---------------------------------------------------------------------

    def simulate(self, workload: WorkloadModel) -> SimulationReport:
        steps = self.scheduler.schedule(workload)
        total_cycles = sum(step.total_cycles for step in steps)
        busy: dict[str, float] = {}
        for step in steps:
            for unit_name, cycles in step.unit_busy_cycles.items():
                busy[unit_name] = busy.get(unit_name, 0.0) + cycles
        utilization = {
            name: min(1.0, cycles / total_cycles) if total_cycles > 0 else 0.0
            for name, cycles in busy.items()
        }
        area = self.area_breakdown_mm2(workload.num_vars)
        # Table 5 reports each unit's average power when active, so the
        # breakdown is not scaled by utilization here; pass the utilization
        # dict to power_breakdown_w explicitly for activity-scaled estimates.
        power = self.power_breakdown_w(workload.num_vars)
        return SimulationReport(
            config=self.config,
            workload=workload,
            steps=steps,
            total_cycles=total_cycles,
            total_runtime_ms=self.tech.cycles_to_ms(total_cycles),
            area_breakdown_mm2=area,
            power_breakdown_w=power,
            utilization=utilization,
            memory_plan=self.memory.plan(workload.num_vars),
        )

    def runtime_ms(self, workload: WorkloadModel) -> float:
        return self.simulate(workload).total_runtime_ms
