"""The proof-serving subsystem: batching asyncio HTTP over a ProverEngine.

This package is the layer that turns the in-process session API into a
long-lived, measurable service — the ROADMAP's "serves heavy traffic" line.
Everything is standard library: an :mod:`asyncio` HTTP/JSON server
(:mod:`repro.service.server`) with a dynamic batcher that coalesces
concurrent ``POST /prove`` requests into single
:meth:`~repro.api.ProverEngine.prove_many` calls
(:mod:`repro.service.batcher`), explicit backpressure and graceful drain,
a shared wire format (:mod:`repro.service.wire`), per-endpoint metrics
(:mod:`repro.service.metrics`) and a blocking client
(:mod:`repro.service.client`).

>>> from repro.service import BackgroundServer, ProofService, ServiceClient
>>> from repro.service import ServiceConfig
>>> with BackgroundServer(ProofService(ServiceConfig(port=0))) as server:
...     client = ServiceClient(port=server.port)
...     result = client.prove("mock", num_vars=5, seed=1)
...     assert client.verify(result)

From a shell: ``repro serve`` / ``repro submit`` (see ``repro serve -h``),
and ``benchmarks/bench_service.py`` for the closed-loop load generator.
"""

from repro.service.batcher import Draining, DynamicBatcher, QueueFull
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.metrics import ServiceMetrics
from repro.service.server import BackgroundServer, ProofService, ServiceConfig

__all__ = [
    "BackgroundServer",
    "Draining",
    "DynamicBatcher",
    "ProofService",
    "QueueFull",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceUnavailable",
]
