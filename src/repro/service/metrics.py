"""Service counters and latency percentiles for ``GET /metrics``.

The service is the layer every future scaling PR gets measured through, so
its observability is part of the subsystem, not an afterthought.  One
:class:`ServiceMetrics` instance lives on the server; handlers and the
batcher record into it from the event-loop thread (plus batch completions
from the engine thread), so the few compound updates take a lock — the
counters must stay consistent enough that the load generator can diff two
``/metrics`` snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (which must be sorted)."""
    if not samples:
        return 0.0
    rank = max(0, min(len(samples) - 1, round(fraction * (len(samples) - 1))))
    return samples[rank]


def latency_summary(samples: list[float]) -> dict:
    """count/mean/p50/p95/p99/max for a latency sample list (seconds)."""
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "count": count,
        "mean": sum(ordered) / count if count else 0.0,
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1] if ordered else 0.0,
    }


class ServiceMetrics:
    """Counters + bounded latency reservoirs behind ``GET /metrics``."""

    #: Per-endpoint latency samples kept for percentile computation.  A
    #: bounded deque keeps a long-lived server's memory flat; 4096 samples
    #: give stable p99 estimates at the tail the bench sweeps.
    RESERVOIR = 4096

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests_total: Counter = Counter()
        self.responses_total: Counter = Counter()
        self.rejected_total = 0
        self.proofs_total = 0
        self.verifications_total = 0
        self.prove_many_calls = 0
        self.batch_sizes: Counter = Counter()
        self.batch_buckets: Counter = Counter()
        self.batch_seconds_total = 0.0
        self.simulations_total = 0
        self.sim_cache_hits = 0
        self.sweeps_total = 0
        self.sweep_points_total = 0
        self.last_pareto_size = 0
        #: Single-slot progress gauge for the sweep currently on the engine
        #: thread (there is at most one: the executor is one thread wide).
        self._sweep_progress: dict | None = None
        self._latency: dict[str, deque] = {}
        self.jobs_submitted_total = 0
        self.jobs_completed_total = 0
        self.jobs_failed_total = 0
        self.jobs_dead_total = 0
        self.jobs_discarded_total = 0
        self.artifact_dedup_total = 0

    # -- recording (handlers / batcher) -------------------------------------

    def request(self, endpoint: str) -> None:
        with self._lock:
            self.requests_total[endpoint] += 1

    def response(self, status: int) -> None:
        with self._lock:
            self.responses_total[str(status)] += 1
            if status == 503:
                self.rejected_total += 1

    def batch_done(self, size: int, seconds: float, bucket: object = None) -> None:
        """One ``prove_many`` dispatch of ``size`` coalesced requests.

        ``bucket`` is the batch's structure-bucket key
        (``scenario:num_vars`` under structure-aware batching, ``None`` in
        single-bucket mode).
        """
        with self._lock:
            self.prove_many_calls += 1
            self.proofs_total += size
            self.batch_sizes[size] += 1
            if bucket is not None:
                self.batch_buckets[str(bucket)] += 1
            self.batch_seconds_total += seconds

    def verified(self) -> None:
        with self._lock:
            self.verifications_total += 1

    def simulated(self, cached: bool) -> None:
        """One ``/simulate`` answer (``cached`` = served from the sim LRU)."""
        with self._lock:
            self.simulations_total += 1
            if cached:
                self.sim_cache_hits += 1

    def sweep_progress(self, done: int, total: int, pareto_size: int) -> None:
        """Update the in-progress sweep gauge (visible live in /metrics)."""
        with self._lock:
            self._sweep_progress = {
                "done": done,
                "total": total,
                "pareto_size": pareto_size,
            }

    def sweep_done(self, points: int, pareto_size: int) -> None:
        """One completed sweep (or sweep shard); clears the progress gauge."""
        with self._lock:
            self.sweeps_total += 1
            self.sweep_points_total += points
            self.last_pareto_size = pareto_size
            self._sweep_progress = None

    def job_submitted(self) -> None:
        with self._lock:
            self.jobs_submitted_total += 1

    def job_completed(self, deduped: bool) -> None:
        """One job committed ``done`` (``deduped`` = artifact already stored)."""
        with self._lock:
            self.jobs_completed_total += 1
            if deduped:
                self.artifact_dedup_total += 1

    def job_attempt_failed(self, state: str) -> None:
        """One failed attempt; ``state`` is where the job landed
        (``failed`` = retryable, ``dead`` = out of attempts)."""
        with self._lock:
            self.jobs_failed_total += 1
            if state == "dead":
                self.jobs_dead_total += 1

    def job_discarded(self) -> None:
        """One lease-lost result thrown away (the re-leased attempt won)."""
        with self._lock:
            self.jobs_discarded_total += 1

    def latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            reservoir = self._latency.get(endpoint)
            if reservoir is None:
                reservoir = self._latency[endpoint] = deque(maxlen=self.RESERVOIR)
            reservoir.append(seconds)

    # -- derived views -------------------------------------------------------

    def average_batch_seconds(self) -> float:
        """Mean wall time of a prove batch (the Retry-After estimator)."""
        with self._lock:
            if not self.prove_many_calls:
                return 0.0
            return self.batch_seconds_total / self.prove_many_calls

    def snapshot(
        self,
        state: str,
        queue_depth: int,
        queue_capacity: int,
        jobs: dict | None = None,
    ) -> dict:
        """The full ``GET /metrics`` body.

        ``jobs`` is the durable tier's live view (queue/lease/artifact
        stats from :class:`~repro.jobs.store.JobStore`), merged here with
        the counters this process accumulated.
        """
        with self._lock:
            batches = sum(self.batch_sizes.values())
            coalesced = sum(size * n for size, n in self.batch_sizes.items())
            return {
                "state": state,
                "uptime_seconds": time.time() - self.started_at,
                "queue_depth": queue_depth,
                "queue_capacity": queue_capacity,
                "requests_total": dict(self.requests_total),
                "responses_total": dict(self.responses_total),
                "rejected_total": self.rejected_total,
                "proofs_total": self.proofs_total,
                "verifications_total": self.verifications_total,
                "prove_many_calls": self.prove_many_calls,
                "simulations_total": self.simulations_total,
                "sim_cache_hits": self.sim_cache_hits,
                "sweeps": {
                    "count": self.sweeps_total,
                    "points_total": self.sweep_points_total,
                    "last_pareto_size": self.last_pareto_size,
                    "active": dict(self._sweep_progress)
                    if self._sweep_progress
                    else None,
                },
                "batches": {
                    "count": batches,
                    "total_requests": coalesced,
                    "mean_size": coalesced / batches if batches else 0.0,
                    "max_size": max(self.batch_sizes) if self.batch_sizes else 0,
                    "sizes": {str(k): v for k, v in sorted(self.batch_sizes.items())},
                    "by_bucket": dict(sorted(self.batch_buckets.items())),
                },
                "latency_seconds": {
                    endpoint: latency_summary(list(samples))
                    for endpoint, samples in self._latency.items()
                },
                "jobs": dict(
                    jobs or {},
                    submitted_total=self.jobs_submitted_total,
                    completed_total=self.jobs_completed_total,
                    failed_attempts_total=self.jobs_failed_total,
                    dead_total=self.jobs_dead_total,
                    discarded_total=self.jobs_discarded_total,
                    artifact_dedup_total=self.artifact_dedup_total,
                ),
            }
