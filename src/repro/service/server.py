"""The asyncio proof-serving HTTP server.

:class:`ProofService` turns a long-lived :class:`~repro.api.ProverEngine`
into a network service using nothing beyond the standard library: an
``asyncio.start_server`` loop speaking a deliberately small slice of
HTTP/1.1 (JSON bodies, keep-alive, ``Content-Length`` framing — the shared
plumbing in :mod:`repro.service.http`) in front of the
:class:`~repro.service.batcher.DynamicBatcher`.

Endpoints
---------
``POST /prove``     queue one prove request; coalesced with concurrent
                    callers *of the same circuit size* into a single
                    ``prove_many`` batch
``POST /verify``    verify a base64 proof against a scenario's cached
                    verifying key
``POST /simulate``  simulate one zkSpeed design point on a scenario's
                    architectural workload (memoized; answers carry a
                    ``cached`` flag)
``POST /sweep``     evaluate a design-space sweep plan (or one shard of
                    it); optionally streamed as NDJSON progress chunks
``POST /jobs``      submit a durable prove/verify/sweep job (202 = the job
                    is persisted and will survive a crash); 429 when the
                    durable queue is at its admission bound
``GET  /jobs/<id>`` a job's state; ``/jobs/<id>/artifact`` streams the
                    finished job's content-addressed artifact bytes
``GET  /scenarios`` the scenario registry (names, sizes, descriptions,
                    per-scenario capability flags)
``GET  /healthz``   liveness, lifecycle state, queue depth, in-flight
                    batches, and the engine's cache contents (what the
                    cluster router's structure-affine placement keeps hot)
``GET  /metrics``   counters, batch statistics, latency percentiles

Threading model: the event loop owns all sockets and the queue; *every*
engine call (prove batches and verifications alike) runs on one dedicated
executor thread.  That single thread is what makes the engine's
process-wide configuration seams (``EngineConfig.apply``) safe under
concurrent HTTP traffic — parallelism comes from the engine's own worker
pool underneath, not from racing engine calls.

Backpressure and shutdown are first-class: a full queue answers ``503``
with a ``Retry-After`` estimated from recent batch wall times (or a
documented floor on a cold service), and :meth:`ProofService.shutdown`
drains every admitted request before the sockets close.
"""

from __future__ import annotations

import asyncio
import logging
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api import EngineConfig, ProverEngine
from repro.api.scenarios import available_scenarios, resolve_scenario
from repro.jobs import ArtifactStore, JobRunner, JobStore
from repro.protocol.serialization import SerializationError, deserialize_proof
from repro.protocol.verifier import VerificationError
from repro.service import wire
from repro.service.batcher import Draining, DynamicBatcher, QueueFull
from repro.service.http import ByteStream, HttpServerBase, NdjsonStream
from repro.service.metrics import ServiceMetrics
from repro.testing.faults import install_from_env

logger = logging.getLogger("repro.service")

#: ``Retry-After`` answered by a cold service (no batch has completed yet,
#: so there is no wall-time history to estimate from).  A fixed, documented
#: floor beats extrapolating from the coalescing window — a zero-window
#: server would otherwise tell rejected callers to hammer it again almost
#: immediately while the very first (cache-cold, SRS-building) batch is
#: still minutes from finishing.
COLD_RETRY_AFTER_SECONDS = 2


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs (engine knobs live in :class:`~repro.api.EngineConfig`).

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (the bound port is
        on :attr:`ProofService.port` once started).
    batch_window_ms:
        Coalescing window of the dynamic batcher: how long the first
        request of a batch waits for company before ``prove_many`` runs.
    max_batch:
        Largest coalesced batch handed to the engine in one call.
    max_queue:
        Bound on admitted-but-undispatched prove requests; beyond it the
        service answers ``503`` with a ``Retry-After`` hint.
    size_buckets:
        Bucket queued prove requests by structure (scenario + resolved
        ``num_vars``) so a batch never mixes circuit sizes or scenarios —
        one slow 2^14 job stops inflating the p99 of 2^10 jobs that would
        otherwise share its batch, and every batch hits one
        preprocessing-key family.  Within a bucket, arrival order and
        proof bytes are unchanged.
    job_dir:
        Where the durable tier lives: the sqlite queue (``queue.sqlite3``)
        and the content-addressed artifact store (``artifacts/``).  Point
        it at persistent storage to make jobs survive process restarts —
        ``None`` means an owned temporary directory, removed at shutdown
        (jobs are then only as durable as the process; fine for tests).
    job_lease_s / job_poll_s:
        Worker lease length (a crashed worker's claimed jobs become
        re-claimable after this) and the idle claim-poll interval.
    job_max_attempts:
        Default retry budget per job before it dead-letters (a submit may
        override per job).
    job_queue_limit:
        Admission bound on not-yet-done jobs; beyond it ``POST /jobs``
        answers 429 with a ``Retry-After`` hint.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    batch_window_ms: float = 25.0
    max_batch: int = 16
    max_queue: int = 64
    size_buckets: bool = True
    job_dir: str | None = None
    job_lease_s: float = 30.0
    job_poll_s: float = 0.25
    job_max_attempts: int = 3
    job_queue_limit: int = 256

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.job_lease_s <= 0:
            raise ValueError("job_lease_s must be > 0")
        if self.job_poll_s <= 0:
            raise ValueError("job_poll_s must be > 0")
        if self.job_max_attempts < 1:
            raise ValueError("job_max_attempts must be >= 1")
        if self.job_queue_limit < 1:
            raise ValueError("job_queue_limit must be >= 1")


class ProofService(HttpServerBase):
    """A long-lived proving service over one :class:`ProverEngine` session.

    Pass an ``engine`` to serve an existing session (it is left open on
    shutdown), or an ``engine_config`` to let the service own its engine's
    whole lifecycle — including ``engine.close()`` on drain.
    """

    max_body_bytes = wire.MAX_BODY_BYTES
    logger = logging.getLogger("repro.service")

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        engine: ProverEngine | None = None,
        engine_config: EngineConfig | None = None,
    ):
        if engine is not None and engine_config is not None:
            raise ValueError("pass engine= or engine_config=, not both")
        self.config = config if config is not None else ServiceConfig()
        super().__init__(self.config.host, self.config.port)
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else ProverEngine(engine_config)
        self.metrics = ServiceMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self.batcher = DynamicBatcher(
            self._prove_batch,
            self._executor,
            window_ms=self.config.batch_window_ms,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            metrics=self.metrics,
            bucket_key=self._bucket_key if self.config.size_buckets else None,
        )
        self.jobs: JobStore | None = None
        self.artifacts: ArtifactStore | None = None
        self.job_runner: JobRunner | None = None
        self._owned_job_dir: str | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the batcher; returns once listening."""
        if self._state != "new":
            raise RuntimeError(f"cannot start a {self._state} service")
        install_from_env()
        self.batcher.start()
        self._open_job_tier()
        self.job_runner.start()
        await self._start_http()
        self._state = "serving"
        logger.info("serving on %s:%d", self.config.host, self.port)

    def _open_job_tier(self) -> None:
        """Open (or re-open after a crash) the durable queue and artifacts.

        Re-opening is the recovery path: every job this process previously
        held a lease on is reset to ``pending`` (or dead-lettered if it was
        already out of attempts) before the runner claims anything.
        """
        job_dir = self.config.job_dir
        if job_dir is None:
            self._owned_job_dir = tempfile.mkdtemp(prefix="repro-jobs-")
            job_dir = self._owned_job_dir
        os.makedirs(job_dir, exist_ok=True)
        self.jobs = JobStore(os.path.join(job_dir, "queue.sqlite3"))
        recovered = self.jobs.recover_abandoned()
        if recovered:
            logger.info("recovered %d abandoned job(s) from %s", recovered, job_dir)
        self.artifacts = ArtifactStore(os.path.join(job_dir, "artifacts"))
        self.job_runner = JobRunner(
            self.jobs,
            self.artifacts,
            self._execute_job_batch,
            executor=self._executor,
            lease_s=self.config.job_lease_s,
            poll_s=self.config.job_poll_s,
            batch_size=self.config.max_batch,
            metrics=self.metrics,
        )

    async def shutdown(self) -> None:
        """Graceful drain: reject new work, answer everything admitted, stop.

        Idempotent.  Ordering matters: the batcher drains first (every
        queued request is proved and its handler resumed), then the job
        runner finishes its in-flight batch (queued jobs stay durably
        pending — that is the tier's point), then the loop waits for
        handlers to finish *writing*, and only then do the sockets close.
        """
        if self._state in ("draining", "stopped"):
            return
        self._state = "draining"
        await self.batcher.drain()
        if self.job_runner is not None:
            await self.job_runner.stop()
        await self._stop_http()
        self._state = "stopped"
        self._executor.shutdown(wait=True)
        if self.jobs is not None:
            self.jobs.close()
        if self._owned_job_dir is not None:
            shutil.rmtree(self._owned_job_dir, ignore_errors=True)
            self._owned_job_dir = None
        if self._owns_engine:
            self.engine.close()
        logger.info("drained and stopped")

    def on_request(self, endpoint: str) -> None:
        self.metrics.request(endpoint)

    def on_latency(self, endpoint: str, seconds: float) -> None:
        self.metrics.latency(endpoint, seconds)

    def on_response(self, status: int) -> None:
        self.metrics.response(status)

    # -- engine-thread work ---------------------------------------------------

    @staticmethod
    def _bucket_key(request: dict) -> str:
        """The structure bucket of a parsed prove request.

        Keyed by ``scenario:resolved_num_vars`` so a coalesced batch never
        mixes circuit structures: every request in a batch shares one SRS
        size and one preprocessing-key family, and under mixed-scenario
        load the batches stay scenario-pure (``bench_service.py --mix``
        reads the purity off ``/metrics``).
        """
        scenario = request["scenario"]
        return f"{scenario}:{wire.resolved_num_vars(scenario, request['num_vars'])}"

    def _prove_batch(self, requests: list[dict]) -> list[dict]:
        """Blocking: one coalesced batch through ``engine.prove_many``.

        Runs on the single engine thread.  Each response carries the batch
        size it was served in, so clients (and the coalescing tests) can see
        the batching without scraping ``/metrics``.
        """
        artifacts = self.engine.prove_many(
            [
                {
                    "scenario": request["scenario"],
                    "num_vars": request["num_vars"],
                    "seed": request["seed"],
                }
                for request in requests
            ]
        )
        responses = []
        for request, artifact in zip(requests, artifacts):
            if request.get("include_witness"):
                _, circuit = self.engine.resolve_circuit(
                    request["scenario"],
                    num_vars=request["num_vars"],
                    seed=request["seed"],
                )
                request = dict(request)
                request["witness_columns"] = wire.serialize_witness(circuit)
            responses.append(
                wire.prove_response(artifact, request, batch_size=len(requests))
            )
        return responses

    def _verify_blocking(self, request: dict) -> dict:
        """Blocking: deserialize + verify one proof on the engine thread.

        The low-level verifier *raises* on the first failed check; over the
        wire that is a well-formed ``valid: false`` answer (with the check
        that failed), not a server error.
        """
        verifying_key = self.engine.verifying_key(
            request["scenario"],
            num_vars=request["num_vars"],
            seed=request["seed"],
        )
        proof = deserialize_proof(request["proof"])
        reason = None
        try:
            valid = bool(self.engine.verify(proof, verifying_key))
        except VerificationError as exc:
            valid, reason = False, str(exc)
        if valid:
            self.metrics.verified()
        body = {
            "scenario": request["scenario"],
            "num_vars": request["num_vars"],
            "valid": valid,
        }
        if reason is not None:
            body["reason"] = reason
        return body

    def _simulate_blocking(self, request: dict) -> dict:
        """Blocking: one memoized chip simulation on the engine thread."""
        num_vars = wire.resolved_sim_num_vars(request["scenario"], request["num_vars"])
        workload = self.engine.workload(request["scenario"], num_vars=num_vars)
        report, cached = self.engine.simulate_config(request["chip_config"], workload)
        self.metrics.simulated(cached)
        return wire.simulate_response(report, request["scenario"], num_vars, cached)

    def _sweep_blocking(self, plan, items, on_progress):
        """Blocking: one sweep (or shard) through ``engine.sweep``.

        Runs on the single engine thread like every other engine call; the
        engine decides internally whether its fork pool fans the points out.
        """
        result = self.engine.sweep(plan, items=items, on_progress=on_progress)
        self.metrics.sweep_done(len(result.points), len(result.frontier))
        return result

    def _execute_job_batch(self, kind: str, payloads: list[dict]):
        """Blocking: one claimed job batch through the engine (worker seam).

        Same single engine thread as the synchronous tier — durable jobs
        and interactive requests interleave batch-by-batch rather than
        racing the engine's process-wide configuration.
        """
        return self.engine.execute_job_batch(kind, payloads)

    # -- routing --------------------------------------------------------------

    def routes(self) -> dict:
        return {
            ("POST", "/prove"): self._handle_prove,
            ("POST", "/verify"): self._handle_verify,
            ("POST", "/simulate"): self._handle_simulate,
            ("POST", "/sweep"): self._handle_sweep,
            ("POST", "/jobs"): self._handle_submit_job,
            ("GET", "/scenarios"): self._handle_scenarios,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
        }

    def prefix_routes(self) -> dict:
        return {("GET", "/jobs/"): self._handle_get_job}

    def _retry_after_seconds(self) -> int:
        """A pessimistic-but-bounded hint for rejected callers.

        The queue drains one batch per collector cycle, so a full queue
        clears in roughly ``(max_queue / max_batch)`` batch wall times.  A
        *cold* service (no batch completed yet) has no wall-time history at
        all — the first batch is still building the SRS and proving keys —
        so it answers the documented :data:`COLD_RETRY_AFTER_SECONDS` floor
        instead of extrapolating from the coalescing window, which says
        nothing about proving time.
        """
        batch_seconds = self.metrics.average_batch_seconds()
        if batch_seconds <= 0:
            return COLD_RETRY_AFTER_SECONDS
        cycles = max(1.0, self.config.max_queue / self.config.max_batch)
        return max(1, min(60, round(cycles * batch_seconds + 0.5)))

    async def _handle_prove(self, request: dict):
        try:
            prove_request = wire.parse_prove_request(
                wire.parse_json_body(request["body"])
            )
        except wire.WireError as exc:
            return 400, wire.wire_error_body(exc), None
        try:
            result = await self.batcher.submit(prove_request)
        except QueueFull as exc:
            return (
                503,
                wire.error_body("queue_full", str(exc)),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        except Draining:
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        return 200, result, None

    async def _handle_verify(self, request: dict):
        try:
            verify_request = wire.parse_verify_request(
                wire.parse_json_body(request["body"])
            )
        except wire.WireError as exc:
            return 400, wire.wire_error_body(exc), None
        if self._state != "serving":
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        loop = asyncio.get_running_loop()
        try:
            body = await loop.run_in_executor(
                self._executor, self._verify_blocking, verify_request
            )
        except SerializationError as exc:
            return 400, wire.error_body("bad_proof", str(exc)), None
        return 200, body, None

    async def _handle_simulate(self, request: dict):
        try:
            sim_request = wire.parse_simulate_request(
                wire.parse_json_body(request["body"])
            )
        except wire.WireError as exc:
            return 400, wire.wire_error_body(exc), None
        if self._state != "serving":
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(
            self._executor, self._simulate_blocking, sim_request
        )
        return 200, body, None

    async def _handle_sweep(self, request: dict):
        try:
            sweep_request = wire.parse_sweep_request(
                wire.parse_json_body(request["body"])
            )
        except wire.WireError as exc:
            return 400, wire.wire_error_body(exc), None
        if self._state != "serving":
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        plan = sweep_request["plan"]
        shard = sweep_request["shard"]
        include_points = sweep_request["include_points"]
        items = plan.shard_items(*shard) if shard is not None else None
        loop = asyncio.get_running_loop()
        if not sweep_request["stream"]:
            result = await loop.run_in_executor(
                self._executor,
                self._sweep_blocking,
                plan,
                items,
                self.metrics.sweep_progress,
            )
            return 200, wire.sweep_response(result, include_points, shard), None

        # Streamed variant: progress callbacks from the engine thread are
        # bridged onto the event loop through a queue and written as NDJSON
        # chunks while the sweep is still running, then one final result
        # line.  A mid-sweep crash truncates the chunked body (no zero
        # chunk), which clients must treat as failure.
        progress_queue: asyncio.Queue = asyncio.Queue()

        def on_progress(done: int, total: int, pareto_size: int) -> None:
            self.metrics.sweep_progress(done, total, pareto_size)
            loop.call_soon_threadsafe(
                progress_queue.put_nowait, (done, total, pareto_size)
            )

        async def lines():
            total = len(items) if items is not None else plan.total_points()
            yield {
                "event": "start",
                "total_points": total,
                "workload": plan.workload().name,
                "shard": {"index": shard[0], "count": shard[1]} if shard else None,
            }
            future = loop.run_in_executor(
                self._executor, self._sweep_blocking, plan, items, on_progress
            )
            future.add_done_callback(
                lambda _f: progress_queue.put_nowait(None)
            )
            while True:
                event = await progress_queue.get()
                if event is None:
                    break
                done, total, pareto_size = event
                yield {
                    "event": "progress",
                    "done": done,
                    "total": total,
                    "pareto_size": pareto_size,
                }
            result = await future
            yield {
                "event": "result",
                **wire.sweep_response(result, include_points, shard),
            }

        return 200, NdjsonStream(lines()), None

    async def _handle_submit_job(self, request: dict):
        """``POST /jobs``: validate, admit against the durable queue bound,
        persist, wake the runner, acknowledge with 202.

        The 202 means "this job is now crash-safe": the row committed to
        sqlite before the response bytes left the process.  A client that
        never reads the response (or a router retrying a dead connection)
        resubmits with the same id and gets the same job back.
        """
        try:
            job_request = wire.parse_job_request(wire.parse_json_body(request["body"]))
        except wire.WireError as exc:
            return 400, wire.wire_error_body(exc), None
        if self._state != "serving" or self.jobs is None:
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        if self.jobs.stats()["queue_depth"] >= self.config.job_queue_limit:
            return (
                429,
                wire.error_body(
                    "job_queue_full",
                    f"job queue at its {self.config.job_queue_limit}-job limit",
                ),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        max_attempts = job_request["max_attempts"]
        job_id, created = self.jobs.submit(
            job_request["kind"],
            job_request["structure_key"],
            job_request["payload"],
            max_attempts=(
                max_attempts if max_attempts is not None
                else self.config.job_max_attempts
            ),
            job_id=job_request["job_id"],
        )
        if created:
            self.metrics.job_submitted()
        self.job_runner.kick()
        body = wire.job_response(self.jobs.get(job_id))
        body["created"] = created
        return 202, body, None

    async def _handle_get_job(self, request: dict):
        """``GET /jobs/<id>`` (status) and ``GET /jobs/<id>/artifact``
        (chunked download of the content-addressed blob)."""
        rest = request["path"][len("/jobs/"):]
        want_artifact = rest.endswith("/artifact")
        job_id = rest[: -len("/artifact")] if want_artifact else rest
        if not job_id or "/" in job_id or self.jobs is None:
            return 404, wire.error_body("not_found", "no such job route"), None
        record = self.jobs.get(job_id)
        if record is None:
            return (
                404,
                wire.error_body("unknown_job", f"no job {job_id!r} on this backend"),
                None,
            )
        if not want_artifact:
            return 200, wire.job_response(record), None
        if record["state"] != "done":
            # 409, not 404: the job exists, its artifact does not *yet* —
            # a poller should keep waiting, not conclude the id is wrong.
            extra = (
                {"Retry-After": "1"}
                if record["state"] in ("pending", "running", "failed")
                else None
            )
            return (
                409,
                wire.error_body(
                    "job_not_done", f"job {job_id!r} is {record['state']}"
                ),
                extra,
            )
        digest = record["artifact_digest"]
        if not digest:
            return (
                404,
                wire.error_body(
                    "no_artifact", f"job {job_id!r} produced a result body only"
                ),
                None,
            )
        try:
            chunks = self.artifacts.open_chunks(digest)
        except KeyError:
            return (
                404,
                wire.error_body("no_artifact", f"artifact {digest} missing"),
                None,
            )
        return (
            200,
            ByteStream(chunks),
            {
                "X-Artifact-Digest": digest,
                "X-Artifact-Size": str(record["artifact_size"]),
            },
        )

    def _job_stats(self) -> dict | None:
        """The durable tier's live view for ``/healthz`` and ``/metrics``."""
        if self.jobs is None:
            return None
        stats = self.jobs.stats()
        stats["queue_limit"] = self.config.job_queue_limit
        stats["artifacts"] = self.artifacts.stats()
        return stats

    async def _handle_scenarios(self, request: dict):
        scenarios = []
        for name in available_scenarios():
            spec = resolve_scenario(name)
            scenarios.append(
                {
                    "name": spec.name,
                    "title": spec.title,
                    "description": spec.description,
                    "paper_log_size": spec.paper_log_size,
                    "default_log_size": spec.default_log_size,
                    "capabilities": list(spec.capabilities),
                }
            )
        return 200, {"scenarios": scenarios}, None

    async def _handle_healthz(self, request: dict):
        """Liveness plus the load/cache signals a routing tier needs.

        Queue depth and in-flight batch count let a load-aware router skip
        a saturated backend; the engine cache contents show which circuit
        structures this backend is *hot* for — the whole point of the
        cluster tier's structure-affine placement.
        """
        engine_info = {
            "workers": self.engine.config.effective_workers(),
            "field_backend": self.engine.config.field_backend,
        }
        backend_info = getattr(self.engine, "field_backend_info", None)
        if backend_info is not None:
            # Full resolution — policy, the backend large vectors actually
            # use, and what is installed — so an operator can tell a fleet
            # running the compiled kernel from one silently degraded to the
            # pure fallback.
            engine_info["field_backend"] = backend_info()
        cache_contents = getattr(self.engine, "cache_contents", None)
        if cache_contents is not None:
            engine_info["cache"] = cache_contents()
        return (
            200,
            {
                "status": "ok" if self._state == "serving" else self._state,
                "state": self._state,
                "uptime_seconds": time.time() - self.metrics.started_at,
                "queue_depth": self.batcher.queue_depth,
                "queue_capacity": self.config.max_queue,
                "in_flight_batches": self.batcher.in_flight_batches,
                "size_buckets": self.config.size_buckets,
                "jobs": self._job_stats(),
                "engine": engine_info,
            },
            None,
        )

    async def _handle_metrics(self, request: dict):
        return (
            200,
            self.metrics.snapshot(
                state=self._state,
                queue_depth=self.batcher.queue_depth,
                queue_capacity=self.config.max_queue,
                jobs=self._job_stats(),
            ),
            None,
        )


class BackgroundServer:
    """An :class:`HttpServerBase` server on a dedicated thread + event loop.

    The harness tests, the load generators and interactive sessions all need
    a serving loop *next to* synchronous code; this wraps the lifecycle for
    any server built on the shared base (a :class:`ProofService`, a
    :class:`~repro.cluster.router.ClusterRouter`)::

        with BackgroundServer(ProofService(...)) as server:
            client = ServiceClient(port=server.port)
            ...

    ``start()`` returns once the socket is bound; ``stop()`` performs the
    full graceful drain before the thread joins.
    """

    def __init__(self, service: HttpServerBase, start_timeout: float = 30.0):
        self.service = service
        self.start_timeout = start_timeout
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        if self.service.port is None:
            raise RuntimeError("server not started")
        return self.service.port

    def _main(self) -> None:
        async def body():
            try:
                await self.service.start()
            except BaseException as exc:  # surfaced to the starting thread
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            try:
                await self.service._stop_requested.wait()
            finally:
                await self.service.shutdown()

        try:
            asyncio.run(body())
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.start_timeout):
            raise RuntimeError("service did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.service.request_stop()
        self._thread.join(timeout=max(self.start_timeout, 60.0))
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
