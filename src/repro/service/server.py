"""The asyncio proof-serving HTTP server.

:class:`ProofService` turns a long-lived :class:`~repro.api.ProverEngine`
into a network service using nothing beyond the standard library: an
``asyncio.start_server`` loop speaking a deliberately small slice of
HTTP/1.1 (JSON bodies, keep-alive, ``Content-Length`` framing) in front of
the :class:`~repro.service.batcher.DynamicBatcher`.

Endpoints
---------
``POST /prove``     queue one prove request; coalesced with concurrent
                    callers into a single ``prove_many`` batch
``POST /verify``    verify a base64 proof against a scenario's cached
                    verifying key
``GET  /scenarios`` the scenario registry (names, sizes, descriptions)
``GET  /healthz``   liveness + lifecycle state (``serving``/``draining``)
``GET  /metrics``   counters, batch statistics, latency percentiles

Threading model: the event loop owns all sockets and the queue; *every*
engine call (prove batches and verifications alike) runs on one dedicated
executor thread.  That single thread is what makes the engine's
process-wide configuration seams (``EngineConfig.apply``) safe under
concurrent HTTP traffic — parallelism comes from the engine's own worker
pool underneath, not from racing engine calls.

Backpressure and shutdown are first-class: a full queue answers ``503``
with a ``Retry-After`` estimated from recent batch wall times, and
:meth:`ProofService.shutdown` drains every admitted request before the
sockets close.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api import EngineConfig, ProverEngine
from repro.api.scenarios import available_scenarios, resolve_scenario
from repro.protocol.serialization import SerializationError, deserialize_proof
from repro.protocol.verifier import VerificationError
from repro.service import wire
from repro.service.batcher import Draining, DynamicBatcher, QueueFull
from repro.service.metrics import ServiceMetrics

logger = logging.getLogger("repro.service")

#: Cap on the request line + headers (JSON bodies are framed separately).
MAX_HEADER_BYTES = 16384

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs (engine knobs live in :class:`~repro.api.EngineConfig`).

    Attributes
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (the bound port is
        on :attr:`ProofService.port` once started).
    batch_window_ms:
        Coalescing window of the dynamic batcher: how long the first
        request of a batch waits for company before ``prove_many`` runs.
    max_batch:
        Largest coalesced batch handed to the engine in one call.
    max_queue:
        Bound on admitted-but-undispatched prove requests; beyond it the
        service answers ``503`` with a ``Retry-After`` hint.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    batch_window_ms: float = 25.0
    max_batch: int = 16
    max_queue: int = 64

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


class _BadRequest(Exception):
    """Internal: malformed HTTP framing; answer 400 and close."""


class ProofService:
    """A long-lived proving service over one :class:`ProverEngine` session.

    Pass an ``engine`` to serve an existing session (it is left open on
    shutdown), or an ``engine_config`` to let the service own its engine's
    whole lifecycle — including ``engine.close()`` on drain.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        engine: ProverEngine | None = None,
        engine_config: EngineConfig | None = None,
    ):
        if engine is not None and engine_config is not None:
            raise ValueError("pass engine= or engine_config=, not both")
        self.config = config if config is not None else ServiceConfig()
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else ProverEngine(engine_config)
        self.metrics = ServiceMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self.batcher = DynamicBatcher(
            self._prove_batch,
            self._executor,
            window_ms=self.config.batch_window_ms,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            metrics=self.metrics,
        )
        self._server: asyncio.AbstractServer | None = None
        self._state = "new"
        self._connections: set[asyncio.StreamWriter] = set()
        self._in_flight = 0
        self._idle: asyncio.Event | None = None
        self._stop_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        """``new`` → ``serving`` → ``draining`` → ``stopped``."""
        return self._state

    async def start(self) -> None:
        """Bind the socket and start the batcher; returns once listening."""
        if self._state != "new":
            raise RuntimeError(f"cannot start a {self._state} service")
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stop_requested = asyncio.Event()
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._state = "serving"
        logger.info("serving on %s:%d", self.config.host, self.port)

    async def shutdown(self) -> None:
        """Graceful drain: reject new work, answer everything admitted, stop.

        Idempotent.  Ordering matters: the batcher drains first (every
        queued request is proved and its handler resumed), then the loop
        waits for those handlers to finish *writing*, and only then do the
        listening socket and lingering keep-alive connections close.
        """
        if self._state in ("draining", "stopped"):
            return
        self._state = "draining"
        await self.batcher.drain()
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        self._state = "stopped"
        self._executor.shutdown(wait=True)
        if self._owns_engine:
            self.engine.close()
        logger.info("drained and stopped")

    def request_stop(self) -> None:
        """Ask the serving loop to begin a graceful shutdown (thread-safe)."""
        if self._loop is not None and self._stop_requested is not None:
            self._loop.call_soon_threadsafe(self._stop_requested.set)

    async def serve_forever(
        self, install_signal_handlers: bool = True, on_ready=None
    ) -> None:
        """Start, run until :meth:`request_stop` / SIGINT / SIGTERM, drain.

        ``on_ready`` (if given) is called once the socket is bound — the CLI
        uses it to print the resolved address before blocking.
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self.request_stop)
        try:
            await self._stop_requested.wait()
        finally:
            await self.shutdown()

    # -- engine-thread work ---------------------------------------------------

    def _prove_batch(self, requests: list[dict]) -> list[dict]:
        """Blocking: one coalesced batch through ``engine.prove_many``.

        Runs on the single engine thread.  Each response carries the batch
        size it was served in, so clients (and the coalescing tests) can see
        the batching without scraping ``/metrics``.
        """
        artifacts = self.engine.prove_many(
            [
                {
                    "scenario": request["scenario"],
                    "num_vars": request["num_vars"],
                    "seed": request["seed"],
                }
                for request in requests
            ]
        )
        responses = []
        for request, artifact in zip(requests, artifacts):
            if request.get("include_witness"):
                _, circuit = self.engine.resolve_circuit(
                    request["scenario"],
                    num_vars=request["num_vars"],
                    seed=request["seed"],
                )
                request = dict(request)
                request["witness_columns"] = wire.serialize_witness(circuit)
            responses.append(
                wire.prove_response(artifact, request, batch_size=len(requests))
            )
        return responses

    def _verify_blocking(self, request: dict) -> dict:
        """Blocking: deserialize + verify one proof on the engine thread.

        The low-level verifier *raises* on the first failed check; over the
        wire that is a well-formed ``valid: false`` answer (with the check
        that failed), not a server error.
        """
        verifying_key = self.engine.verifying_key(
            request["scenario"],
            num_vars=request["num_vars"],
            seed=request["seed"],
        )
        proof = deserialize_proof(request["proof"])
        reason = None
        try:
            valid = bool(self.engine.verify(proof, verifying_key))
        except VerificationError as exc:
            valid, reason = False, str(exc)
        if valid:
            self.metrics.verified()
        body = {
            "scenario": request["scenario"],
            "num_vars": request["num_vars"],
            "valid": valid,
        }
        if reason is not None:
            body["reason"] = reason
        return body

    # -- HTTP plumbing --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, 400, wire.error_body("bad_request", str(exc)),
                        keep_alive=False,
                    )
                    break
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 400,
                        wire.error_body("bad_request", "headers too large"),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                keep_alive = request["keep_alive"] and self._state == "serving"
                self._begin_request()
                try:
                    await self._dispatch(request, writer, keep_alive)
                finally:
                    self._end_request()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive handlers; swallowing the
            # cancellation here (the connection is closed below either way)
            # keeps drain-time shutdown quiet.
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _begin_request(self) -> None:
        self._in_flight += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._in_flight -= 1
        if self._in_flight == 0:
            self._idle.set()

    async def _read_request(self, reader: asyncio.StreamReader) -> dict | None:
        """One framed HTTP request, or ``None`` on a clean connection close."""
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest("truncated request") from None
        try:
            head, *header_lines = header_blob.decode("latin-1").split("\r\n")
            method, path, version = head.split(" ", 2)
        except ValueError:
            raise _BadRequest("malformed request line") from None
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if content_length < 0 or content_length > wire.MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {content_length} bytes exceeds the "
                f"{wire.MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(content_length) if content_length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and not version.startswith("HTTP/1.0")
        return {
            "method": method.upper(),
            "path": path.split("?", 1)[0],
            "body": body,
            "keep_alive": keep_alive,
        }

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict,
        *,
        keep_alive: bool = True,
        extra_headers: dict | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        reason = _STATUS_REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        # Count before the socket write: the moment bytes hit the wire a
        # client thread may act on them, and observers (tests, the load
        # generator) expect the counters to already reflect the response.
        self.metrics.response(status)
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + payload)
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.drain()

    # -- routing --------------------------------------------------------------

    async def _dispatch(
        self, request: dict, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        method, path = request["method"], request["path"]
        started = time.perf_counter()
        routes = {
            ("POST", "/prove"): self._handle_prove,
            ("POST", "/verify"): self._handle_verify,
            ("GET", "/scenarios"): self._handle_scenarios,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {route_path for _, route_path in routes}
            if path in known_paths:
                status, body, extra = 405, wire.error_body(
                    "method_not_allowed", f"{method} not supported on {path}"
                ), None
            else:
                status, body, extra = 404, wire.error_body(
                    "not_found", f"no route for {path}"
                ), None
        else:
            self.metrics.request(path.lstrip("/"))
            try:
                status, body, extra = await handler(request)
            except Exception:
                logger.exception("unhandled error on %s %s", method, path)
                status, body, extra = 500, wire.error_body(
                    "internal_error", f"unhandled error on {method} {path}"
                ), None
            # Latency reservoirs are keyed by endpoint and only exist for
            # known routes — recording arbitrary request paths would let a
            # scanner grow a long-lived server's memory without bound.
            self.metrics.latency(path.lstrip("/"), time.perf_counter() - started)
        await self._respond(
            writer, status, body, keep_alive=keep_alive, extra_headers=extra
        )

    def _parse_json(self, raw: bytes):
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise wire.WireError(f"body is not valid JSON: {exc}") from None

    def _retry_after_seconds(self) -> int:
        """A pessimistic-but-bounded hint for rejected callers.

        The queue drains one batch per collector cycle, so a full queue
        clears in roughly ``(max_queue / max_batch)`` batch wall times; with
        no batch history yet, fall back to one coalescing window.
        """
        batch_seconds = self.metrics.average_batch_seconds()
        if batch_seconds <= 0:
            batch_seconds = max(self.config.batch_window_ms / 1000.0, 0.05)
        cycles = max(1.0, self.config.max_queue / self.config.max_batch)
        return max(1, min(60, round(cycles * batch_seconds + 0.5)))

    async def _handle_prove(self, request: dict):
        try:
            prove_request = wire.parse_prove_request(self._parse_json(request["body"]))
        except wire.WireError as exc:
            return 400, wire.error_body("bad_request", str(exc)), None
        try:
            result = await self.batcher.submit(prove_request)
        except QueueFull as exc:
            return (
                503,
                wire.error_body("queue_full", str(exc)),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        except Draining:
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        return 200, result, None

    async def _handle_verify(self, request: dict):
        try:
            verify_request = wire.parse_verify_request(
                self._parse_json(request["body"])
            )
        except wire.WireError as exc:
            return 400, wire.error_body("bad_request", str(exc)), None
        if self._state != "serving":
            return (
                503,
                wire.error_body("draining", "service is shutting down"),
                {"Retry-After": str(self._retry_after_seconds())},
            )
        loop = asyncio.get_running_loop()
        try:
            body = await loop.run_in_executor(
                self._executor, self._verify_blocking, verify_request
            )
        except SerializationError as exc:
            return 400, wire.error_body("bad_proof", str(exc)), None
        return 200, body, None

    async def _handle_scenarios(self, request: dict):
        scenarios = []
        for name in available_scenarios():
            spec = resolve_scenario(name)
            scenarios.append(
                {
                    "name": spec.name,
                    "title": spec.title,
                    "description": spec.description,
                    "paper_log_size": spec.paper_log_size,
                    "default_log_size": spec.default_log_size,
                }
            )
        return 200, {"scenarios": scenarios}, None

    async def _handle_healthz(self, request: dict):
        return (
            200,
            {
                "status": "ok" if self._state == "serving" else self._state,
                "state": self._state,
                "uptime_seconds": time.time() - self.metrics.started_at,
                "queue_depth": self.batcher.queue_depth,
                "queue_capacity": self.config.max_queue,
                "engine": {
                    "workers": self.engine.config.effective_workers(),
                    "field_backend": self.engine.config.field_backend,
                },
            },
            None,
        )

    async def _handle_metrics(self, request: dict):
        return (
            200,
            self.metrics.snapshot(
                state=self._state,
                queue_depth=self.batcher.queue_depth,
                queue_capacity=self.config.max_queue,
            ),
            None,
        )


class BackgroundServer:
    """A :class:`ProofService` on a dedicated thread with its own event loop.

    The harness tests, the load generator and interactive sessions all need
    a serving loop *next to* synchronous code; this wraps the lifecycle::

        with BackgroundServer(ProofService(...)) as server:
            client = ServiceClient(port=server.port)
            ...

    ``start()`` returns once the socket is bound; ``stop()`` performs the
    full graceful drain before the thread joins.
    """

    def __init__(self, service: ProofService, start_timeout: float = 30.0):
        self.service = service
        self.start_timeout = start_timeout
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        if self.service.port is None:
            raise RuntimeError("server not started")
        return self.service.port

    def _main(self) -> None:
        async def body():
            try:
                await self.service.start()
            except BaseException as exc:  # surfaced to the starting thread
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            try:
                await self.service._stop_requested.wait()
            finally:
                await self.service.shutdown()

        try:
            asyncio.run(body())
        except BaseException:
            if not self._ready.is_set():
                self._ready.set()

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.start_timeout):
            raise RuntimeError("service did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self.service.request_stop()
        self._thread.join(timeout=max(self.start_timeout, 60.0))
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
