"""A stdlib blocking client for the proof service.

:class:`ServiceClient` wraps ``http.client`` with the wire format from
:mod:`repro.service.wire`, so scripted callers (``repro submit``, the load
generator, tests) speak to the server without third-party HTTP libraries.
One client holds one keep-alive connection and is *not* thread-safe — a
closed-loop load generator creates one client per worker thread, which is
also what exercises the server's connection handling realistically.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import socket
import time
from urllib.parse import urlsplit

from repro.service import wire


def backoff_delay(
    attempt: int, *, base: float = 0.25, cap: float = 10.0, jitter=random.random
) -> float:
    """Jittered exponential backoff for retry loops (seconds).

    ``attempt`` counts from 0.  Full jitter over the lower half of the
    window — synchronized clients that all hit a 429/503 together spread
    out instead of stampeding back in lockstep.
    """
    return min(cap, base * (2.0 ** attempt)) * (0.5 + 0.5 * jitter())


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict | None = None):
        self.status = status
        self.payload = payload or {}
        error = self.payload.get("error", {})
        message = error.get("message") or f"HTTP {status}"
        super().__init__(f"{message} (code={error.get('code', 'unknown')})")
        self.code = error.get("code", "unknown")


class ServiceUnavailable(ServiceError):
    """A 503 (backpressure/drain) or 429 (durable-queue admission bound).

    ``retry_after`` echoes the server's ``Retry-After`` header — the
    server's own estimate of when capacity frees up, which retry loops
    should prefer over their local backoff schedule.
    """

    def __init__(self, status: int, payload: dict | None, retry_after: float):
        super().__init__(status, payload)
        self.retry_after = retry_after


class TruncatedStream(ServiceError):
    """A chunked response ended before its terminating zero-chunk.

    The server died (or was killed) mid-stream: whatever arrived is
    incomplete and must not be treated as a result.  Carries the events
    seen so far in ``partial`` so callers can report honest progress.
    """

    def __init__(self, payload: dict | None = None, partial: int = 0):
        super().__init__(502, payload)
        self.partial = partial


class ServiceClient:
    """Blocking client over one keep-alive connection (reconnects on close).

    ``connect_timeout`` bounds the TCP connect (fail fast on a dead host);
    ``timeout`` bounds each subsequent socket read (a slow prove batch is
    legitimate — a connect that hangs is not).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 120.0,
        connect_timeout: float | None = 10.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout else timeout
        self._connection: http.client.HTTPConnection | None = None

    @classmethod
    def from_url(
        cls,
        url: str,
        timeout: float = 120.0,
        connect_timeout: float | None = 10.0,
    ) -> "ServiceClient":
        """Build a client from ``http://host:port`` (the CLI's ``--url``)."""
        parts = urlsplit(url if "//" in url else f"//{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in service URL {url!r}")
        return cls(
            parts.hostname,
            parts.port or 8000,
            timeout=timeout,
            connect_timeout=connect_timeout,
        )

    # -- transport -----------------------------------------------------------

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _open_connection(self) -> http.client.HTTPConnection:
        """Connect with the connect timeout, then switch the live socket to
        the (typically much longer) read timeout."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        connection.connect()
        connection.sock.settimeout(self.timeout)
        return connection

    def _raw_request(self, method: str, path: str, body: dict | None = None):
        """One request; returns ``(response, raw_body_bytes)``.

        Retries once, transparently, on a dead keep-alive connection (the
        server closes idle sockets on drain; a fresh connection
        disambiguates "connection went away" from a real refusal).
        """
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = self._open_connection()
            try:
                self._connection.request(method, path, body=payload, headers=headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        if response.will_close:
            self.close()
        return response, raw

    @staticmethod
    def _retry_after(response) -> float:
        try:
            return float(response.headers.get("Retry-After", "1"))
        except ValueError:
            return 1.0

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        response, raw = self._raw_request(method, path, body)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = {}
        if response.status in (429, 503):
            raise ServiceUnavailable(
                response.status, decoded, self._retry_after(response)
            )
        if response.status >= 400:
            raise ServiceError(response.status, decoded)
        return decoded

    # -- endpoints -----------------------------------------------------------

    def prove(
        self,
        scenario: str = "mock",
        num_vars: int | None = None,
        seed: int = 0,
        include_witness: bool = False,
    ) -> dict:
        """``POST /prove``; the response's proof comes back as raw bytes."""
        body: dict = {"scenario": scenario, "seed": seed}
        if num_vars is not None:
            body["num_vars"] = num_vars
        if include_witness:
            body["include_witness"] = True
        result = self._request("POST", "/prove", body)
        result["proof_bytes"] = wire.decode_bytes(result["proof"])
        return result

    def verify(
        self,
        proof: bytes | dict,
        scenario: str | None = None,
        num_vars: int | None = None,
        seed: int | None = None,
    ) -> bool:
        """``POST /verify``.

        Accepts raw proof bytes plus scenario coordinates, or a full
        :meth:`prove` response dict (from which scenario, size and seed
        default).
        """
        if isinstance(proof, dict):
            scenario = scenario if scenario is not None else proof["scenario"]
            num_vars = num_vars if num_vars is not None else proof["num_vars"]
            seed = seed if seed is not None else proof.get("seed", 0)
            proof_bytes = proof.get("proof_bytes") or wire.decode_bytes(proof["proof"])
        else:
            proof_bytes = proof
        if scenario is None:
            raise ValueError("verify needs a scenario (or a prove response dict)")
        body = {
            "scenario": scenario,
            "seed": 0 if seed is None else seed,
            "proof": wire.encode_bytes(proof_bytes),
        }
        if num_vars is not None:
            body["num_vars"] = num_vars
        return bool(self._request("POST", "/verify", body)["valid"])

    def simulate(
        self,
        scenario: str = "mock",
        num_vars: int | None = None,
        chip_config: dict | None = None,
        bandwidth_gbs: float | None = None,
    ) -> dict:
        """``POST /simulate``: one design point on a scenario's workload."""
        body: dict = {"scenario": scenario}
        if num_vars is not None:
            body["num_vars"] = num_vars
        if chip_config is not None:
            body["chip_config"] = chip_config
        if bandwidth_gbs is not None:
            body["bandwidth_gbs"] = bandwidth_gbs
        return self._request("POST", "/simulate", body)

    def sweep(
        self,
        scenario: str | None = None,
        num_vars: int | None = None,
        overrides: dict | None = None,
        configs: list | None = None,
        max_points: int | None = 2000,
        shard: tuple[int, int] | None = None,
        include_points: bool = False,
        stream: bool = False,
        on_event=None,
    ) -> dict:
        """``POST /sweep``; returns the final sweep result body.

        With ``stream=True`` the server answers chunked NDJSON; each parsed
        line is passed to ``on_event`` as it arrives (``event`` is
        ``start`` / ``progress`` / ``result``) and the ``result`` line is
        returned.  A stream that ends without a ``result`` line means the
        sweep died server-side and raises :class:`ServiceError`.
        """
        body: dict = {}
        if scenario is not None:
            body["scenario"] = scenario
        if num_vars is not None:
            body["num_vars"] = num_vars
        if overrides is not None:
            body["overrides"] = overrides
        if configs is not None:
            body["configs"] = configs
        if max_points is not None:
            body["max_points"] = max_points
        if shard is not None:
            body["shard"] = {"index": shard[0], "count": shard[1]}
        if include_points:
            body["include_points"] = True
        if not stream:
            return self._request("POST", "/sweep", body)
        body["stream"] = True
        result = None
        events_seen = 0
        try:
            for line in self._stream_request("POST", "/sweep", body):
                events_seen += 1
                if on_event is not None:
                    on_event(line)
                if line.get("event") == "result":
                    result = line
        except (http.client.IncompleteRead, http.client.HTTPException,
                ConnectionError, OSError) as exc:
            # The server (or its socket) died mid-stream; the chunked body
            # has no terminator, so nothing received can be trusted as a
            # complete frontier.
            raise TruncatedStream(wire.error_body(
                "truncated_stream",
                f"sweep stream broke after {events_seen} event(s): {exc}",
            ), partial=events_seen) from None
        if result is None:
            raise TruncatedStream(wire.error_body(
                "truncated_stream",
                f"sweep stream ended without a result line "
                f"(after {events_seen} event(s))",
            ), partial=events_seen)
        return result

    def _stream_request(self, method: str, path: str, body: dict):
        """Yield parsed NDJSON lines from a chunked streaming endpoint.

        ``http.client`` de-chunks transparently, so iteration is plain
        ``readline`` on the response; an incomplete chunked body surfaces
        as ``IncompleteRead``, which callers see as a truncated stream
        (no ``result`` line).
        """
        payload = json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self._connection is None:
            self._connection = self._open_connection()
        try:
            self._connection.request(method, path, body=payload, headers=headers)
            response = self._connection.getresponse()
        except (http.client.HTTPException, ConnectionError, socket.timeout, OSError):
            self.close()
            raise
        if response.status >= 400:
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                decoded = {}
            if response.will_close:
                self.close()
            raise ServiceError(response.status, decoded)
        try:
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            raise
        if response.will_close:
            self.close()

    # -- durable jobs ---------------------------------------------------------

    def submit_job(self, body: dict) -> dict:
        """``POST /jobs``: submit one durable job; returns the 202 ack.

        ``body`` is the job request (``kind`` plus the matching synchronous
        request's fields; optional ``id`` for idempotent resubmission).  A
        429/503 raises :class:`ServiceUnavailable` with the server's
        ``Retry-After``.
        """
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: a job's current state."""
        return self._request("GET", f"/jobs/{job_id}")

    def wait_for_job(
        self, job_id: str, timeout: float = 600.0, poll_s: float = 0.25
    ) -> dict:
        """Poll until the job reaches a terminal state (``done``/``dead``)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "dead"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {record['state']} after {timeout}s"
                )
            time.sleep(min(poll_s, max(0.0, deadline - time.monotonic())))

    def job_artifact(self, job_id: str, *, _redirected: bool = False) -> bytes:
        """``GET /jobs/<id>/artifact``: the finished job's artifact bytes.

        Follows at most one ``307`` (the router redirects artifact
        downloads to the owning backend so blobs cross one hop, not two)
        and verifies the body against the ``X-Artifact-Digest`` header —
        a truncated or corrupted download raises instead of returning
        short bytes.
        """
        try:
            response, raw = self._raw_request("GET", f"/jobs/{job_id}/artifact")
        except http.client.IncompleteRead as exc:
            raise TruncatedStream(wire.error_body(
                "truncated_stream", f"artifact download truncated: {exc}"
            )) from None
        if response.status == 307:
            location = response.headers.get("Location", "")
            parts = urlsplit(location)
            if _redirected or not parts.hostname:
                raise ServiceError(502, wire.error_body(
                    "bad_redirect", f"unusable artifact redirect {location!r}"
                ))
            with ServiceClient(
                parts.hostname,
                parts.port or 8000,
                timeout=self.timeout,
                connect_timeout=self.connect_timeout,
            ) as owner:
                return owner.job_artifact(job_id, _redirected=True)
        if response.status in (429, 503):
            raise ServiceUnavailable(
                response.status, {}, self._retry_after(response)
            )
        if response.status >= 400:
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                decoded = {}
            raise ServiceError(response.status, decoded)
        expected = response.headers.get("X-Artifact-Digest")
        if expected and hashlib.sha256(raw).hexdigest() != expected:
            raise ServiceError(502, wire.error_body(
                "digest_mismatch",
                f"artifact bytes do not hash to {expected}",
            ))
        return raw

    def scenarios(self) -> list[dict]:
        """``GET /scenarios``."""
        return self._request("GET", "/scenarios")["scenarios"]

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")
