"""The service wire format: JSON bodies with base64 binary fields.

One module owns every byte that crosses the HTTP boundary so the server
(:mod:`repro.service.server`), the stdlib client
(:mod:`repro.service.client`) and the load generator
(``benchmarks/bench_service.py``) can never drift apart.  All payloads are
JSON objects; binary values — serialized proofs (the canonical
:mod:`repro.protocol.serialization` format) and witness columns — travel as
base64 strings.

Requests
--------
``POST /prove``::

    {"scenario": "zcash", "num_vars": 6, "seed": 3,
     "include_witness": false}

``POST /verify``::

    {"scenario": "zcash", "num_vars": 6, "seed": 3,
     "proof": "<base64>"}

``scenario`` is any name from ``GET /scenarios``; ``num_vars`` defaults to
the scenario's laptop-scale size, ``seed`` to 0.  The verify request names
the circuit *structure* (scenario + size) so the server can resolve the
cached verifying key; the seed only picks the witness and is accepted for
symmetry with the prove request.

Responses are JSON too; errors use ``{"error": {"code": ..., "message":
...}}`` with a matching HTTP status (400 malformed request, 404 unknown
route, 503 backpressure/draining with a ``Retry-After`` header).
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Mapping

from repro.api.scenarios import available_scenarios, resolve_scenario
from repro.service.http import error_body  # noqa: F401  (canonical error shape)
from repro.circuits.builder import Circuit
from repro.protocol.keys import WITNESS_POLY_NAMES

#: Field elements serialize as fixed-width big-endian words, matching the
#: proof wire format in :mod:`repro.protocol.serialization`.
FIELD_BYTES = 32

#: Hard cap on request bodies (a verify request is dominated by one base64
#: proof, ~7 KB at paper sizes; anything near the cap is abuse).
MAX_BODY_BYTES = 8 << 20

#: Largest circuit size a request may name.  The paper's Table 3 tops out
#: around 2^23 gates; without a cap a single ``{"num_vars": 34}`` request
#: would have the engine thread attempt a multi-GB SRS/circuit allocation —
#: the one resource knob the bounded queue and body cap don't cover.
MAX_NUM_VARS = 24


class WireError(ValueError):
    """A request that cannot be decoded into a valid engine call."""


def encode_bytes(data: bytes) -> str:
    """Binary value -> base64 JSON string."""
    return base64.b64encode(data).decode("ascii")


def decode_bytes(value: str, field: str = "proof") -> bytes:
    """Base64 JSON string -> binary value (raises :class:`WireError`)."""
    if not isinstance(value, str):
        raise WireError(f"{field} must be a base64 string")
    try:
        return base64.b64decode(value.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise WireError(f"{field} is not valid base64: {exc}") from None


def parse_json_body(raw: bytes):
    """A request body's JSON value (raises :class:`WireError`; empty → {})."""
    try:
        return json.loads(raw.decode("utf-8")) if raw else {}
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"body is not valid JSON: {exc}") from None


def resolved_num_vars(scenario: str, num_vars: int | None) -> int:
    """The circuit size a request will actually run at.

    ``num_vars=None`` means "the scenario's laptop-scale default" — this is
    the one resolution rule shared by the batcher's size buckets and the
    cluster router's structure keys, so a request routed by its resolved
    size lands on the backend whose caches hold exactly that size.
    """
    if num_vars is not None:
        return num_vars
    return resolve_scenario(scenario).default_log_size


def _require_mapping(body) -> Mapping:
    if not isinstance(body, Mapping):
        raise WireError("request body must be a JSON object")
    return body


def _scenario_field(body: Mapping) -> str:
    scenario = body.get("scenario", "mock")
    if not isinstance(scenario, str):
        raise WireError("scenario must be a string")
    try:
        resolve_scenario(scenario)
    except KeyError:
        raise WireError(
            f"unknown scenario {scenario!r}; "
            f"available: {', '.join(available_scenarios())}"
        ) from None
    return scenario


def _int_field(
    body: Mapping,
    name: str,
    default,
    minimum: int,
    maximum: int | None = None,
    allow_none: bool = False,
):
    value = body.get(name, default)
    if value is None:
        # An *explicit* JSON null is only meaningful where None has engine
        # semantics (num_vars -> the scenario's default size); elsewhere it
        # must not leak through as a non-integer.
        if allow_none:
            return None
        raise WireError(f"{name} must be an integer, not null")
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{name} must be an integer")
    if value < minimum:
        raise WireError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise WireError(f"{name} must be <= {maximum}, got {value}")
    return value


def parse_prove_request(body) -> dict:
    """Validate a ``POST /prove`` body into ``ProverEngine.prove`` kwargs.

    Validation happens *before* the request joins the batch queue, so one
    malformed request gets its own 400 instead of failing a whole batch.
    """
    body = _require_mapping(body)
    return {
        "scenario": _scenario_field(body),
        "num_vars": _int_field(
            body, "num_vars", None, minimum=1, maximum=MAX_NUM_VARS, allow_none=True
        ),
        "seed": _int_field(body, "seed", 0, minimum=0),
        "include_witness": bool(body.get("include_witness", False)),
    }


def parse_verify_request(body) -> dict:
    """Validate a ``POST /verify`` body; ``proof`` comes back as bytes."""
    body = _require_mapping(body)
    if "proof" not in body:
        raise WireError("verify request needs a base64 proof field")
    return {
        "scenario": _scenario_field(body),
        "num_vars": _int_field(
            body, "num_vars", None, minimum=1, maximum=MAX_NUM_VARS, allow_none=True
        ),
        "seed": _int_field(body, "seed", 0, minimum=0),
        "proof": decode_bytes(body["proof"]),
    }


def serialize_witness(circuit: Circuit) -> dict[str, str]:
    """The circuit's witness columns as base64 fixed-width field words.

    Column order and element layout follow the proof wire format
    (big-endian ``FIELD_BYTES``-byte words), so an auditing client can
    re-derive commitments without guessing at encodings.
    """
    columns: dict[str, str] = {}
    for name in WITNESS_POLY_NAMES:
        table = circuit.witnesses[name].evaluations
        blob = b"".join(
            int(value).to_bytes(FIELD_BYTES, "big") for value in table
        )
        columns[name] = encode_bytes(blob)
    return columns


def prove_response(artifact, request: Mapping, batch_size: int) -> dict:
    """The ``POST /prove`` response body for one served artifact."""
    body = {
        "scenario": artifact.scenario,
        "num_vars": artifact.num_vars,
        "seed": request.get("seed", 0),
        "proof": encode_bytes(artifact.to_bytes()),
        "proof_size_bytes": artifact.size_bytes,
        "prove_seconds": artifact.timings.get("prove"),
        "batch_size": batch_size,
    }
    witness = request.get("witness_columns")
    if witness is not None:
        body["witness"] = witness
    return body
