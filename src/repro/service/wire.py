"""The service wire format: JSON bodies with base64 binary fields.

One module owns every byte that crosses the HTTP boundary so the server
(:mod:`repro.service.server`), the stdlib client
(:mod:`repro.service.client`) and the load generator
(``benchmarks/bench_service.py``) can never drift apart.  All payloads are
JSON objects; binary values — serialized proofs (the canonical
:mod:`repro.protocol.serialization` format) and witness columns — travel as
base64 strings.

Requests
--------
``POST /prove``::

    {"scenario": "zcash", "num_vars": 6, "seed": 3,
     "include_witness": false}

``POST /verify``::

    {"scenario": "zcash", "num_vars": 6, "seed": 3,
     "proof": "<base64>"}

``POST /simulate``::

    {"scenario": "zcash", "num_vars": 20,
     "chip_config": {"msm_cores": 2, ...},   # optional, paper default
     "bandwidth_gbs": 1024.0}                # optional override

``POST /sweep``::

    {"scenario": "zcash", "overrides": {"sumcheck_pes": [2, 4]},
     "max_points": 500,
     "shard": {"index": 0, "count": 2},      # optional: evaluate one shard
     "stream": true,                          # optional: NDJSON chunks
     "include_points": false}                 # optional: all points in body

``POST /jobs`` (the durable tier)::

    {"kind": "prove",                        # or "verify" / "sweep"
     "scenario": "zcash", "num_vars": 6, "seed": 3,
     "id": "zcash:6~deadbeef...",             # optional idempotency key
     "max_attempts": 3}                       # optional retry budget

A job body is the matching synchronous request plus ``kind``; it is
validated by the same parser at admission, acknowledged with 202, and
queried back via ``GET /jobs/<id>`` / downloaded via
``GET /jobs/<id>/artifact``.

``scenario`` is any name from ``GET /scenarios``; ``num_vars`` defaults to
the scenario's laptop-scale size, ``seed`` to 0.  The verify request names
the circuit *structure* (scenario + size) so the server can resolve the
cached verifying key; the seed only picks the witness and is accepted for
symmetry with the prove request.  Simulate/sweep requests instead default
``num_vars`` to the scenario's *published* size (the analytical model is
O(1) in problem size) and advertise their availability per scenario via
the ``capabilities`` flags in ``GET /scenarios``.

Responses are JSON too; errors use ``{"error": {"code": ..., "message":
...}}`` with a matching HTTP status (400 malformed request, 404 unknown
route, 503 backpressure/draining with a ``Retry-After`` header).
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Mapping

from repro.api.scenarios import available_scenarios, resolve_scenario
from repro.core.config import (
    ZkSpeedConfig,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
)
from repro.dse.plan import SweepPlan
from repro.jobs.store import JOB_KINDS, job_id_structure_key
from repro.service.http import error_body  # noqa: F401  (canonical error shape)
from repro.circuits.builder import Circuit
from repro.protocol.keys import WITNESS_POLY_NAMES

#: Field elements serialize as fixed-width big-endian words, matching the
#: proof wire format in :mod:`repro.protocol.serialization`.
FIELD_BYTES = 32

#: Hard cap on request bodies (a verify request is dominated by one base64
#: proof, ~7 KB at paper sizes; anything near the cap is abuse).
MAX_BODY_BYTES = 8 << 20

#: Largest circuit size a request may name.  The paper's Table 3 tops out
#: around 2^23 gates; without a cap a single ``{"num_vars": 34}`` request
#: would have the engine thread attempt a multi-GB SRS/circuit allocation —
#: the one resource knob the bounded queue and body cap don't cover.
MAX_NUM_VARS = 24

#: Largest *architectural-model* problem size a simulate/sweep request may
#: name.  The chip model is analytical (no per-gate state), so it tolerates
#: sizes the functional prover never could; 2^30 comfortably covers every
#: published workload while still rejecting nonsense.
MAX_SIM_NUM_VARS = 30

#: Bound on a sweep's *pre-decimation* grid (the full Table 2 cross product
#: is 1,155,000 — deliberately inside the cap) and on the points actually
#: evaluated after ``max_points`` decimation.  Validation computes both
#: without materializing a single config, so an absurd request costs a 400,
#: not memory.
MAX_SWEEP_COMBOS = 4_000_000
MAX_SWEEP_POINTS = 20_000

#: Most shards a sweep request may declare.  Far above any real fleet; the
#: cap only rules out degenerate ``count`` values that would make strided
#: enumeration itself the bottleneck.
MAX_SWEEP_SHARDS = 1024


class WireError(ValueError):
    """A request that cannot be decoded into a valid engine call.

    ``details`` (optional) is a JSON-safe dict merged into the 400 error
    body by :func:`wire_error_body`, so structured context -- like the
    available-scenario list -- reaches clients on every tier.
    """

    def __init__(self, message: str, details: dict | None = None):
        super().__init__(message)
        self.details = details


def wire_error_body(exc: WireError, code: str = "bad_request") -> dict:
    """The uniform 400 payload for a :class:`WireError`, details included."""
    return error_body(code, str(exc), getattr(exc, "details", None))


def encode_bytes(data: bytes) -> str:
    """Binary value -> base64 JSON string."""
    return base64.b64encode(data).decode("ascii")


def decode_bytes(value: str, field: str = "proof") -> bytes:
    """Base64 JSON string -> binary value (raises :class:`WireError`)."""
    if not isinstance(value, str):
        raise WireError(f"{field} must be a base64 string")
    try:
        return base64.b64decode(value.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise WireError(f"{field} is not valid base64: {exc}") from None


def parse_json_body(raw: bytes):
    """A request body's JSON value (raises :class:`WireError`; empty → {})."""
    try:
        return json.loads(raw.decode("utf-8")) if raw else {}
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(f"body is not valid JSON: {exc}") from None


def resolved_num_vars(scenario: str, num_vars: int | None) -> int:
    """The circuit size a request will actually run at.

    ``num_vars=None`` means "the scenario's laptop-scale default" — this is
    the one resolution rule shared by the batcher's size buckets and the
    cluster router's structure keys, so a request routed by its resolved
    size lands on the backend whose caches hold exactly that size.
    """
    if num_vars is not None:
        return num_vars
    return resolve_scenario(scenario).default_log_size


def _require_mapping(body) -> Mapping:
    if not isinstance(body, Mapping):
        raise WireError("request body must be a JSON object")
    return body


def _scenario_field(body: Mapping, capability: str = "prove") -> str:
    scenario = body.get("scenario", "mock")
    if not isinstance(scenario, str):
        raise WireError("scenario must be a string")
    try:
        resolved = resolve_scenario(scenario)
    except KeyError:
        raise WireError(
            f"unknown scenario {scenario!r}; "
            f"available: {', '.join(available_scenarios())}",
            details={"available_scenarios": available_scenarios()},
        ) from None
    if capability not in resolved.capabilities:
        raise WireError(
            f"scenario {scenario!r} does not support {capability!r} "
            f"(capabilities: {', '.join(resolved.capabilities)})",
            details={
                "scenario": scenario,
                "capabilities": list(resolved.capabilities),
                "available_scenarios": [
                    name
                    for name in available_scenarios()
                    if capability in resolve_scenario(name).capabilities
                ],
            },
        )
    return scenario


def _int_field(
    body: Mapping,
    name: str,
    default,
    minimum: int,
    maximum: int | None = None,
    allow_none: bool = False,
):
    value = body.get(name, default)
    if value is None:
        # An *explicit* JSON null is only meaningful where None has engine
        # semantics (num_vars -> the scenario's default size); elsewhere it
        # must not leak through as a non-integer.
        if allow_none:
            return None
        raise WireError(f"{name} must be an integer, not null")
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{name} must be an integer")
    if value < minimum:
        raise WireError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise WireError(f"{name} must be <= {maximum}, got {value}")
    return value


def parse_prove_request(body) -> dict:
    """Validate a ``POST /prove`` body into ``ProverEngine.prove`` kwargs.

    Validation happens *before* the request joins the batch queue, so one
    malformed request gets its own 400 instead of failing a whole batch.
    """
    body = _require_mapping(body)
    return {
        "scenario": _scenario_field(body),
        "num_vars": _int_field(
            body, "num_vars", None, minimum=1, maximum=MAX_NUM_VARS, allow_none=True
        ),
        "seed": _int_field(body, "seed", 0, minimum=0),
        "include_witness": bool(body.get("include_witness", False)),
    }


def parse_verify_request(body) -> dict:
    """Validate a ``POST /verify`` body; ``proof`` comes back as bytes."""
    body = _require_mapping(body)
    if "proof" not in body:
        raise WireError("verify request needs a base64 proof field")
    return {
        "scenario": _scenario_field(body),
        "num_vars": _int_field(
            body, "num_vars", None, minimum=1, maximum=MAX_NUM_VARS, allow_none=True
        ),
        "seed": _int_field(body, "seed", 0, minimum=0),
        "proof": decode_bytes(body["proof"]),
    }


def resolved_sim_num_vars(scenario: str, num_vars: int | None) -> int:
    """The problem size a simulate/sweep request will actually model.

    Unlike the prover path (laptop-scale defaults — proving 2^20 gates in
    Python is minutes), the analytical chip model defaults to the
    scenario's *published* Table 3 size: simulating it costs the same
    fraction of a millisecond as any toy size, and the paper's numbers are
    the ones worth reproducing by default.
    """
    if num_vars is not None:
        return num_vars
    return resolve_scenario(scenario).paper_log_size


def parse_simulate_request(body) -> dict:
    """Validate a ``POST /simulate`` body into engine simulation kwargs.

    The chip configuration is validated here — field names, types, *and*
    the model's own range checks (``ZkSpeedConfig.__post_init__``) — so a
    bad design point is a 400 at the door, never an exception on the
    engine thread.
    """
    body = _require_mapping(body)
    scenario = _scenario_field(body, capability="simulate")
    num_vars = _int_field(
        body, "num_vars", None, minimum=1, maximum=MAX_SIM_NUM_VARS, allow_none=True
    )
    raw_config = body.get("chip_config")
    if raw_config is None:
        chip_config = ZkSpeedConfig.paper_default()
    else:
        try:
            chip_config = config_from_dict(raw_config)
        except ValueError as exc:
            raise WireError(f"bad chip_config: {exc}") from None
    bandwidth = body.get("bandwidth_gbs")
    if bandwidth is not None:
        if isinstance(bandwidth, bool) or not isinstance(bandwidth, (int, float)):
            raise WireError("bandwidth_gbs must be a number")
        if bandwidth <= 0:
            raise WireError("bandwidth_gbs must be positive")
        chip_config = chip_config.with_bandwidth(float(bandwidth))
    return {
        "scenario": scenario,
        "num_vars": num_vars,
        "chip_config": chip_config,
    }


def parse_sweep_request(body) -> dict:
    """Validate a ``POST /sweep`` body into a plan plus execution options.

    Returns ``{"plan": SweepPlan, "shard": (index, count) | None,
    "stream": bool, "include_points": bool}``.  Everything that could make
    a shard fail later — unknown knobs, invalid configs, an oversized
    grid — is rejected here with a 400, honoring the service's
    validate-before-queue contract.
    """
    body = _require_mapping(body)
    if body.get("scenario") is not None:
        _scenario_field(body, capability="simulate")
    plan_fields = {
        key: body[key]
        for key in ("scenario", "num_vars", "overrides", "configs", "max_points")
        if key in body
    }
    if "num_vars" in plan_fields and plan_fields["num_vars"] is not None:
        _int_field(body, "num_vars", None, minimum=1, maximum=MAX_SIM_NUM_VARS)
    try:
        plan = SweepPlan.from_wire(plan_fields)
    except ValueError as exc:
        raise WireError(f"bad sweep plan: {exc}") from None
    if plan.grid_size() > MAX_SWEEP_COMBOS:
        raise WireError(
            f"sweep grid has {plan.grid_size()} combinations "
            f"(cap {MAX_SWEEP_COMBOS}); restrict overrides"
        )
    if plan.total_points() > MAX_SWEEP_POINTS:
        raise WireError(
            f"sweep evaluates {plan.total_points()} points "
            f"(cap {MAX_SWEEP_POINTS}); lower max_points"
        )
    shard = body.get("shard")
    if shard is not None:
        if not isinstance(shard, Mapping):
            raise WireError("shard must be an object with index and count")
        count = _int_field(shard, "count", None, minimum=1, maximum=MAX_SWEEP_SHARDS)
        index = _int_field(shard, "index", None, minimum=0)
        if index >= count:
            raise WireError(f"shard index {index} out of range for count {count}")
        shard = (index, count)
    return {
        "plan": plan,
        "shard": shard,
        "stream": bool(body.get("stream", False)),
        "include_points": bool(body.get("include_points", False)),
    }


def job_structure_key(kind: str, payload: Mapping) -> str:
    """The placement key of a durable job (matches the synchronous tier).

    Prove/verify jobs key by ``"scenario:resolved_num_vars"`` — exactly
    :func:`repro.cluster.topology.structure_key` — so a job lands on the
    backend whose SRS/circuit caches already hold its structure.  Sweep
    jobs key by ``"sweep:scenario:num_vars"``: a distinct namespace, since
    a sweep warms the simulator cache, not the prover's.
    """
    if kind == "sweep":
        plan = payload["plan"]
        scenario = plan.get("scenario") or "synthetic"
        num_vars = plan.get("num_vars")
        if num_vars is None:
            num_vars = resolved_sim_num_vars(plan["scenario"], None)
        return f"sweep:{scenario}:{num_vars}"
    return (
        f"{payload['scenario']}:"
        f"{resolved_num_vars(payload['scenario'], payload.get('num_vars'))}"
    )


def parse_job_request(body) -> dict:
    """Validate a ``POST /jobs`` body into a submittable job.

    Returns ``{"kind", "structure_key", "payload", "job_id", "max_attempts"}``
    — ``job_id`` is the caller's idempotency key (``None`` means "mint
    one"), checked here against the payload's structure key so a spoofed
    id cannot make the router and the store disagree about placement.

    Each kind reuses the corresponding synchronous parser, so a payload
    that passes admission cannot fail later for wire-shape reasons: a
    failed attempt means the engine itself raised, which is what retries
    and the dead-letter state are for.
    """
    body = _require_mapping(body)
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        raise WireError(
            f"kind must be one of {', '.join(JOB_KINDS)}, got {kind!r}"
        )
    if kind == "prove":
        parsed = parse_prove_request(body)
        payload = {
            "scenario": parsed["scenario"],
            "num_vars": parsed["num_vars"],
            "seed": parsed["seed"],
        }
    elif kind == "verify":
        parsed = parse_verify_request(body)  # validates the base64 proof
        payload = {
            "scenario": parsed["scenario"],
            "num_vars": parsed["num_vars"],
            "seed": parsed["seed"],
            # Stored as the original base64 string: sqlite holds JSON, and
            # the engine's job executor decodes at execution time.
            "proof": body["proof"],
        }
    else:
        parsed = parse_sweep_request(body)
        if parsed["shard"] is not None or parsed["stream"]:
            raise WireError(
                "sweep jobs run whole plans; shard/stream are for POST /sweep"
            )
        payload = {
            "plan": parsed["plan"].to_wire(),
            "include_points": parsed["include_points"],
        }
    key = job_structure_key(kind, payload)
    job_id = body.get("id")
    if job_id is not None:
        if not isinstance(job_id, str) or not (1 <= len(job_id) <= 256):
            raise WireError("id must be a short string")
        try:
            id_key = job_id_structure_key(job_id)
        except ValueError as exc:
            raise WireError(str(exc)) from None
        if id_key != key:
            raise WireError(
                f"id routes to {id_key!r} but the payload keys to {key!r}"
            )
    max_attempts = _int_field(
        body, "max_attempts", None, minimum=1, maximum=10, allow_none=True
    )
    return {
        "kind": kind,
        "structure_key": key,
        "payload": payload,
        "job_id": job_id,
        "max_attempts": max_attempts,
    }


def job_response(record: Mapping) -> dict:
    """The ``GET /jobs/<id>`` body: a job's public state, lease internals
    elided (``/metrics`` aggregates those; per-job they invite polling on
    implementation detail)."""
    body = {
        "id": record["id"],
        "kind": record["kind"],
        "state": record["state"],
        "structure_key": record["structure_key"],
        "attempts": record["attempts"],
        "max_attempts": record["max_attempts"],
        "created_at": record["created_at"],
        "updated_at": record["updated_at"],
    }
    if record.get("artifact_digest"):
        body["artifact"] = {
            "digest": record["artifact_digest"],
            "size_bytes": record["artifact_size"],
        }
    if record.get("result") is not None:
        body["result"] = record["result"]
    if record.get("error"):
        body["error"] = record["error"]
    return body


def simulate_response(
    report, scenario: str, num_vars: int, cached: bool
) -> dict:
    """The ``POST /simulate`` response body for one simulated design point."""
    return {
        "scenario": scenario,
        "num_vars": num_vars,
        "workload": report.workload.name,
        "chip_config": config_to_dict(report.config),
        "fingerprint": config_fingerprint(report.config),
        "total_cycles": report.total_cycles,
        "runtime_ms": report.total_runtime_ms,
        "area_mm2": report.total_area_mm2,
        "compute_area_mm2": report.compute_area_mm2,
        "power_w": report.total_power_w,
        "steps": [
            {
                "name": step.name,
                "cycles": step.total_cycles,
                "memory_bound": step.is_memory_bound,
            }
            for step in report.steps
        ],
        "cached": cached,
    }


def sweep_response(result, include_points: bool, shard=None) -> dict:
    """The (non-streamed) ``POST /sweep`` response body."""
    body = result.to_wire(include_points=include_points)
    if shard is not None:
        body["shard"] = {"index": shard[0], "count": shard[1]}
    return body


def serialize_witness(circuit: Circuit) -> dict[str, str]:
    """The circuit's witness columns as base64 fixed-width field words.

    Column order and element layout follow the proof wire format
    (big-endian ``FIELD_BYTES``-byte words), so an auditing client can
    re-derive commitments without guessing at encodings.
    """
    columns: dict[str, str] = {}
    for name in WITNESS_POLY_NAMES:
        table = circuit.witnesses[name].evaluations
        blob = b"".join(
            int(value).to_bytes(FIELD_BYTES, "big") for value in table
        )
        columns[name] = encode_bytes(blob)
    return columns


def prove_response(artifact, request: Mapping, batch_size: int) -> dict:
    """The ``POST /prove`` response body for one served artifact."""
    body = {
        "scenario": artifact.scenario,
        "num_vars": artifact.num_vars,
        "seed": request.get("seed", 0),
        "proof": encode_bytes(artifact.to_bytes()),
        "proof_size_bytes": artifact.size_bytes,
        "prove_seconds": artifact.timings.get("prove"),
        "batch_size": batch_size,
    }
    witness = request.get("witness_columns")
    if witness is not None:
        body["witness"] = witness
    return body
